"""A micro-batch snapshot pipeline (the §VI-A strawman, built for real).

Timeline model (virtual seconds, same cost model as the simulator):

* Events arrive at a fixed offered rate (``arrival_rate`` events/s),
  which stands in for the real-time source the paper motivates with
  (tweets, payments).
* A batch *closes* every ``batch_interval`` seconds (or earlier when
  ``batch_size`` events have accumulated).
* A closed batch waits for the compute stage to be free, is applied to
  the stored graph (per-edge dynamic-insert cost), and the static
  algorithm recomputes the answer from scratch (CSR rebuild + traversal,
  costs from measured op counts — exactly the paper's drawback (i):
  "high overheads due to storing multiple copies / processing batch
  delta changes").
* Queries between snapshot completions see the previous answer, which
  is the paper's drawback (ii): "it loses information by removing the
  ability to query graph state in-between snapshots".

``run()`` replays an edge list through this pipeline and reports
per-event staleness (completion time of the covering batch minus the
event's arrival) plus total compute, directly comparable to the
continuous engine's trigger latencies and makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import Callable

from repro.comm.costmodel import CostModel
from repro.staticalgs.algorithms import OpCounts, static_bfs, static_cc, static_sssp
from repro.storage.csr import CSRGraph
from repro.util.validate import check_positive

# Registry of static per-batch recompute kernels.  Each adapter has the
# uniform shape ``(graph, source) -> (result, OpCounts)``; algorithms
# without a source vertex (CC) simply ignore it.  Extend by adding an
# entry — the pipeline machinery is algorithm-agnostic.
STATIC_ALGORITHMS: dict[
    str, Callable[[CSRGraph, int], tuple[dict, OpCounts]]
] = {
    "bfs": static_bfs,
    "sssp": static_sssp,
    "cc": lambda graph, source: static_cc(graph),
}


@dataclass
class BatchReport:
    """Outcome of one pipeline run."""

    n_events: int
    n_batches: int
    total_time: float  # arrival of first event -> last batch completed
    compute_time: float  # total virtual CPU spent on rebuild+recompute
    staleness_mean: float
    staleness_max: float
    batch_completion_times: list[float] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"batches={self.n_batches} events={self.n_events:,} "
            f"total={self.total_time * 1e3:.2f}ms compute={self.compute_time * 1e3:.2f}ms "
            f"staleness mean={self.staleness_mean * 1e3:.3f}ms "
            f"max={self.staleness_max * 1e3:.3f}ms"
        )


class SnapshotPipeline:
    """Replays an edge stream through a batch-snapshot-recompute loop.

    Parameters
    ----------
    batch_interval:
        Seconds of arrivals per batch (the snapshot cadence).
    arrival_rate:
        Offered load in events/second.
    n_ranks:
        Parallelism available to the rebuild/recompute stage (same
        rank semantics as the simulated cluster).
    batch_size:
        Optional early-close bound on events per batch.
    algorithm:
        Any key of :data:`STATIC_ALGORITHMS` (``"bfs"``, ``"sssp"``,
        ``"cc"``); the source vertex is supplied to :meth:`run` and is
        ignored by sourceless algorithms (CC).
    """

    def __init__(
        self,
        batch_interval: float,
        arrival_rate: float,
        n_ranks: int,
        cost_model: CostModel | None = None,
        batch_size: int | None = None,
        algorithm: str = "bfs",
    ):
        check_positive("batch_interval", batch_interval)
        check_positive("arrival_rate", arrival_rate)
        check_positive("n_ranks", n_ranks)
        if batch_size is not None:
            check_positive("batch_size", batch_size)
        if algorithm not in STATIC_ALGORITHMS:
            raise ValueError(
                f"unsupported algorithm {algorithm!r}; "
                f"known: {sorted(STATIC_ALGORITHMS)}"
            )
        self.batch_interval = float(batch_interval)
        self.arrival_rate = float(arrival_rate)
        self.n_ranks = int(n_ranks)
        self.cost = cost_model or CostModel()
        self.batch_size = batch_size
        self.algorithm = algorithm

    # ------------------------------------------------------------------
    def _batch_bounds(self, n_events: int) -> list[tuple[int, int]]:
        """Split event indices into batches by interval/size."""
        per_interval = int(self.arrival_rate * self.batch_interval)
        if self.batch_size is not None:
            per_interval = min(per_interval, self.batch_size)
        per_interval = max(per_interval, 1)
        bounds = []
        lo = 0
        while lo < n_events:
            hi = min(lo + per_interval, n_events)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def run(self, src: np.ndarray, dst: np.ndarray, source: int) -> BatchReport:
        """Replay the stream; returns the staleness/cost report.

        The per-batch compute cost is grounded in real executions: the
        CSR is actually rebuilt per batch and the static algorithm
        actually run, with virtual cost = measured ops x cost-model
        constants.
        """
        static_alg = STATIC_ALGORITHMS[self.algorithm]
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        n = len(src)
        if n == 0:
            return BatchReport(0, 0, 0.0, 0.0, 0.0, 0.0)
        arrival = np.arange(n, dtype=np.float64) / self.arrival_rate
        bounds = self._batch_bounds(n)

        compute_free_at = 0.0
        compute_total = 0.0
        completions = []
        staleness_sum = 0.0
        staleness_max = 0.0
        for lo, hi in bounds:
            close_time = arrival[hi - 1]
            # Rebuild the snapshot: the paper's drawback (i) — every
            # batch pays a full CSR rebuild over ALL edges so far.
            graph = CSRGraph.from_edges(src[:hi], dst[:hi], symmetrize=True)
            t_build = (
                graph.build_stats.num_stored_edges
                * self.cost.static_build_edge_cpu
                / self.n_ranks
            )
            _, ops = static_alg(graph, source)
            t_alg = self.cost.static_traversal_time(
                ops.vertex_visits, ops.edge_scans, self.n_ranks
            )
            start = max(close_time, compute_free_at)
            done = start + t_build + t_alg
            compute_free_at = done
            compute_total += t_build + t_alg
            completions.append(done)
            batch_staleness = done - arrival[lo:hi]
            staleness_sum += float(batch_staleness.sum())
            staleness_max = max(staleness_max, float(batch_staleness.max()))

        return BatchReport(
            n_events=n,
            n_batches=len(bounds),
            total_time=completions[-1] - float(arrival[0]),
            compute_time=compute_total,
            staleness_mean=staleness_sum / n,
            staleness_max=staleness_max,
            batch_completion_times=completions,
        )
