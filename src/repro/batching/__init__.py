"""The snapshot/batching baseline the paper argues against (§VI-A).

"Most of today's systems focus on analyzing individually built historic
snapshots" (§I) — this subpackage implements that pipeline honestly so
the continuous engine can be compared against it quantitatively:
events buffer into batches; each batch is applied to a stored graph;
a static algorithm recomputes the answer per batch; queries see the
last *completed* batch's answer.

The key metric is **staleness**: how old an event is by the time any
query can observe its effect.  For a batch pipeline that is bounded
below by the batching interval plus the recompute time; for the
continuous engine it is the trigger/propagation delay.
"""

from repro.batching.pipeline import BatchReport, SnapshotPipeline

__all__ = ["BatchReport", "SnapshotPipeline"]
