"""Incremental Multi S-T Connectivity — Algorithm 7 of the paper.

From each source vertex S_i "a flow outwards is established, and any
vertex T can identify if they are connected to the source".  The
monotonically evolving state is the *set* of sources a vertex can
currently reach, represented as a bitmap ("the same argument can be
extended to multi S-T connectivity by using a bitmap", §II-B) — here an
arbitrary-precision Python int, one bit per registered source.

The update step is Alg. 7's four-way set comparison: equal → nothing;
superset → notify back; subset → adopt & broadcast; mixed → union &
broadcast (which eventually exchanges the sets between the two sides).

Sources are registered with :meth:`register_source`, which assigns the
bit; the engine's ``init_program`` then delivers the bit to the source
vertex as the ``init()`` payload — initiation can happen at any time,
before, during, or after construction.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import union_merge
from repro.runtime.program import VertexContext, VertexProgram


class MultiSTConnectivity(VertexProgram):
    """Maintains, per vertex, the bitset of sources it can reach.

    Usage::

        st = MultiSTConnectivity()
        engine = DynamicEngine([st], ...)
        for s in sources:
            engine.init_program("st", s, payload=st.register_source(s))
        ...
        st.is_connected(engine.value_of("st", t), s)
    """

    name = "st"
    snapshot_mode = "merge"
    # §II-D: queued reachability bitmaps from the same sender squash to
    # their union (the set only ever grows).
    combine = staticmethod(union_merge)

    def __init__(self) -> None:
        # Configuration (read-only during execution): source -> bit index.
        self.source_bits: dict[int, int] = {}

    # -- source registry (configuration, not per-vertex state) ----------
    def register_source(self, vertex: int) -> int:
        """Assign (or return) the bit index for a source vertex; the
        returned value is the ``init()`` payload."""
        if vertex not in self.source_bits:
            self.source_bits[vertex] = len(self.source_bits)
        return self.source_bits[vertex]

    def bit_of(self, source_vertex: int) -> int:
        return self.source_bits[source_vertex]

    def is_connected(self, value: int, source_vertex: int) -> bool:
        """Does a vertex value indicate connectivity to ``source_vertex``?"""
        return bool(value >> self.source_bits[source_vertex] & 1)

    def sources_in(self, value: int) -> list[int]:
        """Decode a vertex value into the list of reachable sources."""
        return [s for s, b in self.source_bits.items() if value >> b & 1]

    # -- callbacks (Alg. 7) ---------------------------------------------
    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        # Begin a source from this vertex: value := value ∪ {self}.
        bit = 1 << int(payload)
        new_value = ctx.value | bit
        ctx.set_value(new_value)
        ctx.update_nbrs(new_value)

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        # Do nothing but wait.
        pass

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        # The logic is the same as the update step.
        self.on_update(ctx, vis_id, vis_val, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        value = ctx.value
        union = value | vis_val
        if value == vis_val:
            pass  # do nothing
        elif union == value:
            # Our set is a pure SUPERset of theirs: notify back
            # (undirected only — flow cannot traverse a directed edge
            # backwards).
            if ctx.undirected:
                ctx.update_single_nbr(vis_id, value, weight)
        else:
            # Pure subset or a mix: apply their set, send to all
            # neighbours (Alg. 7 treats both branches identically).
            ctx.set_value(union)
            ctx.update_nbrs(union)

    def merge(self, a: int, b: int) -> int:
        return union_merge(a, b)

    def format_value(self, value: Any) -> str:
        return f"sources:{{{','.join(map(str, self.sources_in(value)))}}}"
