"""Incremental Widest Path — a fifth REMO algorithm beyond the paper.

The paper closes §V noting its event rates leave "significant room to
add complexity to algorithms"; this program demonstrates that the REMO
recipe (§II-B) extends beyond the four presented algorithms to any
monotone semiring.  Widest path (a.k.a. bottleneck or max-min path):
the value of a vertex is the best achievable *minimum edge weight*
along any path from the source — the bandwidth of the widest route.

REMO fit:

* **Recursive update**: a vertex learning capacity ``c`` over an edge
  of weight ``w`` offers its neighbours ``min(c, w)``.
* **Monotone convergence**: under edge additions (and weight
  *increases*), a vertex's capacity only ever grows, bounded above by
  the maximum edge weight — a convex solution space mirroring S-T
  connectivity's, with ``max`` as the merge.

Value conventions: 0 = untouched (engine default); the source holds
``CAP_INF`` (unbounded self-capacity); any other vertex holds its
current best bottleneck capacity (0 also serves as "no path yet",
which is safe because real capacities are >= 1).
"""

from __future__ import annotations

from typing import Any

from repro.runtime.program import VertexContext, VertexProgram

CAP_INF = 1 << 62  # the source's own capacity (no bottleneck to itself)


class WidestPath(VertexProgram):
    """Maintains live bottleneck capacities from an ``init()`` source.

    After quiescence, ``value_of(v)`` is the maximum over all
    source->v paths of the minimum edge weight on the path (CAP_INF at
    the source itself, 0 if unreachable).
    """

    name = "widest"
    snapshot_mode = "merge"
    # §II-D: queued capacities from the same sender squash to the wider
    # one (capacities only grow; 0 = "no path yet" loses to any).
    combine = staticmethod(max)

    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        ctx.set_value(CAP_INF)
        ctx.update_nbrs(CAP_INF)

    # on_add: nothing to do — 0 already means "no capacity yet".

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self.on_update(ctx, vis_id, vis_val, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        value = ctx.value
        offered = min(vis_val, weight)  # capacity through this edge
        if offered > value:
            # Wider route found: adopt and recursively propagate.
            ctx.set_value(offered)
            ctx.update_nbrs(offered)
        elif ctx.undirected and min(value, weight) > vis_val:
            # We can widen the sender's route: notify back.
            ctx.update_single_nbr(vis_id, value, weight)

    def merge(self, a: int, b: int) -> int:
        return a if a > b else b

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unreached"
        if value >= CAP_INF:
            return "source"
        return f"capacity {value}"


def static_widest_path(graph, source: int) -> dict[int, int]:
    """Static oracle: max-min Dijkstra on a CSR graph.

    Returns {original vertex id: capacity}, with the source at CAP_INF;
    unreachable vertices are absent.
    """
    import heapq

    import numpy as np

    if not graph.has_vertex(source):
        return {source: CAP_INF}
    n = graph.num_vertices
    cap = np.zeros(n, dtype=np.int64)
    s = graph.dense_index(source)
    cap[s] = CAP_INF
    heap = [(-CAP_INF, s)]
    offsets, targets, weights = graph.offsets, graph.targets, graph.weights
    while heap:
        neg, v = heapq.heappop(heap)
        c = -neg
        if c < cap[v]:
            continue
        for idx in range(offsets[v], offsets[v + 1]):
            t = targets[idx]
            nc = min(c, int(weights[idx]))
            if nc > cap[t]:
                cap[t] = nc
                heapq.heappush(heap, (-nc, int(t)))
    return {
        int(graph.vertex_ids[v]): int(cap[v]) for v in np.nonzero(cap)[0]
    }
