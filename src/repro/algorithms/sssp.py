"""Incremental Single Source Shortest Path — Algorithm 5 of the paper.

"SSSP is similar to BFS, and unsurprisingly, uses almost identical
code": the level comparison becomes a weighted-cost comparison, and the
propagated candidate is ``vis_val + weight`` instead of ``vis_val + 1``.
The execution path, however, is far more data-dependent: edge weights
reshape the traversal pattern entirely (§IV.2), which is why the paper
benchmarks SSSP separately.

Monotonicity holds when edge-weight *updates* only decrease weights
(§II-B); the engine models a weight update as a re-add with the new
weight, so streams built with
:func:`repro.generators.weights.decreasing_reweights` stay convex.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import INF, min_monotone_merge
from repro.kernels.frontier import MinPlusKernel
from repro.runtime.program import VertexContext, VertexProgram


class IncrementalSSSP(VertexProgram):
    """Maintains live shortest-path costs from an ``init()`` source.

    The source has cost 1 (the paper's ``init: this.value = 1``); a
    vertex's value is ``1 + (min total edge weight from the source)``.
    0 = never seen, INF = unreached.
    """

    name = "sssp"
    snapshot_mode = "merge"
    # §II-D: queued path costs from the same sender squash to the
    # cheaper one; 0 stays the "unset" identity.
    combine = staticmethod(min_monotone_merge)
    # Bulk-ingest fast path: costs relax as min(cost, nbr + weight).
    bulk_kernel = MinPlusKernel(unit_weight=False)

    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        ctx.set_value(1)
        ctx.update_nbrs(1)

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        # If we are a new vertex, ensure cost is inf.
        if ctx.value == 0:
            ctx.set_value(INF)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        if ctx.value == 0:
            ctx.set_value(INF)
        # The rest of the logic is the same as the update step.
        self.on_update(ctx, vis_id, vis_val, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        value = ctx.value
        if value == 0:
            value = INF
            ctx.set_value(INF)
        if vis_val == 0:
            vis_val = INF
        if value < vis_val - weight:
            # We have a lower cost: notify back the visitor (undirected
            # only — the reverse traversal does not exist otherwise).
            if ctx.undirected:
                ctx.update_single_nbr(vis_id, value, weight)
        elif value > vis_val + weight:
            # They have a lower cost: adopt, send our new cost to all.
            new_cost = vis_val + weight
            ctx.set_value(new_cost)
            ctx.update_nbrs(new_cost)

    def merge(self, a: int, b: int) -> int:
        return min_monotone_merge(a, b)

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unseen"
        if value >= INF:
            return "inf"
        return str(value)
