"""BFS with a deterministic parent tree — the §II-D determinism clause.

Plain incremental BFS converges to deterministic *levels*, but the BFS
*tree* (who is whose parent) depends on message order when several
neighbours offer the same level.  §II-D: "if the parents are of equal
state, and the algorithm designer wishes for a deterministic BFS tree,
they need only define a second clause to discriminate between the two
potential parents (similar to static algorithms, such as choosing the
parent with the lowest vertex ID).  With this clause, the global state
at a specific time will become completely deterministic."

This program implements exactly that: the vertex value is the pair
``(level, parent)`` ordered lexicographically (level first, then parent
ID), which remains convex-monotone — the pair only ever decreases — so
all REMO machinery (asynchrony tolerance, versioned snapshots via
``merge``) applies unchanged.  The source's parent is ``SELF_PARENT``.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import INF
from repro.runtime.program import VertexContext, VertexProgram

SELF_PARENT = -2
UNKNOWN_PARENT = -1
_UNSET = (INF, UNKNOWN_PARENT)


class DeterministicBFS(VertexProgram):
    """Maintains ``(level, parent)`` with lowest-ID parent tie-breaking.

    The final state is a single deterministic BFS tree for any event
    interleaving: level = hop distance + 1 (source = 1), parent = the
    minimum-ID neighbour at level - 1.
    """

    name = "det-bfs"
    snapshot_mode = "merge"

    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        # Update payloads always carry the sender's own (level, parent)
        # value; receivers derive the candidate from the carrying edge.
        ctx.set_value((1, SELF_PARENT))
        ctx.update_nbrs((1, SELF_PARENT))

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        if ctx.value == 0:
            ctx.set_value(_UNSET)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        if ctx.value == 0:
            ctx.set_value(_UNSET)
        self.on_update(ctx, vis_id, vis_val, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        value = ctx.value
        if value == 0:
            value = _UNSET
            ctx.set_value(value)
        level, parent = value
        if vis_val == 0:
            nbr_level, nbr_parent = INF, UNKNOWN_PARENT
        else:
            nbr_level, nbr_parent = vis_val
        # Candidate offered by this neighbour: one hop below it, with
        # the neighbour as parent; tie-break on the smaller parent ID.
        candidate = (nbr_level + 1, vis_id) if nbr_level < INF else _UNSET
        if candidate < (level, parent):
            ctx.set_value(candidate)
            ctx.update_nbrs(candidate)
        elif (
            ctx.undirected
            and level < INF
            and (level + 1, ctx.vertex) < (nbr_level, nbr_parent)
        ):
            # We can improve the sender — on level, or on the parent
            # tie-break at equal level: notify back.
            ctx.update_single_nbr(vis_id, (level, parent), weight)

    def merge(self, a: Any, b: Any) -> Any:
        if a == 0:
            return b
        if b == 0:
            return a
        return min(a, b)

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unseen"
        level, parent = value
        if level >= INF:
            return "inf"
        p = "source" if parent == SELF_PARENT else str(parent)
        return f"level {level} via {p}"
