"""Shared constants and helpers for the REMO algorithm suite.

The value conventions follow the paper's pseudocode exactly:

* ``0`` — the engine default for a vertex no callback has written;
  Algs. 4-6 test ``value == 0`` to detect "we are a new vertex".
* ``INF`` — "MAX_INTEGER" in the pseudocode; we use ``2**62`` so that
  ``INF + weight`` never overflows int64 reasoning in tests, while
  still comparing greater than any reachable level/cost.
"""

from __future__ import annotations

INF = 1 << 62


def min_monotone_merge(a: int, b: int) -> int:
    """Monotone combine for min-converging state (BFS/SSSP levels).

    0 is the 'unset' sentinel, *not* a small value — unset loses to
    anything set.
    """
    if a == 0:
        return b
    if b == 0:
        return a
    return a if a < b else b


def max_monotone_merge(a: int, b: int) -> int:
    """Monotone combine for max-converging state (CC labels)."""
    return a if a > b else b


def union_merge(a: int, b: int) -> int:
    """Monotone combine for bitset state (multi S-T connectivity)."""
    return a | b
