"""Incremental Breadth First Search — Algorithm 4 of the paper.

Monotonically evolving state: the vertex's BFS level (minimum hops from
the source, counting the source as level 1, per the paper's
``init: this.value = 1``).  Levels only ever decrease; an edge addition
falls into the three cases of §II-B and the recursive update event
repairs the tree only where a shorter path appeared.

The update callback is a line-for-line transcription of Alg. 4,
including the "notify back the visitor" branch: when the visited vertex
turns out to be *closer* to the source than the sender implied, it
replies with its own level so the sender can improve — this is what
makes a single undirected edge event repair both directions.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import INF, min_monotone_merge
from repro.kernels.frontier import MinPlusKernel
from repro.runtime.program import VertexContext, VertexProgram


class IncrementalBFS(VertexProgram):
    """Maintains live BFS levels from a source chosen via ``init()``.

    Usage::

        bfs = IncrementalBFS()
        engine = DynamicEngine([bfs], EngineConfig(n_ranks=4))
        engine.init_program("bfs", source_vertex)
        engine.attach_streams(streams)
        engine.run()
        engine.value_of("bfs", v)   # 0 = never seen, INF = unreached
    """

    name = "bfs"
    snapshot_mode = "merge"
    # §II-D: two queued levels from the same sender squash to the better
    # (smaller) one; 0 stays the "unset" identity.
    combine = staticmethod(min_monotone_merge)
    # Bulk-ingest fast path: levels relax as min(level, nbr + 1).
    bulk_kernel = MinPlusKernel(unit_weight=True)

    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        # Begin traversal from this vertex.
        ctx.set_value(1)
        ctx.update_nbrs(1)

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        # If we are a new vertex, ensure level is inf.
        if ctx.value == 0:
            ctx.set_value(INF)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        if ctx.value == 0:
            ctx.set_value(INF)
        # The rest of the logic is the same as the update step.
        self.on_update(ctx, vis_id, vis_val, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        value = ctx.value
        if value == 0:
            # Defensive init (an update can only arrive over an existing
            # edge, so this is unreachable in practice; keep parity with
            # the pseudocode's invariant anyway).
            value = INF
            ctx.set_value(INF)
        if vis_val == 0:
            vis_val = INF  # sender was brand new; treat as unreached
        if value < vis_val - 1:
            # We are closer: notify back the visitor so it can improve.
            # (Undirected only — over a directed edge the sender cannot
            # traverse back through us.)
            if ctx.undirected:
                ctx.update_single_nbr(vis_id, value, weight)
        elif value > vis_val + 1:
            # They are closer: adopt and recursively propagate.
            new_level = vis_val + 1
            ctx.set_value(new_level)
            ctx.update_nbrs(new_level)

    def merge(self, a: int, b: int) -> int:
        return min_monotone_merge(a, b)

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unseen"
        if value >= INF:
            return "inf"
        return str(value)
