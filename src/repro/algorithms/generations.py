"""Decremental support via state generations — the §VI-B extension.

The paper outlines (but does not implement) a strategy for handling
edge *deletes* without stopping the world: when an algorithmic action
would break monotonicity (a delete raising a BFS distance), the affected
state moves into a **new generation**, "a convex space lower than all
possible other states within the current generation" — so the combined
(generation, value) state stays monotone and the REMO machinery keeps
working.  This module implements that outline concretely:

* :class:`GenerationalBFS` / :class:`GenerationalSSSP` — distance
  programs using an **epoch-restart protocol**: when a vertex loses the
  edge supporting its distance (its parent edge), it starts a fresh
  *epoch* — a totally-ordered generation tag ``(counter, initiator)`` —
  and floods it through its component.  Every vertex entering the epoch
  resets (source back to 1, everyone else to INF) and ordinary REMO
  relaxation recomputes distances *within* the epoch.  Values are only
  ever trusted between same-epoch vertices; lower-epoch messages are
  answered with a pull-up, higher-epoch messages trigger adoption.
  This is what makes the asynchronous version safe: naive
  invalidate-and-repair suffers the classic distance-vector
  count-to-infinity livelock (stale finite values circulating a cycle
  revive each other forever — we hit exactly this under randomized
  testing); epoch stamping makes stale revival impossible, and
  termination follows from (a) epoch adoption being monotone in a
  finite epoch set (one per support-breaking delete), and (b) plain
  monotone convergence inside each epoch.
* :class:`GenerationalCC` — component labels cannot be repaired
  downward when a component splits, so a delete **reseeds** the whole
  affected component into a new generation (each vertex resets to its
  own hash) and re-runs max-label propagation within it — the paper's
  "worst case ... rewriting of data at this magnitude" made explicit,
  and still fully asynchronous and concurrent with ongoing adds.

Value encodings (engine default 0 = never touched):

* distance programs: ``(epoch, distance, parent)``; ``epoch`` is the
  ``(counter, initiator_vertex)`` tuple (initially ``(0, 0)``); the
  source has parent ``SELF``; INF distance = unreached.
* CC: ``(generation, label)``.

Update payloads are tagged tuples: ``("U", epoch, dist)`` relaxation,
``("R", epoch_or_gen)`` restart/reseed flood, ``("L", gen, label)``
label merge.  REVERSE_ADD hands the raw neighbour state to the
callback, which normalises it.

These programs do not support *versioned* snapshot collection (deletes
plus version splitting compose poorly; the paper does not attempt it
either) — use quiescence collection.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import INF
from repro.algorithms.cc import component_label
from repro.runtime.program import VertexContext, VertexProgram

SELF = -2  # parent sentinel: this vertex is the query source
NO_PARENT = -1
EPOCH0 = (0, 0)  # the epoch every vertex is born into


class _GenerationalDistance(VertexProgram):
    """Shared epoch-restart machinery for generational BFS and SSSP.

    Subclasses define :meth:`hop_cost` (1 for BFS, the edge weight for
    SSSP).  State: ``(epoch, dist, parent)``.
    """

    snapshot_mode = "replay"

    def hop_cost(self, weight: int) -> int:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _ensure(ctx: VertexContext) -> tuple[tuple[int, int], int, int]:
        value = ctx.value
        if value == 0:
            value = (EPOCH0, INF, NO_PARENT)
            ctx.set_value(value)
        return value

    @staticmethod
    def _as_update(vis_val: Any) -> tuple[tuple[int, int], int]:
        """Normalise a REVERSE_ADD raw neighbour value to (epoch, dist)."""
        if vis_val == 0:
            return (EPOCH0, INF)
        epoch, dist, _parent = vis_val
        return (epoch, dist)

    def _adopt_epoch(self, ctx: VertexContext, epoch: tuple[int, int]) -> None:
        """Enter a strictly newer epoch: reset and flood it onward.

        The reset is the §VI-B move: the new (epoch, value) pair sits
        below every possible state of the old epoch, so monotonicity of
        the combined state is preserved even though the raw distance
        rose.
        """
        _e, _dist, parent = ctx.value
        if parent == SELF:
            ctx.set_value((epoch, 1, SELF))
            ctx.update_nbrs(("R", epoch))
            ctx.update_nbrs(("U", epoch, 1))
        else:
            ctx.set_value((epoch, INF, NO_PARENT))
            ctx.update_nbrs(("R", epoch))

    def _restart(self, ctx: VertexContext) -> None:
        """Begin a fresh epoch at this vertex (support-breaking delete)."""
        (counter, _init), _dist, _parent = ctx.value
        self._adopt_epoch(ctx, (counter + 1, ctx.vertex))

    # -- callbacks --------------------------------------------------------
    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        epoch, _dist, _parent = self._ensure(ctx)
        ctx.set_value((epoch, 1, SELF))
        ctx.update_nbrs(("U", epoch, 1))

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._ensure(ctx)
        epoch_n, dist_n = self._as_update(vis_val)
        self._on_value(ctx, vis_id, epoch_n, dist_n, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)
        if not ctx.has_edge(vis_id):
            # In-flight event over an edge deleted in the meantime:
            # using it would smuggle distance through a path that no
            # longer exists.
            return
        kind = vis_val[0]
        if kind == "U":
            _, epoch_n, dist_n = vis_val
            self._on_value(ctx, vis_id, epoch_n, dist_n, weight)
        elif kind == "R":
            _, epoch_n = vis_val
            self._on_restart_flood(ctx, vis_id, epoch_n, weight)
        else:  # pragma: no cover - corrupted payload
            raise ValueError(f"unknown generational payload {vis_val!r}")

    def on_delete(self, ctx: VertexContext, vis_id: int, weight: int) -> None:
        self._handle_edge_removal(ctx, vis_id)

    def on_reverse_delete(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._handle_edge_removal(ctx, vis_id)

    # -- core logic --------------------------------------------------------
    def _on_value(
        self,
        ctx: VertexContext,
        nbr: int,
        epoch_n: tuple[int, int],
        dist_n: int,
        weight: int,
    ) -> None:
        epoch, _dist, _parent = ctx.value
        if epoch_n < epoch:
            # Stale sender: pull it up into our epoch.
            ctx.update_single_nbr(nbr, ("R", epoch), weight)
            return
        if epoch_n > epoch:
            self._adopt_epoch(ctx, epoch_n)
        self._relax(ctx, nbr, dist_n, weight)

    def _on_restart_flood(
        self, ctx: VertexContext, nbr: int, epoch_n: tuple[int, int], weight: int
    ) -> None:
        epoch, dist, _parent = ctx.value
        if epoch_n < epoch:
            ctx.update_single_nbr(nbr, ("R", epoch), weight)
            return
        if epoch_n > epoch:
            self._adopt_epoch(ctx, epoch_n)
            return
        # Same epoch: the sender just reset; offer our distance if we
        # have one (it may have missed our earlier broadcast).
        if dist < INF:
            ctx.update_single_nbr(nbr, ("U", epoch, dist), weight)

    def _relax(self, ctx: VertexContext, nbr: int, dist_n: int, weight: int) -> None:
        epoch, dist, parent = ctx.value
        step = self.hop_cost(weight)
        candidate = dist_n + step if dist_n < INF else INF
        if candidate < dist:
            ctx.set_value((epoch, candidate, nbr))
            ctx.update_nbrs(("U", epoch, candidate))
        elif dist < INF and dist + step < dist_n:
            # We are the better side: notify back the visitor.
            ctx.update_single_nbr(nbr, ("U", epoch, dist), weight)

    def _handle_edge_removal(self, ctx: VertexContext, nbr: int) -> None:
        value = ctx.value
        if value == 0:
            return
        _epoch, _dist, parent = value
        if parent == nbr:
            # The deleted edge supported our distance: restart the
            # component in a fresh epoch.
            self._restart(ctx)

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unseen"
        (counter, initiator), dist, _ = value
        return f"e{counter}.{initiator}:{'inf' if dist >= INF else dist}"


class GenerationalBFS(_GenerationalDistance):
    """BFS levels with edge-delete support (state generations)."""

    name = "gen-bfs"

    def hop_cost(self, weight: int) -> int:
        return 1


class GenerationalSSSP(_GenerationalDistance):
    """Shortest-path costs with edge-delete support (state generations)."""

    name = "gen-sssp"

    def hop_cost(self, weight: int) -> int:
        return weight


class GenerationalCC(VertexProgram):
    """Connected components with edge-delete support.

    A delete reseeds the affected component into a new generation (every
    member resets its label to its own hash) and re-runs max-label
    propagation — asynchronously, concurrently with ongoing adds.
    State: ``(gen, label)``.
    """

    name = "gen-cc"
    snapshot_mode = "replay"

    @staticmethod
    def _ensure(ctx: VertexContext) -> tuple[int, int]:
        value = ctx.value
        if value == 0:
            value = (0, component_label(ctx.vertex))
            ctx.set_value(value)
        return value

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._ensure(ctx)
        if vis_val == 0:
            gen_n, label_n = 0, component_label(vis_id)
        else:
            gen_n, label_n = vis_val
        self._merge_label(ctx, vis_id, gen_n, label_n, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)
        if not ctx.has_edge(vis_id):
            # Event over a since-deleted edge: a label crossing it would
            # leak the old component's identity across the split.
            return
        kind = vis_val[0]
        if kind == "R":
            _, gen_n = vis_val
            self._on_reseed(ctx, vis_id, gen_n, weight)
        elif kind == "L":
            _, gen_n, label_n = vis_val
            self._merge_label(ctx, vis_id, gen_n, label_n, weight)
        else:  # pragma: no cover - corrupted payload
            raise ValueError(f"unknown generational payload {vis_val!r}")

    def on_delete(self, ctx: VertexContext, vis_id: int, weight: int) -> None:
        self._reseed_component(ctx)

    def on_reverse_delete(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._reseed_component(ctx)

    # -- core logic --------------------------------------------------------
    def _reseed_component(self, ctx: VertexContext) -> None:
        value = ctx.value
        if value == 0:
            return
        gen, _label = value
        new_gen = gen + 1
        ctx.set_value((new_gen, component_label(ctx.vertex)))
        ctx.update_nbrs(("R", new_gen))

    def _on_reseed(self, ctx: VertexContext, nbr: int, gen_n: int, weight: int) -> None:
        gen, label = ctx.value
        if gen_n > gen:
            # Join the new generation: reset to our own hash and flood.
            gen, label = gen_n, component_label(ctx.vertex)
            ctx.set_value((gen, label))
            ctx.update_nbrs(("R", gen_n))
            # Exchange labels with the reseeding neighbour right away.
            ctx.update_single_nbr(nbr, ("L", gen, label), weight)
        elif gen_n == gen:
            ctx.update_single_nbr(nbr, ("L", gen, label), weight)
        else:
            # The sender's wave is stale: pull it up to our generation.
            ctx.update_single_nbr(nbr, ("R", gen), weight)

    def _merge_label(
        self, ctx: VertexContext, nbr: int, gen_n: int, label_n: int, weight: int
    ) -> None:
        gen, label = ctx.value
        if gen_n > gen:
            # Implicit reseed (the label raced ahead of the R-flood).
            gen, label = gen_n, component_label(ctx.vertex)
            ctx.set_value((gen, label))
            ctx.update_nbrs(("R", gen_n))
        elif gen_n < gen:
            # They are stale; bring them into our generation.
            ctx.update_single_nbr(nbr, ("R", gen), weight)
            return
        if label_n > label:
            ctx.set_value((gen, label_n))
            ctx.update_nbrs(("L", gen, label_n))
        elif label_n < label:
            ctx.update_single_nbr(nbr, ("L", gen, label), weight)

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unseen"
        gen, label = value
        return f"g{gen}:comp:{label:016x}"
