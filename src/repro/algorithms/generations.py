"""Decremental support via state generations — the §VI-B extension.

The paper outlines (but does not implement) a strategy for handling
edge *deletes* without stopping the world: when an algorithmic action
would break monotonicity (a delete raising a BFS distance), the affected
state moves into a **new generation**, "a convex space lower than all
possible other states within the current generation" — so the combined
(generation, value) state stays monotone and the REMO machinery keeps
working.  This module implements that outline concretely:

* :class:`GenerationalBFS` / :class:`GenerationalSSSP` — distance
  programs using an **epoch-restart protocol**: when a vertex loses the
  edge supporting its distance (its parent edge), it starts a fresh
  *epoch* — a totally-ordered generation tag ``(counter, initiator)`` —
  and floods it through its component.  Every vertex entering the epoch
  resets (source back to 1, everyone else to INF) and ordinary REMO
  relaxation recomputes distances *within* the epoch.  Values are only
  ever trusted between same-epoch vertices; lower-epoch messages are
  answered with a pull-up, higher-epoch messages trigger adoption.
  This is what makes the asynchronous version safe: naive
  invalidate-and-repair suffers the classic distance-vector
  count-to-infinity livelock (stale finite values circulating a cycle
  revive each other forever — we hit exactly this under randomized
  testing); epoch stamping makes stale revival impossible, and
  termination follows from (a) epoch adoption being monotone in a
  finite epoch set (one per support-breaking delete), and (b) plain
  monotone convergence inside each epoch.
* :class:`GenerationalCC` — component labels cannot be repaired
  downward when a component splits, so a delete **reseeds** the whole
  affected component into a new generation (each vertex resets to its
  own hash) and re-runs max-label propagation within it — the paper's
  "worst case ... rewriting of data at this magnitude" made explicit,
  and still fully asynchronous and concurrent with ongoing adds.
* :class:`GenerationalST` — multi S-T reachability bitmaps are unions,
  so, like labels, they cannot shrink in place: a delete reseeds the
  component and every member resets its bitmap to the bits it holds *by
  right* (the bits of the sources registered at that very vertex), then
  Alg.-7 union propagation reruns within the generation.
* :class:`GenerationalWidest` — bottleneck capacities are max-min
  distances, so the epoch-restart protocol applies unchanged with the
  relaxation flipped (``min(cap, weight)`` offers, ``max`` adoption);
  the supporting last hop is tracked as the parent exactly as in the
  distance programs.

Value encodings (engine default 0 = never touched):

* distance programs: ``(epoch, distance, parent)``; ``epoch`` is the
  ``(counter, initiator_vertex)`` tuple (initially ``(0, 0)``); the
  source has parent ``SELF``; INF distance = unreached.
* CC: ``(generation, label)``.
* S-T: ``(generation, mask)``.
* widest: ``(epoch, capacity, parent)``; capacity 0 = unreached, the
  source holds ``CAP_INF``.

Update payloads are tagged tuples: ``("U", epoch, dist_or_cap)``
relaxation, ``("R", epoch_or_gen)`` restart/reseed flood,
``("L", gen, label)`` label merge, ``("M", gen, mask)`` mask merge.
REVERSE_ADD hands the raw neighbour state to the callback, which
normalises it.

These programs do not support *versioned* snapshot collection (deletes
plus version splitting compose poorly; the paper does not attempt it
either) — use quiescence collection.  They declare it machine-readably
via ``supports_versioned_collection = False``, which makes
``DynamicEngine.request_collection`` raise
:class:`~repro.runtime.engine.UnsupportedCollectionError` instead of
harvesting a silently wrong cut.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import INF
from repro.algorithms.cc import component_label
from repro.algorithms.widest_path import CAP_INF
from repro.runtime.program import VertexContext, VertexProgram

SELF = -2  # parent sentinel: this vertex is the query source
NO_PARENT = -1
EPOCH0 = (0, 0)  # the epoch every vertex is born into


class _GenerationalDistance(VertexProgram):
    """Shared epoch-restart machinery for generational BFS and SSSP.

    Subclasses define :meth:`hop_cost` (1 for BFS, the edge weight for
    SSSP).  State: ``(epoch, dist, parent)``.
    """

    snapshot_mode = "replay"
    supports_versioned_collection = False

    def hop_cost(self, weight: int) -> int:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _ensure(ctx: VertexContext) -> tuple[tuple[int, int], int, int]:
        value = ctx.value
        if value == 0:
            value = (EPOCH0, INF, NO_PARENT)
            ctx.set_value(value)
        return value

    @staticmethod
    def _as_update(vis_val: Any) -> tuple[tuple[int, int], int]:
        """Normalise a REVERSE_ADD raw neighbour value to (epoch, dist)."""
        if vis_val == 0:
            return (EPOCH0, INF)
        epoch, dist, _parent = vis_val
        return (epoch, dist)

    def _adopt_epoch(self, ctx: VertexContext, epoch: tuple[int, int]) -> None:
        """Enter a strictly newer epoch: reset and flood it onward.

        The reset is the §VI-B move: the new (epoch, value) pair sits
        below every possible state of the old epoch, so monotonicity of
        the combined state is preserved even though the raw distance
        rose.
        """
        _e, _dist, parent = ctx.value
        if parent == SELF:
            ctx.set_value((epoch, 1, SELF))
            ctx.update_nbrs(("R", epoch))
            ctx.update_nbrs(("U", epoch, 1))
        else:
            ctx.set_value((epoch, INF, NO_PARENT))
            ctx.update_nbrs(("R", epoch))

    def _restart(self, ctx: VertexContext) -> None:
        """Begin a fresh epoch at this vertex (support-breaking delete)."""
        (counter, _init), _dist, _parent = ctx.value
        self._adopt_epoch(ctx, (counter + 1, ctx.vertex))

    # -- callbacks --------------------------------------------------------
    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        epoch, _dist, _parent = self._ensure(ctx)
        ctx.set_value((epoch, 1, SELF))
        ctx.update_nbrs(("U", epoch, 1))

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._ensure(ctx)
        epoch_n, dist_n = self._as_update(vis_val)
        self._on_value(ctx, vis_id, epoch_n, dist_n, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)
        if not ctx.has_edge(vis_id):
            # In-flight event over an edge deleted in the meantime:
            # using it would smuggle distance through a path that no
            # longer exists.
            return
        kind = vis_val[0]
        if kind == "U":
            _, epoch_n, dist_n = vis_val
            self._on_value(ctx, vis_id, epoch_n, dist_n, weight)
        elif kind == "R":
            _, epoch_n = vis_val
            self._on_restart_flood(ctx, vis_id, epoch_n, weight)
        else:  # pragma: no cover - corrupted payload
            raise ValueError(f"unknown generational payload {vis_val!r}")

    def on_delete(self, ctx: VertexContext, vis_id: int, weight: int) -> None:
        self._handle_edge_removal(ctx, vis_id)

    def on_reverse_delete(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._handle_edge_removal(ctx, vis_id)

    # -- core logic --------------------------------------------------------
    def _on_value(
        self,
        ctx: VertexContext,
        nbr: int,
        epoch_n: tuple[int, int],
        dist_n: int,
        weight: int,
    ) -> None:
        epoch, _dist, _parent = ctx.value
        if epoch_n < epoch:
            # Stale sender: pull it up into our epoch.
            ctx.update_single_nbr(nbr, ("R", epoch), weight)
            return
        if epoch_n > epoch:
            self._adopt_epoch(ctx, epoch_n)
        self._relax(ctx, nbr, dist_n, weight)

    def _on_restart_flood(
        self, ctx: VertexContext, nbr: int, epoch_n: tuple[int, int], weight: int
    ) -> None:
        epoch, dist, _parent = ctx.value
        if epoch_n < epoch:
            ctx.update_single_nbr(nbr, ("R", epoch), weight)
            return
        if epoch_n > epoch:
            self._adopt_epoch(ctx, epoch_n)
            return
        # Same epoch: the sender just reset; offer our distance if we
        # have one (it may have missed our earlier broadcast).
        if dist < INF:
            ctx.update_single_nbr(nbr, ("U", epoch, dist), weight)

    def _relax(self, ctx: VertexContext, nbr: int, dist_n: int, weight: int) -> None:
        epoch, dist, parent = ctx.value
        step = self.hop_cost(weight)
        candidate = dist_n + step if dist_n < INF else INF
        if candidate < dist:
            ctx.set_value((epoch, candidate, nbr))
            ctx.update_nbrs(("U", epoch, candidate))
        elif dist < INF and dist + step < dist_n:
            # We are the better side: notify back the visitor.
            ctx.update_single_nbr(nbr, ("U", epoch, dist), weight)

    def _handle_edge_removal(self, ctx: VertexContext, nbr: int) -> None:
        value = ctx.value
        if value == 0:
            return
        _epoch, _dist, parent = value
        if parent == nbr:
            # The deleted edge supported our distance: restart the
            # component in a fresh epoch.
            self._restart(ctx)

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unseen"
        (counter, initiator), dist, _ = value
        return f"e{counter}.{initiator}:{'inf' if dist >= INF else dist}"


class GenerationalBFS(_GenerationalDistance):
    """BFS levels with edge-delete support (state generations)."""

    name = "gen-bfs"

    def hop_cost(self, weight: int) -> int:
        return 1


class GenerationalSSSP(_GenerationalDistance):
    """Shortest-path costs with edge-delete support (state generations)."""

    name = "gen-sssp"

    def hop_cost(self, weight: int) -> int:
        return weight


class GenerationalCC(VertexProgram):
    """Connected components with edge-delete support.

    A delete reseeds the affected component into a new generation (every
    member resets its label to its own hash) and re-runs max-label
    propagation — asynchronously, concurrently with ongoing adds.
    State: ``(gen, label)``.
    """

    name = "gen-cc"
    snapshot_mode = "replay"
    supports_versioned_collection = False

    @staticmethod
    def _ensure(ctx: VertexContext) -> tuple[int, int]:
        value = ctx.value
        if value == 0:
            value = (0, component_label(ctx.vertex))
            ctx.set_value(value)
        return value

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._ensure(ctx)
        if vis_val == 0:
            gen_n, label_n = 0, component_label(vis_id)
        else:
            gen_n, label_n = vis_val
        self._merge_label(ctx, vis_id, gen_n, label_n, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)
        if not ctx.has_edge(vis_id):
            # Event over a since-deleted edge: a label crossing it would
            # leak the old component's identity across the split.
            return
        kind = vis_val[0]
        if kind == "R":
            _, gen_n = vis_val
            self._on_reseed(ctx, vis_id, gen_n, weight)
        elif kind == "L":
            _, gen_n, label_n = vis_val
            self._merge_label(ctx, vis_id, gen_n, label_n, weight)
        else:  # pragma: no cover - corrupted payload
            raise ValueError(f"unknown generational payload {vis_val!r}")

    def on_delete(self, ctx: VertexContext, vis_id: int, weight: int) -> None:
        self._reseed_component(ctx)

    def on_reverse_delete(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._reseed_component(ctx)

    # -- core logic --------------------------------------------------------
    def _reseed_component(self, ctx: VertexContext) -> None:
        value = ctx.value
        if value == 0:
            return
        gen, _label = value
        new_gen = gen + 1
        ctx.set_value((new_gen, component_label(ctx.vertex)))
        ctx.update_nbrs(("R", new_gen))

    def _on_reseed(self, ctx: VertexContext, nbr: int, gen_n: int, weight: int) -> None:
        gen, label = ctx.value
        if gen_n > gen:
            # Join the new generation: reset to our own hash and flood.
            gen, label = gen_n, component_label(ctx.vertex)
            ctx.set_value((gen, label))
            ctx.update_nbrs(("R", gen_n))
            # Exchange labels with the reseeding neighbour right away.
            ctx.update_single_nbr(nbr, ("L", gen, label), weight)
        elif gen_n == gen:
            ctx.update_single_nbr(nbr, ("L", gen, label), weight)
        else:
            # The sender's wave is stale: pull it up to our generation.
            ctx.update_single_nbr(nbr, ("R", gen), weight)

    def _merge_label(
        self, ctx: VertexContext, nbr: int, gen_n: int, label_n: int, weight: int
    ) -> None:
        gen, label = ctx.value
        if gen_n > gen:
            # Implicit reseed (the label raced ahead of the R-flood).
            gen, label = gen_n, component_label(ctx.vertex)
            ctx.set_value((gen, label))
            ctx.update_nbrs(("R", gen_n))
        elif gen_n < gen:
            # They are stale; bring them into our generation.
            ctx.update_single_nbr(nbr, ("R", gen), weight)
            return
        if label_n > label:
            ctx.set_value((gen, label_n))
            ctx.update_nbrs(("L", gen, label_n))
        elif label_n < label:
            ctx.update_single_nbr(nbr, ("L", gen, label), weight)

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unseen"
        gen, label = value
        return f"g{gen}:comp:{label:016x}"


class GenerationalST(VertexProgram):
    """Multi S-T connectivity with edge-delete support.

    Reachability bitmaps only ever grow under Alg. 7, so a delete that
    disconnects a source cannot be repaired in place.  Like
    :class:`GenerationalCC`, any delete reseeds the affected component
    into a new generation; the reset value is not 0 but the vertex's
    *intrinsic* bits — the bits of sources registered at that very
    vertex — so source vertices re-assert themselves and union
    propagation reruns within the generation.  State: ``(gen, mask)``.

    Source registration mirrors
    :class:`~repro.algorithms.st_conn.MultiSTConnectivity`:
    ``register_source`` assigns the bit, the returned index is the
    ``init()`` payload.
    """

    name = "gen-st"
    snapshot_mode = "replay"
    supports_versioned_collection = False

    def __init__(self) -> None:
        # Configuration (read-only during execution): source -> bit index.
        self.source_bits: dict[int, int] = {}

    # -- source registry (configuration, not per-vertex state) ----------
    def register_source(self, vertex: int) -> int:
        """Assign (or return) the bit index for a source vertex; the
        returned value is the ``init()`` payload."""
        if vertex not in self.source_bits:
            self.source_bits[vertex] = len(self.source_bits)
        return self.source_bits[vertex]

    def bit_of(self, source_vertex: int) -> int:
        return self.source_bits[source_vertex]

    def is_connected(self, value: Any, source_vertex: int) -> bool:
        """Does a stored value indicate connectivity to ``source_vertex``?"""
        return bool(self.mask_of(value) >> self.source_bits[source_vertex] & 1)

    @staticmethod
    def mask_of(value: Any) -> int:
        """Project a stored value to its plain reachability bitmap."""
        return 0 if value == 0 else value[1]

    def _own_bits(self, vertex: int) -> int:
        """The bits this vertex holds intrinsically (its own sources)."""
        mask = 0
        for source, bit in self.source_bits.items():
            if source == vertex:
                mask |= 1 << bit
        return mask

    def _ensure(self, ctx: VertexContext) -> tuple[int, int]:
        value = ctx.value
        if value == 0:
            value = (0, self._own_bits(ctx.vertex))
            ctx.set_value(value)
        return value

    # -- callbacks --------------------------------------------------------
    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        gen, mask = self._ensure(ctx)
        new_mask = mask | (1 << int(payload))
        ctx.set_value((gen, new_mask))
        ctx.update_nbrs(("M", gen, new_mask))

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._ensure(ctx)
        if vis_val == 0:
            gen_n, mask_n = 0, 0
        else:
            gen_n, mask_n = vis_val
        self._merge_mask(ctx, vis_id, gen_n, mask_n, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)
        if not ctx.has_edge(vis_id):
            # Event over a since-deleted edge: a mask crossing it would
            # leak reachability across the split.
            return
        kind = vis_val[0]
        if kind == "R":
            _, gen_n = vis_val
            self._on_reseed(ctx, vis_id, gen_n, weight)
        elif kind == "M":
            _, gen_n, mask_n = vis_val
            self._merge_mask(ctx, vis_id, gen_n, mask_n, weight)
        else:  # pragma: no cover - corrupted payload
            raise ValueError(f"unknown generational payload {vis_val!r}")

    def on_delete(self, ctx: VertexContext, vis_id: int, weight: int) -> None:
        self._reseed_component(ctx)

    def on_reverse_delete(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._reseed_component(ctx)

    # -- core logic --------------------------------------------------------
    def _reseed_component(self, ctx: VertexContext) -> None:
        value = ctx.value
        if value == 0:
            return
        gen, _mask = value
        new_gen = gen + 1
        ctx.set_value((new_gen, self._own_bits(ctx.vertex)))
        ctx.update_nbrs(("R", new_gen))

    def _on_reseed(self, ctx: VertexContext, nbr: int, gen_n: int, weight: int) -> None:
        gen, mask = ctx.value
        if gen_n > gen:
            # Join the new generation: reset to our intrinsic bits and
            # flood the wave onward.
            gen, mask = gen_n, self._own_bits(ctx.vertex)
            ctx.set_value((gen, mask))
            ctx.update_nbrs(("R", gen_n))
            ctx.update_single_nbr(nbr, ("M", gen, mask), weight)
        elif gen_n == gen:
            ctx.update_single_nbr(nbr, ("M", gen, mask), weight)
        else:
            # The sender's wave is stale: pull it up to our generation.
            ctx.update_single_nbr(nbr, ("R", gen), weight)

    def _merge_mask(
        self, ctx: VertexContext, nbr: int, gen_n: int, mask_n: int, weight: int
    ) -> None:
        gen, mask = ctx.value
        if gen_n > gen:
            # Implicit reseed (the mask raced ahead of the R-flood).
            gen, mask = gen_n, self._own_bits(ctx.vertex)
            ctx.set_value((gen, mask))
            ctx.update_nbrs(("R", gen_n))
        elif gen_n < gen:
            # They are stale; bring them into our generation.
            ctx.update_single_nbr(nbr, ("R", gen), weight)
            return
        union = mask | mask_n
        if union != mask:
            ctx.set_value((gen, union))
            ctx.update_nbrs(("M", gen, union))
        elif mask != mask_n:
            # Pure superset: notify back (Alg. 7's four-way comparison).
            ctx.update_single_nbr(nbr, ("M", gen, mask), weight)

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unseen"
        gen, mask = value
        sources = [s for s, b in self.source_bits.items() if mask >> b & 1]
        return f"g{gen}:sources:{{{','.join(map(str, sources))}}}"


class GenerationalWidest(VertexProgram):
    """Widest (bottleneck) path with edge-delete support.

    The epoch-restart protocol of the distance programs applies with
    the semiring flipped: capacities relax as ``min(cap, weight)`` and
    adopt by ``max``, the supporting last hop is the parent, and a
    delete of the parent edge starts a fresh epoch flood that resets
    the component (source back to ``CAP_INF``, everyone else to 0)
    before max-min relaxation reruns within the epoch.  Termination
    follows from the same two-level argument: epoch adoption is
    monotone in a finite epoch set, and convergence inside an epoch is
    plain REMO monotone convergence.  State: ``(epoch, cap, parent)``.
    """

    name = "gen-widest"
    snapshot_mode = "replay"
    supports_versioned_collection = False

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _ensure(ctx: VertexContext) -> tuple[tuple[int, int], int, int]:
        value = ctx.value
        if value == 0:
            value = (EPOCH0, 0, NO_PARENT)
            ctx.set_value(value)
        return value

    @staticmethod
    def _as_update(vis_val: Any) -> tuple[tuple[int, int], int]:
        """Normalise a REVERSE_ADD raw neighbour value to (epoch, cap)."""
        if vis_val == 0:
            return (EPOCH0, 0)
        epoch, cap, _parent = vis_val
        return (epoch, cap)

    def _adopt_epoch(self, ctx: VertexContext, epoch: tuple[int, int]) -> None:
        """Enter a strictly newer epoch: reset and flood it onward."""
        _e, _cap, parent = ctx.value
        if parent == SELF:
            ctx.set_value((epoch, CAP_INF, SELF))
            ctx.update_nbrs(("R", epoch))
            ctx.update_nbrs(("U", epoch, CAP_INF))
        else:
            ctx.set_value((epoch, 0, NO_PARENT))
            ctx.update_nbrs(("R", epoch))

    def _restart(self, ctx: VertexContext) -> None:
        """Begin a fresh epoch at this vertex (support-breaking delete)."""
        (counter, _init), _cap, _parent = ctx.value
        self._adopt_epoch(ctx, (counter + 1, ctx.vertex))

    # -- callbacks --------------------------------------------------------
    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        epoch, _cap, _parent = self._ensure(ctx)
        ctx.set_value((epoch, CAP_INF, SELF))
        ctx.update_nbrs(("U", epoch, CAP_INF))

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._ensure(ctx)
        epoch_n, cap_n = self._as_update(vis_val)
        self._on_value(ctx, vis_id, epoch_n, cap_n, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        self._ensure(ctx)
        if not ctx.has_edge(vis_id):
            # In-flight event over an edge deleted in the meantime:
            # using it would smuggle capacity through a path that no
            # longer exists.
            return
        kind = vis_val[0]
        if kind == "U":
            _, epoch_n, cap_n = vis_val
            self._on_value(ctx, vis_id, epoch_n, cap_n, weight)
        elif kind == "R":
            _, epoch_n = vis_val
            self._on_restart_flood(ctx, vis_id, epoch_n, weight)
        else:  # pragma: no cover - corrupted payload
            raise ValueError(f"unknown generational payload {vis_val!r}")

    def on_delete(self, ctx: VertexContext, vis_id: int, weight: int) -> None:
        self._handle_edge_removal(ctx, vis_id)

    def on_reverse_delete(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        self._handle_edge_removal(ctx, vis_id)

    # -- core logic --------------------------------------------------------
    def _on_value(
        self,
        ctx: VertexContext,
        nbr: int,
        epoch_n: tuple[int, int],
        cap_n: int,
        weight: int,
    ) -> None:
        epoch, _cap, _parent = ctx.value
        if epoch_n < epoch:
            # Stale sender: pull it up into our epoch.
            ctx.update_single_nbr(nbr, ("R", epoch), weight)
            return
        if epoch_n > epoch:
            self._adopt_epoch(ctx, epoch_n)
        self._relax(ctx, nbr, cap_n, weight)

    def _on_restart_flood(
        self, ctx: VertexContext, nbr: int, epoch_n: tuple[int, int], weight: int
    ) -> None:
        epoch, cap, _parent = ctx.value
        if epoch_n < epoch:
            ctx.update_single_nbr(nbr, ("R", epoch), weight)
            return
        if epoch_n > epoch:
            self._adopt_epoch(ctx, epoch_n)
            return
        # Same epoch: the sender just reset; offer our capacity if we
        # have one (it may have missed our earlier broadcast).
        if cap > 0:
            ctx.update_single_nbr(nbr, ("U", epoch, cap), weight)

    def _relax(self, ctx: VertexContext, nbr: int, cap_n: int, weight: int) -> None:
        epoch, cap, parent = ctx.value
        candidate = min(cap_n, weight)
        if candidate > cap:
            ctx.set_value((epoch, candidate, nbr))
            ctx.update_nbrs(("U", epoch, candidate))
        elif cap > 0 and min(cap, weight) > cap_n:
            # We are the wider side: notify back the visitor.
            ctx.update_single_nbr(nbr, ("U", epoch, cap), weight)

    def _handle_edge_removal(self, ctx: VertexContext, nbr: int) -> None:
        value = ctx.value
        if value == 0:
            return
        _epoch, _cap, parent = value
        if parent == nbr:
            # The deleted edge supported our capacity: restart the
            # component in a fresh epoch.
            self._restart(ctx)

    def format_value(self, value: Any) -> str:
        if value == 0:
            return "unseen"
        (counter, initiator), cap, _ = value
        if cap >= CAP_INF:
            return f"e{counter}.{initiator}:source"
        return f"e{counter}.{initiator}:{'unreached' if cap == 0 else cap}"
