"""Incremental (REMO) vertex programs — §IV of the paper.

Four REMO algorithms, each a direct transcription of the paper's
pseudocode on top of the Alg.-3 programming model:

* :class:`~repro.algorithms.bfs.IncrementalBFS` (Alg. 4)
* :class:`~repro.algorithms.sssp.IncrementalSSSP` (Alg. 5)
* :class:`~repro.algorithms.cc.IncrementalCC` (Alg. 6)
* :class:`~repro.algorithms.st_conn.MultiSTConnectivity` (Alg. 7)

plus the degree-tracking example of §II-A
(:class:`~repro.algorithms.degree.DegreeTracker`) and the decremental
extension of §VI-B (:mod:`repro.algorithms.generations`), which handles
edge deletes via state generations.

``INF`` (2**62) is the shared "unreached" sentinel; 0 is the engine's
"vertex never touched" default, as in the paper's pseudocode.
"""

from repro.algorithms.base import INF
from repro.algorithms.bfs import IncrementalBFS
from repro.algorithms.bfs_parents import DeterministicBFS
from repro.algorithms.cc import IncrementalCC
from repro.algorithms.degree import DegreeTracker
from repro.algorithms.generations import (
    GenerationalBFS,
    GenerationalCC,
    GenerationalSSSP,
    GenerationalST,
    GenerationalWidest,
)
from repro.algorithms.sssp import IncrementalSSSP
from repro.algorithms.st_conn import MultiSTConnectivity
from repro.algorithms.widest_path import WidestPath

__all__ = [
    "INF",
    "IncrementalBFS",
    "DeterministicBFS",
    "IncrementalCC",
    "IncrementalSSSP",
    "MultiSTConnectivity",
    "WidestPath",
    "DegreeTracker",
    "GenerationalBFS",
    "GenerationalCC",
    "GenerationalSSSP",
    "GenerationalST",
    "GenerationalWidest",
]
