"""Incremental Connected Components — Algorithm 6 of the paper.

A label-propagation scheme with no initiating vertex: "each vertex
primarily assumes it will dominate the component it is attached to",
seeding itself with ``hash(vertex_id)`` on arrival and exchanging labels
with neighbours; the larger label wins and recursively floods the
united component (the two edge-addition cases of §II-B).

Monotonically evolving state: the component label, which only ever
*increases* toward the component's maximum vertex hash.  (§II-B's prose
describes the minimum-label variant; Algorithm 6's comparisons are the
max-dominates mirror image — we follow the algorithm.  Hashing the IDs,
rather than comparing raw IDs, removes insertion-order bias and is what
lets the label double as an unbiased component representative.)

One deliberate divergence from the Alg.-6 listing: its ``reverse_add``
adopts the visitor's label outright when this vertex is new, justified
by an assumption about hash/arrival ordering that plain ID hashing does
not provide.  We instead seed the new vertex with its own hash and fall
through to the update logic, which converges to the same deterministic
answer (max hash in the component) without that assumption.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import max_monotone_merge
from repro.kernels.frontier import MaxLabelKernel
from repro.runtime.program import VertexContext, VertexProgram
from repro.util.hashing import stable_vertex_hash

# Labels must never be 0 (the engine's "unset" default); fold the zero
# hash (astronomically unlikely, but cheap to guard) up to 1.
_LABEL_SALT = 0xCC


def component_label(vertex_id: int) -> int:
    """The label a vertex seeds itself with (its salted hash, never 0)."""
    return stable_vertex_hash(vertex_id, _LABEL_SALT) or 1


class IncrementalCC(VertexProgram):
    """Maintains live component labels; no ``init()`` required.

    Two vertices are in the same component iff their values are equal
    (once quiescent).  Use :func:`component_label` to predict a specific
    component's final label in tests.
    """

    name = "cc"
    snapshot_mode = "merge"
    # §II-D: queued labels from the same sender squash to the dominator
    # (labels only grow; 0 loses to any real label).
    combine = staticmethod(max_monotone_merge)
    # Bulk-ingest fast path: labels relax as max(label, nbr label).
    bulk_kernel = MaxLabelKernel()

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        # If we are a new vertex, label us.
        if ctx.value == 0:
            ctx.set_value(component_label(ctx.vertex))

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        # If we are unlabeled (new), seed our own label first (see the
        # module docstring for why we diverge from Alg. 6 here)...
        if ctx.value == 0:
            ctx.set_value(component_label(ctx.vertex))
        # ...then the logic is the same as the update step.
        self.on_update(ctx, vis_id, vis_val, weight)

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        value = ctx.value
        if value == 0:
            value = component_label(ctx.vertex)
            ctx.set_value(value)
        if vis_val == 0:
            # Sender was brand new when it emitted; its label is its hash.
            vis_val = component_label(vis_id)
        if value > vis_val:
            # Our component is the dominator: notify back the visitor.
            # (CC is defined on undirected graphs; the guard keeps the
            # directed-engine behaviour at least monotone.)
            if ctx.undirected:
                ctx.update_single_nbr(vis_id, value, weight)
        elif value < vis_val:
            # Their component dominates: adopt, send our new label to all.
            ctx.set_value(vis_val)
            ctx.update_nbrs(vis_val)

    def merge(self, a: int, b: int) -> int:
        return max_monotone_merge(a, b)

    def format_value(self, value: Any) -> str:
        return "unseen" if value == 0 else f"comp:{value:016x}"
