"""Degree tracking — the paper's introductory example (§II-A).

"As a trivial example, consider a simple query that aims to track the
degree of each vertex in a graph... a programmer will only have to write
these two simple callbacks": increment on edge insertion, decrement on
removal.  Paired with a trigger this gives the §II-A use case of "a
user-defined callback if the degree exceeds a certain threshold".

The value is a commutative delta (not a monotone merge), so the program
declares ``snapshot_mode = "replay"`` — versioned collection replays
prev-version deltas against both state versions.

Limitation: the callbacks read the live adjacency store (so duplicate
edge events do not inflate the count), and topology itself is not
versioned — a versioned snapshot of this program reflects degrees as of
harvest-time topology, not cut-time.  Use quiescence collection when an
exact discretized degree snapshot matters.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.program import VertexContext, VertexProgram


class DegreeTracker(VertexProgram):
    """Maintains each vertex's live degree as its algorithm value.

    In undirected mode both endpoints count the edge (each endpoint's
    value is its full undirected degree); in directed mode only the
    source side counts (out-degree).
    """

    name = "degree"
    snapshot_mode = "replay"

    # The callbacks read the adjacency store's degree after the engine
    # applied the topology change, rather than blindly incrementing a
    # counter: re-adds of an existing edge (attribute updates) then
    # leave the tracked degree unchanged, as they should.

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        ctx.set_value(ctx.degree)

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        ctx.set_value(ctx.degree)

    def on_delete(self, ctx: VertexContext, vis_id: int, weight: int) -> None:
        ctx.set_value(ctx.degree)

    def on_reverse_delete(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        ctx.set_value(ctx.degree)
