"""Command-line front end: stream a synthetic graph through the engine.

Usage (also available as ``python -m repro``)::

    python -m repro run --graph twitter --algo bfs --nodes 2
    python -m repro run --graph rmat --scale 12 --algo cc --verify
    python -m repro run --graph friendster --algo st --sources 4 \
        --snapshot-at 0.5 --verify
    python -m repro generate --graph rmat --scale 14 -o stream.txt
    python -m repro run --input stream.txt --algo bfs --verify

``run`` generates the requested workload, ingests it at saturation on a
simulated cluster, optionally takes a versioned global-state snapshot
at a fraction of the (estimated) stream, optionally verifies against
the static oracle, and prints the throughput report.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.algorithms import (
    DeterministicBFS,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    MultiSTConnectivity,
)
from repro.analytics import (
    throughput_report,
    verify_bfs,
    verify_cc,
    verify_sssp,
    verify_st,
)
from repro.comm.costmodel import CostModel
from repro.events.io import read_edge_npz, read_edge_text, write_edge_npz, write_edge_text
from repro.events.stream import split_streams
from repro.generators import DATASET_PRESETS, generate_preset, rmat_edges
from repro.generators.weights import pairwise_weights
from repro.runtime.engine import DynamicEngine, EngineConfig
from repro.util.timers import WallTimer

GRAPH_CHOICES = sorted(set(DATASET_PRESETS) | {"rmat"})
ALGO_CHOICES = ["con", "bfs", "det-bfs", "sssp", "cc", "st"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Incremental graph processing on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="stream a synthetic graph through an algorithm")
    run.add_argument("--input", default=None, metavar="FILE",
                     help="read events from an edge file (.txt or .npz) "
                          "instead of generating a graph")
    run.add_argument("--graph", choices=GRAPH_CHOICES, default="rmat")
    run.add_argument("--scale", type=int, default=10, help="log2 vertex universe")
    run.add_argument("--edge-factor", type=int, default=16)
    run.add_argument("--algo", choices=ALGO_CHOICES, default="bfs")
    run.add_argument("--nodes", type=int, default=1)
    run.add_argument("--ranks-per-node", type=int, default=4)
    run.add_argument("--sources", type=int, default=1, help="S-T source count")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--snapshot-at",
        type=float,
        default=None,
        metavar="FRAC",
        help="take a versioned snapshot at this fraction of the stream",
    )
    run.add_argument("--verify", action="store_true", help="check vs static oracle")
    gen = sub.add_parser("generate", help="write a synthetic workload to an edge file")
    gen.add_argument("--graph", choices=GRAPH_CHOICES, default="rmat")
    gen.add_argument("--scale", type=int, default=10)
    gen.add_argument("--edge-factor", type=int, default=16)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--weights", action="store_true", help="attach pairwise weights")
    gen.add_argument("-o", "--output", required=True, metavar="FILE",
                     help="destination (.txt or .npz)")
    return parser


def _make_programs(algo: str, src: np.ndarray, sources: int):
    source = int(src[0])
    if algo == "con":
        return [], [], None
    if algo == "bfs":
        return [IncrementalBFS()], [("bfs", source, None)], source
    if algo == "det-bfs":
        return [DeterministicBFS()], [("det-bfs", source, None)], source
    if algo == "sssp":
        return [IncrementalSSSP()], [("sssp", source, None)], source
    if algo == "cc":
        return [IncrementalCC()], [], None
    st = MultiSTConnectivity()
    seen: list[int] = []
    for v in src:
        if int(v) not in seen:
            seen.append(int(v))
        if len(seen) >= sources:
            break
    init = [("st", s, st.register_source(s)) for s in seen]
    return [st], init, seen


def _generate(args: argparse.Namespace, rng: np.random.Generator):
    if args.graph == "rmat":
        src, dst = rmat_edges(args.scale, edge_factor=args.edge_factor, rng=rng)
        label = f"RMAT scale {args.scale}"
    else:
        src, dst, preset = generate_preset(
            args.graph, rng, scale=args.scale, edge_factor=args.edge_factor
        )
        label = preset.describe()
    return src, dst, label


def cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    src, dst, label = _generate(args, rng)
    weights = pairwise_weights(src, dst, 1, 50) if args.weights else None
    if args.output.endswith(".npz"):
        write_edge_npz(args.output, src, dst, weights)
    else:
        write_edge_text(args.output, src, dst, weights, header=label)
    print(f"wrote {len(src):,} events ({label}) to {args.output}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.input is not None:
        reader = read_edge_npz if args.input.endswith(".npz") else read_edge_text
        stream = reader(args.input)
        events = list(stream)
        src = np.array([e[1] for e in events], dtype=np.int64)
        dst = np.array([e[2] for e in events], dtype=np.int64)
        weights = np.array([e[3] for e in events], dtype=np.int64)
        print(f"input: {args.input}, {len(src):,} events")
    else:
        src, dst, label = _generate(args, rng)
        print(f"graph: {label}, {len(src):,} edges")
        weights = pairwise_weights(src, dst, 1, 50) if args.algo == "sssp" else None

    programs, init, source_info = _make_programs(args.algo, src, args.sources)
    n_ranks = args.nodes * args.ranks_per_node
    engine = DynamicEngine(
        programs,
        EngineConfig(n_ranks=n_ranks),
        cost_model=CostModel(ranks_per_node=args.ranks_per_node),
    )
    for prog, vertex, payload in init:
        engine.init_program(prog, vertex, payload=payload)
    engine.attach_streams(
        split_streams(src, dst, n_ranks, weights=weights, rng=rng)
    )
    if args.snapshot_at is not None and programs:
        cm = engine.cost
        per_event = cm.stream_pull_cpu + 2 * (
            cm.edge_insert_cpu + cm.visit_cpu + cm.send_cpu
        )
        est = len(src) * per_event / n_ranks
        engine.request_collection(programs[0].name, at_time=args.snapshot_at * est)

    with WallTimer() as timer:
        engine.run()
    print(throughput_report(engine, wall_seconds=timer.elapsed).summary())

    for res in engine.collection_results:
        print(
            f"snapshot #{res.collection_id}: {res.vertices_collected:,} vertices, "
            f"latency {res.latency * 1e6:.0f}us ({res.probe_waves} probe waves)"
        )

    if args.verify:
        if args.algo in ("bfs",):
            mismatches = verify_bfs(engine, "bfs", source_info)
        elif args.algo == "det-bfs":
            mismatches = verify_bfs(
                engine, "det-bfs", source_info, value_of=lambda v: v[0]
            )
        elif args.algo == "sssp":
            mismatches = verify_sssp(engine, "sssp", source_info)
        elif args.algo == "cc":
            mismatches = verify_cc(engine, "cc")
        elif args.algo == "st":
            mismatches = verify_st(engine, "st", source_info)
        else:
            print("verify: nothing to verify for construction-only")
            return 0
        if mismatches:
            print(f"VERIFY FAILED: {len(mismatches)} mismatches, e.g. {mismatches[0]}")
            return 1
        print("verify: OK (dynamic state equals static oracle)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "generate":
        return cmd_generate(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
