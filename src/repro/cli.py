"""Command-line front end: stream a synthetic graph through the engine.

Usage (also available as ``python -m repro``)::

    python -m repro run --graph twitter --algo bfs --nodes 2
    python -m repro run --graph rmat --scale 12 --algo cc --verify
    python -m repro run --graph friendster --algo st --sources 4 \
        --snapshot-at 0.5 --verify
    python -m repro generate --graph rmat --scale 14 -o stream.txt
    python -m repro run --input stream.txt --algo bfs --verify
    python -m repro run --algo bfs --trace trace.json --metrics m.jsonl \
        --freshness
    python -m repro report --trace trace.json --metrics m.jsonl
    python -m repro run --algo cc --verify \
        --faults drop=0.1,dup=0.02,crash=0.4 --checkpoint-every 0.2
    python -m repro serve --graph rmat --scale 10 --algo bfs \
        --workload ratio=0.2,slice=2048 --reference --verify

``run`` generates the requested workload, ingests it at saturation on a
simulated cluster, optionally takes a versioned global-state snapshot
at a fraction of the (estimated) stream, optionally verifies against
the static oracle, and prints the throughput report.

``serve`` is the on-line mode: the same ingest, but with point queries
(distance / component membership / reachability / widest capacity)
served through the stable-value cache *while* the stream runs, each
answer carrying its ``(value, as_of_vtime, stale)`` envelope; with
``--verify``, every ``stale=False`` answer is differentially checked
against the static oracle on the exact ingested prefix.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.algorithms import (
    DeterministicBFS,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    MultiSTConnectivity,
    WidestPath,
)
from repro.analytics import (
    throughput_report,
    verify_bfs,
    verify_cc,
    verify_sssp,
    verify_st,
    verify_widest,
)
from repro.comm.costmodel import CostModel
from repro.events.io import read_edge_npz, read_edge_text, write_edge_npz, write_edge_text
from repro.events.stream import split_streams
from repro.generators import DATASET_PRESETS, generate_preset, rmat_edges
from repro.generators.weights import pairwise_weights
from repro.runtime.engine import EngineConfig
from repro.runtime.lifecycle import EngineBuilder
from repro.runtime.plugins import FaultInjectionPlugin, FreshnessPlugin
from repro.util.timers import WallTimer

GRAPH_CHOICES = sorted(set(DATASET_PRESETS) | {"rmat"})
ALGO_CHOICES = ["con", "bfs", "det-bfs", "sssp", "cc", "st", "widest"]
# The query-servable families (each has a typed point query, a static
# prefix oracle, and a full-stream monotone bound).
SERVE_ALGO_CHOICES = ["bfs", "sssp", "cc", "st", "widest"]


def _add_source_args(parser: argparse.ArgumentParser) -> None:
    """Workload-source options shared by ``run`` and ``serve``."""
    parser.add_argument("--input", default=None, metavar="FILE",
                        help="read events from an edge file (.txt or .npz) "
                             "instead of generating a graph")
    parser.add_argument("--graph", choices=GRAPH_CHOICES, default="rmat")
    parser.add_argument("--scale", type=int, default=10,
                        help="log2 vertex universe")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Incremental graph processing on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="stream a synthetic graph through an algorithm")
    _add_source_args(run)
    run.add_argument("--algo", choices=ALGO_CHOICES, default="bfs")
    run.add_argument("--backend", choices=["des", "mp"], default="des",
                     help="des = single-process discrete-event simulation "
                          "(virtual time, default); mp = one real OS "
                          "process per rank over pipes (wall clock)")
    run.add_argument("--ranks", type=int, default=None, metavar="N",
                     help="total rank count (overrides "
                          "--nodes * --ranks-per-node)")
    run.add_argument("--wire", choices=["shm", "pipe"], default="shm",
                     help="mp data plane: shm = zero-copy shared-memory "
                          "rings with vectorized kernels (default); pipe = "
                          "legacy pickled-pipe fallback")
    run.add_argument("--nodes", type=int, default=1)
    run.add_argument("--ranks-per-node", type=int, default=4)
    run.add_argument("--sources", type=int, default=1, help="S-T source count")
    run.add_argument(
        "--snapshot-at",
        type=float,
        default=None,
        metavar="FRAC",
        help="take a versioned snapshot at this fraction of the stream",
    )
    run.add_argument("--verify", action="store_true", help="check vs static oracle")
    run.add_argument("--json", action="store_true",
                     help="emit the report as one JSON document on stdout "
                          "(progress chatter moves to stderr)")
    obs = run.add_argument_group("telemetry (repro.obs)")
    obs.add_argument("--trace", default=None, metavar="FILE",
                     help="record a trace (virtual time on des, wall clock "
                          "on mp, where all ranks merge into one multi-"
                          "process timeline); .json = Chrome/Perfetto "
                          "trace_event, .jsonl = compact JSONL")
    obs.add_argument("--metrics", default=None, metavar="FILE",
                     help="write sampled time-series metrics as JSONL (on "
                          "mp: the merged cross-rank counters report)")
    obs.add_argument("--trace-per-rank", action="store_true",
                     help="with --backend mp --trace, also write each "
                          "rank's unmerged capture as FILE.rankN.EXT")
    obs.add_argument("--sample-interval", type=float, default=None,
                     metavar="SECONDS",
                     help="virtual-time sampling period (default: ~1/100 "
                          "of the estimated makespan when sampling is on)")
    obs.add_argument("--freshness", action="store_true",
                     help="probe convergence lag vs the static reference "
                          "at every sample point (implies sampling)")
    flt = run.add_argument_group("fault injection (repro.faults)")
    flt.add_argument("--faults", default=None, metavar="SPEC",
                     help="run under a fault plan, e.g. "
                          "'drop=0.1,dup=0.02,crash=0.5,seed=7'; crash/stall "
                          "instants are fractions of the estimated makespan")
    flt.add_argument("--checkpoint-every", type=float, default=None,
                     metavar="FRAC",
                     help="checkpoint period as a fraction of the estimated "
                          "makespan (without it, a crash rolls back to the "
                          "start of the stream)")
    flt.add_argument("--checkpoint-path", default=None, metavar="FILE",
                     help="where the rolling checkpoint lives "
                          "(default: a temp file, removed afterwards)")
    srv = sub.add_parser(
        "serve",
        help="serve point queries against live engine state during ingest",
    )
    _add_source_args(srv)
    srv.add_argument("--algo", choices=SERVE_ALGO_CHOICES, default="bfs")
    srv.add_argument("--backend", choices=["des", "mp"], default="des",
                     help="des = interleave query batches with ingest slices "
                          "on the simulated cluster (default); mp = run the "
                          "process-parallel backend to quiescence, then "
                          "serve the harvested rank states")
    srv.add_argument("--wire", choices=["shm", "pipe"], default="shm",
                     help="mp data plane (as in run)")
    srv.add_argument("--ranks", type=int, default=None, metavar="N",
                     help="total rank count (overrides "
                          "--nodes * --ranks-per-node)")
    srv.add_argument("--nodes", type=int, default=1)
    srv.add_argument("--ranks-per-node", type=int, default=4)
    srv.add_argument("--sources", type=int, default=2, help="S-T source count")
    srv.add_argument("--workload", default="ratio=0.1,slice=2048",
                     metavar="SPEC",
                     help="query mix: ratio=QUERIES_PER_EVENT,slice=ACTIONS,"
                          "kinds=point:distance,seed=N,max=N "
                          "(default ratio=0.1,slice=2048)")
    srv.add_argument("--queries", type=int, default=None, metavar="N",
                     help="query count for --backend mp "
                          "(default: ratio * events)")
    srv.add_argument("--reference", action="store_true",
                     help="precompute the static answer on the full stream "
                          "and register it as the monotone bound, enabling "
                          "absorbing (stale-free) cache admission mid-ingest")
    srv.add_argument("--verify", action="store_true",
                     help="differentially check every stale=False answer "
                          "against the static oracle on the ingested prefix")
    srv.add_argument("--json", action="store_true",
                     help="emit the serving report as one JSON document on "
                          "stdout (progress chatter moves to stderr)")
    srv.add_argument("--metrics", default=None, metavar="FILE",
                     help="write the serving layer's metrics registry "
                          "(serve_* counters plus the serve_latency_us "
                          "histogram) as JSONL, renderable by repro report")
    rep = sub.add_parser(
        "report", help="render a trace/metrics capture as text tables"
    )
    rep.add_argument("--trace", default=None, metavar="FILE",
                     help="Chrome trace JSON produced by run --trace")
    rep.add_argument("--metrics", default=None, metavar="FILE",
                     help="metrics JSONL produced by run --metrics")
    gen = sub.add_parser("generate", help="write a synthetic workload to an edge file")
    gen.add_argument("--graph", choices=GRAPH_CHOICES, default="rmat")
    gen.add_argument("--scale", type=int, default=10)
    gen.add_argument("--edge-factor", type=int, default=16)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--weights", action="store_true", help="attach pairwise weights")
    gen.add_argument("-o", "--output", required=True, metavar="FILE",
                     help="destination (.txt or .npz)")
    return parser


def _make_programs(algo: str, src: np.ndarray, sources: int):
    source = int(src[0])
    if algo == "con":
        return [], [], None
    if algo == "bfs":
        return [IncrementalBFS()], [("bfs", source, None)], source
    if algo == "det-bfs":
        return [DeterministicBFS()], [("det-bfs", source, None)], source
    if algo == "sssp":
        return [IncrementalSSSP()], [("sssp", source, None)], source
    if algo == "cc":
        return [IncrementalCC()], [], None
    if algo == "widest":
        return [WidestPath()], [("widest", source, None)], source
    st = MultiSTConnectivity()
    seen: list[int] = []
    for v in src:
        if int(v) not in seen:
            seen.append(int(v))
        if len(seen) >= sources:
            break
    init = [("st", s, st.register_source(s)) for s in seen]
    return [st], init, seen


def _generate(args: argparse.Namespace, rng: np.random.Generator):
    if args.graph == "rmat":
        src, dst = rmat_edges(args.scale, edge_factor=args.edge_factor, rng=rng)
        label = f"RMAT scale {args.scale}"
    else:
        src, dst, preset = generate_preset(
            args.graph, rng, scale=args.scale, edge_factor=args.edge_factor
        )
        label = preset.describe()
    return src, dst, label


def cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    src, dst, label = _generate(args, rng)
    weights = pairwise_weights(src, dst, 1, 50) if args.weights else None
    if args.output.endswith(".npz"):
        write_edge_npz(args.output, src, dst, weights)
    else:
        write_edge_text(args.output, src, dst, weights, header=label)
    print(f"wrote {len(src):,} events ({label}) to {args.output}")
    return 0


def _freshness_reference(algo: str, source_info):
    """The repro.obs.make_reference call matching a CLI algorithm."""
    from repro.obs import make_reference

    if algo in ("bfs",):
        return make_reference("bfs", source=source_info)
    if algo == "det-bfs":
        return make_reference("bfs", source=source_info, value_of=lambda v: v[0])
    if algo == "sssp":
        return make_reference("sssp", source=source_info)
    if algo == "cc":
        return make_reference("cc")
    if algo == "st":
        return make_reference("st", sources=source_info)
    return None


def _run_mismatches(args, engine, source_info) -> list[str] | None:
    """Static-oracle check for cmd_run; None = nothing to verify."""
    if args.algo in ("bfs",):
        return verify_bfs(engine, "bfs", source_info)
    if args.algo == "det-bfs":
        return verify_bfs(engine, "det-bfs", source_info, value_of=lambda v: v[0])
    if args.algo == "sssp":
        return verify_sssp(engine, "sssp", source_info)
    if args.algo == "cc":
        return verify_cc(engine, "cc")
    if args.algo == "st":
        return verify_st(engine, "st", source_info)
    if args.algo == "widest":
        return verify_widest(engine, "widest", source_info)
    return None


def _write_mp_obs(args, chat, result, meta) -> None:
    """Write the merged (and optionally per-rank) mp telemetry capture."""
    import os

    from repro.obs import Tracer, write_chrome_trace, write_metrics_jsonl, write_trace_jsonl

    merged = result.obs
    if args.trace is not None and merged.tracer is not None:
        writer = (
            write_trace_jsonl if args.trace.endswith(".jsonl") else write_chrome_trace
        )
        writer(args.trace, merged.tracer, meta)
        chat(
            f"trace: {len(merged.tracer):,} events from "
            f"{len(merged.offsets)} ranks (one pid each) -> {args.trace}"
        )
        if args.trace_per_rank:
            stem, ext = os.path.splitext(args.trace)
            for rank in sorted(merged.offsets):
                sub = Tracer()
                sub.events = [ev for ev in merged.tracer.events if ev[1] == rank]
                path = f"{stem}.rank{rank}{ext}"
                writer(path, sub, {**meta, "rank": rank})
            chat(
                f"trace: per-rank captures -> {stem}.rank*{ext} "
                f"({len(merged.offsets)} files)"
            )
    if args.metrics is not None:
        write_metrics_jsonl(args.metrics, merged.registry, meta)
        chat(
            f"metrics: {len(merged.registry.counters)} cross-rank counters, "
            f"{len(merged.registry.rows('ring_sample')):,} ring samples, "
            f"busy skew {merged.skew():.2f} -> {args.metrics}"
        )


def _run_mp(
    args, chat, rng, src, dst, weights, label,
    programs, init, source_info, n_ranks,
) -> int:
    """Execute ``run`` on the process-parallel backend."""
    import json as json_mod

    from repro.parallel import ParallelStateView, WireConfig, run_parallel

    des_only = [
        name for name, value in [
            ("--faults", args.faults),
            ("--snapshot-at", args.snapshot_at),
            ("--sample-interval", args.sample_interval),
            ("--freshness", args.freshness or None),
        ] if value is not None
    ]
    if des_only:
        chat(
            f"backend mp: {', '.join(des_only)} need virtual time and are "
            "only available on --backend des"
        )
        return 2
    obs_cfg = None
    if args.trace is not None or args.metrics is not None:
        from repro.obs import ObsConfig

        obs_cfg = ObsConfig(
            trace=args.trace is not None, metrics=args.metrics is not None
        )
    chat(
        f"backend: mp, {n_ranks} ranks (one OS process each), "
        f"{args.wire} wire"
    )
    result = run_parallel(
        programs,
        split_streams(src, dst, n_ranks, weights=weights, rng=rng),
        config=EngineConfig(n_ranks=n_ranks),
        wire=WireConfig(kind=args.wire),
        init=init,
        collect_edges=args.verify,
        obs=obs_cfg,
    )
    rate = result.events_per_second
    chat(
        f"mp run: {result.source_events:,} events in "
        f"{result.wall_seconds:.3f}s wall = {rate:,.0f} ev/s, "
        f"{result.wire['wire_sent']:,} wire messages in "
        f"{result.wire['frames_sent']:,} frames, "
        f"{result.token_rounds} termination rounds"
    )
    ring = result.ring_health
    if ring:
        chat(
            f"rings: {ring.get('ring_stalls', 0):,} push stalls, "
            f"overflow hwm {ring.get('overflow_hwm_records', 0):,} records, "
            f"{ring.get('ring_pad_bytes', 0):,} PAD bytes, "
            f"{ring.get('pickle_records', 0):,} fallback-lane messages"
        )

    meta = {
        "label": label,
        "algo": args.algo,
        "backend": "mp",
        "wire": result.wire_kind,
        "n_ranks": n_ranks,
        "events": int(len(src)),
    }
    if result.obs is not None:
        _write_mp_obs(args, chat, result, meta)

    mismatches = None
    if args.verify:
        if programs:
            view = ParallelStateView(result)
            mismatches = _run_mismatches(args, view, source_info)
        if mismatches is None:
            chat("verify: nothing to verify for construction-only")
        elif mismatches:
            chat(
                f"VERIFY FAILED: {len(mismatches)} mismatches, "
                f"e.g. {mismatches[0]}"
            )
        else:
            chat("verify: OK (mp state equals static oracle)")

    if args.json:
        doc = {
            "label": label,
            "algo": args.algo,
            "backend": "mp",
            "wire": result.wire_kind,
            "n_ranks": n_ranks,
            "events": int(len(src)),
            "report": result.to_dict(),
            "per_rank": [
                {
                    "rank": info["rank"],
                    "source_events": info["counters"].source_events,
                    "visits": info["counters"].visits,
                    "num_edges": info["num_edges"],
                    "wire": info["wire"],
                }
                for info in result.per_rank
            ],
            "verify": {
                "requested": bool(args.verify),
                "checked": bool(args.verify) and mismatches is not None,
                "mismatches": len(mismatches) if mismatches is not None else 0,
            },
            "trace_file": args.trace,
            "metrics_file": args.metrics,
        }
        print(json_mod.dumps(doc, indent=2))
    return 1 if mismatches else 0


def _load_stream(args: argparse.Namespace, chat, rng):
    """Load ``--input`` or generate the synthetic workload; returns
    ``(src, dst, weights, label)``."""
    if args.input is not None:
        reader = read_edge_npz if args.input.endswith(".npz") else read_edge_text
        events = list(reader(args.input))
        src = np.array([e[1] for e in events], dtype=np.int64)
        dst = np.array([e[2] for e in events], dtype=np.int64)
        weights = np.array([e[3] for e in events], dtype=np.int64)
        label = args.input
        chat(f"input: {args.input}, {len(src):,} events")
    else:
        src, dst, label = _generate(args, rng)
        chat(f"graph: {label}, {len(src):,} edges")
        weights = (
            pairwise_weights(src, dst, 1, 50)
            if args.algo in ("sssp", "widest") else None
        )
    return src, dst, weights, label


def cmd_run(args: argparse.Namespace) -> int:
    import functools
    import json as json_mod

    # In --json mode stdout carries exactly one JSON document; all
    # human-facing chatter moves to stderr so CI can pipe stdout.
    chat = functools.partial(print, file=sys.stderr) if args.json else print
    rng = np.random.default_rng(args.seed)
    src, dst, weights, label = _load_stream(args, chat, rng)

    programs, init, source_info = _make_programs(args.algo, src, args.sources)
    n_ranks = (
        args.ranks if args.ranks is not None
        else args.nodes * args.ranks_per_node
    )
    if args.backend == "mp":
        return _run_mp(
            args, chat, rng, src, dst, weights, label,
            programs, init, source_info, n_ranks,
        )
    cost = CostModel(ranks_per_node=args.ranks_per_node)
    # Estimated makespan (same formula the snapshot scheduler uses):
    # drives --snapshot-at and the auto sampling period.
    per_event = cost.stream_pull_cpu + 2 * (
        cost.edge_insert_cpu + cost.visit_cpu + cost.send_cpu
    )
    est = len(src) * per_event / n_ranks
    want_sampling = (
        args.metrics is not None
        or args.freshness
        or args.sample_interval is not None
    )
    sample_interval = args.sample_interval
    if want_sampling and sample_interval is None:
        sample_interval = max(est / 100.0, 1e-9)

    plan = None
    if args.faults is not None:
        from repro.faults import FaultPlan

        plan = FaultPlan.from_spec(args.faults, time_scale=est)
        if plan.crashes and (args.snapshot_at is not None or args.freshness):
            chat("faults: --snapshot-at/--freshness do not combine with "
                 "crash plans (the snapshot dies with the incarnation)")
            return 2

    fault_result = None
    if plan is not None and plan.crashes:
        # Crash plans go through the fault-tolerant runner: each
        # incarnation rebuilds the engine and streams from scratch, so
        # everything it needs is captured as deterministic factories.
        import os
        import tempfile

        from repro.faults import FaultTolerantRunner

        stream_seed = int(rng.integers(2**31))

        def engine_factory():
            progs, _, _ = _make_programs(args.algo, src, args.sources)
            # The EngineConfig flags desugar into the equivalent
            # plugins inside the builder (TracerPlugin/MetricsPlugin);
            # the runner registers FaultInjectionPlugin per incarnation.
            return (
                EngineBuilder()
                .with_programs(progs)
                .with_config(
                    EngineConfig(
                        n_ranks=n_ranks,
                        trace=args.trace is not None,
                        sample_interval=sample_interval,
                    )
                )
                .with_cost_model(cost)
                .build()
            )

        def stream_factory():
            return split_streams(
                src, dst, n_ranks, weights=weights,
                rng=np.random.default_rng(stream_seed),
            )

        def init_fn(eng):
            for prog, vertex, payload in init:
                eng.init_program(prog, vertex, payload=payload)

        ckpt_path = args.checkpoint_path
        ckpt_tmp = ckpt_path is None
        if ckpt_tmp:
            fd, ckpt_path = tempfile.mkstemp(prefix="repro_ckpt_", suffix=".npz")
            os.close(fd)
        try:
            with WallTimer() as timer:
                fault_result = FaultTolerantRunner(
                    engine_factory,
                    stream_factory,
                    plan,
                    ckpt_path,
                    checkpoint_interval=(
                        args.checkpoint_every * est
                        if args.checkpoint_every is not None else None
                    ),
                    init_fn=init_fn,
                ).run()
        finally:
            if ckpt_tmp and os.path.exists(ckpt_path):
                os.remove(ckpt_path)
        engine = fault_result.engine
    else:
        # Assemble through the lifecycle builder: config flags desugar
        # to TracerPlugin/MetricsPlugin, and the cross-cutting extras
        # (fault plan, freshness probe) ride as explicit plugins.
        builder = (
            EngineBuilder()
            .with_programs(programs)
            .with_config(
                EngineConfig(
                    n_ranks=n_ranks,
                    trace=args.trace is not None,
                    sample_interval=sample_interval,
                )
            )
            .with_cost_model(cost)
        )
        if plan is not None:
            # Transport must attach before the first message moves.
            builder.with_plugin(FaultInjectionPlugin(plan))
        if args.freshness:
            reference = _freshness_reference(args.algo, source_info)
            if reference is None or not programs:
                chat("freshness: nothing to probe for construction-only")
            else:
                builder.with_plugin(
                    FreshnessPlugin(programs[0].name, reference)
                )
        engine = builder.build()
        for prog, vertex, payload in init:
            engine.init_program(prog, vertex, payload=payload)
        engine.attach_streams(
            split_streams(src, dst, n_ranks, weights=weights, rng=rng)
        )
        if args.snapshot_at is not None and programs:
            engine.request_collection(
                programs[0].name, at_time=args.snapshot_at * est
            )

        with WallTimer() as timer:
            engine.run()
    report = throughput_report(engine, wall_seconds=timer.elapsed)
    chat(report.summary())

    wire = None
    if plan is not None:
        wire = (
            fault_result.wire if fault_result is not None
            else engine.transport.counters()
        )
        line = (
            f"faults: dropped={wire['frames_dropped']:,} "
            f"retransmits={wire['retransmits']:,} "
            f"dup_frames={wire['dup_frames']:,} acks={wire['acks_sent']:,}"
        )
        if fault_result is not None:
            line += (
                f" | recoveries={fault_result.recoveries}"
                f" checkpoints={fault_result.checkpoints}"
                f" replayed={fault_result.events_replayed:,}"
            )
        chat(line)

    for res in engine.collection_results:
        chat(
            f"snapshot #{res.collection_id}: {res.vertices_collected:,} vertices, "
            f"latency {res.latency * 1e6:.0f}us ({res.probe_waves} probe waves)"
        )

    meta = {
        "label": label,
        "algo": args.algo,
        "n_ranks": n_ranks,
        "events": int(len(src)),
        "cost_model": cost.to_dict(),
    }
    if args.trace is not None:
        from repro.obs import write_chrome_trace, write_trace_jsonl

        writer = (
            write_trace_jsonl if args.trace.endswith(".jsonl") else write_chrome_trace
        )
        writer(args.trace, engine.tracer, meta)
        chat(f"trace: {len(engine.tracer):,} events -> {args.trace}")
    if args.metrics is not None:
        from repro.obs import write_metrics_jsonl

        write_metrics_jsonl(args.metrics, engine.metrics, meta)
        chat(
            f"metrics: {len(engine.metrics.rows('sample')):,} samples "
            f"({len(engine.metrics.rows('freshness')):,} freshness rows) "
            f"-> {args.metrics}"
        )

    mismatches = _run_mismatches(args, engine, source_info) if args.verify else None
    if args.verify:
        if mismatches is None:
            chat("verify: nothing to verify for construction-only")
        elif mismatches:
            chat(
                f"VERIFY FAILED: {len(mismatches)} mismatches, e.g. {mismatches[0]}"
            )
        else:
            chat("verify: OK (dynamic state equals static oracle)")

    if args.json:
        doc = {
            **{k: v for k, v in meta.items() if k != "cost_model"},
            "backend": "des",
            "report": report.to_dict(),
            "collections": [
                # CollectionResult.prog is the engine's program index;
                # the document reads better with the name.
                {**r.to_dict(), "prog": engine.programs[r.prog].name}
                for r in engine.collection_results
            ],
            "verify": {
                "requested": bool(args.verify),
                "checked": bool(args.verify) and mismatches is not None,
                "mismatches": len(mismatches) if mismatches is not None else 0,
            },
            "trace_file": args.trace,
            "metrics_file": args.metrics,
        }
        if plan is not None:
            doc["faults"] = {
                "plan": plan.describe(),
                "wire": wire,
                "incarnations": (
                    fault_result.incarnations if fault_result else 1
                ),
                "recoveries": fault_result.recoveries if fault_result else 0,
                "checkpoints": fault_result.checkpoints if fault_result else 0,
                "events_replayed": (
                    fault_result.events_replayed if fault_result else 0
                ),
                "virtual_time": (
                    fault_result.virtual_time if fault_result
                    else engine.loop.max_time()
                ),
            }
        print(json_mod.dumps(doc, indent=2))
    return 1 if mismatches else 0


def _static_final(algo: str, src, dst, weights, source_info):
    """The static answer on the full stream's final topology — the
    monotone bound for absorbing cache admission, and the oracle for
    frozen-harvest verification."""
    from repro.staticalgs.algorithms import (
        static_bfs,
        static_cc,
        static_sssp,
        static_st_connectivity,
    )
    from repro.storage.csr import CSRGraph

    graph = CSRGraph.from_edges(src, dst, weights, symmetrize=True)
    if algo == "bfs":
        return static_bfs(graph, source_info)[0]
    if algo == "sssp":
        return static_sssp(graph, source_info)[0]
    if algo == "cc":
        return static_cc(graph)[0]
    if algo == "st":
        return static_st_connectivity(graph, source_info)[0]
    from repro.algorithms.widest_path import static_widest_path

    return static_widest_path(graph, source_info)


def _serve_report(chat, res) -> None:
    cs = res.cache_stats
    chat(
        f"served {res.queries:,} queries against {res.events_ingested:,} "
        f"ingested events"
        + (f" across {res.slices} ingest slices" if res.slices else "")
    )
    chat(
        f"latency: p50 {res.p50_us:.1f}us, p99 {res.p99_us:.1f}us "
        f"({res.qps:,.0f} q/s over pure query time)"
    )
    chat(
        f"cache: {res.hit_rate:.1%} hit rate ({cs.get('hits', 0):,} hits, "
        f"{cs.get('admissions', 0):,} admissions, "
        f"{cs.get('invalidations', 0):,} invalidations)"
    )
    line = (
        f"envelope: {res.stale_served:,} served stale-flagged, "
        f"{res.verified:,} stale-free answers verified vs the static oracle"
    )
    if res.violations:
        line += f", {len(res.violations)} VIOLATIONS"
    chat(line)


def _serve_doc(args, spec, res, serving, label, n_ranks, events) -> dict:
    return {
        "label": label,
        "algo": args.algo,
        "backend": args.backend,
        "n_ranks": n_ranks,
        "events": events,
        "workload": spec.describe(),
        "reference": bool(args.reference),
        "serving": res.to_dict(),
        "stats": serving.stats(),
        "verify": {
            "requested": bool(args.verify),
            "checked": res.verified,
            "violations": len(res.violations),
            "examples": res.violations[:5],
        },
    }


def cmd_serve(args: argparse.Namespace) -> int:
    import functools
    import json as json_mod

    from repro.serving import (
        FrozenBackend,
        MixedWorkloadDriver,
        ServingLayer,
        WorkloadSpec,
        make_prefix_oracle,
    )

    chat = functools.partial(print, file=sys.stderr) if args.json else print
    try:
        spec = WorkloadSpec.from_spec(args.workload)
    except ValueError as exc:
        chat(f"serve: bad --workload spec: {exc}")
        return 2
    rng = np.random.default_rng(args.seed)
    src, dst, weights, label = _load_stream(args, chat, rng)
    if len(src) == 0:
        chat("serve: empty event stream")
        return 2
    programs, init, source_info = _make_programs(args.algo, src, args.sources)
    pool = np.unique(np.concatenate([src, dst]))
    aux = list(range(len(source_info))) if args.algo == "st" else None
    n_ranks = (
        args.ranks if args.ranks is not None
        else args.nodes * args.ranks_per_node
    )

    reference = None
    if args.reference or (args.verify and args.backend == "mp"):
        reference = _static_final(args.algo, src, dst, weights, source_info)

    if args.backend == "mp":
        from repro.events.stream import split_streams as _split
        from repro.parallel import WireConfig, run_parallel

        chat(
            f"serve: backend mp, {n_ranks} ranks, {args.wire} wire "
            "(run to quiescence, then serve the harvested state)"
        )
        result = run_parallel(
            programs,
            _split(src, dst, n_ranks, weights=weights, rng=rng),
            config=EngineConfig(n_ranks=n_ranks),
            wire=WireConfig(kind=args.wire),
            init=init,
        )
        chat(
            f"mp ingest: {result.source_events:,} events in "
            f"{result.wall_seconds:.3f}s wall"
        )
        serving = ServingLayer(FrozenBackend.from_parallel_result(result, programs))
        if args.reference and reference is not None:
            serving.set_reference(programs[0].name, reference)
        oracle_fn = (lambda: reference) if args.verify else None
        driver = MixedWorkloadDriver(
            serving, spec, pool, args.algo, aux=aux, oracle_fn=oracle_fn
        )
        n_queries = (
            args.queries if args.queries is not None
            else spec.max_queries
            if spec.max_queries is not None
            else max(int(len(src) * spec.ratio), 1)
        )
        res = driver.serve_only(n_queries)
        res.events_ingested = result.source_events
    else:
        chat(
            f"serve: backend des, {n_ranks} ranks, workload {spec.describe()}"
            + (", full-stream reference bound" if args.reference else "")
        )
        engine = (
            EngineBuilder()
            .with_programs(programs)
            .with_config(EngineConfig(n_ranks=n_ranks))
            .with_cost_model(CostModel(ranks_per_node=args.ranks_per_node))
            .build()
        )
        for prog, vertex, payload in init:
            engine.init_program(prog, vertex, payload=payload)
        engine.attach_streams(
            split_streams(src, dst, n_ranks, weights=weights, rng=rng)
        )
        serving = ServingLayer(engine)
        if args.reference and reference is not None:
            serving.set_reference(programs[0].name, reference)
        oracle_fn = None
        if args.verify:
            if args.algo == "st":
                oracle_fn = make_prefix_oracle(engine, "st", sources=source_info)
            elif args.algo == "cc":
                oracle_fn = make_prefix_oracle(engine, "cc")
            else:
                oracle_fn = make_prefix_oracle(
                    engine, args.algo, source=source_info
                )
        driver = MixedWorkloadDriver(
            serving, spec, pool, args.algo, aux=aux, oracle_fn=oracle_fn
        )
        res = driver.run()

    _serve_report(chat, res)
    if args.metrics is not None:
        from repro.obs import write_metrics_jsonl

        write_metrics_jsonl(args.metrics, serving.metrics)
        h = serving.metrics.histograms.get("serve_latency_us")
        chat(
            f"metrics: {len(serving.metrics.counters)} counters, "
            f"latency histogram of {h.count if h is not None else 0:,} "
            f"queries -> {args.metrics}"
        )
    if args.json:
        print(
            json_mod.dumps(
                _serve_doc(args, spec, res, serving, label, n_ranks, len(src)),
                indent=2,
            )
        )
    if res.violations:
        chat(f"ENVELOPE VIOLATION: e.g. {res.violations[0]}")
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import read_jsonl, render_metrics_report, render_trace_report

    if args.trace is None and args.metrics is None:
        print("report: pass --trace and/or --metrics", file=sys.stderr)
        return 2
    sections = []
    if args.trace is not None:
        sections.append(render_trace_report(args.trace))
    if args.metrics is not None:
        sections.append(render_metrics_report(read_jsonl(args.metrics)))
    print("\n\n".join(sections))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "generate":
        return cmd_generate(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
