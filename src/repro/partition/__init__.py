"""Vertex partitioning across ranks (§III-C).

The paper assigns vertex ``V`` to process ``hash(V) mod P`` — a form of
consistent hashing so any process can locate any vertex's owner in
constant time with no communication, at the cost of edge imbalance on
power-law graphs.  We provide that partitioner, two baselines (modulo on
the raw ID and contiguous blocks), and balance diagnostics used by the
partitioning ablation bench.
"""

from repro.partition.partitioners import (
    BlockPartitioner,
    ConsistentHashPartitioner,
    ModuloPartitioner,
    Partitioner,
)
from repro.partition.stats import PartitionStats, measure_balance

__all__ = [
    "BlockPartitioner",
    "ConsistentHashPartitioner",
    "ModuloPartitioner",
    "Partitioner",
    "PartitionStats",
    "measure_balance",
]
