"""Partition balance diagnostics.

§III-C predicts: "Consistent hashing produces a balanced, uniform
partitioning in terms of the number of vertices, yet the resulting edge
distribution may not be balanced" on power-law graphs.  These metrics let
the ablation bench verify both halves of that claim quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.partitioners import Partitioner


@dataclass(frozen=True)
class PartitionStats:
    """Balance summary for one (partitioner, graph) pair.

    ``*_imbalance`` is max/mean load (1.0 = perfectly balanced); ``*_cv``
    is the coefficient of variation (std/mean).
    """

    n_ranks: int
    vertex_counts: tuple[int, ...]
    edge_counts: tuple[int, ...]

    @property
    def vertex_imbalance(self) -> float:
        counts = np.array(self.vertex_counts, dtype=np.float64)
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0

    @property
    def edge_imbalance(self) -> float:
        counts = np.array(self.edge_counts, dtype=np.float64)
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0

    @property
    def vertex_cv(self) -> float:
        counts = np.array(self.vertex_counts, dtype=np.float64)
        mean = counts.mean()
        return float(counts.std() / mean) if mean > 0 else 0.0

    @property
    def edge_cv(self) -> float:
        counts = np.array(self.edge_counts, dtype=np.float64)
        mean = counts.mean()
        return float(counts.std() / mean) if mean > 0 else 0.0


def measure_balance(
    partitioner: Partitioner, src: np.ndarray, dst: np.ndarray
) -> PartitionStats:
    """Measure vertex and (source-located) edge balance of a partitioner.

    Directed edges are charged to the owner of their source vertex, since
    that is where the paper co-locates them (§III-C).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    vertices = np.unique(np.concatenate([src, dst])) if len(src) else np.empty(0, np.int64)
    p = partitioner.n_ranks
    v_owners = partitioner.owner_array(vertices) if len(vertices) else np.empty(0, np.int64)
    e_owners = partitioner.owner_array(src) if len(src) else np.empty(0, np.int64)
    v_counts = np.bincount(v_owners, minlength=p)
    e_counts = np.bincount(e_owners, minlength=p)
    return PartitionStats(
        n_ranks=p,
        vertex_counts=tuple(int(c) for c in v_counts),
        edge_counts=tuple(int(c) for c in e_counts),
    )
