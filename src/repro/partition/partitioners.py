"""Owner-of-vertex partitioning strategies.

All partitioners are pure functions of the vertex ID: "as each process
uses the same hash function, any process can determine in constant time
which process owns a vertex" (§III-C).  This purity is what allows every
rank to ingest edges independently and route them without a directory
service — the key enabler of split-stream ingestion.
"""

from __future__ import annotations

import numpy as np

from repro.util.hashing import stable_vertex_hash, stable_vertex_hash_array
from repro.util.validate import check_positive


class Partitioner:
    """Maps vertex IDs to owning ranks; immutable after construction."""

    n_ranks: int

    def owner(self, vertex_id: int) -> int:
        """Rank that owns ``vertex_id`` (in ``[0, n_ranks)``)."""
        raise NotImplementedError

    def owner_array(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner`; default falls back to the scalar."""
        return np.fromiter(
            (self.owner(int(v)) for v in vertex_ids), dtype=np.int64, count=len(vertex_ids)
        )


class ConsistentHashPartitioner(Partitioner):
    """The paper's partitioner: ``hash(V) mod P`` with a mixed hash.

    ``salt`` draws an independent hash function, so experiments can check
    sensitivity to the particular hash draw.
    """

    def __init__(self, n_ranks: int, salt: int = 0):
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self.salt = int(salt)

    def owner(self, vertex_id: int) -> int:
        return stable_vertex_hash(vertex_id, self.salt) % self.n_ranks

    def owner_array(self, vertex_ids: np.ndarray) -> np.ndarray:
        hashes = stable_vertex_hash_array(np.asarray(vertex_ids, dtype=np.int64), self.salt)
        return (hashes % np.uint64(self.n_ranks)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConsistentHashPartitioner(n_ranks={self.n_ranks}, salt={self.salt})"


class ModuloPartitioner(Partitioner):
    """Naive ``V mod P`` — a baseline showing why mixing matters.

    On generator output with structured IDs (e.g. RMAT quadrant bias),
    raw modulo correlates rank with graph structure; the ablation bench
    quantifies the resulting imbalance.
    """

    def __init__(self, n_ranks: int):
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)

    def owner(self, vertex_id: int) -> int:
        return int(vertex_id) % self.n_ranks

    def owner_array(self, vertex_ids: np.ndarray) -> np.ndarray:
        return np.asarray(vertex_ids, dtype=np.int64) % self.n_ranks


class BlockPartitioner(Partitioner):
    """Contiguous blocks over ``[0, num_vertices)`` — the static-layout
    baseline.  Requires the vertex universe size up front, which is
    exactly what a *dynamic* graph cannot provide (§III-C); it exists to
    let the ablation quantify what that a-priori knowledge buys."""

    def __init__(self, n_ranks: int, num_vertices: int):
        check_positive("n_ranks", n_ranks)
        check_positive("num_vertices", num_vertices)
        self.n_ranks = int(n_ranks)
        self.num_vertices = int(num_vertices)
        self._block = -(-self.num_vertices // self.n_ranks)  # ceil div

    def owner(self, vertex_id: int) -> int:
        v = int(vertex_id)
        if not 0 <= v < self.num_vertices:
            raise ValueError(
                f"vertex {v} outside the static universe [0, {self.num_vertices})"
            )
        return v // self._block

    def owner_array(self, vertex_ids: np.ndarray) -> np.ndarray:
        v = np.asarray(vertex_ids, dtype=np.int64)
        if ((v < 0) | (v >= self.num_vertices)).any():
            raise ValueError("vertex outside the static universe")
        return v // self._block
