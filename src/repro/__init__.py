"""repro — Incremental Graph Processing for On-Line Analytics.

A from-scratch Python reproduction of Sallinen, Pearce & Ripeanu,
*Incremental Graph Processing for On-Line Analytics* (IPDPS 2019):
an event-centric framework in which REMO (recursive-update,
monotonic-convergence) algorithms maintain live, queryable answers —
BFS levels, shortest-path costs, component labels, multi-source
connectivity — while the graph evolves one edge event at a time,
processed asynchronously and without shared state across a (simulated)
shared-nothing cluster.

Quickstart::

    import numpy as np
    from repro import (
        DynamicEngine, EngineConfig, IncrementalBFS, split_streams,
    )

    src = np.array([0, 1, 2, 3]); dst = np.array([1, 2, 3, 4])
    bfs = IncrementalBFS()
    engine = DynamicEngine([bfs], EngineConfig(n_ranks=4))
    engine.init_program("bfs", 0)
    engine.attach_streams(split_streams(src, dst, 4))
    engine.run()
    engine.value_of("bfs", 4)   # -> 5 (source is level 1)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.algorithms import (
    INF,
    DegreeTracker,
    DeterministicBFS,
    GenerationalBFS,
    GenerationalCC,
    GenerationalSSSP,
    GenerationalST,
    GenerationalWidest,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    MultiSTConnectivity,
    WidestPath,
)
from repro.analytics import parallel_throughput_report, throughput_report
from repro.batching import SnapshotPipeline
from repro.comm import CostModel
from repro.events import (
    ADD,
    DELETE,
    ArrayEventStream,
    EdgeEvent,
    ListEventStream,
    StreamMultiplexer,
    split_streams,
)
from repro.faults import (
    FaultPlan,
    FaultRunResult,
    FaultTolerantRunner,
    RankCrash,
    RankStall,
)
from repro.generators import (
    barabasi_albert_edges,
    erdos_renyi_edges,
    generate_preset,
    rmat_edges,
    uniform_weights,
)
from repro.partition import ConsistentHashPartitioner
from repro.runtime import (
    CollectionResult,
    DynamicEngine,
    EngineConfig,
    ReferenceEngine,
    UnsupportedCollectionError,
    VertexContext,
    VertexProgram,
)
from repro.runtime.program import CallbackProgram
from repro.serving import (
    MixedWorkloadDriver,
    QueryResult,
    ServingLayer,
    StableValueCache,
    WorkloadSpec,
)
from repro.storage import CSRGraph, DegAwareRHH, RobinHoodMap

__version__ = "1.0.0"

__all__ = [
    "INF",
    "DegreeTracker",
    "DeterministicBFS",
    "GenerationalBFS",
    "GenerationalCC",
    "GenerationalSSSP",
    "GenerationalST",
    "GenerationalWidest",
    "IncrementalBFS",
    "IncrementalCC",
    "IncrementalSSSP",
    "MultiSTConnectivity",
    "WidestPath",
    "parallel_throughput_report",
    "throughput_report",
    "SnapshotPipeline",
    "CostModel",
    "ADD",
    "DELETE",
    "ArrayEventStream",
    "EdgeEvent",
    "ListEventStream",
    "StreamMultiplexer",
    "split_streams",
    "FaultPlan",
    "FaultRunResult",
    "FaultTolerantRunner",
    "RankCrash",
    "RankStall",
    "barabasi_albert_edges",
    "erdos_renyi_edges",
    "generate_preset",
    "rmat_edges",
    "uniform_weights",
    "ConsistentHashPartitioner",
    "CollectionResult",
    "DynamicEngine",
    "EngineConfig",
    "UnsupportedCollectionError",
    "ReferenceEngine",
    "VertexContext",
    "VertexProgram",
    "CallbackProgram",
    "MixedWorkloadDriver",
    "QueryResult",
    "ServingLayer",
    "StableValueCache",
    "WorkloadSpec",
    "CSRGraph",
    "DegAwareRHH",
    "RobinHoodMap",
    "__version__",
]
