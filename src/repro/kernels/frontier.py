"""Array frontier kernels: vectorized REMO propagation to a fixpoint.

The per-event engine reaches the monotone fixpoint by recursive visitor
events (Alg. 3); these kernels reach the *same* fixpoint by repeated
whole-frontier relaxation over a CSR adjacency:

* gather the frontier vertices' out-edges (ragged gather, no Python
  loop over vertices),
* compute candidate values (``tail_value + weight`` for min-plus,
  the tail's label for max-label),
* scatter-reduce into the dense value array (``np.minimum.at`` /
  ``np.maximum.at``),
* the heads whose value changed form the next frontier.

Because REMO state is monotone and the relaxation operator matches the
program's ``on_update`` comparison exactly, the fixpoint is independent
of event interleaving — the kernel result is bitwise-equal to what the
per-event path converges to over the same topology (the §II-B
convergence argument, vectorized).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import INF
from repro.util.hashing import stable_vertex_hash_array

_CC_LABEL_SALT = 0xCC  # must match repro.algorithms.cc._LABEL_SALT


class FrontierKernel:
    """One program's vectorized relaxation strategy.

    Values live in a dense per-vertex array of ``dtype``; vertex ids are
    dense indices assigned by the bulk controller.  ``0`` never appears
    in the dense array — the engine's "unset" sentinel is materialised
    eagerly by :meth:`init_values` (INF for min kernels, the hash label
    for CC), exactly as the per-event callbacks do on first touch.
    """

    dtype: np.dtype = np.dtype(np.int64)

    def init_values(self, ids: np.ndarray) -> np.ndarray:
        """Initial dense values for newly seen vertex ``ids``."""
        raise NotImplementedError

    def relax(self, tail_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Candidate values offered along edges with the given tails."""
        raise NotImplementedError

    def scatter(self, values: np.ndarray, heads: np.ndarray, candidates: np.ndarray) -> None:
        """Reduce candidates into ``values`` at ``heads`` (in place)."""
        raise NotImplementedError

    def can_emit(self, tail_values: np.ndarray) -> np.ndarray | None:
        """Mask of frontier entries that can improve a neighbour
        (None = all of them)."""
        return None

    def merge_dense(self, dense: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        """Monotone combine of dense values with values read back from
        the per-event dicts (0 in ``incoming`` means unset)."""
        raise NotImplementedError

    def materialize(self, values: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Resolve the engine's 0 = "unset" sentinel to the value the
        per-event callbacks would seed vertex ``ids`` with on first
        touch (INF for min-plus, the salted hash label for CC)."""
        raise NotImplementedError

    def improves(self, candidate: np.ndarray, current: np.ndarray) -> np.ndarray:
        """Strict-improvement mask: would adopting ``candidate`` change
        ``current``?  Matches the program's ``on_update`` comparison
        (both sides already materialized)."""
        raise NotImplementedError

    def delete_safe(
        self,
        tail_values: np.ndarray,
        head_values: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray | None:
        """Mask of edges whose removal provably cannot invalidate the
        current fixpoint (non-support edges): the head's value must be
        strictly better than anything the edge can offer, so dropping
        the edge removes only a losing candidate.  ``None`` (the
        default) declines the analysis — every delete is treated as a
        potential support break and the caller must de-opt to per-event
        dispatch."""
        return None


class MinPlusKernel(FrontierKernel):
    """BFS / SSSP: min-converging path costs, identity ``INF``.

    ``unit_weight=True`` relaxes ``tail + 1`` (BFS levels); otherwise
    ``tail + weight`` (SSSP costs).  Matches Alg. 4/5's
    ``value > vis_val + weight`` adoption rule.
    """

    dtype = np.dtype(np.int64)

    def __init__(self, unit_weight: bool = False):
        self.unit_weight = bool(unit_weight)

    def init_values(self, ids: np.ndarray) -> np.ndarray:
        return np.full(len(ids), INF, dtype=np.int64)

    def relax(self, tail_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        if self.unit_weight:
            return tail_values + 1
        return tail_values + weights

    def scatter(self, values: np.ndarray, heads: np.ndarray, candidates: np.ndarray) -> None:
        np.minimum.at(values, heads, candidates)

    def can_emit(self, tail_values: np.ndarray) -> np.ndarray | None:
        return tail_values < INF

    def merge_dense(self, dense: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        inc = np.where(incoming == 0, INF, incoming)
        return np.minimum(dense, inc)

    def materialize(self, values: np.ndarray, ids: np.ndarray) -> np.ndarray:
        return np.where(values == 0, INF, values)

    def improves(self, candidate: np.ndarray, current: np.ndarray) -> np.ndarray:
        return candidate < current

    def delete_safe(
        self,
        tail_values: np.ndarray,
        head_values: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray | None:
        # head < tail + w: the head's cost does not run through this
        # edge, so retiring it cannot orphan the head's value.  Equality
        # means the edge may be the sole support — unsafe.
        return head_values < self.relax(tail_values, weights)


class MaxLabelKernel(FrontierKernel):
    """CC: max-converging salted hash labels (Alg. 6, vectorized).

    Labels are uint64 (the full :func:`stable_vertex_hash` range); the
    zero hash folds to 1, matching ``component_label``.
    """

    dtype = np.dtype(np.uint64)

    def init_values(self, ids: np.ndarray) -> np.ndarray:
        labels = stable_vertex_hash_array(np.asarray(ids, dtype=np.int64), _CC_LABEL_SALT)
        return np.where(labels == 0, np.uint64(1), labels)

    def relax(self, tail_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return tail_values

    def scatter(self, values: np.ndarray, heads: np.ndarray, candidates: np.ndarray) -> None:
        np.maximum.at(values, heads, candidates)

    def merge_dense(self, dense: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        return np.maximum(dense, incoming)

    def materialize(self, values: np.ndarray, ids: np.ndarray) -> np.ndarray:
        if not (values == 0).any():
            return values
        return np.where(values == 0, self.init_values(ids), values)

    def improves(self, candidate: np.ndarray, current: np.ndarray) -> np.ndarray:
        return candidate > current


# ----------------------------------------------------------------------
# CSR helpers
# ----------------------------------------------------------------------
def csr_indptr(n_vertices: int, sorted_tails: np.ndarray) -> np.ndarray:
    """Row-pointer array for edges already sorted by (dense) tail id."""
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(np.bincount(sorted_tails, minlength=n_vertices), out=indptr[1:])
    return indptr


def build_csr(
    n_vertices: int,
    tails: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort directed edges into CSR form: ``(indptr, heads, weights)``.

    ``tails``/``heads`` are dense vertex indices in ``[0, n_vertices)``.
    """
    order = np.argsort(tails, kind="stable")
    tails = np.asarray(tails, dtype=np.int64)[order]
    return (
        csr_indptr(n_vertices, tails),
        np.asarray(heads, dtype=np.int64)[order],
        np.asarray(weights, dtype=np.int64)[order],
    )


def relax_to_fixpoint(
    indptr: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
    values: np.ndarray,
    frontier: np.ndarray,
    kernel: FrontierKernel,
) -> tuple[int, int]:
    """Relax ``frontier`` over the CSR until no value changes.

    ``values`` is mutated in place.  Returns ``(rounds, relaxations)``
    for cost accounting — ``relaxations`` counts edge relaxations, the
    bulk analogue of per-event UPDATE visits.
    """
    frontier = np.unique(np.asarray(frontier, dtype=np.int64))
    rounds = 0
    relaxations = 0
    while frontier.size:
        vals_f = values[frontier]
        mask = kernel.can_emit(vals_f)
        if mask is not None:
            frontier = frontier[mask]
            vals_f = vals_f[mask]
            if not frontier.size:
                break
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        nz = counts > 0
        if not nz.all():
            frontier, vals_f, starts, counts = (
                frontier[nz], vals_f[nz], starts[nz], counts[nz],
            )
        total = int(counts.sum())
        if total == 0:
            break
        rounds += 1
        relaxations += total
        # Ragged gather of every frontier vertex's out-edge slice.
        cum = np.cumsum(counts)
        idx = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
        idx += np.repeat(starts, counts)
        e_heads = heads[idx]
        candidates = kernel.relax(np.repeat(vals_f, counts), weights[idx])
        old = values[e_heads]
        kernel.scatter(values, e_heads, candidates)
        changed = values[e_heads] != old
        frontier = np.unique(e_heads[changed])
    return rounds, relaxations
