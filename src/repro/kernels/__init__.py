"""Vectorized delta-frontier kernels for the bulk-ingest fast path.

A kernel is the array-native counterpart of a REMO vertex program's
``on_update`` logic: instead of one Python callback per visitor event,
a whole frontier's worth of candidate values is relaxed against the
topology with numpy scatter-reduces (``np.minimum.at`` for BFS/SSSP,
``np.maximum.at`` for CC).  Programs declare their kernel via the
``bulk_kernel`` class attribute (next to ``combine``); see
:mod:`repro.runtime.bulk` for how the engine drives them.
"""

from repro.kernels.frontier import (
    FrontierKernel,
    MaxLabelKernel,
    MinPlusKernel,
    build_csr,
    csr_indptr,
    relax_to_fixpoint,
)

__all__ = [
    "FrontierKernel",
    "MaxLabelKernel",
    "MinPlusKernel",
    "build_csr",
    "csr_indptr",
    "relax_to_fixpoint",
]
