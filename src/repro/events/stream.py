"""Ordered event streams and stream splitting.

A stream is the unit of ordering in the paper's model: within a stream,
events are totally ordered; across streams they are concurrent.  The
evaluation parallelises ingestion "into one stream per MPI rank" (§V-A),
which :func:`split_streams` reproduces: a pre-randomised edge list is
dealt across ``n`` streams, each preserving its own order.

Streams expose a pull interface (``pull() -> event | None``) because the
saturation methodology has each rank "pulling a topology event as soon as
local work is completed".
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.events.types import ADD, DELETE


class EventStream:
    """Abstract ordered stream of event tuples ``(kind, src, dst, weight)``."""

    stream_id: int

    def pull(self) -> tuple[int, int, int, int] | None:
        """Return the next event, or None when exhausted."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[tuple[int, int, int, int]]:
        while (ev := self.pull()) is not None:
            yield ev

    def remaining(self) -> int:
        """Number of events not yet pulled (if known)."""
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:
        return self.remaining() == 0

    @property
    def add_only(self) -> bool:
        """True iff the stream provably contains only ADD events — the
        precondition for the bulk-ingest fast path.  Subclasses that
        know their contents override this; the conservative default is
        False (bulk ineligible)."""
        return False

    def pull_chunk(
        self, max_events: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pull up to ``max_events`` events as ``(src, dst, weight)``
        int64 columns (the bulk-ingest fast path).

        Only valid on :attr:`add_only` streams — the tuple carries no
        event kinds.  The base implementation loops :meth:`pull`;
        array-backed streams override with zero-copy slices.
        """
        srcs: list[int] = []
        dsts: list[int] = []
        ws: list[int] = []
        while len(srcs) < max_events:
            ev = self.pull()
            if ev is None:
                break
            kind, s, d, w = ev
            if kind != ADD:  # pragma: no cover - add_only violated
                raise ValueError("pull_chunk on a stream with non-ADD events")
            srcs.append(s)
            dsts.append(d)
            ws.append(w)
        return (
            np.asarray(srcs, dtype=np.int64),
            np.asarray(dsts, dtype=np.int64),
            np.asarray(ws, dtype=np.int64),
        )


class ArrayEventStream(EventStream):
    """A stream backed by parallel NumPy columns (the fast path).

    Columns are materialised once; ``pull`` is an index bump.  ``kinds``
    may be omitted for pure add-only streams.
    """

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        kinds: np.ndarray | None = None,
        stream_id: int = 0,
    ):
        n = len(src)
        if len(dst) != n:
            raise ValueError("src/dst length mismatch")
        self._src = np.asarray(src, dtype=np.int64)
        self._dst = np.asarray(dst, dtype=np.int64)
        if weights is None:
            self._weights = np.ones(n, dtype=np.int64)
        else:
            if len(weights) != n:
                raise ValueError("weights length mismatch")
            self._weights = np.asarray(weights, dtype=np.int64)
        if kinds is None:
            self._kinds = None
        else:
            if len(kinds) != n:
                raise ValueError("kinds length mismatch")
            kinds = np.asarray(kinds, dtype=np.int64)
            bad = ~np.isin(kinds, (ADD, DELETE))
            if bad.any():
                raise ValueError(f"unknown event kinds at {np.nonzero(bad)[0][:5]}")
            self._kinds = kinds
        self._add_only = self._kinds is None or not bool(
            (self._kinds == DELETE).any()
        )
        self._cursor = 0
        self._n = n
        self.stream_id = stream_id

    def pull(self) -> tuple[int, int, int, int] | None:
        i = self._cursor
        if i >= self._n:
            return None
        self._cursor = i + 1
        kind = ADD if self._kinds is None else int(self._kinds[i])
        return (kind, int(self._src[i]), int(self._dst[i]), int(self._weights[i]))

    def remaining(self) -> int:
        return self._n - self._cursor

    @property
    def add_only(self) -> bool:
        return self._add_only

    def pull_chunk(
        self, max_events: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy chunk pull: slice views over the backing columns.

        Only valid on :attr:`add_only` streams — the returned columns
        carry no event kinds, so slicing a delete-carrying stream here
        would silently reinterpret its DELETEs as ADDs.
        """
        if not self._add_only:
            raise ValueError(
                "pull_chunk on a stream with non-ADD events; "
                "delete-carrying streams must be pulled per-event"
            )
        i = self._cursor
        j = min(i + max_events, self._n)
        self._cursor = j
        return self._src[i:j], self._dst[i:j], self._weights[i:j]

    def __len__(self) -> int:
        return self._n

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """The backing ``(src, dst, weights, kinds)`` columns (kinds is
        None for pure-ADD streams) — picklable as-is, so a stream can be
        shipped to an mp worker and rebuilt with ``ArrayEventStream(*cols)``."""
        return (self._src, self._dst, self._weights, self._kinds)

    def reset(self) -> None:
        """Rewind to the beginning (streams are replayable for re-runs)."""
        self._cursor = 0

    @property
    def position(self) -> int:
        """Events pulled so far (checkpointable replay position)."""
        return self._cursor

    def seek(self, position: int) -> None:
        """Jump to an absolute replay position (crash recovery: resume
        ingestion at the suffix after the last checkpoint)."""
        if not 0 <= position <= self._n:
            raise ValueError(f"position {position} out of range [0, {self._n}]")
        self._cursor = int(position)


class ListEventStream(EventStream):
    """A stream over an explicit list of event tuples (tests, examples)."""

    def __init__(self, events: Sequence[tuple[int, int, int, int]], stream_id: int = 0):
        self._events = [tuple(int(x) for x in ev) for ev in events]
        for ev in self._events:
            if len(ev) != 4:
                raise ValueError(f"event must be (kind, src, dst, weight), got {ev!r}")
            if ev[0] not in (ADD, DELETE):
                raise ValueError(f"unknown event kind in {ev!r}")
        self._add_only = all(ev[0] == ADD for ev in self._events)
        self._cursor = 0
        self.stream_id = stream_id

    def pull(self) -> tuple[int, int, int, int] | None:
        if self._cursor >= len(self._events):
            return None
        ev = self._events[self._cursor]
        self._cursor += 1
        return ev  # type: ignore[return-value]

    def remaining(self) -> int:
        return len(self._events) - self._cursor

    @property
    def add_only(self) -> bool:
        return self._add_only

    def __len__(self) -> int:
        return len(self._events)

    def reset(self) -> None:
        self._cursor = 0

    @property
    def position(self) -> int:
        """Events pulled so far (checkpointable replay position)."""
        return self._cursor

    def seek(self, position: int) -> None:
        """Jump to an absolute replay position (crash recovery)."""
        if not 0 <= position <= len(self._events):
            raise ValueError(
                f"position {position} out of range [0, {len(self._events)}]"
            )
        self._cursor = int(position)


def split_round_robin(n_events: int, n_streams: int) -> list[np.ndarray]:
    """Index sets dealing ``n_events`` across ``n_streams`` round-robin."""
    if n_streams <= 0:
        raise ValueError(f"n_streams must be > 0, got {n_streams}")
    return [np.arange(k, n_events, n_streams) for k in range(n_streams)]


def split_streams(
    src: np.ndarray,
    dst: np.ndarray,
    n_streams: int,
    weights: np.ndarray | None = None,
    kinds: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> list[ArrayEventStream]:
    """Split one edge list into ``n_streams`` ordered streams.

    If ``rng`` is given the edge list is globally shuffled first (the
    paper pre-randomises edges before ingestion, §V-A); the shuffled list
    is then dealt round-robin so stream lengths differ by at most one.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    n = len(src)
    if weights is None:
        weights = np.ones(n, dtype=np.int64)
    if rng is not None:
        perm = rng.permutation(n)
        src, dst, weights = src[perm], dst[perm], np.asarray(weights)[perm]
        if kinds is not None:
            kinds = np.asarray(kinds)[perm]
    out = []
    for sid, idx in enumerate(split_round_robin(n, n_streams)):
        out.append(
            ArrayEventStream(
                src[idx],
                dst[idx],
                np.asarray(weights)[idx],
                None if kinds is None else np.asarray(kinds)[idx],
                stream_id=sid,
            )
        )
    return out


def events_from_iterable(
    events: Iterable[tuple[int, int, int, int]], stream_id: int = 0
) -> ListEventStream:
    """Materialise an iterable of event tuples into a replayable stream."""
    return ListEventStream(list(events), stream_id=stream_id)
