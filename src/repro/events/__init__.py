"""Topology-event model and event streams.

The paper's middleware ingests graph changes as *events* flowing over one
or more ordered streams (§II-A, Fig. 1): "Events in the same stream are
ordered while events across streams do not have a relative order."

Hot-path events are plain tuples ``(kind, src, dst, weight)`` (see
:mod:`repro.events.types`) so the simulator does not pay Python object
overhead per edge; the classes here manage batching, ordering, splitting
an edge list into per-rank streams, and multiplexing streams back into a
single interleaved feed for the sequential engine.
"""

from repro.events.types import (
    ADD,
    DELETE,
    EdgeEvent,
    kind_name,
)
from repro.events.stream import (
    ArrayEventStream,
    EventStream,
    ListEventStream,
    split_round_robin,
    split_streams,
)
from repro.events.io import (
    read_edge_npz,
    read_edge_text,
    write_edge_npz,
    write_edge_text,
)
from repro.events.multiplex import StreamMultiplexer

__all__ = [
    "ADD",
    "DELETE",
    "EdgeEvent",
    "kind_name",
    "ArrayEventStream",
    "EventStream",
    "ListEventStream",
    "split_round_robin",
    "split_streams",
    "StreamMultiplexer",
    "read_edge_npz",
    "read_edge_text",
    "write_edge_npz",
    "write_edge_text",
]
