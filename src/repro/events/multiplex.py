"""Merging multiple ordered streams into one interleaved feed.

Across streams the paper defines *no* relative order — any interleaving
is a legal execution.  The multiplexer makes that nondeterminism explicit
and controllable: round-robin interleaving for determinism, or seeded
random interleaving to exercise different legal orders (the property
tests use this to check that REMO algorithms converge to the same answer
under every interleaving).
"""

from __future__ import annotations

import numpy as np

from repro.events.stream import EventStream


class StreamMultiplexer(EventStream):
    """Interleaves several streams while preserving each stream's order.

    Parameters
    ----------
    streams:
        The ordered input streams.
    policy:
        ``"round_robin"`` (default) cycles exhausted-aware through the
        streams; ``"random"`` picks the next stream uniformly (weighted
        by remaining length so long streams do not starve), seeded by
        ``rng``.
    """

    def __init__(
        self,
        streams: list[EventStream],
        policy: str = "round_robin",
        rng: np.random.Generator | None = None,
    ):
        if not streams:
            raise ValueError("need at least one stream")
        if policy not in ("round_robin", "random"):
            raise ValueError(f"unknown policy {policy!r}")
        if policy == "random" and rng is None:
            raise ValueError("policy='random' requires an rng")
        self._streams = list(streams)
        self._policy = policy
        self._rng = rng
        self._next = 0
        self.stream_id = -1  # a multiplexer is not itself an ordered stream

    def pull(self) -> tuple[int, int, int, int] | None:
        live = [s for s in self._streams if not s.exhausted]
        if not live:
            return None
        if self._policy == "random":
            weights = np.array([s.remaining() for s in live], dtype=np.float64)
            total = weights.sum()
            if total > 0.0:
                pick = live[int(self._rng.choice(len(live), p=weights / total))]
            else:
                # Live streams may legitimately report remaining() == 0
                # (unknown-length sources); a zero sum would turn the
                # probabilities into NaN and crash rng.choice — fall
                # back to a uniform choice instead.
                pick = live[int(self._rng.integers(len(live)))]
            return pick.pull()
        # round robin: advance the cursor until we find a live stream
        n = len(self._streams)
        for _ in range(n):
            s = self._streams[self._next % n]
            self._next += 1
            if not s.exhausted:
                return s.pull()
        return None  # pragma: no cover - unreachable given `live` above

    def remaining(self) -> int:
        return sum(s.remaining() for s in self._streams)

    @property
    def source_streams(self) -> list[EventStream]:
        return list(self._streams)
