"""Topology-event kinds and the boxed event record.

Two representations coexist deliberately:

* **hot path** — a bare tuple ``(kind, src, dst, weight)``; every stream
  yields these, and the simulator routes them without boxing.
* **API path** — :class:`EdgeEvent`, an immutable record with named
  fields, used at user-facing boundaries (callbacks, logs, tests).

Kinds cover the paper's scope: ``ADD`` for incremental topology changes
(§II; attribute updates are modelled as re-adds with a new weight, which
the paper treats "similar to an addition") and ``DELETE`` for the
decremental extension of §VI-B.
"""

from __future__ import annotations

from typing import NamedTuple

ADD = 0
DELETE = 1

_KIND_NAMES = {ADD: "ADD", DELETE: "DELETE"}


def kind_name(kind: int) -> str:
    """Human-readable name of an event kind."""
    try:
        return _KIND_NAMES[kind]
    except KeyError:
        raise ValueError(f"unknown event kind {kind!r}") from None


class EdgeEvent(NamedTuple):
    """A boxed topology event.

    ``EdgeEvent`` is itself a 4-tuple in hot-path order, so it can be fed
    anywhere a bare event tuple is accepted.
    """

    kind: int
    src: int
    dst: int
    weight: int = 1

    @classmethod
    def add(cls, src: int, dst: int, weight: int = 1) -> "EdgeEvent":
        return cls(ADD, src, dst, weight)

    @classmethod
    def delete(cls, src: int, dst: int) -> "EdgeEvent":
        return cls(DELETE, src, dst, 0)

    def __repr__(self) -> str:
        w = f", w={self.weight}" if self.kind == ADD and self.weight != 1 else ""
        return f"{kind_name(self.kind)}({self.src}->{self.dst}{w})"
