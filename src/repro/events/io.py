"""Edge-list file I/O: persisting and streaming event workloads.

The paper's evaluation ingests edges "by reading [source, destination]
pairs from disk" (§V-A).  This module provides that path for real:

* **text format** — one event per line, whitespace-separated:
  ``src dst [weight]`` for adds, ``-src dst`` prefixed with ``d`` for
  deletes (``d src dst``); ``#`` comments and blank lines ignored.
  Interoperable with the common SNAP/edge-list conventions.
* **binary format** — a compressed ``.npz`` with parallel columns
  (kinds, src, dst, weights); the fast path for large workloads.

Readers return :class:`~repro.events.stream.ArrayEventStream` so the
result plugs straight into ``split_streams``/``attach_streams``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.events.stream import ArrayEventStream
from repro.events.types import ADD, DELETE


def write_edge_text(
    path: str | Path,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None = None,
    kinds: np.ndarray | None = None,
    header: str | None = None,
) -> int:
    """Write an event stream as a text edge list; returns lines written.

    Weights are omitted from a line when equal to 1 (the default),
    keeping plain-graph files interchangeable with standard edge lists.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    n = len(src)
    if weights is None:
        weights = np.ones(n, dtype=np.int64)
    if kinds is None:
        kinds = np.zeros(n, dtype=np.int64)
    path = Path(path)
    with path.open("w") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for i in range(n):
            prefix = "d " if kinds[i] == DELETE else ""
            suffix = f" {int(weights[i])}" if kinds[i] == ADD and weights[i] != 1 else ""
            fh.write(f"{prefix}{int(src[i])} {int(dst[i])}{suffix}\n")
    return n


def read_edge_text(path: str | Path, stream_id: int = 0) -> ArrayEventStream:
    """Parse a text edge list into a replayable event stream.

    Raises ``ValueError`` with the line number on malformed input.
    """
    kinds, srcs, dsts, weights = [], [], [], []
    with Path(path).open() as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            kind = ADD
            if parts[0] == "d":
                kind = DELETE
                parts = parts[1:]
            if len(parts) not in (2, 3):
                raise ValueError(f"{path}:{lineno}: malformed event {raw!r}")
            try:
                s, d = int(parts[0]), int(parts[1])
                w = int(parts[2]) if len(parts) == 3 else 1
            except ValueError:
                raise ValueError(f"{path}:{lineno}: non-integer field in {raw!r}") from None
            if kind == DELETE and len(parts) == 3:
                raise ValueError(f"{path}:{lineno}: delete events carry no weight")
            kinds.append(kind)
            srcs.append(s)
            dsts.append(d)
            weights.append(w)
    return ArrayEventStream(
        np.array(srcs, dtype=np.int64),
        np.array(dsts, dtype=np.int64),
        np.array(weights, dtype=np.int64),
        np.array(kinds, dtype=np.int64) if any(k == DELETE for k in kinds) else None,
        stream_id=stream_id,
    )


def write_edge_npz(
    path: str | Path,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None = None,
    kinds: np.ndarray | None = None,
) -> None:
    """Write an event stream as compressed binary columns (.npz)."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    n = len(src)
    np.savez_compressed(
        Path(path),
        src=src,
        dst=dst,
        weights=np.ones(n, np.int64) if weights is None else np.asarray(weights, np.int64),
        kinds=np.zeros(n, np.int64) if kinds is None else np.asarray(kinds, np.int64),
    )


def read_edge_npz(path: str | Path, stream_id: int = 0) -> ArrayEventStream:
    """Load a binary event stream written by :func:`write_edge_npz`."""
    with np.load(Path(path)) as data:
        for col in ("src", "dst", "weights", "kinds"):
            if col not in data:
                raise ValueError(f"{path}: missing column {col!r}")
        kinds = data["kinds"]
        return ArrayEventStream(
            data["src"],
            data["dst"],
            data["weights"],
            kinds if (kinds != ADD).any() else None,
            stream_id=stream_id,
        )
