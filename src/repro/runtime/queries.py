"""Local-state "When" queries (§II, §III-E).

A *trigger* attaches a predicate to a program's vertex-local state and a
user callback fired the moment the predicate first becomes true — the
paper's "When is vertex A connected to vertex B?" answered "in real-time
based on when a condition has been met".

For REMO algorithms the paper guarantees (§III-E): no false positives
(monotone state never regresses below the trigger condition in the
add-only regime) and exactly-once firing.  The manager enforces
once-semantics explicitly so the guarantee also holds for non-monotone
user programs.

Triggers observe *local* state: they are evaluated by the owning rank at
the instant a callback writes the value, with the event's virtual time —
no global coordination, which is the whole point (constant-time
observation, §III-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

Predicate = Callable[[int, Any], bool]  # (vertex, new_value) -> bool
TriggerCallback = Callable[[int, Any, float], None]  # (vertex, value, vtime)


@dataclass
class Trigger:
    """One registered "When" query."""

    trigger_id: int
    prog: int
    predicate: Predicate
    callback: TriggerCallback
    vertex: int | None = None  # None = watch every vertex
    once: bool = True
    fired_vertices: set[int] = field(default_factory=set)

    def consider(self, vertex: int, value: Any, time: float) -> bool:
        """Evaluate against a state change; fires the callback at most
        once per vertex when ``once``.  Returns True iff fired."""
        if self.vertex is not None and vertex != self.vertex:
            return False
        if self.once and vertex in self.fired_vertices:
            return False
        if not self.predicate(vertex, value):
            return False
        # Mark fired only *after* the callback returns: a raising
        # callback must not permanently suppress a once-trigger that
        # never actually delivered its notification — the condition is
        # still met, so the next state change retries it.
        self.callback(vertex, value, time)
        if self.once:
            self.fired_vertices.add(vertex)
        return True


class TriggerManager:
    """Holds triggers per program; consulted on every value write.

    Vertex-scoped triggers are indexed by ``(prog, vertex)`` so the
    per-write cost is one dict lookup plus a scan of only the separate
    any-vertex list — never a scan over every registered trigger
    (keeping the §III-E 'constant time' observation property even with
    tens of thousands of registered point subscriptions; see
    ``benchmarks/bench_trigger_index.py``).  Live per-program counts
    make the write-path guards (:meth:`has_triggers` / :meth:`has_any`)
    O(1), and removal prunes emptied index slots so deregistered
    subscriptions stop costing anything at all.
    """

    def __init__(self) -> None:
        self._next_id = 0
        # prog -> vertex -> [Trigger];  prog -> [Trigger] (any-vertex)
        self._by_vertex: dict[int, dict[int, list[Trigger]]] = {}
        self._global: dict[int, list[Trigger]] = {}
        # prog -> live trigger count (vertex-scoped + any-vertex)
        self._counts: dict[int, int] = {}
        self._total = 0
        self.fired_count = 0

    def add(
        self,
        prog: int,
        predicate: Predicate,
        callback: TriggerCallback,
        vertex: int | None = None,
        once: bool = True,
    ) -> Trigger:
        """Register a trigger; returns the handle (usable with remove)."""
        trig = Trigger(self._next_id, prog, predicate, callback, vertex, once)
        self._next_id += 1
        if vertex is None:
            self._global.setdefault(prog, []).append(trig)
        else:
            self._by_vertex.setdefault(prog, {}).setdefault(vertex, []).append(trig)
        self._counts[prog] = self._counts.get(prog, 0) + 1
        self._total += 1
        return trig

    def remove(self, trig: Trigger) -> bool:
        """Deregister; returns True iff the trigger was present.

        Emptied index slots are pruned so the per-write guards go back
        to reporting (and costing) nothing once every trigger on a
        program is gone.
        """
        if trig.vertex is None:
            lst = self._global.get(trig.prog, [])
            try:
                lst.remove(trig)
            except ValueError:
                return False
            if not lst:
                self._global.pop(trig.prog, None)
        else:
            per_v = self._by_vertex.get(trig.prog, {})
            lst = per_v.get(trig.vertex, [])
            try:
                lst.remove(trig)
            except ValueError:
                return False
            if not lst:
                per_v.pop(trig.vertex, None)
                if not per_v:
                    self._by_vertex.pop(trig.prog, None)
        self._counts[trig.prog] -= 1
        if not self._counts[trig.prog]:
            del self._counts[trig.prog]
        self._total -= 1
        return True

    def count(self, prog: int | None = None) -> int:
        """Live trigger count for one program (or all, when None)."""
        if prog is None:
            return self._total
        return self._counts.get(prog, 0)

    def has_triggers(self, prog: int) -> bool:
        return prog in self._counts

    def has_any(self) -> bool:
        """Any trigger registered on any program?  (Bulk-ingest
        eligibility: chunked replay cannot report the exact virtual
        instant a predicate first became true.)"""
        return self._total > 0

    def on_change(self, prog: int, vertex: int, value: Any, time: float) -> None:
        """Engine hook: a program value was written."""
        per_vertex = self._by_vertex.get(prog)
        if per_vertex is not None:
            for trig in per_vertex.get(vertex, ()):
                if trig.consider(vertex, value, time):
                    self.fired_count += 1
        for trig in self._global.get(prog, ()):
            if trig.consider(vertex, value, time):
                self.fired_count += 1
