"""Local-state "When" queries (§II, §III-E).

A *trigger* attaches a predicate to a program's vertex-local state and a
user callback fired the moment the predicate first becomes true — the
paper's "When is vertex A connected to vertex B?" answered "in real-time
based on when a condition has been met".

For REMO algorithms the paper guarantees (§III-E): no false positives
(monotone state never regresses below the trigger condition in the
add-only regime) and exactly-once firing.  The manager enforces
once-semantics explicitly so the guarantee also holds for non-monotone
user programs.

Triggers observe *local* state: they are evaluated by the owning rank at
the instant a callback writes the value, with the event's virtual time —
no global coordination, which is the whole point (constant-time
observation, §III-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

Predicate = Callable[[int, Any], bool]  # (vertex, new_value) -> bool
TriggerCallback = Callable[[int, Any, float], None]  # (vertex, value, vtime)


@dataclass
class Trigger:
    """One registered "When" query."""

    trigger_id: int
    prog: int
    predicate: Predicate
    callback: TriggerCallback
    vertex: int | None = None  # None = watch every vertex
    once: bool = True
    fired_vertices: set[int] = field(default_factory=set)

    def consider(self, vertex: int, value: Any, time: float) -> bool:
        """Evaluate against a state change; fires the callback at most
        once per vertex when ``once``.  Returns True iff fired."""
        if self.vertex is not None and vertex != self.vertex:
            return False
        if self.once and vertex in self.fired_vertices:
            return False
        if not self.predicate(vertex, value):
            return False
        # Mark fired only *after* the callback returns: a raising
        # callback must not permanently suppress a once-trigger that
        # never actually delivered its notification — the condition is
        # still met, so the next state change retries it.
        self.callback(vertex, value, time)
        if self.once:
            self.fired_vertices.add(vertex)
        return True


class TriggerManager:
    """Holds triggers per program; consulted on every value write.

    Vertex-scoped triggers are indexed by vertex so the per-write cost
    is a dict lookup when no global triggers exist (keeping the §III-E
    'constant time' observation property).
    """

    def __init__(self) -> None:
        self._next_id = 0
        # prog -> vertex -> [Trigger];  prog -> [Trigger] (global)
        self._by_vertex: dict[int, dict[int, list[Trigger]]] = {}
        self._global: dict[int, list[Trigger]] = {}
        self.fired_count = 0

    def add(
        self,
        prog: int,
        predicate: Predicate,
        callback: TriggerCallback,
        vertex: int | None = None,
        once: bool = True,
    ) -> Trigger:
        """Register a trigger; returns the handle (usable with remove)."""
        trig = Trigger(self._next_id, prog, predicate, callback, vertex, once)
        self._next_id += 1
        if vertex is None:
            self._global.setdefault(prog, []).append(trig)
        else:
            self._by_vertex.setdefault(prog, {}).setdefault(vertex, []).append(trig)
        return trig

    def remove(self, trig: Trigger) -> bool:
        """Deregister; returns True iff the trigger was present."""
        if trig.vertex is None:
            lst = self._global.get(trig.prog, [])
        else:
            lst = self._by_vertex.get(trig.prog, {}).get(trig.vertex, [])
        try:
            lst.remove(trig)
            return True
        except ValueError:
            return False

    def has_triggers(self, prog: int) -> bool:
        return bool(self._global.get(prog)) or bool(self._by_vertex.get(prog))

    def has_any(self) -> bool:
        """Any trigger registered on any program?  (Bulk-ingest
        eligibility: chunked replay cannot report the exact virtual
        instant a predicate first became true.)"""
        return any(self._global.values()) or any(
            any(lst for lst in per_v.values()) for per_v in self._by_vertex.values()
        )

    def on_change(self, prog: int, vertex: int, value: Any, time: float) -> None:
        """Engine hook: a program value was written."""
        per_vertex = self._by_vertex.get(prog)
        if per_vertex is not None:
            for trig in per_vertex.get(vertex, ()):
                if trig.consider(vertex, value, time):
                    self.fired_count += 1
        for trig in self._global.get(prog, ()):
            if trig.consider(vertex, value, time):
                self.fired_count += 1
