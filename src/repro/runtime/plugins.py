"""Plugin registry and typed hook sites for the dynamic engine.

Cross-cutting concerns — tracing, metrics sampling, freshness probes,
fault injection, bulk ingest, serving-cache invalidation, the mp
backend's dense-mirror folding — used to be hand-wired into the engine
as one-off attributes guarded by inline ``if x is not None`` checks.
This module replaces that with a small, uniform mechanism:

* a fixed catalogue of **hook sites** (:data:`HOOK_SITES`), each a
  named point in the engine hot path with a typed callback signature
  (the ``*Hook`` protocols below);
* an :class:`EnginePlugin` base class whose instances attach state in
  ``setup`` and contribute callbacks via ``hooks()``;
* a :class:`PluginRegistry` that **compiles** all registered callbacks
  into per-site flat tuples stored on the engine (``engine._hk_write``
  and friends).

The compiled representation is what keeps the disabled cost at the
historical ``is not None`` grade: an empty site is the empty tuple, so
the hot path pays exactly one attribute load plus one truth test —
``if self._hk_write:`` — and only iterates when at least one hook is
actually registered.  ``bench_obs_overhead.py`` gates this.

Hooks are *observers*: they run synchronously at their site but consume
no virtual time and must not mutate engine state that the DES schedule
depends on.  That is the bit-equality contract — an engine with any
set of plugins produces byte-identical results to a bare one.

Legacy :class:`~repro.runtime.engine.EngineConfig` flags
(``bulk_ingest`` / ``trace`` / ``sample_interval``) remain supported as
sugar: :func:`plugins_from_config` derives the equivalent plugin list,
and the engine constructor applies it when no explicit plugin list is
given.

For the mp backend, plugins cannot be pickled across the spawn
boundary; workers instead re-hydrate them from ``(name, kwargs)``
specs via :func:`build_plugin` (see :data:`PLUGIN_FACTORIES`).  Only
plugins declaring ``mp_safe = True`` may ride into workers — the
DES-only ones (tracer, sampler, faults) are rejected there exactly
like their legacy config flags.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.engine import DynamicEngine, EngineConfig

#: Every hook site, in catalogue order.  ``PluginRegistry.compile``
#: materialises one ``engine._hk_<suffix>`` tuple per entry.
HOOK_SITES: tuple[str, ...] = (
    "on_dispatch",
    "on_write",
    "on_insert",
    "on_delete",
    "on_bulk_flush",
    "on_collection_cut",
    "on_checkpoint",
    "on_quiesce",
)

#: Hook site -> the engine attribute holding its compiled tuple.
HOOK_ATTRS: dict[str, str] = {
    site: "_hk_" + site.removeprefix("on_") for site in HOOK_SITES
}


class DispatchHook(Protocol):
    """Fired after every visitor/control dispatch: ``(rank, vt, t0, t1)``
    with ``t0``/``t1`` the rank's virtual clock around the dispatch."""

    def __call__(self, rank: int, vt: int, t0: float, t1: float) -> None: ...


class WriteHook(Protocol):
    """Fired on every per-event vertex value write (including merge-mode
    folds during a collection): ``(prog, vertex, value)``."""

    def __call__(self, prog: int, vertex: int, value: Any) -> None: ...


class InsertHook(Protocol):
    """Fired on every applied edge insert: ``(src, dst, weight)``."""

    def __call__(self, src: int, dst: int, weight: Any) -> None: ...


class DeleteHook(Protocol):
    """Fired on every applied edge delete (both canonical and reverse
    sides): ``(src, dst)``."""

    def __call__(self, src: int, dst: int) -> None: ...


class BulkFlushHook(Protocol):
    """Fired once per program when the bulk-ingest dense mirror flushes
    back into the value dicts: ``(prog,)``."""

    def __call__(self, prog: int) -> None: ...


class CollectionCutHook(Protocol):
    """Fired when a versioned collection cuts:
    ``(collection_id, cut_version, prog)``."""

    def __call__(self, collection_id: int, cut_version: int, prog: int) -> None: ...


class CheckpointHook(Protocol):
    """Fired after a checkpoint save/load: ``(event, path)`` with
    ``event`` one of ``"save"`` / ``"load"``."""

    def __call__(self, event: str, path: str) -> None: ...


class QuiesceHook(Protocol):
    """Fired when :meth:`DynamicEngine.run` returns with the cluster
    quiescent: ``(engine,)``."""

    def __call__(self, engine: "DynamicEngine") -> None: ...


class EnginePlugin:
    """Base class for engine plugins.

    Subclasses override any subset of the lifecycle methods:

    ``configure(config)``
        May return a replacement :class:`EngineConfig` (builder phase,
        before construction).  Return ``None`` (or the input) to keep
        the config unchanged.
    ``setup(engine)``
        Attach state to the freshly built engine (runs in registration
        order during the ``setup`` lifecycle phase).
    ``hooks()``
        Mapping of hook-site name -> callback, merged into the compiled
        per-site tuples.  Unknown site names are rejected at compile.
    ``on_phase(phase, engine)``
        Observe genuine lifecycle transitions (``ingest`` / ``drain`` /
        ``collect`` / ``harvest`` / ``teardown``).
    ``harvest()``
        A picklable result payload, or ``None``.  The mp workers ship
        these back to the parent in the result dict.
    ``teardown(engine)``
        Release resources; runs in reverse registration order, at most
        once.
    """

    #: Registry key; must be unique within one engine.
    name: str = "plugin"
    #: Whether the plugin may ride into mp worker ranks.  DES-only
    #: plugins (tracer, sampler, faults) keep the default False.
    mp_safe: bool = False

    def configure(self, config: "EngineConfig") -> "EngineConfig | None":
        return config

    def setup(self, engine: "DynamicEngine") -> None:
        pass

    def hooks(self) -> Mapping[str, Callable[..., None]]:
        return {}

    def on_phase(self, phase: str, engine: "DynamicEngine") -> None:
        pass

    def harvest(self) -> Any:
        return None

    def teardown(self, engine: "DynamicEngine") -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class PluginRegistry:
    """Holds an engine's plugins and compiles their hooks.

    Static hooks come from plugins (via ``hooks()``); dynamic hooks are
    installed/uninstalled at runtime by subsystems that come and go
    (the serving layer's cache invalidation, the mp backend's
    vectorized applier).  Compilation writes, per site, the flat tuple
    ``static + dynamic`` onto the engine attribute named by
    :data:`HOOK_ATTRS` — firing order is therefore plugin registration
    order, then dynamic installation order.
    """

    def __init__(self, plugins: Iterable[EnginePlugin] = ()) -> None:
        self.plugins: list[EnginePlugin] = []
        self._static: dict[str, list[Callable[..., None]]] = {
            site: [] for site in HOOK_SITES
        }
        self._dynamic: dict[str, list[Callable[..., None]]] = {
            site: [] for site in HOOK_SITES
        }
        self._engine: "DynamicEngine | None" = None
        self._torn_down = False
        for plugin in plugins:
            self.register(plugin)

    # -- registration ---------------------------------------------------
    def register(self, plugin: EnginePlugin) -> None:
        """Add a plugin before compilation (duplicate names rejected)."""
        if self._engine is not None:
            raise RuntimeError(
                "registry already compiled; use register_late(plugin, engine)"
            )
        self._check_new(plugin)
        self.plugins.append(plugin)

    def register_late(self, plugin: EnginePlugin, engine: "DynamicEngine") -> None:
        """Add a plugin to a live engine: runs its ``setup`` immediately
        and recompiles the hook tuples."""
        if self._engine is not engine:
            raise RuntimeError("registry is not compiled for this engine")
        self._check_new(plugin)
        self.plugins.append(plugin)
        plugin.setup(engine)
        self._merge_hooks(plugin)
        self._recompile()

    def _check_new(self, plugin: EnginePlugin) -> None:
        if self._torn_down:
            raise RuntimeError("registry is torn down")
        if any(p.name == plugin.name for p in self.plugins):
            raise ValueError(f"duplicate plugin name {plugin.name!r}")

    def names(self) -> list[str]:
        return [p.name for p in self.plugins]

    def get(self, name: str) -> EnginePlugin | None:
        for p in self.plugins:
            if p.name == name:
                return p
        return None

    # -- lifecycle ------------------------------------------------------
    def configure(self, config: "EngineConfig") -> "EngineConfig":
        """Run every plugin's ``configure`` over ``config``, threading
        replacements through in registration order."""
        for plugin in self.plugins:
            new = plugin.configure(config)
            if new is not None:
                config = new
        return config

    def compile(self, engine: "DynamicEngine") -> None:
        """Bind to ``engine``: run every plugin's ``setup`` and write
        the per-site hook tuples onto the engine."""
        if self._engine is not None:
            raise RuntimeError("registry already compiled")
        self._engine = engine
        for plugin in self.plugins:
            plugin.setup(engine)
            self._merge_hooks(plugin)
        self._recompile()

    def _merge_hooks(self, plugin: EnginePlugin) -> None:
        for site, fn in plugin.hooks().items():
            if site not in self._static:
                raise ValueError(
                    f"plugin {plugin.name!r} registered unknown hook site "
                    f"{site!r}; known sites: {', '.join(HOOK_SITES)}"
                )
            self._static[site].append(fn)

    def notify_phase(self, phase: str, engine: "DynamicEngine") -> None:
        for plugin in self.plugins:
            plugin.on_phase(phase, engine)

    def harvest(self) -> dict[str, Any]:
        """Collect every plugin's non-None ``harvest()`` payload by
        name (the mp workers' result shipping)."""
        out: dict[str, Any] = {}
        for plugin in self.plugins:
            payload = plugin.harvest()
            if payload is not None:
                out[plugin.name] = payload
        return out

    def teardown(self, engine: "DynamicEngine") -> None:
        """Tear plugins down in reverse registration order and zero
        every hook tuple.  Idempotent."""
        if self._torn_down:
            return
        self._torn_down = True
        for plugin in reversed(self.plugins):
            plugin.teardown(engine)
        for site in HOOK_SITES:
            self._static[site].clear()
            self._dynamic[site].clear()
        self._recompile()

    # -- dynamic hooks --------------------------------------------------
    def install(self, site: str, fn: Callable[..., None]) -> None:
        """Append a dynamic hook at ``site`` and recompile that site."""
        if site not in self._dynamic:
            raise ValueError(f"unknown hook site {site!r}")
        self._dynamic[site].append(fn)
        self._recompile_site(site)

    def uninstall(self, site: str, fn: Callable[..., None]) -> bool:
        """Remove a previously installed dynamic hook; returns whether
        it was present."""
        if site not in self._dynamic:
            raise ValueError(f"unknown hook site {site!r}")
        try:
            self._dynamic[site].remove(fn)
        except ValueError:
            return False
        self._recompile_site(site)
        return True

    def installed(self, site: str) -> tuple[Callable[..., None], ...]:
        """The compiled tuple for ``site`` (static then dynamic)."""
        if site not in self._static:
            raise ValueError(f"unknown hook site {site!r}")
        return tuple(self._static[site] + self._dynamic[site])

    def _recompile_site(self, site: str) -> None:
        if self._engine is not None:
            setattr(
                self._engine,
                HOOK_ATTRS[site],
                tuple(self._static[site] + self._dynamic[site]),
            )

    def _recompile(self) -> None:
        for site in HOOK_SITES:
            self._recompile_site(site)


# ----------------------------------------------------------------------
# built-in plugins (the former EngineConfig flag wiring)
# ----------------------------------------------------------------------
class TracerPlugin(EnginePlugin):
    """Attach a :class:`repro.obs.Tracer` (the ``trace=True`` sugar).

    The tracer stays a plain engine attribute — emission sites keep
    their historical single ``is not None`` guard — so this plugin only
    owns construction.  Teardown leaves the capture readable.
    """

    name = "tracer"

    def setup(self, engine: "DynamicEngine") -> None:
        if engine.tracer is None:
            from repro.obs.tracer import Tracer

            engine.tracer = Tracer()


class MetricsPlugin(EnginePlugin):
    """Attach a :class:`MetricsRegistry`, plus the virtual-time sampler
    when ``sample_interval`` is given (the ``sample_interval=`` sugar)."""

    name = "metrics"

    def __init__(self, sample_interval: float | None = None) -> None:
        self.sample_interval = sample_interval

    def setup(self, engine: "DynamicEngine") -> None:
        if engine.metrics is None:
            from repro.obs.registry import MetricsRegistry

            engine.metrics = MetricsRegistry()
        if self.sample_interval is not None and engine.sampler is None:
            from repro.obs.registry import VirtualTimeSampler

            engine.sampler = VirtualTimeSampler(
                engine, engine.metrics, self.sample_interval
            )
            engine.sampler.schedule()


class FreshnessPlugin(EnginePlugin):
    """Watch one program's convergence lag (requires the sampler, so
    register after a :class:`MetricsPlugin` with an interval)."""

    def __init__(self, prog: str, reference_fn: Callable[..., Any]) -> None:
        self.prog = prog
        self.reference_fn = reference_fn
        self.name = f"freshness:{prog}"

    def setup(self, engine: "DynamicEngine") -> None:
        engine.add_freshness_probe(self.prog, self.reference_fn)


class BulkIngestPlugin(EnginePlugin):
    """Attach the chunked array-kernel ingest controller (the
    ``bulk_ingest=True`` sugar)."""

    name = "bulk-ingest"

    def setup(self, engine: "DynamicEngine") -> None:
        if engine._bulk is None:
            from repro.runtime.bulk import BulkIngestor

            engine._bulk = BulkIngestor(engine)


class FaultInjectionPlugin(EnginePlugin):
    """Run the engine under a :class:`repro.faults.FaultPlan`.

    Setup attaches the lossy reliable-delivery transport, schedules the
    plan's rank stalls, and wires drop/stall instants into the tracer
    and metrics when those are configured — the former
    ``engine.enable_faults`` body, which remains as sugar delegating
    here via ``register_late``.
    """

    name = "faults"

    def __init__(self, plan: Any) -> None:
        self.plan = plan

    def setup(self, engine: "DynamicEngine") -> None:
        engine._install_fault_plan(self.plan)


class HookStatsPlugin(EnginePlugin):
    """Count hook firings per site — the simplest full-width consumer.

    ``mp_safe``: the counters are plain ints and ``harvest()`` returns
    a picklable dict, so workers can ship per-rank firing counts back
    to the parent; the rehydration test uses exactly this.
    """

    name = "hook_stats"
    mp_safe = True

    def __init__(self) -> None:
        self.counts: dict[str, int] = {site: 0 for site in HOOK_SITES}

    def hooks(self) -> Mapping[str, Callable[..., None]]:
        out: dict[str, Callable[..., None]] = {}
        for site in HOOK_SITES:

            def bump(
                *_args: Any,
                _counts: dict[str, int] = self.counts,
                _site: str = site,
            ) -> None:
                _counts[_site] += 1

            out[site] = bump
        return out

    def harvest(self) -> dict[str, int]:
        return dict(self.counts)


def plugins_from_config(config: "EngineConfig") -> list[EnginePlugin]:
    """The config-sugar derivation: the plugin list equivalent to the
    legacy inline wiring, in the exact order the old constructor built
    things (bulk ingestor, then tracer, then metrics/sampler) so that
    builder-built and flag-built engines are bit-identical."""
    plugins: list[EnginePlugin] = []
    if config.bulk_ingest:
        plugins.append(BulkIngestPlugin())
    if config.trace:
        plugins.append(TracerPlugin())
    if config.sample_interval is not None:
        plugins.append(MetricsPlugin(config.sample_interval))
    return plugins


#: Picklable re-hydration specs for mp workers: name -> factory.
#: ``run_parallel(plugins=[("hook_stats", {})])`` ships these across
#: the spawn boundary; each worker rebuilds real instances.
PLUGIN_FACTORIES: dict[str, Callable[..., EnginePlugin]] = {
    "tracer": TracerPlugin,
    "metrics": MetricsPlugin,
    "freshness": FreshnessPlugin,
    "bulk-ingest": BulkIngestPlugin,
    "faults": FaultInjectionPlugin,
    "hook_stats": HookStatsPlugin,
}


def build_plugin(name: str, kwargs: Mapping[str, Any] | None = None) -> EnginePlugin:
    """Re-hydrate a plugin from its ``(name, kwargs)`` spec."""
    factory = PLUGIN_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown plugin {name!r}; known: {', '.join(sorted(PLUGIN_FACTORIES))}"
        )
    return factory(**dict(kwargs or {}))
