"""Engine lifecycle phases and the :class:`EngineBuilder`.

A :class:`~repro.runtime.engine.DynamicEngine` moves through a fixed
grammar of named phases::

    configure -> setup -> { ingest | drain | collect | harvest }* -> teardown

``configure`` and ``setup`` happen exactly once, inside construction
(plugins may rewrite the :class:`~repro.runtime.engine.EngineConfig`
during ``configure``; they attach state and hooks during ``setup``).
The four *steady* phases interleave freely for the life of the engine:
``ingest`` (streams attached / events injected), ``drain`` (the event
loop runs toward quiescence), ``collect`` (a versioned global
collection cuts), and ``harvest`` (a collection's partials are merged
at the coordinator).  ``teardown`` is terminal and idempotent —
re-entering it is a no-op, while advancing anywhere else afterwards
raises :class:`LifecycleError`.

:class:`Lifecycle` is the bookkeeping object: it validates transitions
and records the history of *distinct* phase entries (consecutive
repeats of a steady phase are coalesced, so the history stays bounded
by actual phase changes, not event counts).  The engine consults the
return value of :meth:`Lifecycle.advance` to fire plugin
``on_phase`` callbacks only on genuine transitions.

:class:`EngineBuilder` is the front door the CLI (both ``run`` and
``serve``) and the mp workers use: it accumulates programs, config,
cost model, partitioner, and plugins, derives the config-sugar plugins
from legacy :class:`EngineConfig` flags, runs every plugin's
``configure`` phase, and constructs the engine.  Building via the
builder and constructing ``DynamicEngine(programs, config)`` directly
are bit-identical — the constructor falls back to the same sugar
derivation when no explicit plugin list is given.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.runtime.plugins import EnginePlugin, plugins_from_config

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.engine import DynamicEngine

#: The phase grammar, in canonical order.  The middle four are the
#: *steady* phases and may interleave arbitrarily.
PHASES: tuple[str, ...] = (
    "configure",
    "setup",
    "ingest",
    "drain",
    "collect",
    "harvest",
    "teardown",
)

_STEADY: frozenset[str] = frozenset({"ingest", "drain", "collect", "harvest"})


class LifecycleError(RuntimeError):
    """An illegal phase transition (e.g. ingest after teardown)."""


class Lifecycle:
    """Tracks and validates an engine's progress through :data:`PHASES`.

    ``phase`` is the current phase (``None`` before ``configure``);
    ``history`` lists every distinct phase entry in order.
    """

    __slots__ = ("phase", "history")

    def __init__(self) -> None:
        self.phase: str | None = None
        self.history: list[str] = []

    def advance(self, phase: str) -> bool:
        """Move to ``phase``.

        Returns ``True`` when this is a genuine transition, ``False``
        for the two legal no-op repeats (a steady phase re-entering
        itself, and ``teardown`` after ``teardown``).  Raises
        :class:`LifecycleError` for any transition outside the grammar.
        """
        if phase not in PHASES:
            raise LifecycleError(f"unknown lifecycle phase {phase!r}")
        cur = self.phase
        if cur == phase:
            if phase in _STEADY or phase == "teardown":
                return False  # coalesced repeat
            raise LifecycleError(f"phase {phase!r} may only run once")
        if cur == "teardown":
            raise LifecycleError(
                f"engine is torn down; cannot enter phase {phase!r}"
            )
        if phase == "configure":
            ok = cur is None
        elif phase == "setup":
            ok = cur == "configure"
        elif phase in _STEADY:
            ok = cur == "setup" or cur in _STEADY
        else:  # teardown: legal from anywhere after configure
            ok = cur is not None
        if not ok:
            raise LifecycleError(
                f"illegal lifecycle transition {cur!r} -> {phase!r}"
            )
        self.phase = phase
        self.history.append(phase)
        return True

    @property
    def torn_down(self) -> bool:
        return self.phase == "teardown"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Lifecycle(phase={self.phase!r}, history={self.history!r})"


class EngineBuilder:
    """Fluent assembly of a :class:`DynamicEngine` with plugins.

    Usage::

        engine = (
            EngineBuilder()
            .with_programs([prog])
            .with_config(EngineConfig(n_ranks=4))
            .with_plugin(TracerPlugin())
            .build()
        )

    ``build()`` derives the config-sugar plugins from legacy
    :class:`EngineConfig` flags (``bulk_ingest``/``trace``/
    ``sample_interval``), prepends them to the explicitly added
    plugins, runs every plugin's ``configure`` phase over the config,
    and constructs the engine — which then runs ``setup`` and compiles
    all registered hooks into per-site flat tuples.
    """

    def __init__(self) -> None:
        self._programs: list[Any] = []
        self._config: Any | None = None
        self._cost_model: Any | None = None
        self._partitioner: Any | None = None
        self._plugins: list[EnginePlugin] = []

    def with_programs(self, programs: Sequence[Any]) -> "EngineBuilder":
        self._programs = list(programs)
        return self

    def with_config(self, config: Any) -> "EngineBuilder":
        self._config = config
        return self

    def with_cost_model(self, cost_model: Any) -> "EngineBuilder":
        self._cost_model = cost_model
        return self

    def with_partitioner(self, partitioner: Any) -> "EngineBuilder":
        self._partitioner = partitioner
        return self

    def with_plugin(self, plugin: EnginePlugin) -> "EngineBuilder":
        self._plugins.append(plugin)
        return self

    def with_plugins(self, plugins: Iterable[EnginePlugin]) -> "EngineBuilder":
        self._plugins.extend(plugins)
        return self

    def build(self) -> "DynamicEngine":
        from repro.runtime.engine import DynamicEngine, EngineConfig

        config = self._config if self._config is not None else EngineConfig()
        # Sugar plugins first, in the same order the legacy constructor
        # wired them — registration order is hook firing order, so this
        # is what keeps builder-built engines bit-identical to
        # flag-built ones.
        plugins = plugins_from_config(config) + list(self._plugins)
        for plugin in plugins:
            new = plugin.configure(config)
            if new is not None:
                config = new
        kwargs: dict[str, Any] = {"plugins": plugins}
        if self._cost_model is not None:
            kwargs["cost_model"] = self._cost_model
        if self._partitioner is not None:
            kwargs["partitioner"] = self._partitioner
        return DynamicEngine(self._programs, config, **kwargs)
