"""The dynamic graph engine (Fig. 1 / Fig. 2 of the paper).

The engine plugs into the discrete-event kernel as the behaviour of every
rank: it owns each rank's DegAwareRHH topology store and per-program
vertex values, routes topology events to vertex owners via consistent
hashing, dispatches the Alg.-3 visitor switch (ADD / REVERSE_ADD /
UPDATE / INIT, plus DELETE for the §VI-B extension), and runs the
control plane: four-counter termination probes and versioned global
state collection (§III-D).

Orderings the algorithms rely on (provided by
:class:`repro.comm.des.DiscreteEventLoop`'s FIFO channels):

* undirected edge creation is serialised — the ADD is processed at the
  source's owner before the REVERSE_ADD is even sent (§III-C);
* events touching the same vertex are processed one at a time, in
  arrival order ("ordered in the infrastructure layer by the built-in
  visitor queue in FIFO ordering", §IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.comm.costmodel import CostModel, RankCounters
from repro.comm.des import DiscreteEventLoop, RankHandler
from repro.comm.termination import FourCounterState, TerminationCoordinator
from repro.events.stream import EventStream
from repro.events.types import ADD as EV_ADD
from repro.partition.partitioners import ConsistentHashPartitioner, Partitioner
from repro.runtime.lifecycle import Lifecycle
from repro.runtime.plugins import (
    EnginePlugin,
    FaultInjectionPlugin,
    PluginRegistry,
    plugins_from_config,
)
from repro.runtime.program import VertexContext, VertexProgram
from repro.runtime.queries import Trigger, TriggerManager
from repro.runtime.snapshot import ActiveCollection, CollectionResult
from repro.runtime.visitor import (
    CTRL_CUT,
    CTRL_HARVEST,
    CTRL_PART,
    CTRL_PROBE,
    CTRL_REPORT,
    VT_ADD,
    VT_CTRL,
    VT_DEL,
    VT_INIT,
    VT_RADD,
    VT_RDEL,
    VT_UPDATE,
)
from repro.storage.degaware import DegAwareRHH
from repro.util.validate import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.obs.registry import MetricsRegistry, VirtualTimeSampler
    from repro.obs.tracer import Tracer
    from repro.runtime.bulk import BulkIngestor

# Trace span names per dispatched message type (repro.obs).  The "cat"
# is what busy-coverage aggregation keys on (see BUSY_CATEGORIES).
_VT_SPAN_NAMES = {
    VT_UPDATE: "visit/update",
    VT_ADD: "visit/add",
    VT_RADD: "visit/radd",
    VT_INIT: "visit/init",
    VT_DEL: "visit/del",
    VT_RDEL: "visit/rdel",
}
_CTRL_SPAN_NAMES = {
    CTRL_CUT: "ctrl/cut",
    CTRL_PROBE: "ctrl/probe",
    CTRL_REPORT: "ctrl/report",
    CTRL_HARVEST: "ctrl/harvest",
    CTRL_PART: "ctrl/part",
}


class UnsupportedCollectionError(RuntimeError):
    """A versioned (continuous) global-state collection was requested
    for a program that cannot support it.

    The generational delete programs (§VI-B) declare
    ``supports_versioned_collection = False``: an epoch/generation
    restart rewrites state that the prev/new version split would have
    frozen, so a harvested cut would be silently wrong.  Use quiescence
    collection (run to quiescence, read ``DynamicEngine.state``)
    instead.
    """


@dataclass(frozen=True)
class EngineConfig:
    """Construction-time knobs of the engine."""

    n_ranks: int = 1
    undirected: bool = True
    promote_threshold: int = 8
    vertex_index: str = "robinhood"
    partition_salt: int = 0
    coordinator_rank: int = 0
    probe_backoff: float = 20e-6  # virtual pause between probe waves
    # §II-D visitor-queue fast path: squash monotone UPDATEs into
    # pending same-key messages (programs opt in via their ``combine``
    # hook) and emit a vertex's fan-out as one send_many batch.  Both
    # ON by default; the coalescing ablation bench turns them off.
    coalesce_updates: bool = True
    batch_updates: bool = True
    # Opt-in wall-clock fast path: during pure saturation replay (no
    # collection, no triggers, add-only streams, kernel-capable
    # programs) drain streams in chunks of ``bulk_chunk`` events and
    # propagate with array frontier kernels.  Bitwise-exact: the engine
    # transparently de-optimizes back to per-event processing the
    # moment any of those conditions breaks.  See repro.runtime.bulk.
    bulk_ingest: bool = False
    bulk_chunk: int = 8192
    # Telemetry (repro.obs): ``trace`` attaches a Tracer recording
    # span/instant events from every dispatch; ``sample_interval``
    # attaches a MetricsRegistry + VirtualTimeSampler firing every that
    # many virtual seconds.  Both OFF by default — the disabled cost is
    # one ``is not None`` check per guarded emission site.
    trace: bool = False
    sample_interval: float | None = None

    def __post_init__(self) -> None:
        check_positive("n_ranks", self.n_ranks)
        check_positive("promote_threshold", self.promote_threshold)
        check_non_negative("probe_backoff", self.probe_backoff)
        check_positive("bulk_chunk", self.bulk_chunk)
        if self.sample_interval is not None:
            check_positive("sample_interval", self.sample_interval)
        if not 0 <= self.coordinator_rank < self.n_ranks:
            raise ValueError("coordinator_rank out of range")


class DynamicEngine(RankHandler):
    """Hosts one or more vertex programs over a simulated cluster.

    Parameters
    ----------
    programs:
        The algorithm instances to maintain.  Unlike the paper's
        prototype (limited to one hooked algorithm), several programs
        may run concurrently over the same topology — the stated design
        intent of §I.
    config:
        :class:`EngineConfig`; ``EngineConfig(n_ranks=...)`` is typical.
    cost_model / partitioner:
        Default to the calibrated :class:`CostModel` and the paper's
        consistent-hash partitioner.
    """

    def __init__(
        self,
        programs: list[VertexProgram],
        config: EngineConfig | None = None,
        cost_model: CostModel | None = None,
        partitioner: Partitioner | None = None,
        plugins: list[EnginePlugin] | None = None,
    ):
        self.config = config or EngineConfig()
        self.cost = cost_model or CostModel()
        n = self.config.n_ranks
        self.partitioner = partitioner or ConsistentHashPartitioner(
            n, salt=self.config.partition_salt
        )
        if self.partitioner.n_ranks != n:
            raise ValueError(
                f"partitioner rank count {self.partitioner.n_ranks} != n_ranks {n}"
            )
        # An empty program list is legal: it gives the construction-only
        # (CON) configuration the evaluation uses as its baseline.
        names = [p.name for p in programs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate program names: {names}")
        self.programs = list(programs)
        self.loop = DiscreteEventLoop(n, self.cost, self)
        self.stores = [
            DegAwareRHH(self.config.promote_threshold, self.config.vertex_index)
            for _ in range(n)
        ]
        # values[rank][prog]: vid -> S_new (or sole) value; 0 = unset
        self.values: list[list[dict[int, Any]]] = [
            [dict() for _ in programs] for _ in range(n)
        ]
        self._nbr_cache: list[list[dict[int, dict[int, Any]] | None]] = [
            [dict() if p.needs_nbr_cache else None for p in programs] for _ in range(n)
        ]
        self._ctx = [
            [VertexContext(self, r, p) for p in range(len(programs))] for r in range(n)
        ]
        # Per-program message-level UPDATE combiners (None = program
        # opted out of §II-D coalescing, or it is globally disabled).
        self._combiners: list[Callable[[tuple, tuple], tuple] | None] = [
            self._make_update_combiner(p.combine)
            if self.config.coalesce_updates and p.combine is not None
            else None
            for p in programs
        ]
        self.counters = [RankCounters() for _ in range(n)]
        self.term = [FourCounterState() for _ in range(n)]
        self.triggers = TriggerManager()
        self.stream_version = [0] * n
        self._proc_version = [0] * n
        self._suppress_sends = [False] * n
        self._cb_effect = [False] * n
        self._edge_was_new = [True] * n
        self._streams: list[EventStream | None] = [None] * n
        self._stream_done = [True] * n
        self.active_collection: ActiveCollection | None = None
        self._prev_vals: list[dict[int, Any]] = [dict() for _ in range(n)]
        # Directed (vertex, nbr) adjacency entries inserted at or after
        # the active collection's cut: prev-version emissions must not
        # traverse them (the edge is absent from the discretized
        # prefix, §III-D) — see _emit_version.
        self._cut_new_edges: list[set[tuple[int, int]]] = [set() for _ in range(n)]
        self.collection_results: list[CollectionResult] = []
        # collection_id -> {rank: source events ingested at its cut}
        self.cut_positions: dict[int, dict[int, int]] = {}
        self._pending_collections: list[tuple[int, Any]] = []
        self._next_version = 1
        self._next_collection_id = 0
        self._started = False
        # Bulk-ingest bookkeeping: generation counters let the bulk
        # controller detect (and resync after) any per-event activity.
        self._topo_mutations = 0
        self._value_mutations = 0
        self._streams_add_only = True
        # Cross-cutting state slots.  These stay plain attributes (the
        # compiled "single-slot" form every hot-path guard reads as one
        # ``is not None`` check); plugins own their *construction*:
        # BulkIngestPlugin/TracerPlugin/MetricsPlugin populate them in
        # setup, derived from the legacy config flags when no explicit
        # plugin list is given.  _prog_visits is always-on (a bare list
        # increment per callback).
        self._prog_visits = [0] * len(programs)
        self._bulk: BulkIngestor | None = None
        self.tracer: Tracer | None = None
        self.metrics: MetricsRegistry | None = None
        self.sampler: VirtualTimeSampler | None = None
        # Compiled hook-site tuples (repro.runtime.plugins).  Every
        # cross-cutting observer — the mp backend's dense-mirror folding
        # (vecapply), the serving layer's stable-value cache, plugin
        # hooks — lands in one of these flat tuples at build time.  The
        # empty tuple is the disabled state, so each site costs the hot
        # path exactly one attribute load + truth test (``if
        # self._hk_write:``) — the same grade as the historical
        # ``is not None`` guards, gated by bench_obs_overhead.py.
        self._hk_dispatch: tuple[Callable[[int, int, float, float], None], ...] = ()
        self._hk_write: tuple[Callable[[int, int, Any], None], ...] = ()
        self._hk_insert: tuple[Callable[[int, int, Any], None], ...] = ()
        self._hk_delete: tuple[Callable[[int, int], None], ...] = ()
        self._hk_bulk_flush: tuple[Callable[[int], None], ...] = ()
        self._hk_collection_cut: tuple[Callable[[int, int, int], None], ...] = ()
        self._hk_checkpoint: tuple[Callable[[str, str], None], ...] = ()
        self._hk_quiesce: tuple[Callable[[DynamicEngine], None], ...] = ()
        for r in range(n):
            self.loop.set_source_active(r, False)
        # Lifecycle + plugin compilation (repro.runtime.lifecycle /
        # repro.runtime.plugins).  With no explicit plugin list the
        # legacy EngineConfig flags are desugared to the equivalent
        # plugins, preserving the historical construction order exactly.
        self.plugins = PluginRegistry(
            plugins_from_config(self.config) if plugins is None else plugins
        )
        self.lifecycle = Lifecycle()
        self.lifecycle.advance("configure")
        self.lifecycle.advance("setup")
        self.plugins.compile(self)
        self.plugins.notify_phase("setup", self)

    # ------------------------------------------------------------------
    # public API: setup and execution
    # ------------------------------------------------------------------
    def prog_index(self, name_or_index: int | str) -> int:
        """Resolve a program by name or index."""
        if isinstance(name_or_index, int):
            if not 0 <= name_or_index < len(self.programs):
                raise ValueError(f"program index {name_or_index} out of range")
            return name_or_index
        for i, p in enumerate(self.programs):
            if p.name == name_or_index:
                return i
        raise ValueError(f"no program named {name_or_index!r}")

    def attach_streams(self, streams: Iterable[EventStream]) -> None:
        """Attach one ordered event stream per rank (at most ``n_ranks``).

        Streams are assigned to ranks in order; ranks beyond the list
        have no source.  Must be called before :meth:`run`.
        """
        streams = list(streams)
        if len(streams) > self.config.n_ranks:
            raise ValueError(
                f"{len(streams)} streams for {self.config.n_ranks} ranks"
            )
        for r, s in enumerate(streams):
            self.attach_stream(r, s)

    def attach_stream(self, rank: int, stream: EventStream) -> None:
        """Attach one stream to one specific rank.

        The mp backend's workers use this directly: each worker only
        holds (and pulls) its own rank's stream slice.
        """
        if not 0 <= rank < self.config.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        self._enter_phase("ingest")
        self._streams[rank] = stream
        self._stream_done[rank] = False
        self.loop.set_source_active(rank, True)
        self._streams_add_only = all(
            s.add_only for s in self._streams if s is not None
        )

    def inject_timed_events(
        self, events: Iterable[tuple[float, int, int, int, int]]
    ) -> int:
        """Offer topology events at explicit virtual arrival times.

        ``events`` are ``(time, kind, src, dst, weight)`` tuples.  This
        models an *offered load* below saturation (the paper's streams
        are saturation tests; §V-A notes any lower offered load is
        handled in real time): each event enters the cluster at its
        arrival instant instead of being pulled as fast as possible.
        Returns the number of events injected.  Combine freely with
        pulled streams.
        """
        self._enter_phase("ingest")
        if self._bulk is not None:
            # Timed events interleave with pulled ones at explicit
            # instants; chunked replay would reorder across them, so
            # bulk ingest is conservatively disabled for the run.
            self._bulk.disabled = True
        n = 0
        for at_time, kind, src, dst, weight in events:
            if self.config.undirected and dst < src:
                src, dst = dst, src  # canonical edge routing, as in pull
            owner = self.partitioner.owner(src)
            # The send happens inside an alarm at the arrival instant:
            # sending eagerly would stamp the channel's FIFO clock with
            # a *future* time and incorrectly delay every intervening
            # runtime message on the same channel.
            self.loop.schedule_alarm(
                at_time,
                lambda t=at_time, o=owner, k=kind, s=src, d=dst, w=weight: (
                    self._fire_injected(t, o, k, s, d, w)
                ),
            )
            n += 1
        return n

    def _fire_injected(
        self, at_time: float, owner: int, kind: int, src: int, dst: int, weight: int
    ) -> None:
        ver = self.stream_version[owner]
        if kind == EV_ADD:
            msg = (VT_ADD, src, dst, weight, ver)
        else:
            msg = (VT_DEL, src, dst, ver)
        self.term[owner].record_send(ver)
        self.counters[owner].source_events += 1
        self.loop.send_at(at_time, owner, owner, msg)

    def vertex_removal_events(self, vertex: int) -> list[tuple[int, int, int, int]]:
        """Delete events removing every current edge of ``vertex``.

        The paper models vertex-level changes as "a set of edge changes"
        (§III-A footnote); this helper materialises that set from the
        owner's live adjacency, ready to feed into a stream or
        :meth:`inject_timed_events`.
        """
        from repro.events.types import DELETE as EV_DELETE

        rank = self.partitioner.owner(vertex)
        return [
            (EV_DELETE, vertex, nbr, 0)
            for nbr, _w in self.stores[rank].neighbors(vertex)
        ]

    def init_program(
        self,
        prog: int | str,
        vertex: int,
        payload: Any = None,
        at_time: float = 0.0,
    ) -> None:
        """Inject an ``init()`` visitor at ``vertex`` ("can be initiated
        at any time", §IV) arriving no earlier than ``at_time``."""
        p = self.prog_index(prog)
        owner = self.partitioner.owner(vertex)
        ver = self.stream_version[owner]
        self.term[owner].record_send(ver)
        self.loop.send_at(at_time, owner, owner, (VT_INIT, p, vertex, payload, ver))

    def add_trigger(
        self,
        prog: int | str,
        predicate: Callable[[int, Any], bool],
        callback: Callable[[int, Any, float], None],
        vertex: int | None = None,
        once: bool = True,
    ) -> Trigger:
        """Register a "When" query on a program's vertex-local state."""
        return self.triggers.add(self.prog_index(prog), predicate, callback, vertex, once)

    @property
    def transport(self):
        """The reliable-delivery transport, or None (fault-free runs)."""
        return self.loop.transport

    def enable_faults(self, plan) -> None:
        """Run this engine under a :class:`repro.faults.FaultPlan`.

        Attaches a reliable-delivery transport consulting ``plan`` for
        every frame's fate, schedules the plan's rank stalls, and wires
        fault instants into the tracer/metrics when configured.  Crash
        events are *not* handled here — a crash discards the whole
        engine, so it is orchestrated by
        :class:`repro.faults.FaultTolerantRunner`.

        Must be called before :meth:`run`.  Bulk ingest is disabled for
        the run: the chunked array path bypasses the message layer and
        would never put frames on the lossy wire.

        Sugar for registering a
        :class:`repro.runtime.plugins.FaultInjectionPlugin` — prefer
        ``EngineBuilder().with_plugin(FaultInjectionPlugin(plan))`` when
        building new engines.
        """
        self.plugins.register_late(FaultInjectionPlugin(plan), self)

    def _install_fault_plan(self, plan) -> None:
        """Wire a fault plan into the loop (FaultInjectionPlugin body)."""
        from repro.comm.channel import ReliableDelivery

        if self._started:
            raise RuntimeError("enable_faults before the engine runs")
        self.loop.attach_transport(ReliableDelivery(self.loop, plan))
        if self._bulk is not None:
            self._bulk.disabled = True
        tracer, metrics = self.tracer, self.metrics
        if tracer is not None or metrics is not None:

            def on_drop(frame) -> None:
                if metrics is not None:
                    metrics.inc("frames_dropped")
                if tracer is not None:
                    tracer.instant(
                        frame.dst,
                        "fault/drop",
                        self.loop.clock[frame.src],
                        "fault",
                        {"src": frame.src, "kind": frame.kind, "seq": frame.seq},
                    )

            self.loop.on_frame_dropped = on_drop
        for stall in plan.stalls:
            rank = stall.rank if stall.rank >= 0 else plan.pick_rank(self.config.n_ranks)
            until = stall.time + stall.duration

            def fire(rank=rank, at=stall.time, until=until) -> None:
                self.loop.stall_rank(rank, until)
                if self.metrics is not None:
                    self.metrics.inc("stalls")
                if self.tracer is not None:
                    self.tracer.instant(
                        rank, "fault/stall", at, "fault", {"until": until}
                    )

            self.loop.schedule_alarm(stall.time, fire)

    def run(self, max_virtual_time: float | None = None, max_actions: int | None = None) -> float:
        """Drive the cluster; returns the virtual makespan so far."""
        self._enter_phase("drain")
        if not self._started:
            self.loop.start()
            self._started = True
        makespan = self.loop.run(
            max_virtual_time=max_virtual_time, max_actions=max_actions
        )
        if self._bulk is not None and self._bulk.engaged:
            # End-of-run flush so observation APIs read exact values;
            # not a de-optimization (nothing forced per-event replay).
            self._bulk.flush_values(count_fallback=False)
        if self._hk_quiesce and self.loop.quiescent():
            for h in self._hk_quiesce:
                h(self)
        return makespan

    # ------------------------------------------------------------------
    # lifecycle + plugin hooks (repro.runtime.lifecycle / .plugins)
    # ------------------------------------------------------------------
    def _enter_phase(self, phase: str) -> None:
        """Advance the lifecycle; plugins observe genuine transitions
        only (steady-phase repeats are coalesced no-ops)."""
        if self.lifecycle.advance(phase):
            self.plugins.notify_phase(phase, self)

    def install_hook(self, site: str, fn: Callable[..., None]) -> None:
        """Install a dynamic callback at a named hook site (see
        :data:`repro.runtime.plugins.HOOK_SITES`); it is appended after
        all plugin-registered hooks and recompiled into the site's flat
        tuple immediately."""
        self.plugins.install(site, fn)

    def uninstall_hook(self, site: str, fn: Callable[..., None]) -> bool:
        """Remove a dynamically installed callback; returns whether it
        was present."""
        return self.plugins.uninstall(site, fn)

    def teardown(self) -> None:
        """Enter the terminal lifecycle phase: plugins tear down in
        reverse registration order and every hook site is cleared.
        Idempotent; any further phase transition raises
        :class:`repro.runtime.lifecycle.LifecycleError`."""
        if self.lifecycle.advance("teardown"):
            self.plugins.notify_phase("teardown", self)
        self.plugins.teardown(self)

    # ------------------------------------------------------------------
    # public API: observation
    # ------------------------------------------------------------------
    def value_of(self, prog: int | str, vertex: int) -> Any:
        """Constant-time local-state read of one vertex (§III-E)."""
        p = self.prog_index(prog)
        rank = self.partitioner.owner(vertex)
        return self.values[rank][p].get(vertex, 0)

    def state(self, prog: int | str) -> dict[int, Any]:
        """Merge every rank's live values for a program (omniscient
        read; use :meth:`request_collection` for the in-protocol path)."""
        p = self.prog_index(prog)
        merged: dict[int, Any] = {}
        for rank_vals in self.values:
            merged.update(rank_vals[p])
        return merged

    # -- serving-layer accessors (repro.serving) ------------------------
    def vtime(self) -> float:
        """The cluster's current virtual time (max over rank clocks) —
        the ``as_of_vtime`` a served answer is stamped with."""
        return self.loop.max_time()

    def drained(self) -> bool:
        """True iff every ingested event has fully propagated: nothing
        in flight or queued, and no bulk mirror ahead of the value
        dicts.  For REMO programs this is the *stability criterion*
        (§II-D monotone convergence): a drained engine's live state
        equals the static answer on the ingested-so-far prefix, so any
        value read now is provably converged for that prefix.  Streams
        may still hold future events — those are not in the prefix.
        """
        if self.loop.in_flight:
            return False
        b = self._bulk
        return b is None or not b.engaged

    def ingest_watermark(self) -> int:
        """Total source events ingested across all ranks — identifies
        the discretized prefix a served answer reflects."""
        return sum(c.source_events for c in self.counters)

    def write_epoch(self) -> int:
        """Monotone counter over topology + value mutations.  Two reads
        bracketed by equal epochs observed identical engine state; the
        freshness-probe stability criterion keys off it."""
        return self._topo_mutations + self._value_mutations

    @property
    def num_edges(self) -> int:
        """Directed edges stored across all ranks (undirected runs store
        each input edge twice, once per endpoint)."""
        return sum(s.num_edges for s in self.stores)

    @property
    def num_vertices(self) -> int:
        return sum(s.num_vertices for s in self.stores)

    def has_edge(self, src: int, dst: int) -> bool:
        return self.stores[self.partitioner.owner(src)].has_edge(src, dst)

    def edges(self) -> Iterable[tuple[int, int, int]]:
        """All stored directed edges (for verification)."""
        for store in self.stores:
            yield from store.edges()

    def add_freshness_probe(self, prog: int | str, reference_fn) -> None:
        """Watch a program's convergence lag (repro.obs.freshness).

        ``reference_fn(engine, prog_name)`` must return the current
        live-vs-static mismatch list (the ``repro.analytics.verify``
        contract; build one with :func:`repro.obs.make_reference`).
        Requires the virtual-time sampler — configure
        ``EngineConfig(sample_interval=...)`` first — because lag is
        measured at sample instants.
        """
        if self.sampler is None:
            raise RuntimeError(
                "freshness probes ride the virtual-time sampler; "
                "configure EngineConfig(sample_interval=...) first"
            )
        if self.sampler.freshness is None:
            from repro.obs.freshness import FreshnessProbe

            self.sampler.freshness = FreshnessProbe(self)
        name = self.programs[self.prog_index(prog)].name
        self.sampler.freshness.watch(name, reference_fn)

    def total_counters(self) -> RankCounters:
        total = RankCounters()
        for c in self.counters:
            total = total.merge(c)
        return total

    def source_event_rate(self) -> float:
        """Topology events per virtual second over the whole run —
        the paper's headline events/s metric."""
        makespan = self.loop.max_time()
        events = sum(c.source_events for c in self.counters)
        return events / makespan if makespan > 0 else 0.0

    # ------------------------------------------------------------------
    # public API: versioned global state collection (§III-D)
    # ------------------------------------------------------------------
    def request_collection(
        self,
        prog: int | str = 0,
        at_time: float = 0.0,
        callback: Callable[[CollectionResult], None] | None = None,
    ) -> None:
        """Schedule a continuous (non-pausing) global state collection.

        At virtual ``at_time`` the coordinator cuts a new version on
        every stream, drains prior-version traffic (proved by the
        four-counter detector), harvests each rank's ``S_prev`` and
        appends a :class:`CollectionResult` to ``collection_results``.

        Only one collection runs at a time (as in the paper's
        prototype); a request arriving while another is active is
        deferred and begins — with a fresh cut — when it concludes.

        Raises :class:`UnsupportedCollectionError` for programs that
        declare ``supports_versioned_collection = False`` (the
        generational delete programs): their restarts are not
        expressible as a prev/new version split, so the harvested cut
        would be silently wrong.
        """
        p = self.prog_index(prog)
        program = self.programs[p]
        if not getattr(program, "supports_versioned_collection", True):
            raise UnsupportedCollectionError(
                f"program {program.name!r} does not support versioned "
                "collection (generational delete state cannot be split "
                "into prev/new versions); pause-and-drain quiescence "
                "collection is the supported path"
            )
        self.loop.schedule_alarm(at_time, lambda: self._begin_collection(p, at_time, callback))

    def _begin_collection(self, prog: int, requested_at: float, callback) -> None:
        if self.active_collection is not None:
            # One collection at a time (as in the paper's prototype):
            # defer this request until the active one concludes.  Its
            # requested_at becomes the time it actually begins.
            self._pending_collections.append((prog, callback))
            return
        cut = self._next_version
        self._next_version += 1
        col = ActiveCollection(
            collection_id=self._next_collection_id,
            prog=prog,
            cut_version=cut,
            requested_at=requested_at,
            detector=TerminationCoordinator(self.config.n_ranks),
            callback=callback,
        )
        self._next_collection_id += 1
        self.active_collection = col
        self._enter_phase("collect")
        if self._hk_collection_cut:
            for h in self._hk_collection_cut:
                h(col.collection_id, cut, prog)
        coord = self.config.coordinator_rank
        if self.tracer is not None:
            self.tracer.instant(
                coord,
                "collection/cut",
                requested_at,
                "collection",
                {"id": col.collection_id, "version": cut},
            )
        wave = col.detector.start_wave()
        for r in range(self.config.n_ranks):
            self.loop.send_at(
                requested_at,
                coord,
                r,
                (VT_CTRL, CTRL_CUT, col.collection_id, cut),
                priority=True,
            )
            self.loop.send_at(
                requested_at,
                coord,
                r,
                (VT_CTRL, CTRL_PROBE, col.collection_id, wave, cut),
                priority=True,
            )

    # ------------------------------------------------------------------
    # RankHandler: source ingestion
    # ------------------------------------------------------------------
    def _bulk_eligible(self) -> bool:
        """Pure saturation replay: every condition under which chunked
        array processing is provably bitwise-equal to per-event DES."""
        b = self._bulk
        return (
            b is not None
            and b.supported
            and not b.disabled
            and self.active_collection is None
            and not self._pending_collections
            and not self.triggers.has_any()
            and self._streams_add_only
        )

    def pull_source(self, loop: DiscreteEventLoop, rank: int) -> bool:
        b = self._bulk
        if b is not None:
            eligible = self._bulk_eligible()
            if b.engaged and not eligible:
                b.deoptimize()
            if eligible:
                stream = self._streams[rank]
                if stream is not None and b.process_chunk(rank, stream):
                    return True
                # Exhausted (or no stream): fall through so the
                # per-event path records stream completion.
        stream = self._streams[rank]
        if stream is None:
            self._stream_done[rank] = True
            return False
        tracer = self.tracer
        if tracer is not None:
            t0 = loop.clock[rank]
        ev = stream.pull()
        if ev is None:
            self._stream_done[rank] = True
            return False
        kind, src, dst, weight = ev
        self.counters[rank].source_events += 1
        loop.consume(rank, self.cost.stream_pull_cpu)
        ver = self.stream_version[rank]
        if self.config.undirected and dst < src:
            # Canonicalise the endpoint order so *all* events touching
            # the same undirected edge serialise through one owner's
            # FIFO queue.  §III-C's routing (owner of the first vertex)
            # is race-free for a single creation, but concurrent
            # [a,b] / [b,a] / delete events in different streams would
            # otherwise initiate at two different owners and can leave
            # the edge half-present.
            src, dst = dst, src
        owner = self.partitioner.owner(src)
        if kind == EV_ADD:
            msg = (VT_ADD, src, dst, weight, ver)
        else:
            msg = (VT_DEL, src, dst, ver)
        self._send_visitor(rank, owner, msg, ver)
        if tracer is not None:
            tracer.span(rank, "source/pull", t0, loop.clock[rank], "source")
        return True

    # ------------------------------------------------------------------
    # RankHandler: visitor dispatch (Alg. 3's VISIT switch)
    # ------------------------------------------------------------------
    def on_message(self, loop: DiscreteEventLoop, rank: int, msg: tuple) -> None:
        tracer = self.tracer
        metrics = self.metrics
        dispatch_hooks = self._hk_dispatch
        if tracer is not None or metrics is not None or dispatch_hooks:
            t0 = loop.clock[rank]
        b = self._bulk
        if b is not None and b.engaged:
            # Any per-event dispatch (visitor or control) while the
            # dense mirror is ahead forces a de-optimizing flush first,
            # so the callback below observes exact state.
            b.deoptimize()
        vt = msg[0]
        if vt == VT_UPDATE:
            _, p, target, vis_id, vis_val, weight, ver = msg
            self.term[rank].record_receive(ver)
            self._proc_version[rank] = ver
            cache = self._nbr_cache[rank][p]
            if cache is not None:
                cache.setdefault(target, {})[vis_id] = vis_val
            self._run_callback(
                rank, p, target, "on_update", vis_id, vis_val, weight
            )
        elif vt == VT_ADD:
            _, src, dst, weight, ver = msg
            self.term[rank].record_receive(ver)
            self._proc_version[rank] = ver
            self._edge_was_new[rank] = self._apply_insert(rank, src, dst, weight)
            self._note_cut_edge(rank, src, dst, ver)
            for p in range(len(self.programs)):
                self._run_callback(rank, p, src, "on_add", dst, 0, weight)
            if self.config.undirected:
                vals = tuple(
                    self._value_for_send(rank, p, src, ver)
                    for p in range(len(self.programs))
                )
                dst_owner = self.partitioner.owner(dst)
                self._send_visitor(
                    rank, dst_owner, (VT_RADD, dst, src, vals, weight, ver), ver
                )
            else:
                # Directed mode: no reverse edge, but the source's state
                # must still flow along the new edge (the "few more
                # trivial cases" of directed BFS, §II-B) — emit one
                # UPDATE per program carrying the source's value.
                dst_owner = self.partitioner.owner(dst)
                for p in range(len(self.programs)):
                    val = self._value_for_send(rank, p, src, ver)
                    combiner = self._combiners[p]
                    self._send_visitor(
                        rank,
                        dst_owner,
                        (VT_UPDATE, p, dst, src, val, weight, ver),
                        ver,
                        (p, dst, src, ver) if combiner is not None else None,
                        combiner,
                    )
        elif vt == VT_RADD:
            _, dst, src, vals, weight, ver = msg
            self.term[rank].record_receive(ver)
            self._proc_version[rank] = ver
            self._edge_was_new[rank] = self._apply_insert(rank, dst, src, weight)
            self._note_cut_edge(rank, dst, src, ver)
            for p in range(len(self.programs)):
                cache = self._nbr_cache[rank][p]
                if cache is not None:
                    cache.setdefault(dst, {})[src] = vals[p]
                self._run_callback(rank, p, dst, "on_reverse_add", src, vals[p], weight)
        elif vt == VT_INIT:
            _, p, target, payload, ver = msg
            self.term[rank].record_receive(ver)
            self._proc_version[rank] = ver
            self._run_callback(rank, p, target, "on_init", payload)
        elif vt == VT_DEL:
            _, src, dst, ver = msg
            self.term[rank].record_receive(ver)
            self._proc_version[rank] = ver
            weight = self.stores[rank].edge_weight(src, dst)
            self._apply_delete(rank, src, dst)
            for p in range(len(self.programs)):
                cache = self._nbr_cache[rank][p]
                if cache is not None:
                    cache.get(src, {}).pop(dst, None)
                self._run_callback(rank, p, src, "on_delete", dst, weight or 0)
            if self.config.undirected:
                vals = tuple(
                    self._value_for_send(rank, p, src, ver)
                    for p in range(len(self.programs))
                )
                dst_owner = self.partitioner.owner(dst)
                self._send_visitor(rank, dst_owner, (VT_RDEL, dst, src, vals, ver), ver)
        elif vt == VT_RDEL:
            _, dst, src, vals, ver = msg
            self.term[rank].record_receive(ver)
            self._proc_version[rank] = ver
            weight = self.stores[rank].edge_weight(dst, src)
            self._apply_delete(rank, dst, src)
            for p in range(len(self.programs)):
                cache = self._nbr_cache[rank][p]
                if cache is not None:
                    cache.get(dst, {}).pop(src, None)
                self._run_callback(
                    rank, p, dst, "on_reverse_delete", src, vals[p], weight or 0
                )
        elif vt == VT_CTRL:
            self._on_control(rank, msg)
        else:  # pragma: no cover - corrupted message
            raise ValueError(f"unknown visitor type in {msg!r}")
        if tracer is not None or metrics is not None or dispatch_hooks:
            t1 = loop.clock[rank]
            if tracer is not None:
                if vt == VT_CTRL:
                    name, cat = _CTRL_SPAN_NAMES.get(msg[1], "ctrl/?"), "ctrl"
                else:
                    name, cat = _VT_SPAN_NAMES.get(vt, "visit/?"), "visit"
                tracer.span(rank, name, t0, t1, cat)
            if metrics is not None:
                metrics.histogram("dispatch_virtual_us").observe(
                    (t1 - t0) * 1e6
                )
            if dispatch_hooks:
                for h in dispatch_hooks:
                    h(rank, vt, t0, t1)

    # ------------------------------------------------------------------
    # topology application
    # ------------------------------------------------------------------
    def _apply_insert(self, rank: int, src: int, dst: int, weight: int) -> bool:
        store = self.stores[rank]
        self._topo_mutations += 1
        new = store.insert_edge(src, dst, weight)
        if new:
            self.counters[rank].edge_inserts += 1
        if self._hk_insert:
            for h in self._hk_insert:
                h(src, dst, weight)
        self._charge(rank, self.cost.edge_insert_cpu)
        self._charge_spill(rank, store)
        return new

    def _apply_delete(self, rank: int, src: int, dst: int) -> None:
        store = self.stores[rank]
        self._topo_mutations += 1
        if store.delete_edge(src, dst):
            self.counters[rank].edge_deletes += 1
        if self._hk_delete:
            for h in self._hk_delete:
                h(src, dst)
        self._charge(rank, self.cost.edge_insert_cpu)
        self._charge_spill(rank, store)

    def _charge_spill(self, rank: int, store: DegAwareRHH) -> None:
        """Out-of-core penalty (§III-B): a topology access misses DRAM
        with probability equal to the rank's NVRAM-spill fraction."""
        if self.cost.rank_memory_bytes == float("inf"):
            return
        frac = self.cost.spill_fraction(store.approx_bytes())
        if frac > 0.0:
            self._charge(rank, frac * self.cost.nvram_access_cpu)

    # ------------------------------------------------------------------
    # program callback plumbing (incl. S_prev/S_new views)
    # ------------------------------------------------------------------
    def _collection_for(self, prog: int) -> ActiveCollection | None:
        col = self.active_collection
        return col if col is not None and col.prog == prog else None

    def _run_callback(self, rank: int, prog: int, vertex: int, cb: str, *args) -> None:
        ctx = self._ctx[rank][prog]
        ctx.vertex = vertex
        ctx.time = self.loop.now(rank)
        self.counters[rank].visits += 1
        self._prog_visits[prog] += 1
        program = self.programs[prog]
        fn = getattr(program, cb)
        # Effect-dependent charging: a callback that neither writes nor
        # emits is a redundant event that a real visitor queue squashes
        # cheaply (§II-D: monotone updates "can be combined or
        # squashed") — charge the discard cost instead of a full visit.
        self._cb_effect[rank] = False
        col = self._collection_for(prog)
        try:
            if (
                col is not None
                and self._proc_version[rank] < col.cut_version
                and vertex in self._prev_vals[rank]
            ):
                # Prev-version event at a split vertex: apply to S_prev
                # (with event emission), then to S_new per the program's
                # mode (merge mode folds inside _write_value).
                ctx._view_prev = True
                try:
                    fn(ctx, *args)
                finally:
                    ctx._view_prev = False
                if program.snapshot_mode == "replay":
                    self._suppress_sends[rank] = True
                    try:
                        fn(ctx, *args)
                    finally:
                        self._suppress_sends[rank] = False
            else:
                fn(ctx, *args)
        finally:
            self._charge(
                rank,
                self.cost.visit_cpu
                if self._cb_effect[rank]
                else self.cost.visit_discard_cpu,
            )

    def _read_value(self, rank: int, prog: int, vertex: int, view_prev: bool) -> Any:
        if view_prev:
            prev = self._prev_vals[rank]
            if vertex in prev:
                return prev[vertex]
        return self.values[rank][prog].get(vertex, 0)

    def _write_value(
        self, rank: int, prog: int, vertex: int, value: Any, view_prev: bool
    ) -> None:
        self._cb_effect[rank] = True
        self._value_mutations += 1
        vals = self.values[rank][prog]
        if view_prev:
            self._prev_vals[rank][vertex] = value
            program = self.programs[prog]
            if program.snapshot_mode == "merge":
                old = vals.get(vertex, 0)
                merged = program.merge(old, value)
                if merged != old:
                    vals[vertex] = merged
                    if self._hk_write:
                        for h in self._hk_write:
                            h(prog, vertex, merged)
                    if self.triggers.has_triggers(prog):
                        self.triggers.on_change(prog, vertex, merged, self.loop.now(rank))
            return
        col = self._collection_for(prog)
        if col is not None and self._proc_version[rank] >= col.cut_version:
            prev = self._prev_vals[rank]
            if vertex not in prev:
                # First new-version touch: split, preserving the
                # prev-version view (§III-D).
                prev[vertex] = vals.get(vertex, 0)
        vals[vertex] = value
        if self._hk_write:
            for h in self._hk_write:
                h(prog, vertex, value)
        if self.triggers.has_triggers(prog):
            self.triggers.on_change(prog, vertex, value, self.loop.now(rank))

    def _value_for_send(self, rank: int, prog: int, vertex: int, ver: int) -> Any:
        """The value a REVERSE_ADD/DELETE carries for ``vertex`` — the
        S_prev view when the carrying event is prev-version and the
        vertex is split."""
        col = self._collection_for(prog)
        view_prev = (
            col is not None
            and ver < col.cut_version
            and vertex in self._prev_vals[rank]
        )
        return self._read_value(rank, prog, vertex, view_prev)

    def _nbr_cache_for(self, rank: int, prog: int, vertex: int) -> dict[int, Any]:
        cache = self._nbr_cache[rank][prog]
        if cache is None:
            raise RuntimeError(
                f"program {self.programs[prog].name!r} did not declare "
                "needs_nbr_cache=True"
            )
        return cache.setdefault(vertex, {})

    # ------------------------------------------------------------------
    # event emission
    # ------------------------------------------------------------------
    @staticmethod
    def _make_update_combiner(combine) -> Callable[[tuple, tuple], tuple]:
        """Lift a program's payload-level ``combine`` to full UPDATE
        tuples: ``(VT_UPDATE, prog, target, sender, value, weight, ver)``
        — identity fields and the earlier arrival stay with the queued
        message, payloads merge monotonically, the weight refreshes to
        the newest (latest edge attribute)."""

        def merge_msgs(old_msg: tuple, new_msg: tuple) -> tuple:
            return (
                old_msg[0],
                old_msg[1],
                old_msg[2],
                old_msg[3],
                combine(old_msg[4], new_msg[4]),
                new_msg[5],
                old_msg[6],
            )

        return merge_msgs

    def _note_cut_edge(self, rank: int, src: int, dst: int, ver: int) -> None:
        """Remember a ``(src, dst)`` adjacency entry inserted at or
        after the active collection's cut — it is not part of the
        discretized prefix the snapshot represents."""
        col = self.active_collection
        if col is not None and ver >= col.cut_version and self._edge_was_new[rank]:
            self._cut_new_edges[rank].add((src, dst))

    def _emit_version(self, rank: int, vertex: int, nbr: int, ver: int) -> int:
        """Version label for an UPDATE from ``vertex`` over its edge to
        ``nbr``.  A prev-version emission crossing an edge inserted
        after the cut is relabelled to the cut version: the edge does
        not exist in the discretized prefix (§III-D), so its value may
        only enter S_new — the receiver splits and applies it to the
        new view, never to the harvested S_prev.  (Suppressing the
        message instead would lose it for the final state.)"""
        col = self.active_collection
        if (
            col is not None
            and ver < col.cut_version
            and (vertex, nbr) in self._cut_new_edges[rank]
        ):
            return col.cut_version
        return ver

    def _emit_update_all(self, rank: int, prog: int, vertex: int, value: Any) -> None:
        if self._suppress_sends[rank]:
            return
        self._cb_effect[rank] = True
        ver = self._proc_version[rank]
        owner = self.partitioner.owner
        combiner = self._combiners[prog]
        col = self.active_collection
        relabel = (
            col is not None
            and ver < col.cut_version
            and bool(self._cut_new_edges[rank])
        )
        if not self.config.batch_updates:
            for nbr, weight in self.stores[rank].neighbors(vertex):
                mver = self._emit_version(rank, vertex, nbr, ver) if relabel else ver
                self._send_visitor(
                    rank,
                    owner(nbr),
                    (VT_UPDATE, prog, nbr, vertex, value, weight, mver),
                    mver,
                    (prog, nbr, vertex, mver) if combiner is not None else None,
                    combiner,
                )
            return
        # Batched fast path: one send_many per fan-out, built over the
        # store's borrowed parallel adjacency lists (no pair tuples).
        nbrs, weights = self.stores[rank].neighbors_arrays(vertex)
        if not nbrs:
            return
        if relabel:
            # Rare (prev-version fan-out while post-cut edges exist):
            # partition by label so each batch stays homogeneous for
            # the four-counter accounting.
            prev_batch, cut_batch = [], []
            for i, nbr in enumerate(nbrs):
                mver = self._emit_version(rank, vertex, nbr, ver)
                entry = (
                    owner(nbr),
                    (VT_UPDATE, prog, nbr, vertex, value, weights[i], mver),
                    (prog, nbr, vertex, mver) if combiner is not None else None,
                )
                (prev_batch if mver == ver else cut_batch).append(entry)
            if prev_batch:
                self._dispatch_batch(rank, prev_batch, ver, combiner)
            if cut_batch:
                self._dispatch_batch(rank, cut_batch, col.cut_version, combiner)
            return
        if combiner is not None:
            batch = [
                (
                    owner(nbr),
                    (VT_UPDATE, prog, nbr, vertex, value, weights[i], ver),
                    (prog, nbr, vertex, ver),
                )
                for i, nbr in enumerate(nbrs)
            ]
        else:
            batch = [
                (
                    owner(nbr),
                    (VT_UPDATE, prog, nbr, vertex, value, weights[i], ver),
                    None,
                )
                for i, nbr in enumerate(nbrs)
            ]
        self._dispatch_batch(rank, batch, ver, combiner)

    def _dispatch_batch(
        self,
        rank: int,
        batch: list[tuple[int, tuple, Any]],
        ver: int,
        combiner: Callable[[tuple, tuple], tuple] | None,
    ) -> None:
        """Emit one fan-out batch, with per-message squash accounting."""
        self.term[rank].record_send(ver, len(batch))
        self.counters[rank].batch_sends += 1
        squashed = self.loop.send_many(rank, batch, combiner)
        node_of = self.cost.node_of
        src_node = node_of(rank)
        counters = self.counters[rank]
        for (dst_rank, _msg, _key), was_squashed in zip(batch, squashed):
            if was_squashed:
                # Squashed = sent and received at squash time: the
                # four-counter detector sees a balanced pair instantly.
                self.term[dst_rank].record_receive(ver)
                self.counters[dst_rank].updates_squashed += 1
            elif node_of(dst_rank) == src_node:
                counters.messages_sent_local += 1
            else:
                counters.messages_sent_remote += 1

    def _emit_update_one(
        self, rank: int, prog: int, vertex: int, nbr: int, value: Any, weight: int | None
    ) -> None:
        if self._suppress_sends[rank]:
            return
        self._cb_effect[rank] = True
        if weight is None:
            weight = self.stores[rank].edge_weight(vertex, nbr)
            self._charge(rank, self.cost.storage_probe_cpu)
            if weight is None:
                weight = 1  # edge raced away (delete); carry the default
        ver = self._emit_version(rank, vertex, nbr, self._proc_version[rank])
        combiner = self._combiners[prog]
        self._send_visitor(
            rank,
            self.partitioner.owner(nbr),
            (VT_UPDATE, prog, nbr, vertex, value, weight, ver),
            ver,
            (prog, nbr, vertex, ver) if combiner is not None else None,
            combiner,
        )

    def _send_visitor(
        self,
        src_rank: int,
        dst_rank: int,
        msg: tuple,
        version: int,
        coalesce_key: Any = None,
        combiner: Callable[[tuple, tuple], tuple] | None = None,
    ) -> None:
        self.term[src_rank].record_send(version)
        if self.loop.send(
            src_rank, dst_rank, msg, coalesce_key=coalesce_key, combiner=combiner
        ):
            # Squashed into a pending UPDATE: count it as received at
            # squash time so four-counter termination stays balanced.
            self.term[dst_rank].record_receive(version)
            self.counters[dst_rank].updates_squashed += 1
            return
        if self.cost.node_of(src_rank) == self.cost.node_of(dst_rank):
            self.counters[src_rank].messages_sent_local += 1
        else:
            self.counters[src_rank].messages_sent_remote += 1

    def _charge(self, rank: int, cpu: float) -> None:
        self.loop.consume(rank, cpu)
        self.counters[rank].busy_time += cpu

    # ------------------------------------------------------------------
    # control plane: probes, reports, cut, harvest
    # ------------------------------------------------------------------
    def _on_control(self, rank: int, msg: tuple) -> None:
        self._charge(rank, self.cost.control_cpu)
        self.counters[rank].control_messages += 1
        subtype = msg[1]
        coord = self.config.coordinator_rank
        col = self.active_collection
        if subtype == CTRL_CUT:
            _, _, col_id, cut = msg
            self.stream_version[rank] = max(self.stream_version[rank], cut)
            # Record how many source events this rank had ingested at the
            # cut — this *defines* the discretized prefix the snapshot
            # represents ("identifying an event for each stream that is
            # the last event to be processed in this collection", §III-D)
            # and lets tests check the snapshot against a static run on
            # exactly that prefix.
            self.cut_positions.setdefault(col_id, {})[rank] = self.counters[
                rank
            ].source_events
        elif subtype == CTRL_PROBE:
            _, _, col_id, wave, cut = msg
            sent = self.term[rank].sent_below(cut)
            recv = self.term[rank].received_below(cut)
            idle = self.stream_version[rank] >= cut or self._stream_done[rank]
            self.loop.send(
                rank,
                coord,
                (VT_CTRL, CTRL_REPORT, col_id, wave, rank, sent, recv, idle),
                priority=True,
            )
        elif subtype == CTRL_REPORT:
            _, _, col_id, wave, src_rank, sent, recv, idle = msg
            if col is None or col.collection_id != col_id:
                return  # stale report from a finished collection
            col.detector.report(wave, src_rank, sent, recv, idle)
            if not col.detector.wave_complete():
                return
            # conclude() is call-once per wave: capture the verdict so
            # the trace instant and the branch read the same result.
            concluded = col.detector.conclude()
            if self.tracer is not None:
                self.tracer.instant(
                    rank,
                    "probe/wave",
                    self.loop.now(rank),
                    "collection",
                    {"id": col_id, "wave": wave, "concluded": concluded},
                )
            if concluded:
                for r in range(self.config.n_ranks):
                    self.loop.send(
                        rank, r, (VT_CTRL, CTRL_HARVEST, col_id, col.prog), priority=True
                    )
            else:
                next_at = self.loop.now(rank) + self.config.probe_backoff
                wave_id = col.detector.start_wave()
                for r in range(self.config.n_ranks):
                    self.loop.send_at(
                        next_at,
                        rank,
                        r,
                        (VT_CTRL, CTRL_PROBE, col_id, wave_id, col.cut_version),
                        priority=True,
                    )
        elif subtype == CTRL_HARVEST:
            _, _, col_id, prog = msg
            self._enter_phase("harvest")
            prev = self._prev_vals[rank]
            vals = self.values[rank][prog]
            part = {vid: prev.get(vid, val) for vid, val in vals.items()}
            self._charge(rank, self.cost.gather_per_vertex_cpu * len(part))
            self._prev_vals[rank] = {}
            self._cut_new_edges[rank].clear()
            self.loop.send(
                rank, coord, (VT_CTRL, CTRL_PART, col_id, rank, part), priority=True
            )
        elif subtype == CTRL_PART:
            _, _, col_id, src_rank, part = msg
            if col is None or col.collection_id != col_id:
                return
            col.parts[src_rank] = part
            self._charge(rank, self.cost.gather_per_vertex_cpu * len(part))
            if col.all_parts_in(self.config.n_ranks):
                merged = col.merged_state()
                result = CollectionResult(
                    collection_id=col.collection_id,
                    prog=col.prog,
                    cut_version=col.cut_version,
                    requested_at=col.requested_at,
                    completed_at=self.loop.now(rank),
                    state=merged,
                    probe_waves=col.detector.waves_run,
                    vertices_collected=len(merged),
                )
                self.collection_results.append(result)
                if self.tracer is not None:
                    # cat "collection" (not a BUSY_CATEGORY): the epoch
                    # overlaps the ctrl/visit spans running inside it.
                    self.tracer.span(
                        rank,
                        "collection/epoch",
                        col.requested_at,
                        result.completed_at,
                        "collection",
                        {
                            "id": result.collection_id,
                            "prog": self.programs[col.prog].name,
                            "probe_waves": result.probe_waves,
                            "vertices": result.vertices_collected,
                        },
                    )
                if self.metrics is not None:
                    self.metrics.inc("collections")
                    self.metrics.histogram("collection_latency_us").observe(
                        result.latency * 1e6
                    )
                self.active_collection = None
                if col.callback is not None:
                    col.callback(result)
                if self._pending_collections:
                    prog, cb = self._pending_collections.pop(0)
                    self._begin_collection(prog, self.loop.now(rank), cb)
        else:  # pragma: no cover - corrupted control message
            raise ValueError(f"unknown control subtype in {msg!r}")
