"""The event-centric dynamic graph runtime (the paper's middleware).

This package is the reproduction of §II-III: the visitor-based
programming model (Alg. 3), the engine that routes topology events and
algorithmic events over the simulated cluster, local-state "When"
queries (§III-E), and global-state collection — both quiescence-based
and the continuous Chandy-Lamport-style versioned variant (§III-D).
"""

from repro.runtime.program import VertexContext, VertexProgram
from repro.runtime.engine import (
    DynamicEngine,
    EngineConfig,
    UnsupportedCollectionError,
)
from repro.runtime.lifecycle import (
    PHASES,
    EngineBuilder,
    Lifecycle,
    LifecycleError,
)
from repro.runtime.plugins import (
    HOOK_SITES,
    BulkIngestPlugin,
    EnginePlugin,
    FaultInjectionPlugin,
    FreshnessPlugin,
    HookStatsPlugin,
    MetricsPlugin,
    PluginRegistry,
    TracerPlugin,
    build_plugin,
    plugins_from_config,
)
from repro.runtime.queries import Trigger, TriggerManager
from repro.runtime.reference import ReferenceEngine
from repro.runtime.snapshot import CollectionResult

__all__ = [
    "VertexContext",
    "VertexProgram",
    "DynamicEngine",
    "UnsupportedCollectionError",
    "EngineConfig",
    "EngineBuilder",
    "Lifecycle",
    "LifecycleError",
    "PHASES",
    "HOOK_SITES",
    "EnginePlugin",
    "PluginRegistry",
    "TracerPlugin",
    "MetricsPlugin",
    "FreshnessPlugin",
    "BulkIngestPlugin",
    "FaultInjectionPlugin",
    "HookStatsPlugin",
    "build_plugin",
    "plugins_from_config",
    "Trigger",
    "ReferenceEngine",
    "TriggerManager",
    "CollectionResult",
]
