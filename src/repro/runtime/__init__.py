"""The event-centric dynamic graph runtime (the paper's middleware).

This package is the reproduction of §II-III: the visitor-based
programming model (Alg. 3), the engine that routes topology events and
algorithmic events over the simulated cluster, local-state "When"
queries (§III-E), and global-state collection — both quiescence-based
and the continuous Chandy-Lamport-style versioned variant (§III-D).
"""

from repro.runtime.program import VertexContext, VertexProgram
from repro.runtime.engine import (
    DynamicEngine,
    EngineConfig,
    UnsupportedCollectionError,
)
from repro.runtime.queries import Trigger, TriggerManager
from repro.runtime.reference import ReferenceEngine
from repro.runtime.snapshot import CollectionResult

__all__ = [
    "VertexContext",
    "VertexProgram",
    "DynamicEngine",
    "UnsupportedCollectionError",
    "EngineConfig",
    "Trigger",
    "ReferenceEngine",
    "TriggerManager",
    "CollectionResult",
]
