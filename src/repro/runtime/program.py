"""The vertex-program API — the paper's programming model (§III-A).

A :class:`VertexProgram` is the user-facing abstraction of Alg. 3: a set
of callbacks triggered at a vertex by the three key event types (add,
reverse-add, update), plus ``init`` for algorithms with a starting
vertex and optional delete callbacks for the decremental extension
(§VI-B).  Callbacks receive a :class:`VertexContext` bound to the
visited vertex, through which they read/write the vertex's algorithm
value and emit further update events (``update_nbrs`` /
``update_single_nbr`` — exactly the two emission primitives of Alg. 3).

Values are opaque to the engine except for two program-declared hooks
used by versioned global-state collection (§III-D):

* ``merge(a, b)`` — the monotone combine of the algorithm's value space
  (min for BFS/SSSP, max for CC, set-union for S-T).  Programs with a
  convex monotone state support ``snapshot_mode = "merge"``.
* programs whose callbacks are commutative deltas rather than monotone
  merges (e.g. degree counting) declare ``snapshot_mode = "replay"``:
  prev-version events replay against both state versions.

The engine guarantees (via per-channel FIFO, §III-C) that events
touching the same vertex are processed one at a time in arrival order,
so callbacks never need locks — the shared-nothing property the whole
design is built on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable


class VertexContext:
    """The view of one vertex handed to a program callback.

    One context object per (rank, program) is reused across calls — the
    engine rebinds it before each callback, so callbacks must not retain
    references past their own invocation.
    """

    __slots__ = ("_engine", "_rank", "_prog", "vertex", "_view_prev", "time")

    def __init__(self, engine, rank: int, prog: int):
        self._engine = engine
        self._rank = rank
        self._prog = prog
        self.vertex = -1
        self._view_prev = False  # True while replaying against S_prev
        self.time = 0.0  # virtual time of the current visit

    # -- state ----------------------------------------------------------
    @property
    def value(self) -> Any:
        """The vertex's current algorithm value (0 if never written —
        the paper's 'new vertex' sentinel)."""
        return self._engine._read_value(self._rank, self._prog, self.vertex, self._view_prev)

    def set_value(self, value: Any) -> None:
        """Write the vertex's algorithm value (fires matching triggers,
        and performs the S_prev/S_new split bookkeeping when a global
        state collection is active)."""
        self._engine._write_value(
            self._rank, self._prog, self.vertex, value, self._view_prev
        )

    # -- topology -------------------------------------------------------
    @property
    def degree(self) -> int:
        """Current out-degree of this vertex in the rank-local store."""
        return self._engine.stores[self._rank].degree(self.vertex)

    @property
    def undirected(self) -> bool:
        """Whether the engine runs in undirected mode (programs gate
        their notify-back branches on this: with directed edges the
        sender cannot use the visited vertex's value)."""
        return self._engine.config.undirected

    @property
    def edge_was_new(self) -> bool:
        """During ``on_add``/``on_reverse_add``: did the triggering event
        insert a *new* edge (True) or re-observe an existing one — an
        attribute update (False)?  Programs that must not double-count
        duplicate edge events (e.g. triangle counting) key off this."""
        return self._engine._edge_was_new[self._rank]

    def has_edge(self, nbr: int) -> bool:
        """Does this vertex currently have an edge to ``nbr``?

        Delete-capable programs use this to discard in-flight events
        that arrive over an edge removed in the meantime — messages
        address vertices, not edges, so the topology check is the
        receiver's job (§VI-B).
        """
        return self._engine.stores[self._rank].has_edge(self.vertex, nbr)

    def neighbors(self) -> Iterable[tuple[int, int]]:
        """Iterate ``(neighbour, weight)`` over this vertex's edges."""
        return self._engine.stores[self._rank].neighbors(self.vertex)

    @property
    def nbr_cache(self) -> dict[int, Any]:
        """Per-edge cache of the last value heard from each neighbour
        (Alg. 3's ``nbrs`` value map).  Only maintained when the program
        sets ``needs_nbr_cache = True``."""
        return self._engine._nbr_cache_for(self._rank, self._prog, self.vertex)

    # -- event emission (Alg. 3's two primitives) ------------------------
    def update_nbrs(self, value: Any) -> None:
        """Send an UPDATE event carrying ``value`` to every neighbour."""
        self._engine._emit_update_all(self._rank, self._prog, self.vertex, value)

    def update_single_nbr(self, nbr: int, value: Any, weight: int | None = None) -> None:
        """Send an UPDATE event carrying ``value`` to one neighbour.

        ``weight`` is the edge weight to stamp on the event; when None
        the engine looks it up in the adjacency store (charged to the
        rank's clock).
        """
        self._engine._emit_update_one(
            self._rank, self._prog, self.vertex, nbr, value, weight
        )


class VertexProgram:
    """Base class for incremental algorithms (override the callbacks).

    Class attributes:

    * ``name`` — identifier used in metrics and engine lookups.
    * ``needs_nbr_cache`` — maintain Alg. 3's per-edge neighbour-value
      map (costs memory; only the decremental algorithms need it).
    * ``snapshot_mode`` — ``"merge"`` (REMO monotone state; requires
      :meth:`merge`) or ``"replay"`` (commutative-delta state).
    * ``combine`` — optional visitor-queue coalescing hook (§II-D).
      When set to a callable ``combine(old_val, new_val) -> merged``,
      two pending UPDATE payloads from the same sender to the same
      vertex may be squashed into one in the receiver's visitor queue;
      the hook must be the program's monotone merge over *update
      payloads* (min for BFS/SSSP, max for CC, bitwise-or for S-T),
      treating 0 as the "unset" identity where the program does.
      ``None`` (the default) disables coalescing for the program —
      mandatory for programs whose update payloads are commands or
      deltas rather than monotone values (degree counting, the
      generational delete programs).
    * ``bulk_kernel`` — optional array-native relaxation strategy (a
      :class:`repro.kernels.frontier.FrontierKernel`) declaring how the
      bulk-ingest fast path reaches this program's REMO fixpoint over a
      whole chunk of inserts at once.  Only sound for monotone programs
      whose fixpoint is interleaving-independent (§II-B); ``None`` (the
      default) keeps the program per-event, which in turn keeps the
      whole engine per-event whenever the program is loaded.
    * ``supports_versioned_collection`` — whether versioned (continuous)
      global-state collection (§III-D) is sound for this program.  The
      generational delete programs set it False: their epoch/generation
      restarts are not expressible as the prev/new version split, so the
      engine refuses the collection
      (:class:`~repro.runtime.engine.UnsupportedCollectionError`)
      instead of harvesting a silently wrong cut.
    """

    name = "vertex-program"
    needs_nbr_cache = False
    snapshot_mode = "merge"
    combine: Callable[[Any, Any], Any] | None = None
    bulk_kernel: Any | None = None
    supports_versioned_collection = True

    # -- lifecycle callbacks ---------------------------------------------
    def on_init(self, ctx: VertexContext, payload: Any) -> None:
        """An ``init()`` visitor reached this vertex (query instantiation,
        'initiated at any time', §IV).  Default: no-op."""

    def on_add(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        """Edge ``(ctx.vertex -> vis_id)`` was just inserted here (the
        directed-edge source side).  ``vis_val`` is 0 (the ingesting rank
        knows no algorithm state).  Default: no-op."""

    def on_reverse_add(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        """The reverse side of an undirected insert: edge
        ``(ctx.vertex -> vis_id)`` inserted, with ``vis_val`` carrying
        ``vis_id``'s value at the time it processed the ADD."""

    def on_update(self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int) -> None:
        """A propagated algorithmic event from neighbour ``vis_id``."""

    def on_delete(self, ctx: VertexContext, vis_id: int, weight: int) -> None:
        """Edge ``(ctx.vertex -> vis_id)`` was just removed here (source
        side).  Only called when the engine runs with deletes enabled."""

    def on_reverse_delete(
        self, ctx: VertexContext, vis_id: int, vis_val: Any, weight: int
    ) -> None:
        """Reverse side of an undirected delete."""

    # -- value-space hooks -------------------------------------------------
    def merge(self, a: Any, b: Any) -> Any:
        """Monotone combine of two values of this program's state space.

        Required when ``snapshot_mode == "merge"`` and a global state
        collection runs concurrently with this program.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement merge() for snapshot_mode='merge'"
        )

    def format_value(self, value: Any) -> str:
        """Pretty-print a value (reports/debugging)."""
        return repr(value)


class CallbackProgram(VertexProgram):
    """Ad-hoc program assembled from plain functions (the §II-A style:
    'a programmer will only have to write these two simple callbacks').

    >>> degree = CallbackProgram(
    ...     name="degree",
    ...     on_add=lambda ctx, vid, val, w: ctx.set_value(ctx.value + 1),
    ... )
    """

    snapshot_mode = "replay"

    def __init__(
        self,
        name: str,
        on_init: Callable | None = None,
        on_add: Callable | None = None,
        on_reverse_add: Callable | None = None,
        on_update: Callable | None = None,
        on_delete: Callable | None = None,
        on_reverse_delete: Callable | None = None,
        needs_nbr_cache: bool = False,
    ):
        self.name = name
        self.needs_nbr_cache = needs_nbr_cache
        if on_init is not None:
            self.on_init = on_init  # type: ignore[method-assign]
        if on_add is not None:
            self.on_add = on_add  # type: ignore[method-assign]
        if on_reverse_add is not None:
            self.on_reverse_add = on_reverse_add  # type: ignore[method-assign]
        if on_update is not None:
            self.on_update = on_update  # type: ignore[method-assign]
        if on_delete is not None:
            self.on_delete = on_delete  # type: ignore[method-assign]
        if on_reverse_delete is not None:
            self.on_reverse_delete = on_reverse_delete  # type: ignore[method-assign]
