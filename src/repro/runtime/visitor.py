"""Visitor message encodings (the wire format of the simulated cluster).

Visitors are plain tuples with an integer discriminator first, mirroring
Alg. 3's ``VISIT_TYPE`` switch.  Layouts:

======== ==========================================================
type     payload
======== ==========================================================
ADD      ``(VT_ADD, src, dst, weight, version)`` → owner(src)
RADD     ``(VT_RADD, dst, src, vals, weight, version)`` → owner(dst)
         ``vals`` = tuple of the source vertex's value per program
UPDATE   ``(VT_UPDATE, prog, target, vis_id, vis_val, weight, version)``
INIT     ``(VT_INIT, prog, target, payload, version)``
DEL      ``(VT_DEL, src, dst, version)`` → owner(src)
RDEL     ``(VT_RDEL, dst, src, vals, version)`` → owner(dst)
CTRL     ``(VT_CTRL, subtype, ...)`` — control plane (probes, reports,
         snapshot cut/harvest); never counted by termination detection
======== ==========================================================

``version`` is the snapshot-version tag of §III-D: topology events carry
their stream's current version, and every algorithmic event inherits the
version of the event that caused it.
"""

from __future__ import annotations

VT_ADD = 0
VT_RADD = 1
VT_UPDATE = 2
VT_INIT = 3
VT_DEL = 4
VT_RDEL = 5
VT_CTRL = 6

# control-plane subtypes
CTRL_PROBE = 0  # coordinator -> rank: report your counters for a label cut
CTRL_REPORT = 1  # rank -> coordinator: (wave, rank, sent, recv, idle)
CTRL_CUT = 2  # coordinator -> rank: begin snapshot version v
CTRL_HARVEST = 3  # coordinator -> rank: pack & return prev-version state
CTRL_PART = 4  # rank -> coordinator: one rank's snapshot fragment

VISIT_NAMES = {
    VT_ADD: "ADD",
    VT_RADD: "REVERSE_ADD",
    VT_UPDATE: "UPDATE",
    VT_INIT: "INIT",
    VT_DEL: "DELETE",
    VT_RDEL: "REVERSE_DELETE",
    VT_CTRL: "CONTROL",
}


def visit_name(vt: int) -> str:
    """Human-readable visitor-type name (raises on unknown types)."""
    try:
        return VISIT_NAMES[vt]
    except KeyError:
        raise ValueError(f"unknown visitor type {vt!r}") from None
