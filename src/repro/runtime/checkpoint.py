"""Quiescent-state checkpointing: suspend and resume an engine.

A long-lived on-line analytics deployment needs to survive restarts
without replaying the whole history.  At quiescence (all streams
drained, no messages in flight), the engine's durable state is exactly:

* the topology (every rank's stored directed edges + weights),
* each program's vertex values,
* the stream-version / snapshot counters,
* the per-rank event counters (source events, edge inserts/deletes),

which this module serialises to a compressed ``.npz`` plus a pickled
side-car for non-integer program values (tuples, bitsets).  Restoring
builds a fresh engine with the same configuration and programs and
reloads that state; virtual clocks restart at zero (wall-clock history
is not part of the algorithmic state).

Delete-safety (§VI-B): the generational programs' entire generation /
epoch state — the ``(counter, initiator)`` epoch and generation ints —
lives *inside* the vertex value tuples, so it rides the values side-car
with no separate table.  A checkpoint taken at quiescence is therefore
a consistent generational cut: every vertex's epoch is final for the
prefix, and replaying a delete-carrying suffix restarts epochs from the
restored counters exactly as an uninterrupted run would.  The per-rank
counters must round-trip too, or ``edge_deletes`` (and the churn
metrics derived from it) silently undercount after every recovery.

Security note: the values side-car uses :mod:`pickle`; only restore
checkpoints you produced.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from repro.runtime.engine import DynamicEngine


class NotQuiescentError(RuntimeError):
    """Raised when checkpointing an engine with work still in flight."""


def save_checkpoint(
    engine: DynamicEngine, path: str | Path, extra: dict | None = None
) -> None:
    """Serialise a quiescent engine's durable state to ``path``.

    ``extra`` is an optional picklable dict stored alongside the engine
    state — the fault-tolerant runner uses it to record stream replay
    positions so recovery can resume ingestion at the right suffix.

    Raises :class:`NotQuiescentError` if streams or messages remain —
    checkpoints of a mid-flight cluster would need the whole message
    state, which neither we nor the paper attempt.
    """
    if not engine.loop.quiescent():
        raise NotQuiescentError(
            "engine has unfinished work; run() to quiescence before saving"
        )
    if engine.active_collection is not None:
        raise NotQuiescentError("a global state collection is still active")
    srcs, dsts, weights = [], [], []
    for s, d, w in engine.edges():
        srcs.append(s)
        dsts.append(d)
        weights.append(w)
    # np.array() infers the dtype from the values: int64 for integer
    # weights, float64 when any weight is a float (SSSP / widest-path
    # workloads) — forcing int64 here would silently truncate them.
    weight_arr = np.array(weights) if weights else np.empty(0, dtype=np.int64)
    values = [
        {vid: val for rank_vals in engine.values for vid, val in rank_vals[p].items()}
        for p in range(len(engine.programs))
    ]
    payload = {
        "program_names": [p.name for p in engine.programs],
        "values": values,
        "stream_version": list(engine.stream_version),
        "next_version": engine._next_version,
        "counters": list(engine.counters),
        "extra": dict(extra) if extra else {},
    }
    path = Path(path)
    np.savez_compressed(
        path,
        src=np.array(srcs, dtype=np.int64),
        dst=np.array(dsts, dtype=np.int64),
        weights=weight_arr,
        sidecar=np.frombuffer(pickle.dumps(payload), dtype=np.uint8),
    )
    if engine._hk_checkpoint:
        for h in engine._hk_checkpoint:
            h("save", str(path))


def load_checkpoint(engine: DynamicEngine, path: str | Path) -> dict:
    """Restore a checkpoint into a *fresh* engine.

    The engine must have been constructed with the same program list
    (matched by name, in order) as the one that saved the checkpoint,
    and must not have processed any events yet.  Returns the ``extra``
    dict the checkpoint was saved with (empty for plain checkpoints).
    """
    if engine.num_edges or engine.loop.actions_executed:
        raise RuntimeError("restore target must be a fresh engine")
    with np.load(Path(path)) as data:
        payload = pickle.loads(data["sidecar"].tobytes())
        srcs, dsts, weights = data["src"], data["dst"], data["weights"]
    names = [p.name for p in engine.programs]
    if names != payload["program_names"]:
        raise ValueError(
            f"program mismatch: checkpoint has {payload['program_names']}, "
            f"engine has {names}"
        )
    # Topology: stored edges are already direction-expanded; place each
    # at its owner directly (no events, no message traffic).
    for s, d, w in zip(srcs, dsts, weights):
        rank = engine.partitioner.owner(int(s))
        # .item() preserves the stored weight dtype (int stays int,
        # float stays float) instead of truncating through int().
        engine.stores[rank].insert_edge(int(s), int(d), w.item())
    # Program values at their owners.
    for p, vals in enumerate(payload["values"]):
        for vid, val in vals.items():
            rank = engine.partitioner.owner(vid)
            engine.values[rank][p][vid] = val
    engine.stream_version = list(payload["stream_version"])
    engine._next_version = payload["next_version"]
    # Per-rank counters resume where the saved incarnation left off
    # (older checkpoints carry none — those start from zero, as before).
    # Restoring into a different rank count repartitions the topology,
    # so per-rank attribution is meaningless there; the merged totals
    # land on rank 0 to keep every aggregate (edge_deletes and friends)
    # exact across the recovery.
    saved_counters = payload.get("counters")
    if saved_counters is not None:
        if len(saved_counters) == len(engine.counters):
            engine.counters = list(saved_counters)
        else:
            total = saved_counters[0]
            for c in saved_counters[1:]:
                total = total.merge(c)
            engine.counters[0] = total
    # Older checkpoints (pre-fault-tolerance) carry no extra payload.
    if engine._hk_checkpoint:
        for h in engine._hk_checkpoint:
            h("load", str(path))
    return payload.get("extra", {})
