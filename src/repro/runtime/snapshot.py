"""Global-state collection bookkeeping (§III-D).

Two collection modes, per the paper:

* **quiescence** — pause ingestion, drain, read state.  The engine
  offers this trivially (run to quiescence, then read
  ``DynamicEngine.state``); no protocol object is needed.
* **versioned (continuous)** — the Chandy-Lamport-style variant: a CUT
  control message starts version *v+1* on every stream without pausing
  it; vertices touched by new-version events split into
  ``S_prev``/``S_new``; prev-version events apply to both; when
  four-counter detection proves all prev-version traffic drained, each
  rank harvests its ``S_prev`` view and ships it to the coordinator.

This module holds the coordinator- and rank-side state for the
versioned mode; the message choreography lives in the engine.

Lifecycle mapping (:mod:`repro.runtime.lifecycle`): issuing a CUT moves
the engine into the ``collect`` phase and fires the registry's
``on_collection_cut`` hooks; the CTRL_HARVEST round that closes the
epoch enters ``harvest``.  Both are steady phases — repeated
collections on one engine re-enter them as coalesced no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.comm.termination import TerminationCoordinator


@dataclass
class CollectionResult:
    """What a completed versioned collection returns.

    ``state`` maps vertex -> prev-version value (the discretized global
    algorithm state at the cut); timing fields are virtual seconds.
    """

    collection_id: int
    prog: int
    cut_version: int
    requested_at: float
    completed_at: float
    state: dict[int, Any]
    probe_waves: int
    vertices_collected: int

    @property
    def latency(self) -> float:
        """Request-to-collected latency — the Fig. 4 left-bar metric."""
        return self.completed_at - self.requested_at

    def to_dict(self, include_state: bool = False) -> dict[str, Any]:
        """JSON-safe summary; the (potentially huge) vertex state map is
        excluded unless asked for."""
        d = {
            "collection_id": self.collection_id,
            "prog": self.prog,
            "cut_version": self.cut_version,
            "requested_at": self.requested_at,
            "completed_at": self.completed_at,
            "latency": self.latency,
            "probe_waves": self.probe_waves,
            "vertices_collected": self.vertices_collected,
        }
        if include_state:
            d["state"] = dict(self.state)
        return d


@dataclass
class ActiveCollection:
    """Coordinator-side state of the one in-flight collection.

    The prototype, like the paper's ("our global state collection is a
    preliminary implementation"), supports one active collection at a
    time; the engine rejects overlapping requests.
    """

    collection_id: int
    prog: int
    cut_version: int  # events with version < cut_version are "prev"
    requested_at: float
    detector: TerminationCoordinator
    cut_acks: set[int] = field(default_factory=set)
    parts: dict[int, dict[int, Any]] = field(default_factory=dict)
    callback: Any = None  # called with CollectionResult when done

    def all_cut_acked(self, n_ranks: int) -> bool:
        return len(self.cut_acks) == n_ranks

    def all_parts_in(self, n_ranks: int) -> bool:
        return len(self.parts) == n_ranks

    def merged_state(self) -> dict[int, Any]:
        merged: dict[int, Any] = {}
        for part in self.parts.values():
            merged.update(part)
        return merged
