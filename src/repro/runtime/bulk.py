"""Bulk-ingest fast path: chunked saturation replay with array kernels.

Motivation (wall-clock, not virtual-time): the per-event engine pays
full Python dispatch — heap push/pop, tuple churn, one callback per
edge endpoint — for every topology event.  During *pure saturation
replay* none of that machinery is observable: no collection cut is
active, no trigger watches the state, every program's state is REMO
monotone.  Under those conditions the final fixpoint is independent of
event interleaving (§II-B), so a whole chunk of ADD events can be
applied at once and the algorithm state advanced by vectorized
delta-frontier relaxation (:mod:`repro.kernels.frontier`) with a result
bitwise-equal to the per-event path.

The :class:`BulkIngestor` owns the dense mirror of the engine state:

* a vertex universe (arrival-ordered dense ids, searchsorted lookup),
* one dense value array per program (dtype chosen by its
  ``bulk_kernel``),
* the global directed edge set, key-sorted so its tail column *is* the
  CSR ordering (undirected input edges appear as two directed edges,
  exactly as the per-event ADD / REVERSE_ADD pair stores them).

Exactness contract
------------------
* **Engage** only while eligible (``DynamicEngine._bulk_eligible``): no
  active or pending collection, no registered triggers, no injected
  timed events, add-only streams, every program kernel-capable.
* **Topology** appended in bulk lands in ``DegAwareRHH`` array append
  buffers; any classic store access materialises them through the exact
  ``insert_edge`` path first, so per-event code never observes a stale
  store.
* **De-optimize** (:meth:`deoptimize`): the moment per-event processing
  must resume — any message dispatch, or eligibility lost — the dense
  values are merged back into the per-rank value dicts *before* the
  event is handled.  Merging is the program's monotone combine, so a
  per-event write that raced ahead is never regressed.
* **Resync**: per-event activity bumps ``_topo_mutations`` /
  ``_value_mutations`` on the engine; the next chunk re-reads stores
  and dicts before trusting its dense mirror.

Virtual-time accounting is kept comparable to the per-event path: each
chunk charges ``stream_pull_cpu`` per event to the ingesting rank,
``edge_insert_cpu`` per appended directed edge to its owner rank (plus
the NVRAM spill penalty when configured), and ``visit_discard_cpu`` per
kernel edge relaxation to the ingesting rank.  ``visits`` counters are
*not* incremented — bulk chunks report through the dedicated
``bulk_chunks`` / ``bulk_events`` / ``fallback_flushes`` counters.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.frontier import csr_indptr, relax_to_fixpoint

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class BulkIngestor:
    """Array-native chunk processor attached to one :class:`DynamicEngine`."""

    def __init__(self, engine):
        self.engine = engine
        programs = engine.programs
        self.kernels = [p.bulk_kernel for p in programs]
        # Construction-only (no programs) is vacuously supported.
        self.supported = all(
            k is not None and not p.needs_nbr_cache
            for p, k in zip(programs, self.kernels)
        )
        self.disabled = False  # set when injected timed events exist
        self.engaged = False  # dense mirror is ahead of the value dicts
        # Vertex universe: ids[dense] = vertex id, plus a sorted view
        # for O(log V) vectorized lookup.
        self.ids = _EMPTY_I64
        self._sorted_ids = _EMPTY_I64
        self._sorted_perm = _EMPTY_I64
        self._owners: np.ndarray | None = None
        self.values: list[np.ndarray] = [
            np.empty(0, dtype=k.dtype) if k is not None else _EMPTY_I64
            for k in self.kernels
        ]
        # Global directed edges, sorted by key = (tail_dense << 32) | head_dense.
        self.keys = np.empty(0, dtype=np.uint64)
        self.tails = _EMPTY_I64
        self.heads = _EMPTY_I64
        self.weights = _EMPTY_I64
        self._pending_frontier: list[np.ndarray | None] = [None] * len(self.kernels)
        self._synced_topo = -1
        self._synced_vals = -1

    # ------------------------------------------------------------------
    # vertex universe
    # ------------------------------------------------------------------
    def _lookup(self, vids: np.ndarray) -> np.ndarray:
        """Dense indices of known vertex ids (vectorized)."""
        return self._sorted_perm[np.searchsorted(self._sorted_ids, vids)]

    def _extend_universe(self, vids: np.ndarray) -> None:
        uniq = np.unique(vids)
        if self._sorted_ids.size:
            pos = np.minimum(
                np.searchsorted(self._sorted_ids, uniq), self._sorted_ids.size - 1
            )
            uniq = uniq[self._sorted_ids[pos] != uniq]
        if not uniq.size:
            return
        self.ids = np.concatenate([self.ids, uniq])
        if self.ids.size >= (1 << 32):  # pragma: no cover - key encoding bound
            raise OverflowError("bulk universe exceeds 2^32 vertices")
        order = np.argsort(self.ids, kind="stable")
        self._sorted_ids = self.ids[order]
        self._sorted_perm = order
        self._owners = None
        for p, kernel in enumerate(self.kernels):
            self.values[p] = np.concatenate(
                [self.values[p], kernel.init_values(uniq)]
            )

    def _owner_of_dense(self) -> np.ndarray:
        if self._owners is None or len(self._owners) != len(self.ids):
            self._owners = self.engine.partitioner.owner_array(self.ids)
        return self._owners

    # ------------------------------------------------------------------
    # resync with per-event state
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        eng = self.engine
        if eng._topo_mutations != self._synced_topo:
            self._rebuild_topology()
            self._synced_topo = eng._topo_mutations
        if eng._value_mutations != self._synced_vals:
            self._merge_dict_values()
            self._synced_vals = eng._value_mutations

    def _rebuild_topology(self) -> None:
        """Re-read every store's exact edge set (flushes append buffers)."""
        srcs: list[int] = []
        dsts: list[int] = []
        ws: list[int] = []
        for store in self.engine.stores:
            for s, d, w in store.edges():
                srcs.append(s)
                dsts.append(d)
                ws.append(w)
        t = np.asarray(srcs, dtype=np.int64)
        h = np.asarray(dsts, dtype=np.int64)
        w_arr = np.asarray(ws, dtype=np.int64)
        if t.size:
            self._extend_universe(np.concatenate([t, h]))
            t_d = self._lookup(t)
            h_d = self._lookup(h)
            keys = (t_d.astype(np.uint64) << np.uint64(32)) | h_d.astype(np.uint64)
            order = np.argsort(keys, kind="stable")
            self.keys = keys[order]
            self.tails = t_d[order]
            self.heads = h_d[order]
            self.weights = w_arr[order]
        else:
            self.keys = np.empty(0, dtype=np.uint64)
            self.tails = self.heads = self.weights = _EMPTY_I64

    def _merge_dict_values(self) -> None:
        """Fold per-event dict values into the dense mirror (monotone
        merge) and queue changed vertices for re-propagation."""
        eng = self.engine
        vid_arrays = [
            np.fromiter(d.keys(), np.int64, len(d))
            for rank_vals in eng.values
            for d in rank_vals
            if d
        ]
        if vid_arrays:
            self._extend_universe(np.concatenate(vid_arrays))
        for p, kernel in enumerate(self.kernels):
            for rank_vals in eng.values:
                d = rank_vals[p]
                if not d:
                    continue
                vids = np.fromiter(d.keys(), np.int64, len(d))
                vals = np.fromiter(d.values(), kernel.dtype, len(d))
                idx = self._lookup(vids)
                cur = self.values[p][idx]
                merged = kernel.merge_dense(cur, vals)
                changed = merged != cur
                if changed.any():
                    self.values[p][idx[changed]] = merged[changed]
                    prev = self._pending_frontier[p]
                    add = idx[changed]
                    self._pending_frontier[p] = (
                        add if prev is None else np.concatenate([prev, add])
                    )

    # ------------------------------------------------------------------
    # chunk processing
    # ------------------------------------------------------------------
    def process_chunk(self, rank: int, stream) -> int:
        """Drain up to ``bulk_chunk`` events from ``stream`` and advance
        topology + all program states to the new fixpoint.  Returns the
        number of events ingested (0 = stream exhausted)."""
        eng = self.engine
        src, dst, w = stream.pull_chunk(eng.config.bulk_chunk)
        n = len(src)
        if n == 0:
            return 0
        tracer = eng.tracer
        if tracer is not None:
            t0 = eng.loop.clock[rank]
        self._sync()
        counters = eng.counters[rank]
        counters.source_events += n
        counters.bulk_chunks += 1
        counters.bulk_events += n
        undirected = eng.config.undirected
        if undirected:
            swap = dst < src
            if swap.any():
                src, dst = np.where(swap, dst, src), np.where(swap, src, dst)
        # Topology: array append buffers on each owner's store (the
        # ADD side), plus the REVERSE_ADD side for undirected runs.
        self._append_to_stores(src, dst, w)
        if undirected:
            self._append_to_stores(dst, src, w)
        self._extend_universe(np.concatenate([src, dst]))
        t_d = self._lookup(src)
        h_d = self._lookup(dst)
        if undirected:
            tails = np.concatenate([t_d, h_d])
            heads = np.concatenate([h_d, t_d])
            wts = np.concatenate([w, w])
        else:
            tails, heads, wts = t_d, h_d, np.asarray(w, dtype=np.int64)
        new_tails = self._merge_edges(tails, heads, wts)
        if new_tails.size:
            owners = eng.partitioner.owner_array(self.ids[new_tails])
            for r, c in enumerate(np.bincount(owners, minlength=eng.config.n_ranks)):
                if c:
                    eng.counters[r].edge_inserts += int(c)
        # REMO propagation: delta-frontier relaxation from the chunk's
        # endpoints (values elsewhere are already at fixpoint).
        frontier_base = np.unique(np.concatenate([t_d, h_d]))
        total_relax = 0
        if self.kernels:
            indptr = csr_indptr(len(self.ids), self.tails)
            for p, kernel in enumerate(self.kernels):
                extra = self._pending_frontier[p]
                frontier = (
                    frontier_base
                    if extra is None
                    else np.concatenate([frontier_base, extra])
                )
                self._pending_frontier[p] = None
                _rounds, relaxed = relax_to_fixpoint(
                    indptr, self.heads, self.weights, self.values[p], frontier, kernel
                )
                total_relax += relaxed
        eng._charge(
            rank,
            n * eng.cost.stream_pull_cpu + total_relax * eng.cost.visit_discard_cpu,
        )
        if tracer is not None:
            # The owner-rank append charges inside _append_to_stores got
            # their own "bulk/append" spans; this span covers the
            # ingesting rank's whole chunk window (appends to its own
            # store nest inside it).
            tracer.span(
                rank,
                "bulk/chunk",
                t0,
                eng.loop.clock[rank],
                "bulk",
                {"events": n, "relaxations": total_relax},
            )
        self.engaged = True
        return n

    def _append_to_stores(self, srcs, dsts, ws) -> None:
        eng = self.engine
        tracer = eng.tracer
        owners = eng.partitioner.owner_array(srcs)
        counts = np.bincount(owners, minlength=eng.config.n_ranks)
        for r in np.nonzero(counts)[0]:
            r = int(r)
            m = owners == r
            store = eng.stores[r]
            store.bulk_append_edges(srcs[m], dsts[m], ws[m])
            cpu = int(counts[r]) * eng.cost.edge_insert_cpu
            if eng.cost.rank_memory_bytes != float("inf"):
                frac = eng.cost.spill_fraction(store.approx_bytes())
                cpu += int(counts[r]) * frac * eng.cost.nvram_access_cpu
            if tracer is not None:
                a0 = eng.loop.clock[r]
            eng._charge(r, cpu)
            if tracer is not None:
                tracer.span(
                    r,
                    "bulk/append",
                    a0,
                    eng.loop.clock[r],
                    "bulk",
                    {"edges": int(counts[r])},
                )

    def _merge_edges(
        self, tails: np.ndarray, heads: np.ndarray, wts: np.ndarray
    ) -> np.ndarray:
        """Fold a chunk's directed edges into the key-sorted global set.

        Within-chunk duplicates keep the last weight; duplicates of an
        existing edge overwrite its weight (attribute update, matching
        ``insert_edge``).  Returns the dense tails of genuinely new
        edges (for the ``edge_inserts`` counters)."""
        keys = (tails.astype(np.uint64) << np.uint64(32)) | heads.astype(np.uint64)
        order = np.argsort(keys, kind="stable")
        ks = keys[order]
        last = np.empty(len(ks), dtype=bool)
        last[:-1] = ks[1:] != ks[:-1]
        last[-1] = True
        sel = order[last]
        keys, tails, heads, wts = ks[last], tails[sel], heads[sel], wts[sel]
        if self.keys.size:
            pos = np.searchsorted(self.keys, keys)
            pos_c = np.minimum(pos, self.keys.size - 1)
            exists = self.keys[pos_c] == keys
            if exists.any():
                self.weights[pos[exists]] = wts[exists]
            fresh = ~exists
            keys, tails, heads, wts = (
                keys[fresh], tails[fresh], heads[fresh], wts[fresh],
            )
        if keys.size:
            merged = np.concatenate([self.keys, keys])
            order = np.argsort(merged, kind="stable")
            self.keys = merged[order]
            self.tails = np.concatenate([self.tails, tails])[order]
            self.heads = np.concatenate([self.heads, heads])[order]
            self.weights = np.concatenate([self.weights, wts])[order]
        return tails

    # ------------------------------------------------------------------
    # de-optimization / finalization
    # ------------------------------------------------------------------
    def deoptimize(self) -> None:
        """Exactness barrier: flush dense values back into the per-rank
        dicts so per-event processing resumes on exact state.  Counted
        in ``fallback_flushes``."""
        if self.engaged:
            eng = self.engine
            if eng.tracer is not None:
                coord = eng.config.coordinator_rank
                eng.tracer.instant(
                    coord, "bulk/deopt", eng.loop.now(coord), "bulk"
                )
            if eng.metrics is not None:
                eng.metrics.inc("bulk_deopts")
        self.flush_values(count_fallback=True)

    def flush_values(self, count_fallback: bool = True) -> None:
        if not self.engaged:
            return
        eng = self.engine
        if eng._value_mutations != self._synced_vals:
            # Defensive: per-event writes while engaged are normally
            # impossible (on_message de-optimizes first), but merge
            # rather than clobber if it ever happens.
            self._merge_dict_values()
        owners = self._owner_of_dense()
        for p in range(len(self.kernels)):
            fire = eng.triggers.has_triggers(p)
            vals = self.values[p]
            for r in range(eng.config.n_ranks):
                m = owners == r
                if not m.any():
                    continue
                d = eng.values[r][p]
                pairs = zip(self.ids[m].tolist(), vals[m].tolist())
                if fire:
                    now = eng.loop.now(r)
                    for vid, v in pairs:
                        if d.get(vid, 0) != v:
                            d[vid] = v
                            eng.triggers.on_change(p, vid, v, now)
                else:
                    d.update(pairs)
            if eng._hk_bulk_flush:
                # A bulk flush bypasses _write_value, so per-write
                # on_write hooks never fired; the coarse on_bulk_flush
                # site fires once per program instead (the serving
                # layer drops its non-absorbing cached entries for the
                # whole program wholesale).
                for h in eng._hk_bulk_flush:
                    h(p)
        self.engaged = False
        self._synced_vals = eng._value_mutations
        if count_fallback:
            eng.counters[eng.config.coordinator_rank].fallback_flushes += 1
