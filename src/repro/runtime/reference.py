"""A sequential reference engine — the executable spec of §III-A.

This is the abstract machine the paper's footnote 1 describes prior
work assuming: "topology events are each sequentially and atomically
ingested".  One Python deque, one vertex table, no ranks, no clocks, no
cost model.  It runs the *same* :class:`~repro.runtime.program.VertexProgram`
callbacks as the distributed engine, which makes it ideal for
differential testing: REMO convergence (§II-D) promises that the
asynchronous, distributed execution reaches exactly the state this
trivially-correct sequential machine reaches — and the property suite
checks that promise program-by-program.

It is also the honest baseline the paper's event-centric design is
measured against conceptually: everything the distributed engine adds
(ownership routing, FIFO channels, termination detection, snapshot
versions) exists to scale *this* semantics out.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from repro.events.types import ADD
from repro.runtime.program import VertexProgram
from repro.runtime.visitor import VT_ADD, VT_DEL, VT_INIT, VT_RADD, VT_RDEL, VT_UPDATE
from repro.storage.degaware import DegAwareRHH


class _RefContext:
    """Minimal VertexContext look-alike bound to the reference engine."""

    __slots__ = ("_engine", "_prog", "vertex", "time", "_view_prev")

    def __init__(self, engine: "ReferenceEngine", prog: int):
        self._engine = engine
        self._prog = prog
        self.vertex = -1
        self.time = 0.0
        self._view_prev = False

    @property
    def value(self) -> Any:
        return self._engine.values[self._prog].get(self.vertex, 0)

    def set_value(self, value: Any) -> None:
        self._engine.values[self._prog][self.vertex] = value

    @property
    def degree(self) -> int:
        return self._engine.store.degree(self.vertex)

    @property
    def undirected(self) -> bool:
        return self._engine.undirected

    @property
    def edge_was_new(self) -> bool:
        return self._engine._edge_was_new

    def has_edge(self, nbr: int) -> bool:
        return self._engine.store.has_edge(self.vertex, nbr)

    def neighbors(self) -> Iterable[tuple[int, int]]:
        return self._engine.store.neighbors(self.vertex)

    @property
    def nbr_cache(self) -> dict[int, Any]:
        return self._engine._nbr_cache[self._prog].setdefault(self.vertex, {})

    def update_nbrs(self, value: Any) -> None:
        for nbr, weight in list(self._engine.store.neighbors(self.vertex)):
            self._engine.queue.append(
                (VT_UPDATE, self._prog, nbr, self.vertex, value, weight)
            )

    def update_single_nbr(self, nbr: int, value: Any, weight: int | None = None) -> None:
        if weight is None:
            weight = self._engine.store.edge_weight(self.vertex, nbr) or 1
        self._engine.queue.append(
            (VT_UPDATE, self._prog, nbr, self.vertex, value, weight)
        )


class ReferenceEngine:
    """Sequential, atomic-per-event execution of vertex programs.

    Each topology event is ingested and its entire algorithmic cascade
    drained before the next event is looked at — the strictest possible
    serialisation.  API mirrors the distributed engine where it makes
    sense: ``ingest``, ``init_program``, ``state``, ``value_of``.
    """

    def __init__(self, programs: list[VertexProgram], undirected: bool = True):
        names = [p.name for p in programs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate program names: {names}")
        self.programs = list(programs)
        self.undirected = undirected
        self.store = DegAwareRHH(vertex_index="dict")
        self.values: list[dict[int, Any]] = [dict() for _ in programs]
        self._nbr_cache: list[dict[int, dict[int, Any]]] = [dict() for _ in programs]
        self._ctx = [_RefContext(self, p) for p in range(len(programs))]
        self.queue: deque = deque()
        self._edge_was_new = True
        self.events_ingested = 0

    # ------------------------------------------------------------------
    def prog_index(self, name_or_index: int | str) -> int:
        if isinstance(name_or_index, int):
            return name_or_index
        for i, p in enumerate(self.programs):
            if p.name == name_or_index:
                return i
        raise ValueError(f"no program named {name_or_index!r}")

    def init_program(self, prog: int | str, vertex: int, payload: Any = None) -> None:
        """Run an init() visitor and drain its cascade immediately."""
        p = self.prog_index(prog)
        self.queue.append((VT_INIT, p, vertex, payload))
        self._drain()

    def ingest(self, events: Iterable[tuple[int, int, int, int]]) -> None:
        """Sequentially and atomically ingest topology events."""
        for kind, src, dst, weight in events:
            if self.undirected and dst < src:
                src, dst = dst, src
            if kind == ADD:
                self.queue.append((VT_ADD, src, dst, weight))
            else:
                self.queue.append((VT_DEL, src, dst))
            self.events_ingested += 1
            self._drain()

    def value_of(self, prog: int | str, vertex: int) -> Any:
        return self.values[self.prog_index(prog)].get(vertex, 0)

    def state(self, prog: int | str) -> dict[int, Any]:
        return dict(self.values[self.prog_index(prog)])

    def edges(self) -> Iterable[tuple[int, int, int]]:
        return self.store.edges()

    @property
    def num_edges(self) -> int:
        return self.store.num_edges

    # ------------------------------------------------------------------
    def _run(self, prog: int, vertex: int, cb: str, *args) -> None:
        ctx = self._ctx[prog]
        ctx.vertex = vertex
        getattr(self.programs[prog], cb)(ctx, *args)

    def _drain(self) -> None:
        queue = self.queue
        while queue:
            msg = queue.popleft()
            vt = msg[0]
            if vt == VT_UPDATE:
                _, p, target, vis_id, vis_val, weight = msg
                cache = self._nbr_cache[p]
                if self.programs[p].needs_nbr_cache:
                    cache.setdefault(target, {})[vis_id] = vis_val
                self._run(p, target, "on_update", vis_id, vis_val, weight)
            elif vt == VT_ADD:
                _, src, dst, weight = msg
                self._edge_was_new = self.store.insert_edge(src, dst, weight)
                for p in range(len(self.programs)):
                    self._run(p, src, "on_add", dst, 0, weight)
                if self.undirected:
                    vals = tuple(
                        self.values[p].get(src, 0) for p in range(len(self.programs))
                    )
                    queue.append((VT_RADD, dst, src, vals, weight))
                else:
                    for p in range(len(self.programs)):
                        val = self.values[p].get(src, 0)
                        queue.append((VT_UPDATE, p, dst, src, val, weight))
            elif vt == VT_RADD:
                _, dst, src, vals, weight = msg
                self._edge_was_new = self.store.insert_edge(dst, src, weight)
                for p in range(len(self.programs)):
                    if self.programs[p].needs_nbr_cache:
                        self._nbr_cache[p].setdefault(dst, {})[src] = vals[p]
                    self._run(p, dst, "on_reverse_add", src, vals[p], weight)
            elif vt == VT_DEL:
                _, src, dst = msg
                weight = self.store.edge_weight(src, dst) or 0
                self.store.delete_edge(src, dst)
                for p in range(len(self.programs)):
                    self._run(p, src, "on_delete", dst, weight)
                if self.undirected:
                    vals = tuple(
                        self.values[p].get(src, 0) for p in range(len(self.programs))
                    )
                    queue.append((VT_RDEL, dst, src, vals))
            elif vt == VT_RDEL:
                _, dst, src, vals = msg
                weight = self.store.edge_weight(dst, src) or 0
                self.store.delete_edge(dst, src)
                for p in range(len(self.programs)):
                    self._run(p, dst, "on_reverse_delete", src, vals[p], weight)
            elif vt == VT_INIT:
                _, p, target, payload = msg
                self._run(p, target, "on_init", payload)
            else:  # pragma: no cover
                raise ValueError(f"unknown reference message {msg!r}")
