"""Time-series metrics: counters, gauges, histograms, and the sampler.

The :class:`MetricsRegistry` is the numeric companion of the tracer:
where spans show *where* virtual time went, the registry's periodic
samples show *how the system's state evolved* — inbox depth per rank,
busy fraction, topology size, per-program visit counts — as rows you
can plot, or diff between two runs of the same workload.

Sampling is driven by **virtual time**, not wall time: the
:class:`VirtualTimeSampler` schedules itself on the DES alarm queue
every ``interval`` virtual seconds, so two runs of the same workload
sample at identical instants and their series subtract cleanly.  The
sampler stops rescheduling once the cluster is quiescent (its final
firing takes the end-of-run sample), which keeps the event loop
terminating.

Export to JSONL lives in :mod:`repro.obs.export`; each sample is one
``{"kind": "sample", "t": ...}`` row, and convergence-lag rows from
:mod:`repro.obs.freshness` interleave with kind ``"freshness"``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.freshness import FreshnessProbe

#: Default histogram bucket upper bounds in microseconds (geometric,
#: covering sub-µs visitor dispatches up to ms-scale collection epochs).
DEFAULT_BOUNDS_US = (
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, 10000.0,
)


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative-free)."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS_US):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last = overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one.

        Bucket-wise addition is associative and commutative, so merging
        per-rank histograms in any grouping yields the same totals (the
        cross-rank merge relies on this; see the associativity tests).
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from its :meth:`to_dict` payload (the
        picklable/JSON shape harvested from worker processes)."""
        h = cls(tuple(doc["bounds"]))
        h.counts = [int(c) for c in doc["counts"]]
        h.count = int(doc["count"])
        h.total = float(doc["total"])
        if doc.get("min") is not None:
            h.min = float(doc["min"])
        if doc.get("max") is not None:
            h.max = float(doc["max"])
        return h

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts (upper
        bound of the containing bucket; the overflow bucket reports the
        observed max)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max

    def to_dict(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms plus the sampled time series."""

    __slots__ = ("counters", "gauges", "histograms", "samples")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.samples: list[dict[str, Any]] = []

    # -- scalar instruments ---------------------------------------------
    def inc(self, name: str, by: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS_US
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(bounds)
        return h

    # -- time series ----------------------------------------------------
    def record(self, row: dict[str, Any]) -> None:
        """Append one time-series row (must carry ``t`` and ``kind``)."""
        self.samples.append(row)

    def rows(self, kind: str | None = None) -> list[dict[str, Any]]:
        if kind is None:
            return list(self.samples)
        return [r for r in self.samples if r.get("kind") == kind]

    def series(self, key: str, kind: str = "sample") -> list[tuple[float, Any]]:
        """Extract ``(t, value)`` pairs for one sampled key."""
        return [
            (r["t"], r[key]) for r in self.samples
            if r.get("kind") == kind and key in r
        ]

    # -- cross-registry merge --------------------------------------------
    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters add, histograms bucket-add, samples concatenate (the
        caller re-sorts by ``t`` if interleaving matters), and gauges
        take the other registry's value on collision (harvest paths
        avoid collisions by rank-prefixing gauge names).  Counter and
        histogram merging are associative and commutative, so per-rank
        registries can be folded in any grouping.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                clone = Histogram(hist.bounds)
                clone.merge_from(hist)
                self.histograms[name] = clone
            else:
                mine.merge_from(hist)
        self.samples.extend(other.samples)

    @classmethod
    def merged(cls, parts: "list[MetricsRegistry]") -> "MetricsRegistry":
        """Fold registries into a fresh one (inputs untouched), with the
        combined samples re-sorted by timestamp."""
        out = cls()
        for part in parts:
            out.merge_from(part)
        out.samples.sort(key=lambda r: r.get("t", 0.0))
        return out


class VirtualTimeSampler:
    """Periodic engine sampler hooked on the DES alarm queue.

    Reads only cheap state — queue depths, clocks, counters, the
    approximate store sizes — so sampling never perturbs the virtual
    schedule (samples consume no simulated CPU) and barely perturbs wall
    time.  The optional :class:`~repro.obs.freshness.FreshnessProbe` is
    the one deliberate exception and is opt-in separately.
    """

    def __init__(self, engine: Any, registry: MetricsRegistry, interval: float):
        if interval <= 0:
            raise ValueError(f"sample interval must be > 0, got {interval}")
        self.engine = engine
        self.registry = registry
        self.interval = float(interval)
        # FreshnessProbe, attached via the engine's freshness plugin.
        self.freshness: FreshnessProbe | None = None
        self._next_t = 0.0

    def schedule(self) -> None:
        """Arm the next sample alarm (the engine calls this once)."""
        self.engine.loop.schedule_alarm(self._next_t, self._tick)

    def _tick(self) -> None:
        t = self._next_t
        self.sample(t)
        if not self.engine.loop.quiescent():
            self._next_t = t + self.interval
            self.schedule()

    # ------------------------------------------------------------------
    def sample(self, t: float) -> dict[str, Any]:
        """Take one sample at virtual time ``t`` and record it."""
        eng = self.engine
        loop = eng.loop
        n = eng.config.n_ranks
        counters = eng.counters
        busy = [counters[r].busy_time for r in range(n)]
        row: dict[str, Any] = {
            "kind": "sample",
            "t": t,
            "events": sum(c.source_events for c in counters),
            "events_remaining": sum(
                s.remaining() for s in eng._streams if s is not None
            ),
            "in_flight": loop.in_flight,
            "edges": sum(s.approx_num_edges for s in eng.stores),
            "vertices": sum(s.approx_num_vertices for s in eng.stores),
            "queue_depth": [loop.inbox_depth(r) for r in range(n)],
            "prio_depth": [loop.prio_depth(r) for r in range(n)],
            "coalesce_pending": [loop.coalesce_depth(r) for r in range(n)],
            "clock": [loop.clock[r] for r in range(n)],
            "busy": busy,
            "busy_frac": [b / t if t > 0 else 0.0 for b in busy],
            "visits": {
                p.name: eng._prog_visits[i] for i, p in enumerate(eng.programs)
            },
            "updates_squashed": sum(c.updates_squashed for c in counters),
            "stall_time": loop.stall_time,
        }
        transport = getattr(loop, "transport", None)
        if transport is not None:
            # Reliable-delivery wire telemetry (fault-injection runs).
            row["retransmits"] = transport.retransmits
            row["dropped"] = transport.frames_dropped
            row["unacked"] = transport.unacked_total()
            row["acks_sent"] = transport.acks_sent
        self.registry.record(row)
        tracer = eng.tracer
        if tracer is not None:
            # Mirror the per-rank series as Chrome counter tracks so the
            # Perfetto timeline shows queue buildup under the spans.
            for r in range(n):
                tracer.counter(
                    r,
                    "queues",
                    t,
                    {
                        "data": row["queue_depth"][r],
                        "prio": row["prio_depth"][r],
                        "coalescible": row["coalesce_pending"][r],
                    },
                )
                tracer.counter(r, "busy_frac", t, {"busy": row["busy_frac"][r]})
        if self.freshness is not None:
            self.freshness.sample(t, self.registry)
        return row
