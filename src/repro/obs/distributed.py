"""Distributed observability for the process-parallel (mp) backend.

The DES tracer/metrics stack (PR 3) records *virtual* time inside one
process.  The mp backend has no virtual clock and many processes, so
its telemetry needs three extra mechanisms, all of which live here:

* **Per-rank wall-clock capture** — each worker owns a
  :class:`RankObs`: a :class:`~repro.obs.tracer.Tracer` plus a
  :class:`~repro.obs.registry.MetricsRegistry` recording timestamps
  relative to the worker's own ``time.perf_counter()`` epoch.  The
  hot-loop discipline matches the engine's: every emission sits behind
  one ``if obs is not None`` guard, and a worker running without
  ``--trace/--metrics`` never constructs a RankObs at all.

* **Clock alignment** — ``perf_counter()`` epochs are arbitrary per
  process, so raw per-rank timestamps cannot be overlaid.  Each capture
  carries a :class:`ClockAnchor`, a ``(wall, perf)`` pair sampled at
  construction; the parent samples its own anchor before spawning.  At
  merge time every rank's events are shifted by
  ``max(rank.wall - parent.wall, 0.0)`` — the wall-clock lag between
  the parent epoch and the worker epoch.  The shift is one constant per
  rank, so per-track monotonicity (what ``validate_chrome_trace``
  checks) is preserved, and the clamp keeps timestamps non-negative
  even if NTP steps a clock between anchor samples.  Cross-rank skew is
  bounded by wall-clock skew between processes on one host — fine for
  timeline overlay, not for ordering individual µs-scale events.

* **Harvest + merge** — workers return their capture as a picklable
  payload dict alongside the result harvest (:func:`harvest_payload`);
  the runner folds all ranks with :func:`merge_rank_obs` into a single
  :class:`MergedObs`: one multi-process Chrome trace (``pid`` = rank)
  and one cross-rank registry in which counters sum, histograms
  bucket-add, samples interleave by aligned time, and per-rank scalars
  (wall/busy seconds) survive as rank-prefixed gauges plus
  ``kind="rank"`` report rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.tracer import Tracer

#: Span categories used by the mp worker instrumentation.  ``wait`` is
#: excluded from busy accounting — a rank blocked in ``poll`` burns no
#: CPU.
MP_BUSY_CATEGORIES = ("drain", "compute", "ingest", "emit", "ctrl")


@dataclass(frozen=True)
class ObsConfig:
    """What the mp backend should capture (picklable, sent to workers).

    ``trace`` records phase spans; ``metrics`` records counters and
    ring-occupancy samples.  Either flag implies a registry (the
    cross-rank counters report is always wanted when obs is on);
    ``ring_sample_every`` throttles occupancy sampling to every N-th
    doorbell.
    """

    trace: bool = False
    metrics: bool = False
    ring_sample_every: int = 1

    def __post_init__(self) -> None:
        if self.ring_sample_every < 1:
            raise ValueError(
                f"ring_sample_every must be >= 1, got {self.ring_sample_every}"
            )

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics


@dataclass(frozen=True)
class ClockAnchor:
    """A simultaneous ``(time.time(), time.perf_counter())`` sample.

    ``perf`` is the midpoint of two ``perf_counter`` reads bracketing
    the wall read, bounding the pairing error by half the gap between
    them (sub-µs in practice).
    """

    wall: float
    perf: float

    @classmethod
    def capture(cls) -> "ClockAnchor":
        p0 = time.perf_counter()
        wall = time.time()
        p1 = time.perf_counter()
        return cls(wall=wall, perf=(p0 + p1) / 2.0)

    def offset_from(self, parent: "ClockAnchor") -> float:
        """Seconds this anchor was captured after ``parent``'s, clamped
        to zero (a worker cannot start before its parent; a negative
        value means clock skew, and clamping keeps merged timestamps
        valid for the trace validator)."""
        return max(self.wall - parent.wall, 0.0)


class RankObs:
    """One worker process's wall-clock telemetry capture.

    Timestamps are seconds since this object's construction (the
    worker's epoch); :meth:`span` closes an interval opened at a caller
    -held ``t0`` from :meth:`now`.  Busy seconds accumulate for every
    span in :data:`MP_BUSY_CATEGORIES` even when tracing is off, so a
    metrics-only run still yields per-rank load skew.
    """

    __slots__ = (
        "rank",
        "config",
        "anchor",
        "tracer",
        "registry",
        "busy_seconds",
        "_busy_until",
    )

    def __init__(self, rank: int, config: ObsConfig):
        self.rank = rank
        self.config = config
        self.anchor = ClockAnchor.capture()
        self.tracer: Tracer | None = Tracer() if config.trace else None
        self.registry: MetricsRegistry = MetricsRegistry()
        self.busy_seconds = 0.0
        self._busy_until = 0.0

    def now(self) -> float:
        return time.perf_counter() - self.anchor.perf

    # -- emission -------------------------------------------------------
    def span(
        self,
        name: str,
        t0: float,
        cat: str = "compute",
        args: dict[str, Any] | None = None,
        busy: bool = True,
    ) -> None:
        """Close a span opened at ``t0`` (ends now).  Pass
        ``busy=False`` for a span fully nested inside another busy span
        so its time is not double-counted in ``busy_seconds``.  Busy
        accounting is watermark-based: only the portion of a span past
        the furthest already-counted instant accrues, so overlapping
        spans (an ``emit`` flushed mid-``dispatch``) can never push
        ``busy_seconds`` above wall time."""
        t1 = self.now()
        if busy and cat in MP_BUSY_CATEGORIES:
            start = max(t0, self._busy_until)
            if t1 > start:
                self.busy_seconds += t1 - start
                self._busy_until = t1
        if self.tracer is not None:
            self.tracer.span(self.rank, name, t0, t1, cat, args)

    def instant(
        self, name: str, cat: str = "ctrl", args: dict[str, Any] | None = None
    ) -> None:
        if self.tracer is not None:
            self.tracer.instant(self.rank, name, self.now(), cat, args)

    def inc(self, name: str, by: float = 1) -> None:
        self.registry.inc(name, by)

    def sample_rings(
        self,
        rings_in: dict[int, Any],
        loop: Any,
    ) -> None:
        """Record one ring-occupancy sample (called at doorbell
        boundaries, where arrival just changed the picture).  Emits a
        registry row and, when tracing, Chrome counter tracks so
        Perfetto charts backpressure under the spans."""
        t = self.now()
        used = {src: r.used() for src, r in rings_in.items()}
        row: dict[str, Any] = {
            "kind": "ring_sample",
            "t": t,
            "rank": self.rank,
            "ring_in_used": used,
            "inbox": loop.inbox_len,
            "outbuffered": loop.outbuffered,
        }
        self.registry.record(row)
        if self.tracer is not None:
            self.tracer.counter(
                self.rank,
                "ring_in_bytes",
                t,
                {f"from_{src}": float(u) for src, u in used.items()},
            )
            self.tracer.counter(
                self.rank,
                "queues",
                t,
                {"inbox": float(loop.inbox_len), "outbuf": float(loop.outbuffered)},
            )


def harvest_payload(obs: RankObs, wire_stats: dict[str, int]) -> dict[str, Any]:
    """Flatten one rank's capture into the picklable harvest shape.

    ``wire_stats`` (the loop's cumulative wire counters, already
    including consumer-side ring health) is folded into the registry's
    counters so the merged report sums them across ranks.
    """
    for name, value in wire_stats.items():
        if "hwm" not in name:
            obs.registry.inc(name, value)
    return {
        "rank": obs.rank,
        "anchor_wall": obs.anchor.wall,
        "wall_seconds": obs.now(),
        "busy_seconds": obs.busy_seconds,
        "events": list(obs.tracer.events) if obs.tracer is not None else None,
        "counters": dict(obs.registry.counters),
        "gauges": dict(obs.registry.gauges),
        "histograms": {
            name: h.to_dict() for name, h in obs.registry.histograms.items()
        },
        "samples": list(obs.registry.samples),
        "hwm": {k: v for k, v in wire_stats.items() if "hwm" in k},
    }


@dataclass
class MergedObs:
    """All ranks' captures, aligned to the parent epoch and folded."""

    tracer: Tracer | None
    registry: MetricsRegistry
    offsets: dict[int, float] = field(default_factory=dict)
    per_rank: list[dict[str, Any]] = field(default_factory=list)

    def skew(self) -> float:
        """Max/mean ratio of per-rank busy seconds (1.0 = perfectly
        balanced; the rank-skew walkthrough in EXPERIMENTS reads this)."""
        busy = [r["busy_seconds"] for r in self.per_rank]
        if not busy or not sum(busy):
            return 1.0
        return max(busy) / (sum(busy) / len(busy))

    def summary(self) -> dict[str, Any]:
        """The cross-rank counters report (the ``--json`` obs doc)."""
        return {
            "ranks": sorted(self.offsets),
            "clock_offsets_s": {str(r): o for r, o in sorted(self.offsets.items())},
            "trace_events": len(self.tracer) if self.tracer is not None else 0,
            "busy_skew": self.skew(),
            "per_rank": [
                {
                    "rank": r["rank"],
                    "wall_seconds": r["wall_seconds"],
                    "busy_seconds": r["busy_seconds"],
                }
                for r in self.per_rank
            ],
            "counters": dict(sorted(self.registry.counters.items())),
        }


def merge_rank_obs(
    payloads: list[dict[str, Any]], parent_anchor: ClockAnchor
) -> MergedObs:
    """Fold per-rank harvest payloads into one aligned capture.

    Every rank's events and samples shift by its anchor's offset from
    the parent epoch (constant per rank, so per-track monotonicity is
    preserved); counters sum; histograms bucket-add; per-rank scalars
    become rank-prefixed gauges plus one ``kind="rank"`` report row
    each.
    """
    payloads = sorted(payloads, key=lambda p: p["rank"])
    any_trace = any(p.get("events") is not None for p in payloads)
    tracer = Tracer() if any_trace else None
    registry = MetricsRegistry()
    offsets: dict[int, float] = {}
    per_rank: list[dict[str, Any]] = []
    for p in payloads:
        rank = p["rank"]
        anchor = ClockAnchor(wall=p["anchor_wall"], perf=0.0)
        offset = anchor.offset_from(parent_anchor)
        offsets[rank] = offset
        if tracer is not None and p.get("events"):
            for ph, _rank, name, cat, ts, dur, args in p["events"]:
                tracer.events.append((ph, rank, name, cat, ts + offset, dur, args))
        for name, value in p.get("counters", {}).items():
            registry.inc(name, value)
        for name, value in p.get("gauges", {}).items():
            registry.set_gauge(f"rank{rank}/{name}", value)
        for name, doc in p.get("histograms", {}).items():
            registry.histogram(name, tuple(doc["bounds"])).merge_from(
                Histogram.from_dict(doc)
            )
        for row in p.get("samples", []):
            shifted = dict(row)
            if "t" in shifted:
                shifted["t"] = shifted["t"] + offset
            registry.record(shifted)
        for name, value in p.get("hwm", {}).items():
            prev = registry.gauges.get(name, 0)
            registry.set_gauge(name, max(prev, value))
        registry.set_gauge(f"rank{rank}/wall_seconds", p["wall_seconds"])
        registry.set_gauge(f"rank{rank}/busy_seconds", p["busy_seconds"])
        wall = p["wall_seconds"]
        rank_row: dict[str, Any] = {
            "kind": "rank",
            "t": offset + wall,
            "rank": rank,
            "wall_seconds": wall,
            "busy_seconds": p["busy_seconds"],
            "busy_frac": p["busy_seconds"] / wall if wall > 0 else 0.0,
            "clock_offset_s": offset,
        }
        for key in ("wire_sent", "wire_received", "kernel_records", "ring_stalls"):
            if key in p.get("counters", {}):
                rank_row[key] = p["counters"][key]
        registry.record(rank_row)
        per_rank.append(
            {
                "rank": rank,
                "wall_seconds": wall,
                "busy_seconds": p["busy_seconds"],
                "offset": offset,
            }
        )
    registry.samples.sort(key=lambda r: r.get("t", 0.0))
    return MergedObs(
        tracer=tracer, registry=registry, offsets=offsets, per_rank=per_rank
    )
