"""Serialisation and rendering of telemetry captures.

Two on-disk shapes:

* **Chrome/Perfetto trace JSON** — ``{"traceEvents": [...]}`` in the
  ``trace_event`` format: one "process" per rank (named via ``M``
  metadata events), virtual-time timestamps in microseconds, complete
  spans (``ph="X"``), instants (``"i"``) and counters (``"C"``).  Drop
  the file into https://ui.perfetto.dev or ``chrome://tracing``.
* **JSONL** — one JSON object per line.  The first line is a ``meta``
  row (run parameters, cost-model constants); a trace JSONL holds one
  event per line (the compact mode), a metrics JSONL holds the
  sampler's time-series rows plus final counter/histogram rows.

:func:`validate_chrome_trace` is the shape contract CI's smoke job
enforces; :func:`render_trace_report` / :func:`render_metrics_report`
back the ``repro report`` subcommand.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import PH_COUNTER, PH_INSTANT, PH_SPAN, Tracer

_SCALE = 1e6  # virtual seconds -> trace microseconds


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """The tracer's events in trace_event form, per-track time-ordered."""
    out: list[dict[str, Any]] = []
    for rank in tracer.ranks():
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": rank,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"rank {rank}"},
            }
        )
    # Stable sort by (track, ts) so every track is monotone in file
    # order — some consumers stream rather than sort.
    for ph, rank, name, cat, ts, dur, args in sorted(
        tracer.events, key=lambda ev: (ev[1], ev[4])
    ):
        ev: dict[str, Any] = {
            "ph": ph,
            "name": name,
            "cat": cat,
            "pid": rank,
            "tid": 0,
            "ts": ts * _SCALE,
        }
        if ph == PH_SPAN:
            ev["dur"] = dur * _SCALE
        if ph == PH_INSTANT:
            ev["s"] = "p"  # process-scoped instant
        if args is not None:
            ev["args"] = args if ph != PH_COUNTER else dict(args)
        out.append(ev)
    return out


def chrome_trace_dict(
    tracer: Tracer, meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if meta:
        doc["otherData"] = meta
    return doc


def write_chrome_trace(
    path: str, tracer: Tracer, meta: dict[str, Any] | None = None
) -> None:
    with open(path, "w") as f:
        json.dump(chrome_trace_dict(tracer, meta), f)
        f.write("\n")


def write_trace_jsonl(
    path: str, tracer: Tracer, meta: dict[str, Any] | None = None
) -> None:
    """Compact mode: one event per line, meta first (virtual seconds,
    not scaled — this shape is for programmatic diffing, not viewers)."""
    with open(path, "w") as f:
        f.write(json.dumps({"kind": "meta", **(meta or {})}) + "\n")
        for ph, rank, name, cat, ts, dur, args in tracer.events:
            row: dict[str, Any] = {
                "kind": "event",
                "ph": ph,
                "rank": rank,
                "name": name,
                "cat": cat,
                "t": ts,
            }
            if ph == PH_SPAN:
                row["dur"] = dur
            if args is not None:
                row["args"] = args
            f.write(json.dumps(row) + "\n")


# ----------------------------------------------------------------------
# metrics JSONL
# ----------------------------------------------------------------------
def write_metrics_jsonl(
    path: str, registry: MetricsRegistry, meta: dict[str, Any] | None = None
) -> None:
    with open(path, "w") as f:
        f.write(json.dumps({"kind": "meta", **(meta or {})}) + "\n")
        for row in registry.samples:
            f.write(json.dumps(row) + "\n")
        if registry.counters:
            f.write(json.dumps({"kind": "counters", **registry.counters}) + "\n")
        if registry.gauges:
            f.write(json.dumps({"kind": "gauges", **registry.gauges}) + "\n")
        for name, hist in registry.histograms.items():
            f.write(
                json.dumps({"kind": "histogram", "name": name, **hist.to_dict()})
                + "\n"
            )


def read_jsonl(path: str) -> list[dict[str, Any]]:
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# ----------------------------------------------------------------------
# validation (the CI smoke contract)
# ----------------------------------------------------------------------
def validate_chrome_trace(trace: str | dict[str, Any]) -> dict[str, int]:
    """Validate a Chrome trace file (or loaded dict) against the shape
    the engine promises: required keys per event, known phase codes,
    non-negative span durations, and **monotone timestamps per track**
    in file order.  Raises :class:`ValueError` on the first violation;
    returns event counts by phase on success.
    """
    if isinstance(trace, str):
        with open(trace) as f:
            trace = json.load(f)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a traceEvents array")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty array")
    counts: dict[str, int] = {}
    last_ts: dict[tuple[int, int], float] = {}
    for i, ev in enumerate(events):
        for key in ("ph", "name", "pid", "tid", "ts"):
            if key not in ev:
                raise ValueError(f"event #{i} missing required key {key!r}")
        ph = ev["ph"]
        if ph not in ("X", "i", "C", "M"):
            raise ValueError(f"event #{i} has unknown phase {ph!r}")
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            continue
        if ph == "X":
            if "dur" not in ev:
                raise ValueError(f"span event #{i} ({ev['name']!r}) missing dur")
            if ev["dur"] < 0:
                raise ValueError(f"span event #{i} has negative dur {ev['dur']}")
        track = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if ts < last_ts.get(track, 0.0) - 1e-9:
            raise ValueError(
                f"event #{i} ({ev['name']!r}) breaks ts monotonicity on "
                f"track {track}: {ts} < {last_ts[track]}"
            )
        last_ts[track] = ts
    if counts.get("M", 0) == 0:
        raise ValueError("trace has no process_name metadata events")
    return counts


# ----------------------------------------------------------------------
# text rendering (the `repro report` subcommand)
# ----------------------------------------------------------------------
def _table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt_us(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_trace_report(trace: str | dict[str, Any]) -> str:
    """Per-rank and per-span-name virtual-time breakdowns of a Chrome
    trace file — the EXPERIMENTS.md text-table view of a capture."""
    if isinstance(trace, str):
        with open(trace) as f:
            trace = json.load(f)
    events = trace["traceEvents"]
    per_rank: dict[int, dict[str, float]] = {}
    per_name: dict[str, tuple[int, float]] = {}
    instants: dict[str, int] = {}
    t_max = 0.0
    for ev in events:
        if ev["ph"] == "M":
            continue
        t_max = max(t_max, ev["ts"])
        if ev["ph"] == "i":
            instants[ev["name"]] = instants.get(ev["name"], 0) + 1
        if ev["ph"] != "X":
            continue
        dur = ev["dur"] / _SCALE
        cat = ev.get("cat", "?")
        by_cat = per_rank.setdefault(ev["pid"], {})
        by_cat[cat] = by_cat.get(cat, 0.0) + dur
        count, total = per_name.get(ev["name"], (0, 0.0))
        per_name[ev["name"]] = (count + 1, total + dur)
    cats = sorted({c for by_cat in per_rank.values() for c in by_cat})
    rank_rows = [
        [str(rank)]
        + [_fmt_us(per_rank[rank].get(c, 0.0)) for c in cats]
        + [_fmt_us(sum(per_rank[rank].values()))]
        for rank in sorted(per_rank)
    ]
    name_rows = [
        [name, f"{count:,}", _fmt_us(total), _fmt_us(total / count)]
        for name, (count, total) in sorted(
            per_name.items(), key=lambda kv: -kv[1][1]
        )
    ]
    parts = [
        _table(
            ["rank"] + cats + ["total"],
            rank_rows,
            title=f"Span time by rank and category (trace end: {_fmt_us(t_max / _SCALE)})",
        ),
    ]
    if len(per_rank) > 1:
        totals = [sum(by_cat.values()) for by_cat in per_rank.values()]
        if sum(totals):
            skew = max(totals) / (sum(totals) / len(totals))
            parts.append(f"rank skew (max/mean span time): {skew:.2f}")
    parts += [
        "",
        _table(["span", "count", "total", "mean"], name_rows, title="Span time by name"),
    ]
    if instants:
        parts += [
            "",
            _table(
                ["instant", "count"],
                [[n, str(c)] for n, c in sorted(instants.items())],
                title="Instant events",
            ),
        ]
    return "\n".join(parts)


def render_metrics_report(rows: Iterable[dict[str, Any]]) -> str:
    """Summarise a metrics JSONL: per-series min/mean/max/last over the
    sampled time series, plus the convergence-lag table per program."""
    rows = list(rows)
    samples = [r for r in rows if r.get("kind") == "sample"]
    fresh = [r for r in rows if r.get("kind") == "freshness"]
    rank_rows = [r for r in rows if r.get("kind") == "rank"]
    ring_samples = [r for r in rows if r.get("kind") == "ring_sample"]
    hists = [r for r in rows if r.get("kind") == "histogram"]
    counters = next((r for r in rows if r.get("kind") == "counters"), None)
    parts = []
    if samples:
        scalar_keys = [
            k
            for k in samples[-1]
            if k not in ("kind", "t") and isinstance(samples[-1][k], (int, float))
        ]
        list_keys = [k for k in samples[-1] if isinstance(samples[-1][k], list)]
        stat_rows = []
        for k in scalar_keys:
            vals = [r[k] for r in samples if k in r]
            stat_rows.append(
                [
                    k,
                    f"{min(vals):g}",
                    f"{sum(vals) / len(vals):g}",
                    f"{max(vals):g}",
                    f"{vals[-1]:g}",
                ]
            )
        for k in list_keys:
            flat = [v for r in samples if k in r for v in r[k]]
            if not flat:
                continue
            stat_rows.append(
                [
                    f"{k} (per-rank)",
                    f"{min(flat):g}",
                    f"{sum(flat) / len(flat):g}",
                    f"{max(flat):g}",
                    f"{max(samples[-1][k]):g}",
                ]
            )
        parts.append(
            _table(
                ["series", "min", "mean", "max", "last"],
                stat_rows,
                title=f"Sampled series ({len(samples)} samples, "
                f"t = 0 .. {_fmt_us(samples[-1]['t'])})",
            )
        )
    if fresh:
        progs = sorted({r["prog"] for r in fresh})
        fresh_rows = []
        for prog in progs:
            series = [r for r in fresh if r["prog"] == prog]
            peak = max(series, key=lambda r: r["stale"])
            first_fresh = next((r["t"] for r in series if r["stale"] == 0), None)
            final = series[-1]
            fresh_rows.append(
                [
                    prog,
                    str(len(series)),
                    f"{peak['stale']:,} ({peak['frac']:.1%})",
                    _fmt_us(first_fresh) if first_fresh is not None else "never",
                    f"{final['stale']:,}",
                    _fmt_us(final["lag"]),
                    f"{final['lag_events']:,}",
                ]
            )
        parts.append("")
        parts.append(
            _table(
                [
                    "program",
                    "samples",
                    "peak stale",
                    "first fresh",
                    "final stale",
                    "final lag",
                    "lag events",
                ],
                fresh_rows,
                title="Convergence lag (live state vs static reference on the "
                "ingested prefix)",
            )
        )
    if rank_rows:
        table = []
        for r in sorted(rank_rows, key=lambda r: r.get("rank", 0)):
            table.append(
                [
                    str(r.get("rank", "?")),
                    _fmt_us(r.get("wall_seconds", 0.0)),
                    _fmt_us(r.get("busy_seconds", 0.0)),
                    f"{r.get('busy_frac', 0.0):.1%}",
                    f"{r.get('wire_sent', 0):,}",
                    f"{r.get('wire_received', 0):,}",
                    f"{r.get('ring_stalls', 0):,}",
                ]
            )
        busy = [r.get("busy_seconds", 0.0) for r in rank_rows]
        skew = max(busy) / (sum(busy) / len(busy)) if sum(busy) else 1.0
        if parts:
            parts.append("")
        parts.append(
            _table(
                ["rank", "wall", "busy", "busy%", "sent", "received", "stalls"],
                table,
                title=f"Per-rank load (mp backend, busy skew max/mean = {skew:.2f})",
            )
        )
    if ring_samples and parts:
        parts.append("")
    if ring_samples:
        peak = max(
            (
                max(r.get("ring_in_used", {0: 0}).values(), default=0)
                for r in ring_samples
            ),
            default=0,
        )
        parts.append(
            f"Ring occupancy: {len(ring_samples)} doorbell samples, "
            f"peak inbound ring {peak:,} bytes"
        )
    if hists:
        table = [
            [
                str(h.get("name", "?")),
                f"{h.get('count', 0):,}",
                f"{h.get('mean', 0.0):,.1f}",
                f"{_hist_quantile(h, 0.5):,.1f}",
                f"{_hist_quantile(h, 0.99):,.1f}",
                f"{h.get('max', 0) or 0:,.1f}",
            ]
            for h in hists
        ]
        if parts:
            parts.append("")
        parts.append(
            _table(
                ["histogram", "count", "mean", "p50", "p99", "max"],
                table,
                title="Histograms (values in recorded units, e.g. us)",
            )
        )
    if counters is not None:
        items = sorted(
            ((k, v) for k, v in counters.items() if k != "kind"),
            key=lambda kv: str(kv[0]),
        )
        if parts:
            parts.append("")
        parts.append(
            _table(
                ["counter", "value"],
                [[str(k), f"{v:,.0f}" if isinstance(v, (int, float)) else str(v)]
                 for k, v in items],
                title=(
                    "Cross-rank counters (summed over ranks)"
                    if rank_rows
                    else "Counters"
                ),
            )
        )
    if not parts:
        parts.append("no sample rows found")
    return "\n".join(parts)


def _hist_quantile(doc: dict[str, Any], q: float) -> float:
    """Quantile estimate from a serialized histogram row (upper bound of
    the containing bucket; the overflow bucket reports the max)."""
    counts = doc.get("counts") or []
    bounds = doc.get("bounds") or []
    total = doc.get("count", 0)
    if not total or not counts:
        return 0.0
    target = q * total
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= target and c:
            if i < len(bounds):
                return float(bounds[i])
            return float(doc.get("max") or 0.0)
    return float(doc.get("max") or 0.0)
