"""Structured tracing of the simulated cluster over **virtual time**.

The engine's execution is a sequence of per-rank actions at virtual
instants (the DES clock); a trace is that sequence made visible.  The
:class:`Tracer` records three primitive shapes, modelled directly on
the Chrome ``trace_event`` format so a capture opens unmodified in
Perfetto / ``chrome://tracing``:

* **spans** — an interval of one rank's clock (a visitor dispatch, a
  control-message handling, a bulk chunk, a whole collection);
* **instants** — a point event (collection cut, probe wave,
  bulk de-optimization);
* **counters** — sampled numeric series (queue depth, busy fraction),
  rendered by Perfetto as per-process line charts.

Mapping to the trace-event model: each simulated **rank is one
"process"** (``pid = rank``) with a single thread, and timestamps are
**virtual seconds scaled to microseconds** — what the timeline shows is
the cost model's schedule, not wall time.  Export lives in
:mod:`repro.obs.export`.

The tracer is deliberately dumb and allocation-light: emit calls append
one tuple to a list.  All policy (what to emit, how to guard the hot
path) belongs to the emitting layer — the engine guards every emission
behind ``if tracer is not None`` so a disabled tracer costs one
attribute load + identity check per dispatch.
"""

from __future__ import annotations

from typing import Any, Iterable

# Event tuple layout: (phase, rank, name, category, ts, dur, args)
# phase is a Chrome ph code: "X" complete span, "i" instant, "C" counter.
PH_SPAN = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"

#: Categories whose spans represent rank CPU occupancy.  Aggregations
#: that compare span time against ``RankCounters.busy_time`` must use
#: exactly these, because e.g. "collection" spans wrap entire
#: cut-to-harvest epochs and overlap the operational spans inside them.
BUSY_CATEGORIES = ("visit", "ctrl", "source", "bulk")


class Tracer:
    """Append-only recorder of virtual-time trace events."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple] = []

    # ------------------------------------------------------------------
    # emission primitives
    # ------------------------------------------------------------------
    def span(
        self,
        rank: int,
        name: str,
        t0: float,
        t1: float,
        cat: str = "engine",
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a complete span of ``rank``'s clock from ``t0`` to
        ``t1`` (virtual seconds)."""
        self.events.append((PH_SPAN, rank, name, cat, t0, t1 - t0, args))

    def instant(
        self,
        rank: int,
        name: str,
        ts: float,
        cat: str = "engine",
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a point event on ``rank``'s track."""
        self.events.append((PH_INSTANT, rank, name, cat, ts, 0.0, args))

    def counter(
        self, rank: int, name: str, ts: float, values: dict[str, float]
    ) -> None:
        """Record sampled counter values (one multi-series chart per
        ``(rank, name)`` in Perfetto)."""
        self.events.append((PH_COUNTER, rank, name, "metrics", ts, 0.0, values))

    # ------------------------------------------------------------------
    # aggregation (tests, the `report` subcommand)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def ranks(self) -> list[int]:
        return sorted({ev[1] for ev in self.events})

    def spans(self, cats: Iterable[str] | None = None) -> list[tuple]:
        cats = None if cats is None else set(cats)
        return [
            ev
            for ev in self.events
            if ev[0] == PH_SPAN and (cats is None or ev[3] in cats)
        ]

    def span_time_by_rank(
        self, cats: Iterable[str] | None = BUSY_CATEGORIES
    ) -> dict[int, float]:
        """Total span duration (virtual seconds) per rank.

        Defaults to :data:`BUSY_CATEGORIES` — the non-overlapping
        operational spans — so the result is directly comparable to
        ``RankCounters.busy_time`` (see the 99%-coverage acceptance
        test).
        """
        out: dict[int, float] = {}
        for ev in self.spans(cats):
            out[ev[1]] = out.get(ev[1], 0.0) + ev[5]
        return out

    def span_time_by_name(
        self, cats: Iterable[str] | None = None
    ) -> dict[str, tuple[int, float]]:
        """``name -> (count, total virtual seconds)`` over all ranks."""
        out: dict[str, tuple[int, float]] = {}
        for ev in self.spans(cats):
            count, total = out.get(ev[2], (0, 0.0))
            out[ev[2]] = (count + 1, total + ev[5])
        return out

    def instants(self, name: str | None = None) -> list[tuple]:
        return [
            ev
            for ev in self.events
            if ev[0] == PH_INSTANT and (name is None or ev[2] == name)
        ]
