"""Convergence-lag instrumentation — the paper's "on-line" claim, measured.

An incremental engine's whole value proposition is that its answer
stays *fresh* while the stream runs.  This module makes that claim a
recorded metric instead of an end-of-run assertion: at each sampler
firing, a :class:`FreshnessProbe` compares every watched program's
**live state** against the **static reference computed on the
ingested-so-far prefix** (the engine's current topology — exactly the
discretized prefix a quiescent run would have produced, with every
applied delete already retired from it) and records:

* ``stale`` — the number of vertices whose live value differs from the
  static reference right now (not-yet-converged vertices);
* ``frac`` — ``stale`` over the current vertex universe;
* ``lag`` — virtual seconds since the program's answer last matched the
  reference (0 while converged): how long the answer has trailed the
  stream head, measured at sampler resolution;
* ``lag_events`` — topology events ingested since that last-fresh
  instant: the same lag expressed in stream positions.

RisGraph and the streaming-graph literature report exactly this
update-to-result delay as a first-class metric; here it rides the
virtual-time sampler so two runs sample at identical instants.

The probe is the one *expensive* telemetry component — each sample runs
a static traversal over the current prefix — so it is opt-in on top of
the sampler and meant for small-to-medium diagnostic runs, not
saturation benchmarks.  Probing reads exact state: when the bulk-ingest
mirror is ahead of the value dicts it is flushed first (an observer
effect on wall time only; virtual time and results are untouched).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analytics.verify import (
    verify_bfs,
    verify_cc,
    verify_sssp,
    verify_st,
    verify_widest,
)


def make_reference(
    kind: str,
    source: int | None = None,
    sources: list[int] | None = None,
    value_of: Callable[[Any], int] | None = None,
) -> Callable[[Any, str], list[str]]:
    """Build a reference checker ``engine -> mismatch list`` for one of
    the stock algorithm families
    (``bfs``/``sssp``/``cc``/``st``/``widest``), closing over the
    verifier arguments.  ``prog`` is bound later by
    :meth:`FreshnessProbe.watch`.

    The oracle is recomputed each sample on the engine's *current*
    stored topology, which reflects every applied event — deletes
    included — so the ``stale``/lag series stays truthful on §VI-B
    churn streams, not just add-only ones.  Watching a generational
    program requires ``value_of`` (its stored values are tagged tuples;
    pass the projection, e.g. ``lambda v: v[1]`` for distance).
    """
    if kind == "bfs":
        return lambda eng, prog: verify_bfs(eng, prog, source, value_of=value_of)
    if kind == "sssp":
        return lambda eng, prog: verify_sssp(eng, prog, source, value_of=value_of)
    if kind == "cc":
        return lambda eng, prog: verify_cc(eng, prog, value_of=value_of)
    if kind == "st":
        return lambda eng, prog: verify_st(eng, prog, sources, value_of=value_of)
    if kind == "widest":
        return lambda eng, prog: verify_widest(
            eng, prog, source, value_of=value_of
        )
    raise ValueError(f"no static reference for algorithm kind {kind!r}")


class _Watch:
    __slots__ = (
        "prog",
        "fn",
        "last_fresh_t",
        "last_fresh_events",
        "last_stale",
        "last_epoch",
    )

    def __init__(self, prog: str, fn: Callable[[Any, str], list[str]]):
        self.prog = prog
        self.fn = fn
        self.last_fresh_t = 0.0
        self.last_fresh_events = 0
        # Last sample's verdict, consumed by the serving layer's
        # stability criterion (repro.serving): ``last_stale == 0`` with
        # the engine's write_epoch() still equal to ``last_epoch``
        # proves the live state is converged on the ingested prefix.
        self.last_stale = -1  # -1 = never sampled
        self.last_epoch = -1


class FreshnessProbe:
    """Samples convergence lag for a set of watched programs."""

    def __init__(self, engine: Any):
        self.engine = engine
        self._watches: list[_Watch] = []

    def watch(self, prog: str, reference_fn: Callable[[Any, str], list[str]]) -> None:
        """Watch program ``prog``; ``reference_fn(engine, prog)`` must
        return the current live-vs-static mismatch list (the
        :mod:`repro.analytics.verify` contract)."""
        self._watches.append(_Watch(prog, reference_fn))

    @property
    def watched(self) -> list[str]:
        return [w.prog for w in self._watches]

    def watch_for(self, prog: str) -> _Watch | None:
        """The :class:`_Watch` record for ``prog`` (None if unwatched);
        the serving layer reads its ``last_stale``/``last_epoch``."""
        for w in self._watches:
            if w.prog == prog:
                return w
        return None

    def sample(self, t: float, registry: Any) -> None:
        """Record one ``kind="freshness"`` row per watched program."""
        if not self._watches:
            return
        eng = self.engine
        bulk = eng._bulk
        if bulk is not None and bulk.engaged:
            # Read exact values: fold the dense mirror back without
            # counting a de-optimization (nothing forced per-event
            # replay; the next chunk re-syncs and carries on).
            bulk.flush_values(count_fallback=False)
        events = sum(c.source_events for c in eng.counters)
        vertices = sum(s.approx_num_vertices for s in eng.stores)
        for w in self._watches:
            stale = len(w.fn(eng, w.prog))
            w.last_stale = stale
            w.last_epoch = eng.write_epoch()
            if stale == 0:
                w.last_fresh_t = t
                w.last_fresh_events = events
            registry.record(
                {
                    "kind": "freshness",
                    "t": t,
                    "prog": w.prog,
                    "stale": stale,
                    "frac": stale / vertices if vertices else 0.0,
                    "lag": t - w.last_fresh_t,
                    "lag_events": events - w.last_fresh_events,
                    "events": events,
                }
            )
            tracer = eng.tracer
            if tracer is not None:
                tracer.counter(
                    eng.config.coordinator_rank,
                    f"freshness/{w.prog}",
                    t,
                    {"stale": stale},
                )
