"""Opt-in telemetry for the simulated engine: tracing, metrics, freshness.

Three layers, all keyed to **virtual time** so captures are
deterministic and comparable across runs:

* :class:`Tracer` — span/instant/counter events in the Chrome
  ``trace_event`` model (one "process" per rank); export via
  :func:`write_chrome_trace` opens directly in Perfetto.
* :class:`MetricsRegistry` + :class:`VirtualTimeSampler` — periodic
  samples of queue depths, topology size, busy fractions, per-program
  visit counts, exported as JSONL time series.
* :class:`FreshnessProbe` — convergence-lag measurement: live program
  state vs the static reference on the ingested prefix, per sample.

Everything is off by default; the engine pays one ``is not None`` check
per guarded emission when disabled (asserted <3% by
``benchmarks/bench_obs_overhead.py``).

A fourth layer, :mod:`repro.obs.distributed`, extends the same
primitives to the process-parallel backend on **wall-clock** time:
per-rank :class:`RankObs` captures, parent-anchored clock alignment
(:class:`ClockAnchor`), and :func:`merge_rank_obs` folding every rank
into one multi-process trace plus a cross-rank counters report.
"""

from repro.obs.distributed import (
    MP_BUSY_CATEGORIES,
    ClockAnchor,
    MergedObs,
    ObsConfig,
    RankObs,
    harvest_payload,
    merge_rank_obs,
)
from repro.obs.export import (
    chrome_trace_dict,
    read_jsonl,
    render_metrics_report,
    render_trace_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
    write_trace_jsonl,
)
from repro.obs.freshness import FreshnessProbe, make_reference
from repro.obs.registry import (
    DEFAULT_BOUNDS_US,
    Histogram,
    MetricsRegistry,
    VirtualTimeSampler,
)
from repro.obs.tracer import BUSY_CATEGORIES, Tracer

__all__ = [
    "BUSY_CATEGORIES",
    "DEFAULT_BOUNDS_US",
    "MP_BUSY_CATEGORIES",
    "ClockAnchor",
    "FreshnessProbe",
    "Histogram",
    "MergedObs",
    "MetricsRegistry",
    "ObsConfig",
    "RankObs",
    "Tracer",
    "VirtualTimeSampler",
    "chrome_trace_dict",
    "harvest_payload",
    "make_reference",
    "merge_rank_obs",
    "read_jsonl",
    "render_metrics_report",
    "render_trace_report",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "write_trace_jsonl",
]
