"""Shared-nothing communication substrate (simulated MPI).

The paper runs on HavoqGT over MPI on the Catalyst cluster.  Python's GIL
makes an honest 3072-core run impossible, so this subpackage provides the
documented substitution (see DESIGN.md): a **conservative discrete-event
simulation** of a cluster of ranks.

* Each rank is a shared-nothing actor with its own virtual clock.
* Messages travel over per-(sender, receiver) FIFO channels with a
  latency drawn from the :class:`~repro.comm.costmodel.CostModel`
  (intra-node vs. inter-node).
* The kernel (:class:`~repro.comm.des.DiscreteEventLoop`) executes rank
  actions in global virtual-time order, so every interleaving it produces
  is one a real asynchronous cluster could produce — and the per-rank
  clocks yield the virtual-time throughput numbers the scaling figures
  report.
* :mod:`repro.comm.termination` implements Mattern-style four-counter
  termination detection as a real distributed protocol on this substrate
  (HavoqGT's quiescence detection [24] plays this role in the paper).
"""

from repro.comm.channel import Frame, ReliableDelivery
from repro.comm.costmodel import CostModel
from repro.comm.des import DiscreteEventLoop, RankHandler
from repro.comm.termination import FourCounterState, TerminationCoordinator

__all__ = [
    "CostModel",
    "DiscreteEventLoop",
    "RankHandler",
    "Frame",
    "ReliableDelivery",
    "FourCounterState",
    "TerminationCoordinator",
]
