"""Virtual-time cost model for the simulated cluster.

Every constant is in **virtual seconds** and is calibrated against the
paper's headline numbers rather than micro-benchmarked on this machine
(the machine under simulation is a 2013-era Catalyst node: dual 12-core
Xeon E5-2695v2 at 2.4 GHz, MPI over IB):

* The paper sustains up to **1.3 B edge events/s on 3072 cores**, i.e.
  ~423 K events/s/core at best, with 400 M/s (~130 K/s/core) at the low
  end (§V-E).  One undirected edge event costs, per the pipeline: one
  stream pull, one ADD visit (edge insert + algorithm callback), one
  REVERSE_ADD visit (edge insert + callback), plus ~2 message sends.
  With the defaults below that totals ≈ 2.4 virtual µs of rank CPU,
  reproducing the per-core magnitude.
* MPI eager-path latencies: ~0.4 µs shared-memory (intra-node), ~1.5 µs
  InfiniBand (inter-node).  ``ranks_per_node`` (24, like Catalyst)
  decides which applies.

DegAwareRHH probe behaviour feeds in dynamically: edge-insert cost is
charged per probe via ``storage_probe_cpu`` on top of the base, so the
degree-aware layout measurably matters (the storage ablation flexes it).

The static-side constants encode the paper's Fig.-3 observations: CSR
construction is a sort-dominated bulk build (~2x cheaper per edge than
dynamic ingestion), static traversal on CSR enjoys locality that
traversal over the dynamic structure lacks (``dynamic_read_penalty``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.util.validate import check_non_negative, check_positive

US = 1e-6  # one microsecond, for readability below


@dataclass(frozen=True)
class CostModel:
    """All virtual-time constants of the simulated platform."""

    # --- dynamic pipeline, charged to the acting rank's clock ---------
    stream_pull_cpu: float = 0.20 * US  # parse one [src,dst] pair
    edge_insert_cpu: float = 0.55 * US  # DegAwareRHH insert, base
    storage_probe_cpu: float = 0.05 * US  # per hash-probe / scan step
    visit_cpu: float = 0.30 * US  # algorithm callback that changes state
    visit_discard_cpu: float = 0.05 * US  # no-effect callback (squashed, §II-D)
    send_cpu: float = 0.15 * US  # enqueue one visitor message
    control_cpu: float = 0.30 * US  # handle one control message

    # --- visitor-queue coalescing & batched dispatch (§II-D) ----------
    # Squashing merges a monotone UPDATE into one already queued at the
    # receiver (HavoqGT's combine-or-squash): no heap push, no later
    # pop/dispatch — only the in-place payload merge is paid.
    squash_cpu: float = 0.02 * US  # combine payloads in the visitor queue
    # Bulk emission of one vertex's fan-out: the fixed part of a send
    # (buffer acquisition, routing setup) is paid once per batch, with a
    # cheap per-message increment for each visitor appended.
    batch_send_base_cpu: float = 0.15 * US  # once per send_many batch
    batch_send_per_msg_cpu: float = 0.05 * US  # per message in the batch

    # --- message latency (sender clock -> receiver availability) ------
    local_latency: float = 0.40 * US  # same node (shared memory)
    remote_latency: float = 1.50 * US  # cross node (interconnect)
    ranks_per_node: int = 24  # Catalyst: 24 cores/node

    # --- flow control ---------------------------------------------------
    # Visitor queues are bounded in real middleware (MPI buffers are
    # finite): a send into a receiver whose backlog exceeds the capacity
    # stalls the *sender* toward the receiver's drain horizon.  The
    # mechanism is OFF by default (capacity effectively unbounded):
    # redundant-event squashing (visit_discard_cpu) already keeps hub
    # backlogs cheap to drain, and the horizon approximation can
    # over-throttle under all-to-all broadcast storms.  The flow-control
    # ablation bench enables it explicitly.
    channel_capacity: int = 1 << 40  # per-receiver queued-message bound
    backpressure_stall_cpu: float = 0.05 * US  # receiver service time per queued msg

    # --- reliable delivery (lossy-channel protocol) -------------------
    # The fault-tolerance layer wraps cross-rank messages in sequenced
    # frames with cumulative acks and timeout-driven retransmission
    # (see repro.comm.channel).  Acks are delayed and cumulative — one
    # ack covers every frame that arrived in the window — which is what
    # keeps the protocol's overhead at 0% loss under the <5% budget.
    # The base timeout deliberately clears ack_delay + 2x remote latency
    # so a healthy channel never retransmits spuriously.
    reliable_frame_cpu: float = 0.01 * US  # receiver-side frame handling
    ack_cpu: float = 0.05 * US  # assemble + send one cumulative ack
    ack_delay: float = 20.0 * US  # ack aggregation window
    retransmit_cpu: float = 0.10 * US  # re-enqueue one unacked frame
    retransmit_timeout: float = 50.0 * US  # base RTO
    retransmit_backoff: float = 2.0  # RTO multiplier per barren timer
    retransmit_timeout_cap: float = 1000.0 * US  # RTO ceiling

    # --- out-of-core storage (§III-B: spill to NVRAM when needed) -----
    # When a rank's DegAwareRHH footprint exceeds its memory budget, the
    # overflow fraction lives on NVRAM (Catalyst: PCI-attached flash);
    # topology accesses then miss DRAM with probability equal to that
    # fraction and pay the flash access cost.  Default budget is
    # unbounded (all-in-memory), as in the paper's smaller runs.
    rank_memory_bytes: float = float("inf")
    nvram_access_cpu: float = 10.0 * US  # amortised flash access

    # --- global state collection --------------------------------------
    gather_per_vertex_cpu: float = 0.02 * US  # pack one vertex's state
    reduction_hop_latency: float = 5.0 * US  # per tree level of gather

    # --- static baseline (CSR bulk build + static traversal) ----------
    static_build_edge_cpu: float = 0.40 * US  # sort+compress, per stored edge
    static_vertex_cpu: float = 0.25 * US  # static algorithm, per visit
    static_edge_cpu: float = 0.055 * US  # static algorithm, per edge scan
    # Distributed static traversal is communication-bound: each scanned
    # edge whose endpoint lives on another rank costs a visitor message
    # (cheap in shared memory, expensive across nodes).  These terms are
    # what make the 16-node static BFS of Fig. 4 as expensive as the
    # paper measures while the single-node static BFS of Fig. 3 stays a
    # sliver of construction time.
    static_local_msg_cpu: float = 0.10 * US  # per scan crossing ranks, same node
    static_remote_msg_cpu: float = 0.40 * US  # per scan crossing nodes
    dynamic_read_penalty: float = 2.6  # static alg over dynamic store

    def __post_init__(self) -> None:
        for name in (
            "stream_pull_cpu",
            "edge_insert_cpu",
            "storage_probe_cpu",
            "visit_cpu",
            "visit_discard_cpu",
            "send_cpu",
            "control_cpu",
            "squash_cpu",
            "batch_send_base_cpu",
            "batch_send_per_msg_cpu",
            "local_latency",
            "remote_latency",
            "gather_per_vertex_cpu",
            "reduction_hop_latency",
            "static_build_edge_cpu",
            "static_vertex_cpu",
            "static_edge_cpu",
            "reliable_frame_cpu",
            "ack_cpu",
            "ack_delay",
            "retransmit_cpu",
        ):
            check_non_negative(name, getattr(self, name))
        check_positive("retransmit_timeout", self.retransmit_timeout)
        check_positive("retransmit_timeout_cap", self.retransmit_timeout_cap)
        if self.retransmit_backoff < 1.0:
            raise ValueError(
                f"retransmit_backoff must be >= 1, got {self.retransmit_backoff}"
            )
        check_positive("ranks_per_node", self.ranks_per_node)
        check_positive("dynamic_read_penalty", self.dynamic_read_penalty)
        check_positive("channel_capacity", self.channel_capacity)
        check_non_negative("backpressure_stall_cpu", self.backpressure_stall_cpu)
        check_positive("rank_memory_bytes", self.rank_memory_bytes)
        check_non_negative("nvram_access_cpu", self.nvram_access_cpu)

    def spill_fraction(self, store_bytes: float) -> float:
        """Fraction of a rank's topology data living on NVRAM."""
        if store_bytes <= self.rank_memory_bytes:
            return 0.0
        return 1.0 - self.rank_memory_bytes / store_bytes

    # ------------------------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Which physical node a rank lives on."""
        return rank // self.ranks_per_node

    def latency(self, src_rank: int, dst_rank: int) -> float:
        """One-way message latency between two ranks."""
        if self.node_of(src_rank) == self.node_of(dst_rank):
            return self.local_latency
        return self.remote_latency

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with selected constants replaced (for ablations)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """JSON-safe constants (trace/metrics file metadata); the
        unbounded memory budget maps to None since IEEE inf is not
        valid JSON."""
        d = asdict(self)
        if d["rank_memory_bytes"] == float("inf"):
            d["rank_memory_bytes"] = None
        return d

    def static_traversal_time(
        self, vertex_visits: int, edge_scans: int, n_ranks: int, on_dynamic: bool = False
    ) -> float:
        """Virtual seconds for a distributed static traversal.

        Work (vertex visits + edge scans) parallelises across ranks;
        each scanned edge additionally pays a visitor-message cost with
        probability given by a random (hash) partition: ``1/P`` stays
        on-rank, ``(R-1)/P`` crosses ranks within a node, the rest
        crosses nodes.  ``on_dynamic`` applies the locality penalty of
        reading the dynamic structure instead of CSR (§V-B).
        """
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be > 0, got {n_ranks}")
        r = min(self.ranks_per_node, n_ranks)
        p_local_rank = (r - 1) / n_ranks
        p_remote = max(0.0, 1.0 - r / n_ranks)
        per_edge = (
            self.static_edge_cpu
            + p_local_rank * self.static_local_msg_cpu
            + p_remote * self.static_remote_msg_cpu
        )
        t = (vertex_visits * self.static_vertex_cpu + edge_scans * per_edge) / n_ranks
        return t * self.dynamic_read_penalty if on_dynamic else t


@dataclass
class RankCounters:
    """Per-rank operation counters the engine accumulates.

    These are *measurements* of the simulated execution (used by metrics
    and tests), not part of the cost model itself.
    """

    source_events: int = 0  # topology events pulled from this rank's stream
    edge_inserts: int = 0
    edge_deletes: int = 0
    visits: int = 0  # algorithm callbacks executed
    messages_sent_local: int = 0
    messages_sent_remote: int = 0
    control_messages: int = 0
    busy_time: float = 0.0  # virtual seconds of CPU consumed
    updates_squashed: int = 0  # UPDATEs combined into this rank's inbox (§II-D)
    batch_sends: int = 0  # send_many fan-out batches emitted by this rank
    bulk_chunks: int = 0  # bulk-ingest chunks this rank drained
    bulk_events: int = 0  # topology events ingested via the bulk path
    fallback_flushes: int = 0  # bulk de-optimizations back to per-event

    def merge(self, other: "RankCounters") -> "RankCounters":
        return RankCounters(
            source_events=self.source_events + other.source_events,
            edge_inserts=self.edge_inserts + other.edge_inserts,
            edge_deletes=self.edge_deletes + other.edge_deletes,
            visits=self.visits + other.visits,
            messages_sent_local=self.messages_sent_local + other.messages_sent_local,
            messages_sent_remote=self.messages_sent_remote + other.messages_sent_remote,
            control_messages=self.control_messages + other.control_messages,
            busy_time=self.busy_time + other.busy_time,
            updates_squashed=self.updates_squashed + other.updates_squashed,
            batch_sends=self.batch_sends + other.batch_sends,
            bulk_chunks=self.bulk_chunks + other.bulk_chunks,
            bulk_events=self.bulk_events + other.bulk_events,
            fallback_flushes=self.fallback_flushes + other.fallback_flushes,
        )
