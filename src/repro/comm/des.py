"""Conservative discrete-event kernel for the simulated cluster.

Model
-----
Each rank is an actor with a virtual clock (``clock[r]`` = the time at
which rank *r* next becomes free).  A rank's next action is:

* process the earliest-arrived inbox message, or
* if its inbox holds nothing it could process right now and its source
  stream is live, pull one topology event ("each rank pulling a topology
  event as soon as local work is completed", §V-A), or
* idle until the next message arrives.

The kernel executes actions in **global virtual-time order**, which makes
the simulation conservative (causally correct): when an action at time
*t* runs, every other rank's next action is at ≥ *t*, so no message that
should have arrived before *t* can materialise later.

Channels
--------
Messages between a (sender, receiver) pair form a FIFO channel: arrival
time is ``max(departure + latency, previous arrival on the channel)``.
This is the property §III-C relies on to serialise undirected edge
creation, and §IV relies on to order same-vertex events.

Coalescing
----------
§II-D observes that monotone UPDATE events "can be combined or
squashed" in the visitor queue, which HavoqGT's middleware exploits.
The kernel supports this mechanically and policy-free: a send may carry
a ``coalesce_key`` plus a ``combiner``; when the receiver's data inbox
already holds a pending, not-yet-dispatched message under the same key,
the new payload is merged into the queued message in place (keeping the
earlier arrival time, so no entry ever moves later or earlier in the
heap and FIFO/causality of the conservative schedule is untouched) and
the send reports "squashed" instead of enqueuing a second tuple.  What
keys mean and how payloads merge is the handler's policy (the engine
keys on ``(prog, target, sender, version)`` and merges via the
program's monotone combine hook).

``send_many`` is the batched fan-out companion: one call emits a
vertex's whole neighbour fan-out, charging the fixed send cost once per
batch plus a cheap per-message increment.

Handlers
--------
The kernel is policy-free; behaviour lives in a :class:`RankHandler`
(the dynamic engine, or toy handlers in tests).  During a callback the
handler advances its own clock with :meth:`DiscreteEventLoop.consume`
and sends with :meth:`DiscreteEventLoop.send`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.comm.channel import Frame
from repro.comm.costmodel import CostModel
from repro.util.validate import check_positive

_INF = float("inf")


class _PendingCoalescible:
    """A queued data message open for in-place payload combining.

    The heap entry references this holder instead of the raw message; a
    later same-key send rewrites ``msg`` without touching the heap, so
    no entry ever moves and the conservative schedule is unchanged.
    The window closes when the receiver dequeues the message — exactly
    the lifetime of an arrived-but-unprocessed visitor in a real queue.
    """

    __slots__ = ("msg", "key")

    def __init__(self, msg: Any, key: Any):
        self.msg = msg
        self.key = key


class RankHandler:
    """Behaviour plugged into the kernel (subclass or duck-type).

    ``on_message`` / ``pull_source`` run as the acting rank: they should
    call ``loop.consume(rank, cpu)`` for the work they model and may call
    ``loop.send``.  ``pull_source`` returns False when the rank's stream
    is exhausted (the kernel then stops offering pulls to that rank).
    """

    def on_message(self, loop: "DiscreteEventLoop", rank: int, msg: Any) -> None:
        raise NotImplementedError

    def pull_source(self, loop: "DiscreteEventLoop", rank: int) -> bool:
        return False


class DiscreteEventLoop:
    """The simulation kernel.  See module docstring for the model."""

    def __init__(self, n_ranks: int, cost_model: CostModel, handler: RankHandler):
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self.cost = cost_model
        self.handler = handler
        self.clock = [0.0] * self.n_ranks
        # inbox[r]: heap of (arrival_time, seq, msg); the priority inbox
        # models a separate control lane (probes/reports/cuts) that real
        # middleware services ahead of the data backlog.
        self._inbox: list[list[tuple[float, int, Any]]] = [[] for _ in range(self.n_ranks)]
        self._inbox_prio: list[list[tuple[float, int, Any]]] = [
            [] for _ in range(self.n_ranks)
        ]
        self._channel_last: dict[tuple[int, int, bool], float] = {}
        # Per-receiver index of coalescible pending data messages:
        # coalesce_key -> the live _PendingCoalescible holder.
        self._coalesce: list[dict[Any, _PendingCoalescible]] = [
            {} for _ in range(self.n_ranks)
        ]
        self._actions: list[tuple[float, int, int]] = []  # (time, seq, rank)
        self._alarms: list[tuple[float, int, Callable[[], None]]] = []
        self._scheduled: list[float | None] = [None] * self.n_ranks
        self._seq = 0
        self._source_active = [True] * self.n_ranks
        self.in_flight = 0  # messages sent but not yet handled
        self.messages_delivered = 0
        self.messages_squashed = 0  # sends combined into a queued message
        self.batch_sends = 0  # send_many invocations
        self.actions_executed = 0
        self.stall_time = 0.0  # total backpressure stalls (virtual s)
        self.fault_stall_time = 0.0  # injected rank freezes (virtual s)
        self._acting_rank: int | None = None
        # Optional transport (repro.comm.channel.ReliableDelivery): when
        # attached, cross-rank messages travel as sequenced frames with
        # acks/retransmission instead of the perfect built-in channels.
        self._transport: Any = None

    # ------------------------------------------------------------------
    # transport & fault-injection hooks
    # ------------------------------------------------------------------
    @property
    def transport(self) -> Any:
        """The attached reliable-delivery transport, or None."""
        return self._transport

    def attach_transport(self, transport: Any) -> None:
        """Route cross-rank traffic through ``transport``.

        Must be attached before any message is sent: mixing perfectly-
        delivered and framed traffic on one channel would break FIFO.
        """
        if self.in_flight or self.actions_executed:
            raise RuntimeError("attach_transport before the simulation starts")
        self._transport = transport

    def stall_rank(self, rank: int, until: float) -> None:
        """Freeze ``rank`` until virtual time ``until`` (fault injection:
        a GC pause / OS hiccup).  Pending arrivals are simply serviced
        late; the reliability layer absorbs any retransmissions the
        stall provokes."""
        if until > self.clock[rank]:
            self.fault_stall_time += until - self.clock[rank]
            self.clock[rank] = until

    def on_frame_dropped(self, frame: Frame) -> None:
        """Hook: the transport lost a frame on the wire.  No-op here;
        fault wiring replaces it to emit trace instants."""

    # ------------------------------------------------------------------
    # time & scheduling primitives
    # ------------------------------------------------------------------
    def now(self, rank: int) -> float:
        """Rank *r*'s current virtual time (its busy-until point)."""
        return self.clock[rank]

    def max_time(self) -> float:
        """The makespan so far: the furthest-ahead rank clock."""
        return max(self.clock)

    def consume(self, rank: int, cpu_seconds: float) -> None:
        """Advance ``rank``'s clock by modelled CPU work."""
        self.clock[rank] += cpu_seconds

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _action_time(self, rank: int) -> float | None:
        """When ``rank`` will next act, or None if it has nothing to do."""
        if self._source_active[rank]:
            # The rank never waits while its stream is live: at its own
            # clock it processes an already-arrived message, else pulls.
            return self.clock[rank]
        inbox, prio = self._inbox[rank], self._inbox_prio[rank]
        if not inbox and not prio:
            return None
        earliest = min(
            (q[0][0] for q in (inbox, prio) if q), default=None
        )
        return max(self.clock[rank], earliest)

    def _reschedule(self, rank: int) -> None:
        t = self._action_time(rank)
        self._scheduled[rank] = t
        if t is not None:
            heapq.heappush(self._actions, (t, self._next_seq(), rank))

    def send(
        self,
        src_rank: int,
        dst_rank: int,
        msg: Any,
        priority: bool = False,
        coalesce_key: Any = None,
        combiner: Callable[[Any, Any], Any] | None = None,
    ) -> bool:
        """Send ``msg`` from the acting rank ``src_rank`` to ``dst_rank``.

        Charges ``send_cpu`` to the sender and delivers after the
        channel's FIFO-respecting latency.  Self-sends are legal (a rank
        queueing a visitor to itself) and use the local latency.
        ``priority`` routes over the control lane: FIFO with respect to
        other control messages on the same channel, and serviced by the
        receiver ahead of any queued data backlog.

        When ``coalesce_key`` is not None (data lane only) and the
        receiver already queues a pending, not-yet-dispatched message
        under the same key, ``combiner(old_msg, new_msg)`` replaces
        that message's payload in place — no second tuple is enqueued, only
        ``squash_cpu`` is charged, and the call returns True.  The
        caller is then responsible for any sent/received accounting the
        squashed message still owes (the engine books it to the
        four-counter detector at squash time).

        Flow control: sending into a receiver whose data backlog exceeds
        ``cost.channel_capacity`` stalls the sender (its clock advances)
        proportionally to the excess — the DES analogue of a blocking
        MPI send into full buffers.  Control-lane sends are exempt.

        Returns True iff the message was squashed into a queued one.
        """
        if (
            coalesce_key is not None
            and not (self._transport is not None and src_rank != dst_rank)
            and self._try_squash(src_rank, dst_rank, msg, coalesce_key, combiner)
        ):
            return True
        self.consume(src_rank, self.cost.send_cpu)
        if not priority and src_rank != dst_rank:
            self._backpressure(src_rank, dst_rank)
        self._deliver(
            self.clock[src_rank], src_rank, dst_rank, msg, priority, coalesce_key
        )
        return False

    def send_many(
        self,
        src_rank: int,
        batch: list[tuple[int, Any, Any]],
        combiner: Callable[[Any, Any], Any] | None = None,
    ) -> list[bool]:
        """Emit a fan-out batch of data-lane messages from ``src_rank``.

        ``batch`` is a list of ``(dst_rank, msg, coalesce_key)`` triples
        (``coalesce_key`` None disables combining for that message).
        The fixed send overhead is charged once (``batch_send_base_cpu``)
        with a ``batch_send_per_msg_cpu`` increment per delivered
        message; squashed messages charge ``squash_cpu`` instead.

        Returns one bool per message: True iff it was squashed.
        """
        self.batch_sends += 1
        self.consume(src_rank, self.cost.batch_send_base_cpu)
        per_msg = self.cost.batch_send_per_msg_cpu
        squashed = []
        for dst_rank, msg, key in batch:
            if (
                key is not None
                and not (self._transport is not None and src_rank != dst_rank)
                and self._try_squash(src_rank, dst_rank, msg, key, combiner)
            ):
                squashed.append(True)
                continue
            self.consume(src_rank, per_msg)
            if src_rank != dst_rank:
                self._backpressure(src_rank, dst_rank)
            self._deliver(self.clock[src_rank], src_rank, dst_rank, msg, False, key)
            squashed.append(False)
        return squashed

    def _try_squash(
        self,
        src_rank: int,
        dst_rank: int,
        msg: Any,
        key: Any,
        combiner: Callable[[Any, Any], Any] | None,
    ) -> bool:
        """Combine ``msg`` into a pending same-key message if one is
        still queued (arrived or in flight, but not yet dispatched)."""
        if combiner is None:
            return False
        entry = self._coalesce[dst_rank].get(key)
        if entry is None:
            return False
        entry.msg = combiner(entry.msg, msg)
        self.messages_squashed += 1
        self.consume(src_rank, self.cost.squash_cpu)
        return True

    def _backpressure(self, src_rank: int, dst_rank: int) -> None:
        excess = len(self._inbox[dst_rank]) - self.cost.channel_capacity
        if excess > 0:
            # Blocking-send semantics: wait until the receiver will
            # have drained back to capacity.  The horizon is the
            # receiver's clock plus its excess backlog at its
            # per-message service rate; advancing to a horizon is
            # idempotent, so a stalled sender is not charged again
            # for the same backlog.
            horizon = (
                self.clock[dst_rank]
                + excess * self.cost.backpressure_stall_cpu
            )
            if horizon > self.clock[src_rank]:
                self.stall_time += horizon - self.clock[src_rank]
                self.clock[src_rank] = horizon

    def send_at(
        self,
        time: float,
        src_rank: int,
        dst_rank: int,
        msg: Any,
        priority: bool = False,
    ) -> None:
        """Inject a message departing ``src_rank`` at ≥ ``time``.

        Used by alarms (e.g. a global-state collection request arriving
        from outside the cluster at a wall-clock instant): the message
        leaves at ``max(time, clock[src])`` without charging CPU.
        """
        self._deliver(
            max(time, self.clock[src_rank]), src_rank, dst_rank, msg, priority
        )

    def _deliver(
        self,
        departure: float,
        src_rank: int,
        dst_rank: int,
        msg: Any,
        priority: bool,
        coalesce_key: Any = None,
    ) -> None:
        if self._transport is not None and src_rank != dst_rank:
            # Cross-rank traffic travels as sequenced frames.  The
            # message still counts as in flight at the *application*
            # level from this instant until the transport releases it
            # to the handler — drops and retransmissions in between are
            # invisible to quiescence accounting, but an undelivered
            # message keeps the cluster visibly non-quiescent.
            self.in_flight += 1
            self._transport.send_app(departure, src_rank, dst_rank, msg, priority)
            return
        latency = self.cost.latency(src_rank, dst_rank)
        key = (src_rank, dst_rank, priority)
        arrival = max(departure + latency, self._channel_last.get(key, 0.0))
        self._channel_last[key] = arrival
        queue = self._inbox_prio[dst_rank] if priority else self._inbox[dst_rank]
        if coalesce_key is not None and not priority:
            entry = _PendingCoalescible(msg, coalesce_key)
            self._coalesce[dst_rank][coalesce_key] = entry
            heapq.heappush(queue, (arrival, self._next_seq(), entry))
        else:
            heapq.heappush(queue, (arrival, self._next_seq(), msg))
        self.in_flight += 1
        # A new arrival can move the receiver's next action earlier.
        cur = self._scheduled[dst_rank]
        if dst_rank != self._acting_rank and (cur is None or arrival < cur):
            self._reschedule(dst_rank)

    def deliver_frame(
        self,
        departure: float,
        frame: Frame,
        extra_delay: float = 0.0,
        fifo: bool = True,
    ) -> None:
        """Transport hook: put one wire frame in flight.

        Frames are physical artefacts: they never touch ``in_flight``
        or the delivery counters (those track application messages) and
        never occupy a rank inbox.  Arrival is handled at NIC level —
        an alarm at the wire-arrival instant — so the transport's
        dedup/reorder/ack machinery runs even while the receiving rank
        is busy, keeping ack turnaround independent of application
        backlog.  ``fifo=False`` (retransmissions, duplicates, fault
        delays) bypasses the channel FIFO clamp — delivery order is
        restored by the receiver's reorder buffer, and causality is
        safe because the arrival is always in the future.
        """
        latency = self.cost.latency(frame.src, frame.dst)
        arrival = departure + latency + extra_delay
        if fifo:
            key = (frame.src, frame.dst, frame.lane)
            arrival = max(arrival, self._channel_last.get(key, 0.0))
            self._channel_last[key] = arrival
        self.schedule_alarm(
            arrival, lambda: self._transport.on_frame_arrival(frame, arrival)
        )

    def deliver_released(
        self, arrival: float, dst_rank: int, msg: Any, priority: bool
    ) -> None:
        """Transport hook: enqueue an application message the reliable
        layer released in channel order.  The message has counted as in
        flight since its original send, so the counter is untouched; it
        is decremented when the rank dispatches the message."""
        queue = self._inbox_prio[dst_rank] if priority else self._inbox[dst_rank]
        heapq.heappush(queue, (arrival, self._next_seq(), msg))
        cur = self._scheduled[dst_rank]
        if dst_rank != self._acting_rank and (cur is None or arrival < cur):
            self._reschedule(dst_rank)

    def schedule_alarm(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` when global virtual time first reaches ``time``.

        Alarms model external stimuli (a user asking for a snapshot at
        t = 15 s); the callback typically calls :meth:`send_at`.
        """
        heapq.heappush(self._alarms, (time, self._next_seq(), callback))

    # ------------------------------------------------------------------
    # queue introspection (telemetry sampling; never mutates state)
    # ------------------------------------------------------------------
    def inbox_depth(self, rank: int) -> int:
        """Queued data-lane messages awaiting dispatch at ``rank``."""
        return len(self._inbox[rank])

    def prio_depth(self, rank: int) -> int:
        """Queued control-lane messages awaiting dispatch at ``rank``."""
        return len(self._inbox_prio[rank])

    def coalesce_depth(self, rank: int) -> int:
        """Pending messages at ``rank`` still open for squashing."""
        return len(self._coalesce[rank])

    def set_source_active(self, rank: int, active: bool) -> None:
        """(De)activate a rank's source stream (engine wiring)."""
        self._source_active[rank] = bool(active)
        if active and rank != self._acting_rank:
            self._reschedule(rank)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule initial actions; call once before :meth:`run`."""
        for rank in range(self.n_ranks):
            self._reschedule(rank)

    def quiescent(self) -> bool:
        """Oracle quiescence: nothing in flight, queued, or pullable.

        This is ground truth the *distributed* detector in
        :mod:`repro.comm.termination` is tested against; the engine's
        algorithms must not rely on it.
        """
        return (
            self.in_flight == 0
            and all(not ib for ib in self._inbox)
            and all(not ib for ib in self._inbox_prio)
            and not any(self._source_active)
        )

    def run(
        self,
        max_virtual_time: float | None = None,
        max_actions: int | None = None,
    ) -> float:
        """Execute actions in global time order until nothing remains.

        Returns the makespan (max rank clock).  ``max_virtual_time`` and
        ``max_actions`` bound the run for tests/debugging.
        """
        actions = self._actions
        executed = 0
        while actions or self._alarms:
            # Fire any alarms due before the next rank action.
            next_action_t = actions[0][0] if actions else _INF
            while self._alarms and self._alarms[0][0] <= next_action_t:
                _, _, cb = heapq.heappop(self._alarms)
                cb()
                next_action_t = actions[0][0] if actions else _INF
            if not actions:
                if self._alarms and self.quiescent():
                    # Only alarms remain and the cluster is silent: fire
                    # them in order (they may inject new work).
                    t, _, cb = heapq.heappop(self._alarms)
                    cb()
                    continue
                break
            t, _, rank = heapq.heappop(actions)
            if self._scheduled[rank] != t:
                continue  # stale entry
            if max_virtual_time is not None and t > max_virtual_time:
                heapq.heappush(actions, (t, self._next_seq(), rank))
                self._scheduled[rank] = t
                break
            self._scheduled[rank] = None
            self._execute(rank, t)
            executed += 1
            self.actions_executed += 1
            if max_actions is not None and executed >= max_actions:
                self._reschedule(rank)
                break
        return self.max_time()

    def _execute(self, rank: int, t: float) -> None:
        now = max(self.clock[rank], t)
        prio = self._inbox_prio[rank]
        inbox = prio if prio and prio[0][0] <= now else self._inbox[rank]
        self._acting_rank = rank
        try:
            if inbox and inbox[0][0] <= now:
                arrival, _, msg = heapq.heappop(inbox)
                if type(msg) is _PendingCoalescible:
                    # Retire the coalescing window: later same-key sends
                    # must enqueue fresh (identity check — a newer entry
                    # may already have replaced this key's slot).
                    index = self._coalesce[rank]
                    if index.get(msg.key) is msg:
                        del index[msg.key]
                    msg = msg.msg
                self.clock[rank] = max(self.clock[rank], arrival)
                self.in_flight -= 1
                self.messages_delivered += 1
                self.handler.on_message(self, rank, msg)
            elif self._source_active[rank]:
                self.clock[rank] = max(self.clock[rank], t)
                if not self.handler.pull_source(self, rank):
                    self._source_active[rank] = False
            else:
                # Stale wake-up with an inbox drained meanwhile: no-op.
                pass
        finally:
            self._acting_rank = None
        self._reschedule(rank)
