"""Distributed termination (quiescence) detection.

HavoqGT ends an algorithm "when all visitors have completed, which is
determined by a distributed quiescence detection algorithm" [24].  We
implement the classic **four-counter method** (Mattern 1987): the
coordinator runs waves; in each wave every rank reports its cumulative
(sent, received) message counters and whether it is locally idle.  The
system has terminated when two *consecutive* waves are all-idle and
report identical, balanced global counters — the second wave proves no
message was in flight "behind" the first wave's probes.

The classes here are pure protocol state (no I/O); the engine moves the
probe/report messages over the simulated network, and the kernel's
oracle (:meth:`repro.comm.des.DiscreteEventLoop.quiescent`) is only used
by tests to validate that the detector never fires early.

Counters are kept per *channel label* so several detectors can run at
once — e.g. one per snapshot version during Chandy-Lamport-style global
state collection (§III-D), where only prior-version traffic must drain.

Reliable-delivery interplay
---------------------------
Under fault injection (:mod:`repro.faults`) the wire may drop, duplicate
or delay frames, and :mod:`repro.comm.channel` retransmits them.  The
counters here stay sound because they live strictly *above* that layer:
a send is recorded once when the application entrusts the message to the
kernel, a receive once when the transport releases it to the handler —
retransmitted copies, duplicates and acks are never counted.  Since the
transport delivers each application message exactly once, balanced
counters still mean "no application message outstanding", so the
two-wave rule can neither fire early because a retransmission is in
flight nor hang waiting for one.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class FourCounterState:
    """Per-rank message counters, partitioned by channel label."""

    def __init__(self) -> None:
        self._sent: dict[int, int] = {}
        self._received: dict[int, int] = {}

    def record_send(self, label: int, n: int = 1) -> None:
        self._sent[label] = self._sent.get(label, 0) + n

    def record_receive(self, label: int, n: int = 1) -> None:
        self._received[label] = self._received.get(label, 0) + n

    def sent(self, label: int) -> int:
        return self._sent.get(label, 0)

    def received(self, label: int) -> int:
        return self._received.get(label, 0)

    def snapshot(self, label: int) -> tuple[int, int]:
        """The (sent, received) pair a rank reports for a probe."""
        return self.sent(label), self.received(label)

    def sent_below(self, cut: int) -> int:
        """Total sends over all labels < ``cut`` (prev-version traffic
        for a snapshot whose cut version is ``cut``)."""
        return sum(n for label, n in self._sent.items() if label < cut)

    def received_below(self, cut: int) -> int:
        """Total receives over all labels < ``cut``."""
        return sum(n for label, n in self._received.items() if label < cut)


@dataclass
class _Wave:
    wave_id: int
    reports: dict[int, tuple[int, int, bool]] = field(default_factory=dict)

    def complete(self, n_ranks: int) -> bool:
        return len(self.reports) == n_ranks

    def totals(self) -> tuple[int, int, bool]:
        sent = sum(s for s, _, _ in self.reports.values())
        recv = sum(r for _, r, _ in self.reports.values())
        all_idle = all(idle for _, _, idle in self.reports.values())
        return sent, recv, all_idle


class TerminationCoordinator:
    """Coordinator-side state machine for one channel label.

    Usage by the engine::

        wave = coord.start_wave()        # -> broadcast PROBE(wave)
        coord.report(wave, rank, s, r, idle)  # on each REPORT
        if coord.wave_complete():
            if coord.conclude():          # -> terminated
            else: coord.start_wave()      # -> next probe round
    """

    def __init__(self, n_ranks: int):
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be > 0, got {n_ranks}")
        self.n_ranks = n_ranks
        self._wave: _Wave | None = None
        self._prev_totals: tuple[int, int, bool] | None = None
        self._next_wave_id = 0
        self.terminated = False
        self.waves_run = 0

    def start_wave(self) -> int:
        """Open a new probe wave; returns its id (to stamp PROBE msgs)."""
        if self.terminated:
            raise RuntimeError("detector already concluded termination")
        wid = self._next_wave_id
        self._next_wave_id += 1
        self._wave = _Wave(wid)
        self.waves_run += 1
        return wid

    def report(self, wave_id: int, rank: int, sent: int, received: int, idle: bool) -> None:
        """Accept one rank's report (stale-wave reports are ignored)."""
        if self._wave is None or wave_id != self._wave.wave_id:
            return
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        self._wave.reports[rank] = (sent, received, idle)

    def wave_complete(self) -> bool:
        return self._wave is not None and self._wave.complete(self.n_ranks)

    def conclude(self) -> bool:
        """After a complete wave: True iff termination is now proven.

        Termination requires this wave to be all-idle with sent == recv,
        *and* the previous wave to have reported the same counters (the
        two-consecutive-consistent-waves rule).  On False the caller
        should start another wave.
        """
        if self._wave is None or not self._wave.complete(self.n_ranks):
            raise RuntimeError("conclude() before the wave is complete")
        totals = self._wave.totals()
        sent, recv, all_idle = totals
        consistent = all_idle and sent == recv
        if consistent and self._prev_totals == totals:
            self.terminated = True
        self._prev_totals = totals
        self._wave = None
        return self.terminated
