"""Reliable delivery over lossy simulated channels.

The DES kernel's channels are perfect by construction: every enqueued
message arrives, exactly once, in FIFO order.  Fault injection
(:mod:`repro.faults`) breaks that — frames can be dropped, duplicated or
delayed in flight — so this module supplies the transport protocol a
real middleware would run underneath the visitor queues:

* every cross-rank application message is wrapped in a **DATA frame**
  carrying a per-channel sequence number (a channel is a
  ``(src, dst, lane)`` triple — data and control lanes are sequenced
  independently, matching the kernel's two inboxes);
* the receiver holds a **reorder buffer** per channel and releases
  application messages strictly in sequence order, deduplicating
  retransmitted frames — the application above observes exactly-once,
  FIFO delivery, i.e. exactly the contract the fault-free kernel gives;
* receivers send **delayed cumulative acks**: one ACK frame per
  ``ack_delay`` window acknowledges everything that has arrived in
  order so far (``ack = next_expected``).  Acks are themselves
  unreliable — a lost ack merely provokes a retransmission, whose
  duplicate re-arms the ack timer;
* frame handling happens at **wire arrival** (on the kernel's alarm
  queue), modelling a NIC/progress engine: dedup, reordering and ack
  scheduling do not wait for the receiving rank to drain its visitor
  backlog, so ack turnaround — and hence the retransmit timeout — is
  independent of application load and a healthy channel never
  retransmits spuriously;
* senders keep unacked frames and run one **retransmit timer per
  channel** with exponential backoff (base ``retransmit_timeout``,
  multiplied by ``retransmit_backoff`` per barren expiry, capped at
  ``retransmit_timeout_cap``), resending every unacked frame when it
  fires.  Timers live on the kernel's alarm queue, so retransmission
  happens in virtual time, interleaved causally with rank actions.

Interplay with quiescence detection (the soundness argument)
------------------------------------------------------------
The four-counter detector counts *application* messages: the engine
records a send once per :meth:`DiscreteEventLoop.send` and a receive
once per handler dispatch.  Frames — retransmissions, duplicates, acks
— are physical artefacts below that line: they never touch the
``sent``/``received`` counters nor ``in_flight``.  Because this layer
delivers each application message to the handler exactly once, the
counters balance exactly when no application message is outstanding, so
the detector can never conclude early because of a retransmission in
flight.  Conversely a dropped frame keeps its application message
un-dispatched (``in_flight`` > 0, counters unbalanced), the detector
keeps waving, and the pending retransmit alarm guarantees progress —
no hang.

Coalescing interplay: cross-rank sends bypass the squash window when a
transport is attached (in-place payload merge at the receiver would let
a message skip the lossy network entirely), so reliability implicitly
disables §II-D squashing for cross-rank traffic.  Self-sends never
traverse the network and keep their fast path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.comm.des import DiscreteEventLoop


class Frame:
    """One unit on the simulated wire (below the visitor-queue level).

    ``src``/``dst`` are the physical sender and receiver of *this*
    frame.  ``lane`` names the application channel the frame sequences
    (False = data lane, True = control lane).  For DATA frames ``seq``
    is the channel sequence number and ``payload`` the application
    message; for ACK frames ``seq`` is the cumulative ack value (all
    sequence numbers below it have been received) and ``payload`` is
    unused.
    """

    DATA = 0
    ACK = 1

    __slots__ = ("kind", "src", "dst", "lane", "seq", "payload")

    def __init__(
        self,
        kind: int,
        src: int,
        dst: int,
        lane: bool,
        seq: int,
        payload: Any = None,
    ):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.lane = lane
        self.seq = seq
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        k = "DATA" if self.kind == Frame.DATA else "ACK"
        return f"Frame({k} {self.src}->{self.dst} lane={self.lane} seq={self.seq})"


class SenderChannel:
    """Sender-side state for one ``(src, dst, lane)`` channel."""

    __slots__ = ("src", "dst", "lane", "next_seq", "unacked", "rto", "armed")

    def __init__(self, src: int, dst: int, lane: bool, base_rto: float):
        self.src = src
        self.dst = dst
        self.lane = lane
        self.next_seq = 0
        # seq -> (application message, last transmit time);
        # insertion-ordered = sequence-ordered
        self.unacked: dict[int, tuple[Any, float]] = {}
        self.rto = base_rto
        self.armed = False  # a retransmit alarm is pending

    def ack(self, cumulative: int) -> int:
        """Discard frames acknowledged by ``cumulative``; returns count."""
        acked = [s for s in self.unacked if s < cumulative]
        for s in acked:
            del self.unacked[s]
        return len(acked)


class ReceiverChannel:
    """Receiver-side state for one ``(src, dst, lane)`` channel."""

    __slots__ = ("src", "dst", "lane", "next_expected", "reorder", "ack_armed", "need_ack")

    def __init__(self, src: int, dst: int, lane: bool):
        self.src = src
        self.dst = dst
        self.lane = lane
        self.next_expected = 0
        self.reorder: dict[int, Any] = {}  # out-of-order frames held back
        self.ack_armed = False  # an ack alarm is pending
        self.need_ack = False  # something arrived since the last ack

    def admit(self, seq: int, payload: Any) -> list[Any]:
        """Accept a DATA frame; returns app messages released in order,
        or [] for a duplicate / out-of-order arrival."""
        if seq < self.next_expected or seq in self.reorder:
            return []
        self.reorder[seq] = payload
        out = []
        while self.next_expected in self.reorder:
            out.append(self.reorder.pop(self.next_expected))
            self.next_expected += 1
        return out


class ReliableDelivery:
    """The transport attached to a :class:`DiscreteEventLoop`.

    ``plan`` (a :class:`repro.faults.FaultPlan`, or any object with a
    ``frame_fate()`` method) decides each frame's fate on the wire; with
    ``plan=None`` the wire is perfect and the protocol only costs its
    framing/ack overhead — the configuration the zero-loss overhead
    ablation measures.
    """

    def __init__(self, loop: "DiscreteEventLoop", plan: Any = None):
        self.loop = loop
        self.plan = plan
        self._senders: dict[tuple[int, int, bool], SenderChannel] = {}
        self._receivers: dict[tuple[int, int, bool], ReceiverChannel] = {}
        # wire-level telemetry
        self.app_sent = 0  # application messages entrusted to the wire
        self.app_delivered = 0  # released to the handler, exactly once
        self.retransmits = 0  # DATA frames re-sent by a timer
        self.frames_dropped = 0  # frames the fault plan ate
        self.frames_duplicated = 0  # extra copies the fault plan injected
        self.frames_delayed = 0  # frames given extra in-flight latency
        self.acks_sent = 0  # cumulative ACK frames emitted
        self.dup_frames = 0  # duplicates discarded at the receiver

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def unacked_total(self) -> int:
        """DATA frames sent but not yet cumulatively acked (all channels)."""
        return sum(len(ch.unacked) for ch in self._senders.values())

    def reorder_total(self) -> int:
        """Frames held in receiver reorder buffers (gap behind them)."""
        return sum(len(ch.reorder) for ch in self._receivers.values())

    def counters(self) -> dict[str, int]:
        """JSON-safe snapshot of the wire telemetry."""
        return {
            "app_sent": self.app_sent,
            "app_delivered": self.app_delivered,
            "retransmits": self.retransmits,
            "frames_dropped": self.frames_dropped,
            "frames_duplicated": self.frames_duplicated,
            "frames_delayed": self.frames_delayed,
            "acks_sent": self.acks_sent,
            "dup_frames": self.dup_frames,
            "unacked": self.unacked_total(),
        }

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send_app(
        self, departure: float, src: int, dst: int, msg: Any, priority: bool
    ) -> None:
        """Kernel hook: a cross-rank application message departs."""
        key = (src, dst, priority)
        ch = self._senders.get(key)
        if ch is None:
            ch = self._senders[key] = SenderChannel(
                src, dst, priority, self.loop.cost.retransmit_timeout
            )
        seq = ch.next_seq
        ch.next_seq += 1
        ch.unacked[seq] = (msg, departure)
        self.app_sent += 1
        self._transmit(departure, Frame(Frame.DATA, src, dst, priority, seq, msg))
        if not ch.armed:
            self._arm_retransmit(ch, departure)

    def _transmit(self, departure: float, frame: Frame, fifo: bool = True) -> None:
        """Put one frame on the wire, subject to the fault plan."""
        fate, extra = ("ok", 0.0)
        if self.plan is not None:
            fate, extra = self.plan.frame_fate()
        if fate == "drop":
            self.frames_dropped += 1
            self.loop.on_frame_dropped(frame)
            return
        if fate == "delay":
            self.frames_delayed += 1
            self.loop.deliver_frame(departure, frame, extra_delay=extra, fifo=False)
            return
        self.loop.deliver_frame(departure, frame, fifo=fifo)
        if fate == "dup":
            self.frames_duplicated += 1
            self.loop.deliver_frame(departure, frame, extra_delay=extra, fifo=False)

    def _arm_retransmit(self, ch: SenderChannel, now_t: float) -> None:
        ch.armed = True
        deadline = now_t + ch.rto
        self.loop.schedule_alarm(
            deadline, lambda: self._on_retransmit_timer(ch, deadline)
        )

    def _on_retransmit_timer(self, ch: SenderChannel, deadline: float) -> None:
        ch.armed = False
        loop = self.loop
        if not ch.unacked:
            # Everything acked since arming: channel healthy, reset RTO.
            ch.rto = loop.cost.retransmit_timeout
            return
        # Only frames that have genuinely aged are resent; frames sent
        # shortly before this expiry get a fresh round instead of an
        # instant (spurious) retransmission — this is what keeps the
        # retransmit count at exactly zero on a healthy channel.
        cutoff = deadline - 0.5 * ch.rto
        overdue = [
            (seq, msg) for seq, (msg, sent) in ch.unacked.items() if sent <= cutoff
        ]
        if not overdue:
            oldest = min(sent for _, sent in ch.unacked.values())
            ch.armed = True
            next_deadline = oldest + ch.rto
            loop.schedule_alarm(
                next_deadline,
                lambda: self._on_retransmit_timer(ch, next_deadline),
            )
            return
        # NIC-level resend: frames depart at the timer instant (the
        # progress engine does not wait for the rank to go idle), while
        # the CPU cost is still charged to the owning rank.
        for seq, msg in overdue:
            loop.consume(ch.src, loop.cost.retransmit_cpu)
            self.retransmits += 1
            # Retransmissions bypass the FIFO clamp: they are out-of-band
            # copies and the receiver's reorder buffer restores order.
            self._transmit(
                deadline,
                Frame(Frame.DATA, ch.src, ch.dst, ch.lane, seq, msg),
                fifo=False,
            )
            ch.unacked[seq] = (msg, deadline)
        ch.rto = min(
            ch.rto * loop.cost.retransmit_backoff, loop.cost.retransmit_timeout_cap
        )
        self._arm_retransmit(ch, deadline)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def on_frame_arrival(self, frame: Frame, arrival: float) -> None:
        """Kernel hook (alarm): ``frame`` reached ``frame.dst``'s NIC.

        Runs at wire-arrival time regardless of what the receiving rank
        is busy with; the frame-handling CPU is charged to the rank.
        In-order DATA releases application messages into the receiver's
        inbox (at this instant, in channel order) for normal dispatch.
        """
        loop = self.loop
        rank = frame.dst
        loop.consume(rank, loop.cost.reliable_frame_cpu)
        if frame.kind == Frame.ACK:
            ch = self._senders.get((rank, frame.src, frame.lane))
            if ch is not None and ch.ack(frame.seq) and not ch.unacked:
                ch.rto = loop.cost.retransmit_timeout
            return
        key = (frame.src, rank, frame.lane)
        rc = self._receivers.get(key)
        if rc is None:
            rc = self._receivers[key] = ReceiverChannel(frame.src, rank, frame.lane)
        if frame.seq < rc.next_expected or frame.seq in rc.reorder:
            self.dup_frames += 1
        released = rc.admit(frame.seq, frame.payload)
        for msg in released:
            loop.deliver_released(arrival, rank, msg, frame.lane)
        self.app_delivered += len(released)
        # Any DATA arrival (fresh or duplicate) warrants an eventual ack:
        # duplicates signal a lost ack that needs re-sending.
        rc.need_ack = True
        if not rc.ack_armed:
            rc.ack_armed = True
            deadline = arrival + loop.cost.ack_delay
            loop.schedule_alarm(deadline, lambda: self._on_ack_timer(rc, deadline))

    def _on_ack_timer(self, rc: ReceiverChannel, deadline: float) -> None:
        rc.ack_armed = False
        if not rc.need_ack:
            return
        rc.need_ack = False
        loop = self.loop
        loop.consume(rc.dst, loop.cost.ack_cpu)
        self.acks_sent += 1
        # NIC-level ack: departs at the timer instant and skips the FIFO
        # clamp; its lane field names the data channel it acknowledges.
        self._transmit(
            deadline,
            Frame(Frame.ACK, rc.dst, rc.src, rc.lane, rc.next_expected),
            fifo=False,
        )
