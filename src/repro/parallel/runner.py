"""Parent-side orchestration of the process-parallel backend.

:func:`run_parallel` is the mp analogue of building a
:class:`DynamicEngine` and calling ``run()``: it wires a duplex-pipe
mesh (one :func:`multiprocessing.Pipe` per unordered rank pair, so each
direction is a private FIFO channel), spawns one worker process per
rank (:func:`repro.parallel.worker.worker_main`), and blocks until
every rank ships its post-quiescence state harvest back on its parent
pipe.  The returned :class:`ParallelResult` merges the per-rank values,
counters and wire statistics; :class:`ParallelStateView` adapts it to
the ``engine``-shaped surface the :mod:`repro.analytics.verify` oracles
expect, so the exact same checkers validate both backends.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as conn_wait
from typing import Any, Iterable

import numpy as np

from repro.comm.costmodel import RankCounters
from repro.events.stream import ADD, ArrayEventStream, EventStream
from repro.obs.distributed import ClockAnchor, merge_rank_obs
from repro.parallel.shm import ShmRing, create_ring
from repro.parallel.wire import FRAME_ERROR, FRAME_RESULT, WireConfig
from repro.parallel.worker import worker_main
from repro.partition.partitioners import ConsistentHashPartitioner
from repro.runtime.engine import EngineConfig


@dataclass
class ParallelResult:
    """The merged outcome of one process-parallel run."""

    n_ranks: int
    prog_names: list[str]
    states: dict[str, dict[int, Any]]
    counters: RankCounters
    wire: dict[str, int]
    per_rank: list[dict[str, Any]]
    token_rounds: int
    wall_seconds: float
    partition_salt: int
    wire_kind: str = "pipe"
    edges: list[tuple[int, int, int]] | None = None
    #: Merged telemetry capture (repro.obs.distributed.MergedObs) when
    #: the run was launched with an ObsConfig; None otherwise.
    obs: Any = None
    partitioner: ConsistentHashPartitioner = field(init=False)

    def __post_init__(self) -> None:
        self.partitioner = ConsistentHashPartitioner(
            self.n_ranks, salt=self.partition_salt
        )

    def state(self, prog: int | str) -> dict[int, Any]:
        """A program's merged final state (name or index)."""
        name = self.prog_names[prog] if isinstance(prog, int) else prog
        return self.states[name]

    @property
    def source_events(self) -> int:
        return self.counters.source_events

    @property
    def events_per_second(self) -> float:
        """Wall-clock topology events/s (the scaling metric)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.source_events / self.wall_seconds

    @property
    def ring_health(self) -> dict[str, int]:
        """The shm data plane's backpressure/framing counters (empty on
        the pipe wire): ring/overflow/pad/pickle/doorbell keys from the
        aggregated wire stats."""
        prefixes = ("ring_", "overflow_", "pickle_", "doorbell")
        return {k: v for k, v in self.wire.items() if k.startswith(prefixes)}

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "backend": "mp",
            "wire_kind": self.wire_kind,
            "ranks": self.n_ranks,
            "source_events": self.source_events,
            "wall_seconds": self.wall_seconds,
            "wall_events_per_second": self.events_per_second,
            "token_rounds": self.token_rounds,
            "wire": dict(self.wire),
            "ring_health": self.ring_health,
            "visits": self.counters.visits,
            "edge_inserts": self.counters.edge_inserts,
            "updates_squashed": self.counters.updates_squashed,
            "busy_time": self.counters.busy_time,
        }
        if self.obs is not None:
            doc["obs"] = self.obs.summary()
        return doc


class _DegreeView:
    """Just enough of a rank's store for ``verify_cc``: degree lookup
    over the harvested edge list."""

    def __init__(self, edges: list[tuple[int, int, int]]):
        self._degree: dict[int, int] = {}
        for src, _dst, _w in edges:
            self._degree[src] = self._degree.get(src, 0) + 1

    def degree(self, vertex: int) -> int:
        return self._degree.get(vertex, 0)


class ParallelStateView:
    """Adapts a :class:`ParallelResult` to the engine-shaped surface the
    static-oracle checkers consume (``state`` / ``edges`` /
    ``partitioner`` / ``stores[r].degree``).  Requires the run to have
    harvested topology (``run_parallel(..., collect_edges=True)``)."""

    def __init__(self, result: ParallelResult):
        if result.edges is None:
            raise ValueError(
                "verification needs harvested topology: run with "
                "collect_edges=True"
            )
        self._result = result
        self.partitioner = result.partitioner
        self.stores = [
            _DegreeView(rank_info["edges"]) for rank_info in result.per_rank
        ]

    def state(self, prog: int | str) -> dict[int, Any]:
        return self._result.state(prog)

    def edges(self) -> Iterable[tuple[int, int, int]]:
        return iter(self._result.edges or [])


def _stream_columns(stream: EventStream) -> tuple:
    """Materialise a stream as picklable int64 columns
    ``(src, dst, weights, kinds)`` for shipping to a worker."""
    if isinstance(stream, ArrayEventStream):
        return stream.columns()
    events = list(stream)
    src = np.array([e[1] for e in events], dtype=np.int64)
    dst = np.array([e[2] for e in events], dtype=np.int64)
    weights = np.array([e[3] for e in events], dtype=np.int64)
    kinds = np.array([e[0] for e in events], dtype=np.int64)
    return (src, dst, weights, kinds)


def run_parallel(
    programs: list,
    streams: list[EventStream],
    config: EngineConfig | None = None,
    wire: WireConfig | None = None,
    init: list[tuple[Any, int, Any]] | None = None,
    collect_edges: bool = False,
    timeout: float = 600.0,
    obs: Any = None,
    plugins: list[tuple[str, dict[str, Any]]] | None = None,
) -> ParallelResult:
    """Execute one saturation run with each rank as a real OS process.

    ``programs``/``streams``/``config``/``init`` mirror the DES setup
    (``init`` is the ``(prog, vertex, payload)`` triples normally passed
    to ``engine.init_program``); programs must be picklable.  DES-only
    config (bulk ingest, telemetry) is stripped before shipping.
    ``collect_edges`` additionally harvests every rank's stored edges so
    the result can be verified against the static oracle.  ``obs`` (an
    :class:`repro.obs.distributed.ObsConfig`) turns on per-rank
    wall-clock telemetry, harvested and merged into ``result.obs``.
    ``plugins`` are picklable ``(name, kwargs)`` re-hydration specs
    (see :data:`repro.runtime.plugins.PLUGIN_FACTORIES`): each worker
    rebuilds the plugins locally (``mp_safe`` ones only) and ships
    their ``harvest()`` payloads back under ``per_rank[r]["plugins"]``.
    """
    config = config or EngineConfig()
    wire = wire or WireConfig()
    if obs is not None and not obs.enabled:
        obs = None
    # The parent epoch every rank's capture is aligned against must be
    # sampled before any worker can sample its own.
    parent_anchor = ClockAnchor.capture() if obs is not None else None
    n = config.n_ranks
    if len(streams) > n:
        raise ValueError(f"{len(streams)} streams for {n} ranks")
    worker_config = replace(
        config, bulk_ingest=False, trace=False, sample_interval=None
    )
    columns: list[tuple | None] = [None] * n
    for r, stream in enumerate(streams):
        columns[r] = _stream_columns(stream)
    # Add-only iff every stream column *provably* carries only ADDs
    # (kinds None means pure ADD by ArrayEventStream construction) —
    # gates the vectorized drain.  The check is against ADD, not
    # against DELETE: an unknown kind value must conservatively
    # disqualify the stream, never slip through the fast path.
    add_only = all(
        cols is None or cols[3] is None or bool((cols[3] == ADD).all())
        for cols in columns
    )

    ctx = multiprocessing.get_context(wire.start_method)
    # Pipe mesh: one duplex pipe per unordered rank pair; each end is a
    # private FIFO channel in each direction.  With the shm wire the
    # pipes demote to control-only and the data plane is one SPSC ring
    # per *ordered* pair, created here and unlinked in the finally.
    peer_conns: list[dict[int, Any]] = [{} for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            a, b = ctx.Pipe(duplex=True)
            peer_conns[i][j] = a
            peer_conns[j][i] = b
    rings: dict[tuple[int, int], ShmRing] = {}
    ring_names: dict[tuple[int, int], str] | None = None
    if wire.kind == "shm" and n > 1:
        for i in range(n):
            for j in range(n):
                if i != j:
                    rings[(i, j)] = create_ring(wire.ring_capacity)
        ring_names = {pair: r.name for pair, r in rings.items()}
    parent_conns = []
    procs = []
    t0 = time.perf_counter()
    try:
        for rank in range(n):
            parent_end, child_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=worker_main,
                name=f"repro-mp-rank{rank}",
                args=(
                    rank,
                    n,
                    child_end,
                    peer_conns[rank],
                    programs,
                    worker_config,
                    columns[rank],
                    list(init or []),
                    wire,
                    collect_edges,
                    ring_names,
                    add_only,
                    obs,
                    list(plugins or []),
                ),
                daemon=True,
            )
            proc.start()
            parent_conns.append(parent_end)
            procs.append(proc)
            child_end.close()
        # The children hold duplicated handles now; release the parent's.
        for rank in range(n):
            for conn in peer_conns[rank].values():
                conn.close()
            peer_conns[rank] = {}

        results: dict[int, dict[str, Any]] = {}
        deadline = t0 + timeout
        pending = {parent_conns[r]: r for r in range(n)}
        while pending:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise TimeoutError(
                    f"mp run exceeded {timeout}s with ranks "
                    f"{sorted(pending.values())} outstanding"
                )
            ready = conn_wait(list(pending), timeout=min(remaining, 1.0))
            for conn in ready:
                rank = pending.pop(conn)
                try:
                    frame = conn.recv()
                except EOFError:
                    raise RuntimeError(
                        f"rank {rank} died without reporting "
                        f"(exitcode={procs[rank].exitcode})"
                    ) from None
                if frame[0] == FRAME_ERROR:
                    raise RuntimeError(f"rank {frame[1]} failed:\n{frame[2]}")
                assert frame[0] == FRAME_RESULT
                results[rank] = frame[1]
        wall = time.perf_counter() - t0
        for proc in procs:
            proc.join(timeout=30.0)
    finally:
        for conn in parent_conns:
            conn.close()
        for rank_conns in peer_conns:
            for conn in rank_conns.values():
                conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10.0)
        for r in rings.values():
            r.destroy()

    per_rank = [results[r] for r in range(n)]
    prog_names = [p.name for p in programs]
    states: dict[str, dict[int, Any]] = {name: {} for name in prog_names}
    counters = RankCounters()
    # Aggregate whatever stats the loops reported (the shm loop adds
    # ring counters): sums, except high-water marks which take the max.
    wire_totals: dict[str, int] = {}
    edges: list[tuple[int, int, int]] | None = [] if collect_edges else None
    for info in per_rank:
        for name, values in info["values"].items():
            states[name].update(values)
        counters = counters.merge(info["counters"])
        for key, value in info["wire"].items():
            if "hwm" in key:
                wire_totals[key] = max(wire_totals.get(key, 0), value)
            else:
                wire_totals[key] = wire_totals.get(key, 0) + value
        if edges is not None:
            edges.extend(info["edges"])
    if wire_totals["wire_sent"] != wire_totals["wire_received"]:
        raise AssertionError(
            "wire counters unbalanced after a concluded run: "
            f"{wire_totals['wire_sent']} sent vs "
            f"{wire_totals['wire_received']} received"
        )
    merged_obs: Any = None
    if parent_anchor is not None:
        # Pop the payloads out of per_rank so the (potentially large)
        # event lists are not duplicated in the result document.
        payloads = [info.pop("obs") for info in per_rank if "obs" in info]
        merged_obs = merge_rank_obs(payloads, parent_anchor)
    return ParallelResult(
        n_ranks=n,
        prog_names=prog_names,
        states=states,
        counters=counters,
        wire=wire_totals,
        per_rank=per_rank,
        token_rounds=per_rank[0].get("token_rounds", 0),
        wall_seconds=wall,
        partition_salt=config.partition_salt,
        wire_kind=wire.kind,
        edges=edges,
        obs=merged_obs,
    )
