"""The engine-facing message loop of one worker process.

:class:`PipeLoop` duck-types the sender-side surface of
:class:`repro.comm.des.DiscreteEventLoop` that :class:`DynamicEngine`
drives — ``send`` / ``send_many`` / ``consume`` / ``now`` / ``clock`` /
``set_source_active`` — so a completely unmodified engine runs over real
OS pipes: the worker builds a normal engine, swaps ``engine.loop`` for a
PipeLoop, and pumps messages itself (:mod:`repro.parallel.worker`).

Differences from the simulated NIC, by design:

* **No virtual-time scheduling.**  ``clock`` still exists (the engine
  charges modelled CPU into it, which keeps the cost-model accounting
  meaningful per rank), but it never drives execution — the OS scheduler
  does.  ``send_at`` / ``schedule_alarm`` therefore raise: anything
  needing virtual-time injection (collections, fault plans, telemetry
  sampling) is DES-only.
* **Outbuffers instead of per-send latency.**  Cross-rank messages
  buffer per destination and travel as one pickled batch frame when the
  buffer reaches a flush threshold (or the worker goes idle) — the PR 1
  ``send_many`` batching moved onto the wire.  The threshold can be
  *randomized per flush* (``jitter_rng``), which the differential tests
  use to shake out interleaving assumptions on top of genuine OS
  scheduling noise.
* **Coalescing on both ends of the wire.**  A send carrying a
  ``coalesce_key`` squashes into a pending same-key message in the
  destination's outbuffer (sender side) exactly like the DES inbox
  window; on the receive side, drained UPDATE frames squash into
  same-key messages still queued in the local inbox using the engine's
  per-program lifted combiners (§II-D, "combined or squashed in the
  visitor queue").
* **Termination counters live here.**  ``wire_sent`` counts a message
  when its batch is handed to the wire, ``wire_received`` when it is
  drained into the inbox — the monotone cumulative pair the token ring
  (:mod:`repro.parallel.termination`) sums.  Local (self-rank) messages
  never touch the wire counters; they cannot be in flight.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.runtime.visitor import VT_UPDATE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for types only
    from repro.parallel.codec import Codec
    from repro.parallel.shm import ShmRing

# UPDATE layout: (VT_UPDATE, prog, target, vis_id, vis_val, weight, ver).
# The drain-side coalesce key mirrors the engine's send-side key
# (prog, target, sender_vertex, version).
_UPD_KEY = (1, 2, 3, 6)


class _Pending:
    """A buffered message open for in-place payload combining (the
    outbuffer/inbox analogue of the DES ``_PendingCoalescible``)."""

    __slots__ = ("msg", "key")

    def __init__(self, msg: Any, key: Any):
        self.msg = msg
        self.key = key


class PipeLoop:
    """One rank's message plumbing over real pipes.

    ``transmit(dst_rank, frame)`` is injected (the worker points it at
    its sender thread; unit tests at a list), so the loop itself is
    process-free and deterministic under test.
    """

    def __init__(
        self,
        rank: int,
        n_ranks: int,
        transmit: Callable[[int, tuple], None],
        batch_max: int = 512,
        jitter_rng: Any = None,
        inbox_coalesce: bool = True,
    ):
        if not 0 <= rank < n_ranks:
            raise ValueError(f"rank {rank} out of range for {n_ranks} ranks")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.rank = rank
        self.n_ranks = n_ranks
        self._transmit = transmit
        self.batch_max = batch_max
        # Optional per-rank observability capture (repro.obs.distributed
        # RankObs); None = disabled, costing one guard per flush.
        self.obs: Any = None
        self._jitter_rng = jitter_rng
        self._inbox_coalesce = inbox_coalesce
        self._threshold = self._draw_threshold()
        # Engine-facing state: full-width clock (only this rank's slot
        # advances) and the counters the engine reads.
        self.clock = [0.0] * n_ranks
        self.messages_squashed = 0  # sender-side squashes (outbuf + local)
        self.batch_sends = 0  # send_many invocations
        self.stall_time = 0.0  # no backpressure model on real pipes
        self.in_flight = 0  # local inbox depth (engine never reads it)
        self.transport = None  # reliable delivery is DES-only
        self._source_active = [False] * n_ranks
        # Local inbox: FIFO of raw messages / _Pending holders, plus the
        # coalesce index over still-queued UPDATE holders.
        self._inbox: deque[Any] = deque()
        self._inbox_index: dict[Any, _Pending] = {}
        self.inbox_squashed = 0  # receive-side squashes at drain
        # Per-destination outbuffers of _Pending holders + key index.
        self._outbuf: list[list[_Pending]] = [[] for _ in range(n_ranks)]
        self._outbuf_index: list[dict[Any, _Pending]] = [{} for _ in range(n_ranks)]
        # Per-program lifted UPDATE combiners for drain-side coalescing
        # (the worker hands over ``engine._combiners`` after building
        # the engine; empty = no receive-side squashing).
        self._combiners: list[Callable[[tuple, tuple], tuple] | None] = []
        # Cumulative wire counters for the termination token ring.
        self.wire_sent = 0
        self.wire_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def set_update_combiners(
        self, combiners: list[Callable[[tuple, tuple], tuple] | None]
    ) -> None:
        """Adopt the engine's per-program UPDATE combiners for
        receive-side coalescing."""
        self._combiners = list(combiners)

    def _draw_threshold(self) -> int:
        if self._jitter_rng is None:
            return self.batch_max
        return int(self._jitter_rng.integers(1, self.batch_max + 1))

    # ------------------------------------------------------------------
    # DiscreteEventLoop surface the engine drives
    # ------------------------------------------------------------------
    def now(self, rank: int) -> float:
        return self.clock[rank]

    def max_time(self) -> float:
        return max(self.clock)

    def consume(self, rank: int, cpu_seconds: float) -> None:
        self.clock[rank] += cpu_seconds

    def set_source_active(self, rank: int, active: bool) -> None:
        self._source_active[rank] = bool(active)

    def send(
        self,
        src_rank: int,
        dst_rank: int,
        msg: Any,
        priority: bool = False,
        coalesce_key: Any = None,
        combiner: Callable[[Any, Any], Any] | None = None,
    ) -> bool:
        """Queue one message; True iff squashed into a pending one."""
        if src_rank != self.rank:
            raise RuntimeError(f"rank {self.rank} cannot send as rank {src_rank}")
        return self._enqueue(dst_rank, msg, coalesce_key, combiner)

    def send_many(
        self,
        src_rank: int,
        batch: list[tuple[int, Any, Any]],
        combiner: Callable[[Any, Any], Any] | None = None,
    ) -> list[bool]:
        """Queue a fan-out batch; one squashed-bool per message."""
        if src_rank != self.rank:
            raise RuntimeError(f"rank {self.rank} cannot send as rank {src_rank}")
        self.batch_sends += 1
        return [
            self._enqueue(dst_rank, msg, key, combiner) for dst_rank, msg, key in batch
        ]

    def send_at(self, *_args: Any, **_kwargs: Any) -> None:
        raise RuntimeError(
            "send_at needs virtual time; the mp backend has none "
            "(collections/faults/telemetry are DES-only)"
        )

    def schedule_alarm(self, *_args: Any, **_kwargs: Any) -> None:
        raise RuntimeError(
            "schedule_alarm needs virtual time; the mp backend has none "
            "(collections/faults/telemetry are DES-only)"
        )

    def attach_transport(self, _transport: Any) -> None:
        raise RuntimeError("reliable-delivery transport is DES-only")

    # ------------------------------------------------------------------
    # queueing internals
    # ------------------------------------------------------------------
    def _enqueue(
        self,
        dst_rank: int,
        msg: Any,
        key: Any,
        combiner: Callable[[Any, Any], Any] | None,
    ) -> bool:
        if dst_rank == self.rank:
            # Self-sends bypass the wire into the local inbox, with the
            # same coalescing window a DES self-send gets.
            if key is not None and combiner is not None:
                entry = self._inbox_index.get(key)
                if entry is not None:
                    entry.msg = combiner(entry.msg, msg)
                    self.messages_squashed += 1
                    return True
                entry = _Pending(msg, key)
                self._inbox_index[key] = entry
                self._inbox.append(entry)
            else:
                self._inbox.append(msg)
            return False
        if key is not None and combiner is not None:
            entry = self._outbuf_index[dst_rank].get(key)
            if entry is not None:
                entry.msg = combiner(entry.msg, msg)
                self.messages_squashed += 1
                return True
            entry = _Pending(msg, key)
            self._outbuf_index[dst_rank][key] = entry
            self._outbuf[dst_rank].append(entry)
        else:
            self._outbuf[dst_rank].append(_Pending(msg, None))
        if len(self._outbuf[dst_rank]) >= self._threshold:
            self.flush(dst_rank)
        return False

    def flush(self, dst_rank: int) -> None:
        """Hand one destination's buffered messages to the wire as a
        single batch frame.  This is where ``wire_sent`` counts them:
        from here on, an undelivered message is visible to the token
        ring as ``sent > received``."""
        buf = self._outbuf[dst_rank]
        if not buf:
            return
        obs = self.obs
        t0 = obs.now() if obs is not None else 0.0
        batch = [p.msg for p in buf]
        buf.clear()
        self._outbuf_index[dst_rank].clear()
        self.wire_sent += len(batch)
        self.frames_sent += 1
        self._transmit(dst_rank, ("B", self.rank, batch))
        self._threshold = self._draw_threshold()
        if obs is not None:
            obs.span("emit", t0, "emit", {"dst": dst_rank, "messages": len(batch)})

    def flush_all(self) -> None:
        for dst_rank in range(self.n_ranks):
            self.flush(dst_rank)

    @property
    def outbuffered(self) -> int:
        """Messages buffered but not yet entrusted to the wire.  Must be
        zero before the rank may report itself idle to the token ring."""
        return sum(len(b) for b in self._outbuf)

    # ------------------------------------------------------------------
    # receive side (driven by the worker)
    # ------------------------------------------------------------------
    def deliver_batch(self, _sender: int, batch: list[Any]) -> None:
        """Drain one arrived batch frame into the local inbox.

        ``wire_received`` counts every message — including ones that
        squash into a queued same-key UPDATE, which the DES books as
        received-at-squash-time for exactly this balance reason."""
        self.frames_received += 1
        self.wire_received += len(batch)
        combiners = self._combiners
        coalesce = self._inbox_coalesce and bool(combiners)
        for msg in batch:
            if coalesce and msg[0] == VT_UPDATE:
                combiner = combiners[msg[1]]
                if combiner is not None:
                    key = (msg[1], msg[2], msg[3], msg[6])
                    entry = self._inbox_index.get(key)
                    if entry is not None:
                        entry.msg = combiner(entry.msg, msg)
                        self.inbox_squashed += 1
                        continue
                    entry = _Pending(msg, key)
                    self._inbox_index[key] = entry
                    self._inbox.append(entry)
                    continue
            self._inbox.append(msg)

    def enqueue_local(self, msg: Any) -> None:
        """Seed the inbox directly (ownership-gated init visitors)."""
        self._inbox.append(msg)

    def pop_message(self) -> Any | None:
        """Dequeue the next inbox message (closing its coalescing
        window), or None when the inbox is empty."""
        if not self._inbox:
            return None
        msg = self._inbox.popleft()
        if type(msg) is _Pending:
            if msg.key is not None and self._inbox_index.get(msg.key) is msg:
                del self._inbox_index[msg.key]
            return msg.msg
        return msg

    @property
    def inbox_len(self) -> int:
        return len(self._inbox)

    def idle(self) -> bool:
        """Locally idle: nothing queued in, nothing buffered out.  The
        worker adds the stream-exhausted condition on top."""
        return not self._inbox and self.outbuffered == 0

    def wire_stats(self) -> dict[str, int]:
        return {
            "wire_sent": self.wire_sent,
            "wire_received": self.wire_received,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "outbuf_squashed": self.messages_squashed,
            "inbox_squashed": self.inbox_squashed,
            "batch_sends": self.batch_sends,
        }


class ShmLoop(PipeLoop):
    """A :class:`PipeLoop` whose data plane is shm rings.

    The engine-facing surface and all sender-side coalescing are
    inherited unchanged; only :meth:`flush` differs — instead of one
    pickled pipe frame per batch, buffered visitors are packed into
    record slabs (:class:`repro.parallel.codec.Codec`) and pushed onto
    the per-destination ring.  Pipes carry control frames only (token,
    stop, and the ``"D"`` doorbell emitted when a push makes a ring go
    empty→nonempty, so a receiver blocked in ``Connection.poll`` wakes
    without busy-spinning on ring heads).

    Two extra producer-side buffers join the termination accounting:

    * an **overflow queue** per destination, holding slabs a full ring
      refused (``try_push`` never blocks — a cycle of mutually-full
      rings must not deadlock); :meth:`pump` retries them each turn;
    * **record buffers** of structured arrays queued directly by the
      vectorized drain (:mod:`repro.parallel.vecapply`), which never
      pass through tuple space at all.

    ``wire_sent`` counts a record only when its slab lands on the ring;
    until then it is ``outbuffered``, so a rank with backpressured
    slabs can never report idle to the token ring.
    """

    def __init__(
        self,
        rank: int,
        n_ranks: int,
        transmit: Callable[[int, tuple], None],
        rings_out: dict[int, "ShmRing"],
        codec: "Codec",
        partitioner: Any,
        batch_max: int = 512,
        jitter_rng: Any = None,
        inbox_coalesce: bool = True,
    ):
        super().__init__(
            rank,
            n_ranks,
            transmit,
            batch_max=batch_max,
            jitter_rng=jitter_rng,
            inbox_coalesce=inbox_coalesce,
        )
        self._rings_out = rings_out
        self._codec = codec
        self._partitioner = partitioner
        self._overflow: dict[int, deque] = {d: deque() for d in rings_out}
        self._overflow_records = 0
        # dst -> list of (slab_kind, structured record array)
        self._rec_out: dict[int, list[tuple[int, np.ndarray]]] = {
            d: [] for d in rings_out
        }
        self._rec_counts: dict[int, int] = dict.fromkeys(rings_out, 0)
        self.doorbells = 0
        self.overflow_pushes = 0  # slabs a full ring bounced to overflow
        self.overflow_hwm_records = 0  # overflow-queue record high water
        self.pickle_slabs = 0  # K_PICKLE fallback slabs encoded
        self.pickle_records = 0  # messages carried on the fallback lane

    # -- producer side -------------------------------------------------
    def flush(self, dst_rank: int) -> None:
        """Encode one destination's buffered visitors + queued record
        arrays into slabs and push them (overflowing without blocking).
        Tuple-lane and record-lane messages each stay FIFO; their
        relative interleave is fixed only here, which is safe — the two
        lanes never carry messages whose order matters to §III-C (a
        channel's topology events all travel on one lane)."""
        buf = self._outbuf[dst_rank]
        recs = self._rec_out.get(dst_rank)
        if not buf and not recs:
            return
        obs = self.obs
        t0 = obs.now() if obs is not None else 0.0
        slabs: list[tuple[int, int, Any]] = []
        if buf:
            from repro.parallel.shm import K_PICKLE

            batch = [p.msg for p in buf]
            buf.clear()
            self._outbuf_index[dst_rank].clear()
            encoded = self._codec.encode_batch(batch)
            for kind, n, _payload in encoded:
                if kind == K_PICKLE:
                    self.pickle_slabs += 1
                    self.pickle_records += n
            slabs.extend(encoded)
        if recs:
            slabs.extend((kind, len(arr), arr) for kind, arr in recs)
            self._rec_out[dst_rank] = []
            self._rec_counts[dst_rank] = 0
        if dst_rank not in self._rings_out:
            raise RuntimeError(
                f"rank {self.rank} buffered messages for {dst_rank} "
                "but has no ring to it"
            )
        self._push_slabs(dst_rank, slabs)
        self._threshold = self._draw_threshold()
        if obs is not None:
            obs.span(
                "emit",
                t0,
                "emit",
                {"dst": dst_rank, "records": sum(n for _, n, _ in slabs)},
            )

    def _push_slabs(self, dst_rank: int, slabs: list[tuple[int, int, Any]]) -> None:
        ring = self._rings_out[dst_rank]
        ovf = self._overflow[dst_rank]
        was_empty = ring.used() == 0
        pushed = False
        while ovf:
            kind, n, payload = ovf[0]
            if not ring.try_push(kind, n, payload, self.rank):
                break
            ovf.popleft()
            self._overflow_records -= n
            self.wire_sent += n
            self.frames_sent += 1
            pushed = True
        for slab in slabs:
            kind, n, payload = slab
            # Overflow keeps FIFO: nothing may overtake a queued slab.
            if ovf or not ring.try_push(kind, n, payload, self.rank):
                ovf.append(slab)
                self.overflow_pushes += 1
                self._overflow_records += n
                if self._overflow_records > self.overflow_hwm_records:
                    self.overflow_hwm_records = self._overflow_records
            else:
                self.wire_sent += n
                self.frames_sent += 1
                pushed = True
        if pushed and was_empty:
            self.doorbells += 1
            self._transmit(dst_rank, ("D", self.rank))

    def pump(self) -> None:
        """Retry backpressured slabs (called once per worker turn)."""
        if self._overflow_records:
            for dst_rank, ovf in self._overflow.items():
                if ovf:
                    self._push_slabs(dst_rank, [])

    @property
    def outbuffered(self) -> int:
        return (
            sum(len(b) for b in self._outbuf)
            + self._overflow_records
            + sum(self._rec_counts.values())
        )

    # -- vectorized-drain emission lanes -------------------------------
    def queue_add(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """Queue ADD records from bulk stream ingest, routed to each
        source vertex's owner (never this rank — local events apply
        in-drain)."""
        from repro.parallel.codec import ADD_DTYPE
        from repro.parallel.shm import K_ADD

        owners = self._partitioner.owner_array(srcs)
        for dst_rank in np.unique(owners).tolist():
            sel = owners == dst_rank
            arr = np.empty(int(sel.sum()), dtype=ADD_DTYPE)
            arr["src"] = srcs[sel]
            arr["dst"] = dsts[sel]
            arr["weight"] = weights[sel]
            arr["ver"] = 0
            self._queue_records(dst_rank, K_ADD, arr)

    def queue_update(
        self,
        prog: int,
        targets: np.ndarray,
        senders: np.ndarray,
        values_u64: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """Queue UPDATE records (value already a u64 bit pattern),
        routed to each target's owner.  Callers only pass remote
        targets — local offers are applied in-drain."""
        from repro.parallel.codec import UPDATE_DTYPE
        from repro.parallel.shm import K_UPDATE

        owners = self._partitioner.owner_array(targets)
        for dst_rank in np.unique(owners).tolist():
            sel = owners == dst_rank
            arr = np.empty(int(sel.sum()), dtype=UPDATE_DTYPE)
            arr["prog"] = prog
            arr["target"] = targets[sel]
            arr["sender"] = senders[sel]
            arr["value"] = values_u64[sel]
            arr["weight"] = weights[sel]
            arr["ver"] = 0
            self._queue_records(dst_rank, K_UPDATE, arr)

    def queue_radd(
        self,
        dsts: np.ndarray,
        srcs: np.ndarray,
        weights: np.ndarray,
        vals_u64: np.ndarray,
    ) -> None:
        """Queue REVERSE_ADD records (``vals_u64`` one row per record),
        routed to each destination vertex's owner."""
        from repro.parallel.shm import K_RADD

        owners = self._partitioner.owner_array(dsts)
        for dst_rank in np.unique(owners).tolist():
            sel = owners == dst_rank
            arr = np.empty(int(sel.sum()), dtype=self._codec.radd_dtype)
            arr["dst"] = dsts[sel]
            arr["src"] = srcs[sel]
            arr["weight"] = weights[sel]
            arr["ver"] = 0
            arr["vals"] = vals_u64[sel]
            self._queue_records(dst_rank, K_RADD, arr)

    def _queue_records(self, dst_rank: int, kind: int, arr: np.ndarray) -> None:
        if dst_rank == self.rank:
            raise RuntimeError("vectorized drain queued records to itself")
        self._rec_out[dst_rank].append((kind, arr))
        self._rec_counts[dst_rank] += len(arr)
        if self._rec_counts[dst_rank] >= self._threshold:
            self.flush(dst_rank)

    # -- stats ---------------------------------------------------------
    def wire_stats(self) -> dict[str, int]:
        stats = super().wire_stats()
        rings = self._rings_out.values()
        stats["ring_stalls"] = sum(r.push_stalls for r in rings)
        stats["ring_pushes"] = sum(r.pushes for r in rings)
        stats["ring_hwm_bytes"] = max((r.hwm_bytes for r in rings), default=0)
        stats["ring_pad_slabs"] = sum(r.pad_slabs for r in rings)
        stats["ring_pad_bytes"] = sum(r.pad_bytes for r in rings)
        stats["overflow_pushes"] = self.overflow_pushes
        stats["overflow_hwm_records"] = self.overflow_hwm_records
        stats["pickle_slabs"] = self.pickle_slabs
        stats["pickle_records"] = self.pickle_records
        stats["doorbells"] = self.doorbells
        return stats
