"""Vectorized application of shm wire slabs inside one mp rank.

The per-event engine dispatches every remote visitor through the full
callback machinery — context rebind, dict reads, Python-level compare,
per-neighbour emission.  When every loaded program declares a
``bulk_kernel``, a rank can instead drain whole record slabs
(:mod:`repro.parallel.codec`) with array kernels: offers are scattered
with ``np.minimum.at`` / ``np.maximum.at`` and adopted values are
re-broadcast by the frontier relaxation of
:mod:`repro.kernels.frontier`, exactly the §II-B argument that the REMO
fixpoint is interleaving-independent.

Bit-equality with the per-event path rests on five invariants:

* **Same offers.**  Every record produces the offer its per-event
  callback would: UPDATE offers ``relax(vis_val, weight)`` at the
  target, REVERSE_ADD additionally inserts the reverse edge and seeds
  the target, ADD inserts the edge, seeds the source, and synthesizes
  the REVERSE_ADD toward the destination's owner.  Values carried to
  other ranks may be *newer* (better) than the per-event interleaving
  would have carried — monotone-safe over-approximation: any carried
  value is a real vertex value relaxed along a real edge.
* **Same seeds.**  Per-event callbacks write the materialized sentinel
  (INF, the CC hash label) into the value dict on *first touch*, even
  when nothing improves.  The drain tracks a ``written`` mask with the
  same touch rules and writes those entries back.
* **REVERSE_ADD notify-backs are load-bearing.**  When the edge's
  destination does not adopt, the source's owner learns the
  destination's (better) value only from the notify-back — it is
  emitted from post-fixpoint values (again monotone-safe, and it never
  misses one the per-event path would send: the destination's value
  only improves, so the improvement test can only flip from False to
  True).
* **UPDATE notify-backs are redundant.**  Any value they would carry is
  also delivered by the edge-creation exchange or by an adoption
  broadcast over an edge both stores hold by then, so the drain skips
  them — this is where most of the duplicated work of the per-event
  path goes away.
* **Synchronous write-back.**  Changed dense values fold into the
  engine's value dicts at the end of *every* drain — per-event code
  between drains reads those dicts (``_value_for_send`` on edge
  inserts), and a stale read there silently drops propagation.

Per-event activity between drains (local stream ingest stays
per-event) is observed through two dynamically installed engine hooks —
the ``on_write`` and ``on_insert`` sites of the plugin registry
(:mod:`repro.runtime.plugins`) — and folded into the dense mirror at
the start of the next drain.

Deletes (§VI-B) are handled defensively: the runner disables the vec
path for delete-carrying streams, but if a K_DEL slab does reach an
engaged applier (direct worker use, mixed drivers), :meth:`apply_deletes`
retires provably non-support edges vectorized and otherwise refuses, at
which point the worker calls :meth:`deopt` — dense values fold back into
the engine's dicts, the mirror replays into the rank's store, and the
rank continues per-event, where the generational restart protocol owns
support breaks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.parallel.codec import ADD_DTYPE, Codec
from repro.parallel.shm import K_ADD, K_RADD, K_UPDATE


def vec_eligible(engine, wire, add_only: bool) -> bool:
    """Can this run drain slabs through the kernels?

    Requires: shm wire with vectorize on, undirected mode, an add-only
    stream (no deletes to invalidate the CSR mirror), at least one
    program, and a bulk kernel + no nbr-cache on every program (one
    per-event program forces the whole drain per-event — same rule as
    the DES bulk-ingest controller).
    """
    if wire.kind != "shm" or not wire.vectorize or not add_only:
        return False
    if not engine.config.undirected or not engine.programs:
        return False
    return all(
        p.bulk_kernel is not None and not p.needs_nbr_cache for p in engine.programs
    )


class VecApplier:
    """Dense kernel-space mirror of one rank's algorithm state.

    Raw vertex ids map onto a sorted id universe; per-program dense
    arrays hold *materialized* values (never the 0 sentinel), a
    ``written`` mask tracks which entries the per-event path would have
    in its dict, and a rank-local edge list mirrors the adjacency store
    as a CSR for adoption broadcasts.
    """

    def __init__(self, engine, rank: int, codec: Codec):
        self.engine = engine
        self.rank = rank
        self.codec = codec
        # Optional RankObs capture (set by the worker); one identity
        # check per kernel drain when disabled.
        self.obs: Any = None
        self.kernels = [p.bulk_kernel for p in engine.programs]
        self.n_programs = len(self.kernels)
        self.partitioner = engine.partitioner
        one = lambda k, x: np.asarray([x], dtype=k.dtype)  # noqa: E731
        self._minlike = [
            bool(k.improves(one(k, 0), one(k, 1))[0]) for k in self.kernels
        ]
        # Sorted raw-id universe and per-entry rank ownership.
        self._ids = np.empty(0, dtype=np.int64)
        self._owner = np.empty(0, dtype=np.int64)
        self._values = [np.empty(0, dtype=k.dtype) for k in self.kernels]
        self._written = [np.empty(0, dtype=bool) for _ in self.kernels]
        self._synced = [np.empty(0, dtype=k.dtype) for k in self.kernels]
        # Rank-local directed edge mirror (raw ids) and its CSR cache.
        self._e_tail = np.empty(0, dtype=np.int64)
        self._e_head = np.empty(0, dtype=np.int64)
        self._e_w = np.empty(0, dtype=np.int64)
        self._csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        # Directed (tail, head) pairs ever seen — the first-insert test
        # that keeps ``edge_inserts`` agreeing with the per-event store.
        self._pairs: set[tuple[int, int]] = set()
        # Per-event activity observed between drains.
        self._dirty: list[dict[int, Any]] = [dict() for _ in self.kernels]
        self._pending_edges: list[tuple[int, int, int]] = []
        engine.install_hook("on_write", self._on_value_write)
        engine.install_hook("on_insert", self._on_insert)
        self.stats = {
            "kernel_batches": 0,
            "kernel_records": 0,
            "kernel_relaxations": 0,
            "kernel_rounds": 0,
        }

    # -- engine hooks --------------------------------------------------
    def _on_value_write(self, prog: int, vertex: int, value: Any) -> None:
        self._dirty[prog][vertex] = value

    def _on_insert(self, src: int, dst: int, weight: int) -> None:
        self._pending_edges.append((src, dst, weight))

    # -- id universe ---------------------------------------------------
    def _ensure_ids(self, raw: np.ndarray) -> None:
        """Grow the universe to cover ``raw`` (new entries materialize).

        Growing REMAPS every dense position — callers must not hold
        indices across a call; :meth:`drain` grows once up front so all
        downstream indices stay stable.
        """
        if raw.size == 0:
            return
        raw = np.unique(raw)
        if self._ids.size:
            fresh = raw[~np.isin(raw, self._ids, assume_unique=True)]
        else:
            fresh = raw
        if fresh.size == 0:
            return
        ids = np.sort(np.concatenate([self._ids, fresh]))
        old_pos = np.searchsorted(ids, self._ids)
        fresh_pos = np.searchsorted(ids, fresh)
        self._owner = self.partitioner.owner_array(ids)
        for p, k in enumerate(self.kernels):
            vals = np.empty(ids.shape, dtype=k.dtype)
            written = np.zeros(ids.shape, dtype=bool)
            synced = np.zeros(ids.shape, dtype=k.dtype)
            vals[fresh_pos] = k.materialize(np.zeros(fresh.shape, dtype=k.dtype), fresh)
            if self._ids.size:
                vals[old_pos] = self._values[p]
                written[old_pos] = self._written[p]
                synced[old_pos] = self._synced[p]
            self._values[p] = vals
            self._written[p] = written
            self._synced[p] = synced
        self._ids = ids
        self._csr = None  # CSR indices are positional

    def _idx(self, raw: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._ids, raw)

    # -- per-event fold ------------------------------------------------
    def _fold_dirty(self) -> list[np.ndarray]:
        """Fold per-event activity into the mirror; returns per-program
        raw ids whose dense value improved.  Those must re-broadcast
        over the mirror (the vec analogue of the per-event write's
        ``update_nbrs`` — the engine's store is empty in vec mode, so
        nothing else would carry them)."""
        improved: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in self.kernels
        ]
        if self._pending_edges:
            e = np.array(self._pending_edges, dtype=np.int64).reshape(-1, 3)
            self._pending_edges = []
            self._note_pairs(e[:, 0], e[:, 1], count=False)
            self._append_edges(e[:, 0], e[:, 1], e[:, 2])
        for p, k in enumerate(self.kernels):
            items = self._dirty[p]
            if not items:
                continue
            self._dirty[p] = dict()
            raw = np.fromiter(items.keys(), dtype=np.int64, count=len(items))
            vals = np.array(list(items.values()), dtype=k.dtype)
            self._ensure_ids(raw)
            idx = self._idx(raw)
            merged = k.merge_dense(self._values[p][idx], vals)
            ch = merged != self._values[p][idx]
            self._values[p][idx] = merged
            self._written[p][idx] = True
            self._synced[p][idx] = vals
            if ch.any():
                improved[p] = raw[ch]
        return improved

    def _append_edges(
        self, tails: np.ndarray, heads: np.ndarray, w: np.ndarray
    ) -> None:
        self._ensure_ids(np.concatenate([tails, heads]))
        self._e_tail = np.concatenate([self._e_tail, tails])
        self._e_head = np.concatenate([self._e_head, heads])
        self._e_w = np.concatenate([self._e_w, np.asarray(w, dtype=np.int64)])
        self._csr = None

    def _note_pairs(self, tails: np.ndarray, heads: np.ndarray, count: bool) -> int:
        """Record directed pairs; the returned first-insert count is the
        per-event ``if new: edge_inserts += 1`` test, vectorized.  Pairs
        the engine already stored itself fold in with ``count=False`` so
        they are never double-counted."""
        pairs = self._pairs
        before = len(pairs)
        pairs.update(zip(tails.tolist(), heads.tolist()))
        return len(pairs) - before if count else 0

    def _build_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR over the mirror in universe positions, dedup keep-last.

        A re-added edge overwrites its weight in the store; keep-last
        makes the mirror agree (monotone streams only re-add with
        non-worsening weights, so a stale entry would merely offer a
        losing candidate — but the mirror must not grow unboundedly).
        """
        if self._csr is not None:
            return self._csr
        n = self._ids.size
        if self._e_tail.size == 0:
            self._csr = (
                np.zeros(n + 1, dtype=np.int64),
                np.empty(0, np.int64),
                np.empty(0, np.int64),
            )
            return self._csr
        t = self._idx(self._e_tail)
        h = self._idx(self._e_head)
        key = t * np.int64(n) + h
        _, rev_first = np.unique(key[::-1], return_index=True)
        keep = (key.size - 1) - rev_first
        t, h, w = t[keep], h[keep], self._e_w[keep]
        order = np.argsort(t, kind="stable")
        t, h, w = t[order], h[order], w[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(t, minlength=n), out=indptr[1:])
        self._csr = (indptr, h, w)
        # Compact the stored mirror so dedup cost stays bounded.
        self._e_tail, self._e_head, self._e_w = self._ids[t], self._ids[h], w
        return self._csr

    # -- stream ingest -------------------------------------------------
    def ingest(
        self, src: np.ndarray, dst: np.ndarray, weights: np.ndarray, loop
    ) -> None:
        """Bulk stream ingest — the vec analogue of ``pull_source``.

        Events whose source this rank owns apply immediately as a
        synthetic local ADD slab (one :meth:`drain`); the rest travel as
        ADD records to their owners.  With ingest vectorized too, no
        per-event visitor ever fires in a vec run, which is what lets
        the engine's (pure-Python) adjacency store stay empty — the CSR
        mirror is the rank's only topology, harvested by :meth:`edges`.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        local = self.partitioner.owner_array(src) == self.rank
        remote = ~local
        if remote.any():
            loop.queue_add(src[remote], dst[remote], weights[remote])
        if local.any():
            arr = np.empty(int(local.sum()), dtype=ADD_DTYPE)
            arr["src"] = src[local]
            arr["dst"] = dst[local]
            arr["weight"] = weights[local]
            arr["ver"] = 0
            self.drain([(K_ADD, len(arr), self.rank, arr)], loop)

    # -- topology harvest ----------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self._pairs)

    def edges(self) -> list[tuple[int, int, int]]:
        """This rank's stored directed edges with keep-last weights
        (what ``store.edges()`` would have held)."""
        self._build_csr()  # compacts the mirror to its deduped form
        return list(
            zip(self._e_tail.tolist(), self._e_head.tolist(), self._e_w.tolist())
        )

    # -- deletes (§VI-B on the vec path) -------------------------------
    def retire_edges(self, tails: np.ndarray, heads: np.ndarray) -> int:
        """Drop directed pairs from the mirror; returns how many named
        pairs were actually present (the per-event ``delete_edge``
        success count).  Absent pairs are ignored, matching the store.
        """
        if tails.size == 0:
            return 0
        named = set(zip(tails.tolist(), heads.tolist()))
        present = [p for p in named if p in self._pairs]
        if not present:
            return 0
        for p in present:
            self._pairs.discard(p)
        n = np.int64(self._ids.size)
        kt = self._idx(np.array([p[0] for p in present], dtype=np.int64))
        kh = self._idx(np.array([p[1] for p in present], dtype=np.int64))
        key = self._idx(self._e_tail) * n + self._idx(self._e_head)
        keep = ~np.isin(key, kt * n + kh)
        self._e_tail = self._e_tail[keep]
        self._e_head = self._e_head[keep]
        self._e_w = self._e_w[keep]
        self._csr = None
        return len(present)

    def apply_deletes(self, recs: np.ndarray, loop) -> bool:
        """Attempt vectorized retirement of one K_DEL slab.

        All-or-nothing: every named edge — both directed twins, the vec
        path only runs undirected — must be provably non-support under
        *every* program's kernel (:meth:`FrontierKernel.delete_safe`),
        judged against post-fold dense values.  On success the twins
        retire from the mirror and True returns: removing only losing
        candidates leaves the monotone fixpoint untouched, so no value
        changes and nothing re-propagates.  Any unsafe edge (or a
        kernel declining the analysis) returns False with the mirror
        unmodified — the caller must :meth:`deopt` and route the slab
        through per-event dispatch, where the generational programs'
        restart protocol handles the support break.
        """
        # Fold per-event activity first: the support test must see the
        # same values the per-event path would.  Improvements found by
        # the fold still need their adoption broadcast (drain would have
        # done it), or they die in the mirror.
        improved = self._fold_dirty()
        for p in range(self.n_programs):
            if improved[p].size:
                self._relax_and_broadcast(p, self._idx(improved[p]), loop)
        src = recs["src"].astype(np.int64)
        dst = recs["dst"].astype(np.int64)
        tails = np.concatenate([src, dst])
        heads = np.concatenate([dst, src])
        named = np.array(
            [p in self._pairs for p in zip(tails.tolist(), heads.tolist())],
            dtype=bool,
        )
        if named.any():
            tails_p, heads_p = tails[named], heads[named]
            # Weight lookup against the deduped (keep-last) mirror.
            self._build_csr()
            n = np.int64(self._ids.size)
            mkey = self._idx(self._e_tail) * n + self._idx(self._e_head)
            order = np.argsort(mkey)
            mkey_s = mkey[order]
            qkey = self._idx(tails_p) * n + self._idx(heads_p)
            pos = np.searchsorted(mkey_s, qkey)
            # Every named pair is in ``_pairs`` and thus in the deduped
            # mirror, so the lookup always lands.
            w = self._e_w[order][pos]
            t_idx = self._idx(tails_p)
            h_idx = self._idx(heads_p)
            for p, k in enumerate(self.kernels):
                safe = k.delete_safe(
                    self._values[p][t_idx], self._values[p][h_idx], w
                )
                if safe is None or not bool(np.asarray(safe).all()):
                    return False
        deleted = self.retire_edges(tails, heads)
        self.engine.counters[self.rank].edge_deletes += deleted
        self._write_back()
        return True

    def deopt(self, loop) -> None:
        """Abandon the vec mirror and hand the rank back to per-event.

        Folds pending per-event activity (broadcasting any improvement
        it surfaces, as a drain would), writes dense values back into
        the engine's value dicts, replays the mirror's directed edges
        into the rank's store (raw inserts — their ``edge_inserts`` were
        counted when first seen), and detaches the engine hooks.  After
        this the caller must stop routing slabs through :meth:`drain`;
        everything, including the slab that triggered the de-opt, goes
        through ``decode_to_tuples`` → per-event dispatch.
        """
        improved = self._fold_dirty()
        for p in range(self.n_programs):
            if improved[p].size:
                self._relax_and_broadcast(p, self._idx(improved[p]), loop)
        self._write_back()
        engine = self.engine
        store = engine.stores[self.rank]
        for s, d, w in self.edges():
            store.insert_edge(s, d, w)
        engine.uninstall_hook("on_write", self._on_value_write)
        engine.uninstall_hook("on_insert", self._on_insert)

    # -- drain ---------------------------------------------------------
    def drain(self, slabs: list[tuple[int, int, int, np.ndarray]], loop) -> int:
        """Apply record slabs and queue resulting emissions on ``loop``.

        Returns the number of records applied.
        """
        codec = self.codec
        adds = [codec.add_view(p) for kind, _n, _s, p in slabs if kind == K_ADD]
        radds = [codec.radd_view(p) for kind, _n, _s, p in slabs if kind == K_RADD]
        upds = [codec.update_view(p) for kind, _n, _s, p in slabs if kind == K_UPDATE]
        add = np.concatenate(adds) if adds else None
        radd = np.concatenate(radds) if radds else None
        upd = np.concatenate(upds) if upds else None
        n_records = sum(int(a.size) for a in (add, radd, upd) if a is not None)
        if n_records == 0:
            return 0
        obs = self.obs
        t0 = obs.now() if obs is not None else 0.0
        fold_improved = self._fold_dirty()
        self.stats["kernel_batches"] += 1
        self.stats["kernel_records"] += n_records

        # Grow the universe once; every index below stays stable.
        parts = []
        if add is not None:
            parts += [add["src"].astype(np.int64), add["dst"].astype(np.int64)]
        if radd is not None:
            parts += [radd["dst"].astype(np.int64), radd["src"].astype(np.int64)]
        if upd is not None:
            parts.append(upd["target"].astype(np.int64))
        self._ensure_ids(np.concatenate(parts))

        engine = self.engine
        counters = engine.counters[self.rank]
        changed: list[list[np.ndarray]] = [[] for _ in self.kernels]
        for p in range(self.n_programs):
            if fold_improved[p].size:
                changed[p].append(self._idx(fold_improved[p]))

        # --- ADD slabs: insert at the source's owner, seed, re-emit ---
        local_radd = None
        if add is not None:
            src = add["src"].astype(np.int64)
            dst = add["dst"].astype(np.int64)
            w = add["weight"].astype(np.int64)
            counters.edge_inserts += self._note_pairs(src, dst, count=True)
            self._append_edges(src, dst, w)
            src_idx = self._idx(src)
            for p in range(self.n_programs):
                self._written[p][src_idx] = True  # on_add seeds the source
            # Synthesize the REVERSE_ADD the per-event path emits,
            # carrying the source's current (seeded) values.
            vals = np.stack(
                [
                    self._values[p][src_idx].astype(np.uint64)
                    for p in range(self.n_programs)
                ],
                axis=1,
            )
            local = self.partitioner.owner_array(dst) == self.rank
            remote = ~local
            if remote.any():
                loop.queue_radd(dst[remote], src[remote], w[remote], vals[remote])
            if local.any():
                local_radd = (dst[local], src[local], w[local], vals[local])

        # --- REVERSE_ADD: insert reverse edge, seed, offer ------------
        nb_pending: list[
            tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        radd_parts = []
        if radd is not None:
            radd_parts.append(
                (
                    radd["dst"].astype(np.int64),
                    radd["src"].astype(np.int64),
                    radd["weight"].astype(np.int64),
                    radd["vals"].reshape(-1, self.n_programs),
                )
            )
        if local_radd is not None:
            radd_parts.append(local_radd)
        if radd_parts:
            rdst = np.concatenate([x[0] for x in radd_parts])
            rsrc = np.concatenate([x[1] for x in radd_parts])
            rw = np.concatenate([x[2] for x in radd_parts])
            rvals = np.concatenate([x[3] for x in radd_parts])
            counters.edge_inserts += self._note_pairs(rdst, rsrc, count=True)
            self._append_edges(rdst, rsrc, rw)
            dst_idx = self._idx(rdst)
            for p, k in enumerate(self.kernels):
                self._written[p][dst_idx] = True  # on_reverse_add seeds
                vis = k.materialize(rvals[:, p].astype(k.dtype), rsrc)
                cand = k.relax(vis, rw)
                old = self._values[p][dst_idx].copy()
                k.scatter(self._values[p], dst_idx, cand)
                ch = self._values[p][dst_idx] != old
                if ch.any():
                    changed[p].append(dst_idx[ch])
                nb_pending.append((p, dst_idx, rsrc, rw, vis))

        # --- UPDATE: offer relax(vis_val, weight) at the target -------
        if upd is not None:
            progs = upd["prog"].astype(np.int64)
            for p, k in enumerate(self.kernels):
                sel = progs == p
                if not sel.any():
                    continue
                target = upd["target"][sel].astype(np.int64)
                sender = upd["sender"][sel].astype(np.int64)
                value = upd["value"][sel].astype(k.dtype)
                w = upd["weight"][sel].astype(np.int64)
                t_idx = self._idx(target)
                self._written[p][t_idx] = True  # on_update seeds
                vis = k.materialize(value, sender)
                cand = k.relax(vis, w)
                old = self._values[p][t_idx].copy()
                k.scatter(self._values[p], t_idx, cand)
                ch = self._values[p][t_idx] != old
                if ch.any():
                    changed[p].append(t_idx[ch])

        # --- frontier relaxation + adoption broadcast -----------------
        for p in range(self.n_programs):
            if changed[p]:
                self._relax_and_broadcast(
                    p, np.unique(np.concatenate(changed[p])), loop
                )

        # --- REVERSE_ADD notify-backs (load-bearing) ------------------
        local_offers: list[list[np.ndarray]] = [[] for _ in self.kernels]
        for p, dst_idx, rsrc, rw, vis in nb_pending:
            k = self.kernels[p]
            final = self._values[p][dst_idx]
            cand_back = k.relax(final, rw)
            mask = k.improves(cand_back, vis)
            if not mask.any():
                continue
            src_m = rsrc[mask]
            dst_m = self._ids[dst_idx[mask]]
            back_m = cand_back[mask]
            final_m = final[mask]
            w_m = rw[mask]
            remote = self.partitioner.owner_array(src_m) != self.rank
            if remote.any():
                loop.queue_update(
                    p,
                    src_m[remote],
                    dst_m[remote],
                    final_m[remote].astype(np.uint64),
                    w_m[remote],
                )
            local = ~remote
            if local.any():
                s_idx = self._idx(src_m[local])
                self._written[p][s_idx] = True
                old = self._values[p][s_idx].copy()
                k.scatter(self._values[p], s_idx, back_m[local])
                ch = self._values[p][s_idx] != old
                if ch.any():
                    local_offers[p].append(s_idx[ch])
        for p in range(self.n_programs):
            if local_offers[p]:
                self._relax_and_broadcast(
                    p, np.unique(np.concatenate(local_offers[p])), loop
                )

        self._write_back()
        if obs is not None:
            # busy=False: this span nests inside the worker's "drain"
            # span, which already accounts the time.
            obs.span("kernel_drain", t0, "compute", {"records": n_records}, busy=False)
        return n_records

    def _relax_and_broadcast(self, p: int, frontier: np.ndarray, loop) -> None:
        """Relax ``frontier`` to the local fixpoint over the CSR mirror,
        collecting UPDATE records for remote heads (the adoption
        broadcast of Alg. 3, batched and §II-D-coalesced)."""
        k = self.kernels[p]
        indptr, heads, weights = self._build_csr()
        values = self._values[p]
        written = self._written[p]
        owner = self._owner
        rem_t: list[np.ndarray] = []
        rem_s: list[np.ndarray] = []
        rem_v: list[np.ndarray] = []
        rem_w: list[np.ndarray] = []
        rem_c: list[np.ndarray] = []
        rounds = 0
        while frontier.size:
            vals_f = values[frontier]
            mask = k.can_emit(vals_f)
            if mask is not None:
                frontier = frontier[mask]
                vals_f = vals_f[mask]
                if not frontier.size:
                    break
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            nz = counts > 0
            if not nz.all():
                frontier, vals_f, starts, counts = (
                    frontier[nz], vals_f[nz], starts[nz], counts[nz],
                )
            total = int(counts.sum())
            if total == 0:
                break
            rounds += 1
            self.stats["kernel_relaxations"] += total
            cum = np.cumsum(counts)
            idx = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
            idx += np.repeat(starts, counts)
            e_heads = heads[idx]
            tail_vals = np.repeat(vals_f, counts)
            candidates = k.relax(tail_vals, weights[idx])
            local = owner[e_heads] == self.rank
            remote = ~local
            if remote.any():
                rem_t.append(self._ids[e_heads[remote]])
                rem_s.append(self._ids[np.repeat(frontier, counts)[remote]])
                rem_v.append(tail_vals[remote].astype(np.uint64))
                rem_w.append(weights[idx][remote])
                rem_c.append(candidates[remote])
            if local.any():
                l_heads = e_heads[local]
                written[l_heads] = True  # delivery seeds the neighbour
                old = values[l_heads].copy()
                k.scatter(values, l_heads, candidates[local])
                ch = values[l_heads] != old
                frontier = np.unique(l_heads[ch])
            else:
                frontier = np.empty(0, dtype=np.int64)
        self.stats["kernel_rounds"] += rounds
        if rem_t:
            t = np.concatenate(rem_t)
            s = np.concatenate(rem_s)
            v = np.concatenate(rem_v)
            w = np.concatenate(rem_w)
            c = np.concatenate(rem_c)
            # Coalesce by (target, sender), keeping the best candidate —
            # the array analogue of the outbuf §II-D squash.
            ckey = c if self._minlike[p] else np.invert(c)
            order = np.lexsort((ckey, s, t))
            t, s, v, w = t[order], s[order], v[order], w[order]
            first = np.ones(t.size, dtype=bool)
            first[1:] = (t[1:] != t[:-1]) | (s[1:] != s[:-1])
            loop.queue_update(p, t[first], s[first], v[first], w[first])

    # -- dict write-back ----------------------------------------------
    def _write_back(self) -> None:
        """Fold changed dense values into the engine's value dicts.

        Runs at the end of every drain: per-event code between drains
        reads these dicts (``_value_for_send`` on edge inserts), so the
        mirror must never be ahead of them.
        """
        engine = self.engine
        for p in range(self.n_programs):
            stale = self._written[p] & (self._values[p] != self._synced[p])
            if not stale.any():
                continue
            idx = np.nonzero(stale)[0]
            vals = self._values[p][idx]
            self._synced[p][idx] = vals
            target = engine.values[self.rank][p]
            for vid, v in zip(self._ids[idx].tolist(), vals.tolist()):
                target[vid] = v
