"""Visitor-batch wire codec: tuples ⇄ structured numpy record slabs.

The pipe wire pickles lists of visitor tuples; the shm wire instead
packs batches into fixed-layout little-endian record arrays that travel
as ring slabs (:mod:`repro.parallel.shm`) and decode as zero-copy numpy
views.  Three record layouts cover the hot visitor types:

========== ===========================================================
K_ADD      ``src i8, dst i8, weight i8, ver u4``             (28 B)
K_RADD     ``dst i8, src i8, weight i8, ver u4, vals u8×P``  (28+8P B)
K_UPDATE   ``prog u2, target i8, sender i8, value u8, weight i8,
           ver u4``                                          (38 B)
K_DEL      ``src i8, dst i8, ver u4``                        (20 B)
========== ===========================================================

``P`` is the number of loaded programs (RADD carries one value per
program, like the tuple format).  Algorithm values are stored as 64-bit
*bit patterns*: a program is **packable** when it declares a
``bulk_kernel``, whose dtype fixes the value domain (int64 for min-plus
costs, uint64 for max-label hashes).  Programs without a kernel (S-T
bitmaps of unbounded width, widest-path) keep arbitrary Python values —
their UPDATEs, and every RADD in a run that loads any such program,
fall back to a ``K_PICKLE`` slab (a pickled tuple list riding the same
ring, so per-channel FIFO is preserved; the pipe still carries only
control frames).

``K_DEL`` carries edge retirements (the §VI-B delete extension on the
mp backend): a DEL names only the edge and the stream version, so it is
*always* packable regardless of program mix.  The reverse-delete
(VT_RDEL) carries one value per program, which for the generational
programs are arbitrary Python tuples — it rides K_PICKLE, exactly like
generational UPDATEs.

:meth:`Codec.encode_batch` splits a batch into *consecutive runs* of
one slab kind — order within the batch is never permuted, which is what
keeps the §III-C per-channel FIFO guarantee intact across the codec.
:meth:`Codec.decode_to_tuples` restores native-int visitor tuples that
are indistinguishable from what the pipe wire delivers (the per-event
fallback); the ``*_view`` helpers expose the raw record arrays for the
vectorized drain path.
"""

from __future__ import annotations

import pickle
from typing import Any, Sequence

import numpy as np

from repro.parallel.shm import K_ADD, K_DEL, K_PICKLE, K_RADD, K_UPDATE
from repro.runtime.visitor import VT_ADD, VT_DEL, VT_RADD, VT_UPDATE

_MASK64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63

ADD_DTYPE = np.dtype(
    [("src", "<i8"), ("dst", "<i8"), ("weight", "<i8"), ("ver", "<u4")]
)

UPDATE_DTYPE = np.dtype(
    [
        ("prog", "<u2"),
        ("target", "<i8"),
        ("sender", "<i8"),
        ("value", "<u8"),
        ("weight", "<i8"),
        ("ver", "<u4"),
    ]
)

DEL_DTYPE = np.dtype([("src", "<i8"), ("dst", "<i8"), ("ver", "<u4")])


def radd_dtype(n_programs: int) -> np.dtype:
    """RADD record layout for a run loading ``n_programs`` programs."""
    return np.dtype(
        [
            ("dst", "<i8"),
            ("src", "<i8"),
            ("weight", "<i8"),
            ("ver", "<u4"),
            ("vals", "<u8", (n_programs,)),
        ]
    )


def _fold_signed(raw: int) -> int:
    """u64 bit pattern back to the Python int an i8 domain stored."""
    return raw - (1 << 64) if raw >= _SIGN_BIT else raw


class Codec:
    """Wire codec bound to one run's program list.

    Both ends construct it from the same ``programs`` sequence (workers
    receive the list in their spawn args), so program indices, RADD
    record width and per-program value signedness agree by construction.
    """

    def __init__(self, programs: Sequence[Any]):
        self.programs = list(programs)
        self.n_programs = len(self.programs)
        kernels = [getattr(p, "bulk_kernel", None) for p in self.programs]
        self.packable = tuple(k is not None for k in kernels)
        self.signed = tuple(k is not None and k.dtype.kind == "i" for k in kernels)
        self.all_packable = all(self.packable) and self.n_programs > 0
        self.radd_dtype = radd_dtype(self.n_programs)

    # -- encode --------------------------------------------------------
    def slab_kind(self, msg: tuple) -> int:
        """The slab kind this visitor tuple packs into."""
        vt = msg[0]
        if vt == VT_ADD:
            return K_ADD
        if vt == VT_DEL:
            return K_DEL
        if vt == VT_RADD and self.all_packable:
            return K_RADD
        if vt == VT_UPDATE and self.packable[msg[1]]:
            return K_UPDATE
        return K_PICKLE

    def encode_batch(self, msgs: Sequence[tuple]) -> list[tuple[int, int, bytes]]:
        """Pack a visitor batch into ``(kind, n_records, payload)`` slabs.

        Consecutive tuples of the same slab kind share one slab; batch
        order is preserved exactly.
        """
        slabs: list[tuple[int, int, bytes]] = []
        run: list[tuple] = []
        run_kind = -1
        for msg in msgs:
            kind = self.slab_kind(msg)
            if kind != run_kind and run:
                slabs.append(self._pack_run(run_kind, run))
                run = []
            run_kind = kind
            run.append(msg)
        if run:
            slabs.append(self._pack_run(run_kind, run))
        return slabs

    def _pack_run(self, kind: int, run: list[tuple]) -> tuple[int, int, bytes]:
        n = len(run)
        if kind == K_PICKLE:
            return (K_PICKLE, n, pickle.dumps(run, protocol=pickle.HIGHEST_PROTOCOL))
        if kind == K_ADD:
            arr = np.empty(n, dtype=ADD_DTYPE)
            arr["src"] = [m[1] for m in run]
            arr["dst"] = [m[2] for m in run]
            arr["weight"] = [m[3] for m in run]
            arr["ver"] = [m[4] for m in run]
            return (K_ADD, n, arr.tobytes())
        if kind == K_RADD:
            arr = np.empty(n, dtype=self.radd_dtype)
            arr["dst"] = [m[1] for m in run]
            arr["src"] = [m[2] for m in run]
            arr["weight"] = [m[4] for m in run]
            arr["ver"] = [m[5] for m in run]
            arr["vals"] = np.array(
                [[v & _MASK64 for v in m[3]] for m in run], dtype=np.uint64
            ).reshape(n, self.n_programs)
            return (K_RADD, n, arr.tobytes())
        if kind == K_UPDATE:
            arr = np.empty(n, dtype=UPDATE_DTYPE)
            arr["prog"] = [m[1] for m in run]
            arr["target"] = [m[2] for m in run]
            arr["sender"] = [m[3] for m in run]
            arr["value"] = [m[4] & _MASK64 for m in run]
            arr["weight"] = [m[5] for m in run]
            arr["ver"] = [m[6] for m in run]
            return (K_UPDATE, n, arr.tobytes())
        if kind == K_DEL:
            arr = np.empty(n, dtype=DEL_DTYPE)
            arr["src"] = [m[1] for m in run]
            arr["dst"] = [m[2] for m in run]
            arr["ver"] = [m[3] for m in run]
            return (K_DEL, n, arr.tobytes())
        raise ValueError(f"unknown slab kind {kind}")

    # -- decode: zero-copy record views (vectorized drain) -------------
    def add_view(self, payload: np.ndarray) -> np.ndarray:
        return np.frombuffer(payload, dtype=ADD_DTYPE)

    def radd_view(self, payload: np.ndarray) -> np.ndarray:
        return np.frombuffer(payload, dtype=self.radd_dtype)

    def update_view(self, payload: np.ndarray) -> np.ndarray:
        return np.frombuffer(payload, dtype=UPDATE_DTYPE)

    def del_view(self, payload: np.ndarray) -> np.ndarray:
        return np.frombuffer(payload, dtype=DEL_DTYPE)

    # -- decode: native visitor tuples (per-event fallback) ------------
    def decode_to_tuples(self, kind: int, payload: np.ndarray | bytes) -> list[tuple]:
        """Restore the visitor tuples a slab was packed from.

        Values come back as native Python ints with the signedness of
        the owning program's kernel domain, so downstream per-event
        dispatch sees exactly what the pipe wire would have delivered.
        """
        if kind == K_PICKLE:
            return pickle.loads(bytes(payload))
        if kind == K_ADD:
            return [
                (VT_ADD, src, dst, weight, ver)
                for src, dst, weight, ver in self.add_view(payload).tolist()
            ]
        if kind == K_RADD:
            signed = self.signed
            out = []
            for dst, src, weight, ver, vals in self.radd_view(payload).tolist():
                # ``tolist`` leaves subarray fields as numpy scalars;
                # force native ints before the sign fold.
                vals = tuple(
                    _fold_signed(int(v)) if signed[i] else int(v)
                    for i, v in enumerate(vals)
                )
                out.append((VT_RADD, dst, src, vals, weight, ver))
            return out
        if kind == K_UPDATE:
            signed = self.signed
            return [
                (
                    VT_UPDATE,
                    prog,
                    target,
                    sender,
                    _fold_signed(value) if signed[prog] else value,
                    weight,
                    ver,
                )
                for prog, target, sender, value, weight, ver in self.update_view(
                    payload
                ).tolist()
            ]
        if kind == K_DEL:
            return [
                (VT_DEL, src, dst, ver)
                for src, dst, ver in self.del_view(payload).tolist()
            ]
        raise ValueError(f"unknown slab kind {kind}")
