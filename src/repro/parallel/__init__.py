"""True multi-core execution: each rank as a real OS process.

The DES backend (:mod:`repro.comm.des`) models the paper's HavoqGT/MPI
middleware in virtual time on one core; this package *executes* it —
the same unmodified :class:`~repro.runtime.engine.DynamicEngine` visitor
switch runs in one process per rank over the same consistent-hash
partition, with quiescence proved by the four-counter detector adapted
to an async token ring.  The data plane is zero-copy by default:
visitor batches travel as fixed-layout numpy record slabs over
single-producer/single-consumer shared-memory rings
(:mod:`repro.parallel.shm` + :mod:`repro.parallel.codec`), the
duplex-pipe mesh demoting to control frames (token, stop, doorbells);
``WireConfig(kind="pipe")`` restores the legacy pickled-pipe wire.
When every loaded program declares a bulk kernel, arriving slabs are
applied with in-rank vectorized kernels (:mod:`repro.parallel.vecapply`)
instead of per-event dispatch.  Because the five REMO algorithms
converge to a unique fixpoint under any event interleaving (§II-D/§IV),
the mp backend's final state is bit-equal to the DES backend's and to
the static oracle — which the differential tests in ``tests/parallel/``
enforce across both wires.

Entry points: :func:`run_parallel` (library), ``python -m repro run
--backend mp --ranks N [--wire shm|pipe]`` (CLI).
"""

from repro.parallel.codec import Codec
from repro.parallel.loop import PipeLoop, ShmLoop
from repro.parallel.runner import (
    ParallelResult,
    ParallelStateView,
    run_parallel,
)
from repro.parallel.shm import RingCorruption, ShmRing, attach_ring, create_ring
from repro.parallel.termination import RingCoordinator, RingMember
from repro.parallel.wire import WireConfig

__all__ = [
    "Codec",
    "PipeLoop",
    "RingCorruption",
    "ShmLoop",
    "ShmRing",
    "attach_ring",
    "create_ring",
    "ParallelResult",
    "ParallelStateView",
    "RingCoordinator",
    "RingMember",
    "WireConfig",
    "run_parallel",
]
