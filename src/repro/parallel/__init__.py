"""True multi-core execution: each rank as a real OS process.

The DES backend (:mod:`repro.comm.des`) models the paper's HavoqGT/MPI
middleware in virtual time on one core; this package *executes* it —
the same unmodified :class:`~repro.runtime.engine.DynamicEngine` visitor
switch runs in one process per rank over the same consistent-hash
partition, exchanging pickled visitor batches over a duplex-pipe mesh,
with quiescence proved by the four-counter detector adapted to an async
token ring.  Because the five REMO algorithms converge to a unique
fixpoint under any event interleaving (§II-D/§IV), the mp backend's
final state is bit-equal to the DES backend's and to the static oracle
— which the differential tests in ``tests/parallel/`` enforce.

Entry points: :func:`run_parallel` (library), ``python -m repro run
--backend mp --ranks N`` (CLI).
"""

from repro.parallel.loop import PipeLoop
from repro.parallel.runner import (
    ParallelResult,
    ParallelStateView,
    run_parallel,
)
from repro.parallel.termination import RingCoordinator, RingMember
from repro.parallel.wire import WireConfig

__all__ = [
    "PipeLoop",
    "ParallelResult",
    "ParallelStateView",
    "RingCoordinator",
    "RingMember",
    "WireConfig",
    "run_parallel",
]
