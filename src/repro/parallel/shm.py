"""Single-producer/single-consumer slab rings over POSIX shared memory.

The mp backend's *data plane*: one :class:`ShmRing` per ordered
``(src, dst)`` rank pair, carved out of a ``multiprocessing.shared_memory``
segment the parent creates before spawning workers.  The producer packs
visitor batches into fixed-layout record slabs (:mod:`repro.parallel.codec`)
and commits them with a single tail-pointer store; the consumer decodes
numpy views *directly over the shared pages* — no pickling, no
per-message objects, no socket syscalls.  Pipes remain for the control
plane only (token ring, doorbells, stop, harvest).

Layout of one segment (offsets in bytes)::

    0    tail  (int64, producer-written monotone byte counter)
    64   head  (int64, consumer-written monotone byte counter)
    128  data region of ``capacity`` bytes, used = tail - head

Tail and head live on separate cache lines so the two writers never
share one.  Slabs are contiguous in the data region and 32-byte
aligned::

    +0   seq        (u8)  ring position the slab was committed at
    +8   kind       (u4)  K_PAD / K_PICKLE / K_UPDATE / K_ADD / K_RADD / K_DEL
    +12  n_records  (u4)
    +16  nbytes     (u8)  payload length (excluding header + padding)
    +24  sender     (u8)  producing rank (redundant check field)
    +32  payload ...

A slab that would straddle the end of the data region is preceded by a
``K_PAD`` slab consuming the remainder, so payload views are always
contiguous.  The ``seq`` stamp must equal the head counter at which the
consumer finds the slab — a mismatch means a torn or misframed write
and raises :class:`RingCorruption` (the property tests corrupt stamps
deliberately to prove the detector trips).

Memory-ordering argument: CPython executes the payload stores and the
tail store under the GIL with real memory accesses in program order on
x86 (TSO) and emits the tail store last; the consumer reads ``tail``
before touching any slab bytes, so it never observes an uncommitted
slab.  Backpressure is non-blocking by design: ``try_push`` returns
False on a full ring and the caller keeps the slab in an overflow
queue (a blocking push could deadlock a cycle of mutually-full rings,
the same hazard the pipe Sender thread exists to avoid).

Spawn-safety: children attach by segment *name*.  On CPython < 3.13
``SharedMemory`` attach registers the segment with the child's
``resource_tracker``, which would unlink it (with a spurious leak
warning) when the first child exits — while other ranks still map it.
:func:`attach_ring` therefore unregisters the child's handle; the
parent alone owns the unlink (:meth:`ShmRing.destroy`).
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

import numpy as np

HEADER_BYTES = 128  # tail @ 0, head @ 64 (separate cache lines)
SLAB_HEADER = 32
SLAB_ALIGN = 32

# Bounded seq re-reads before a mismatch is declared corruption.
_TORN_REREADS = 3

K_PAD = 0
K_PICKLE = 1
K_UPDATE = 2
K_ADD = 3
K_RADD = 4
K_DEL = 5

_SLAB_HDR_DTYPE = np.dtype(
    [
        ("seq", "<u8"),
        ("kind", "<u4"),
        ("n_records", "<u4"),
        ("nbytes", "<u8"),
        ("sender", "<u8"),
    ]
)
assert _SLAB_HDR_DTYPE.itemsize == SLAB_HEADER


class RingCorruption(RuntimeError):
    """A slab failed its sequence-stamp or framing check."""


def _align(n: int) -> int:
    return (n + SLAB_ALIGN - 1) & ~(SLAB_ALIGN - 1)


class ShmRing:
    """One SPSC byte ring over a shared-memory segment.

    Exactly one process may call the producer surface (:meth:`try_push`)
    and exactly one the consumer surface (:meth:`pop_slabs` /
    :meth:`commit`); the parent that created the segment calls neither.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owns: bool):
        self._shm = shm
        self._owns = owns  # created (parent) vs attached (worker)
        self.capacity = shm.size - HEADER_BYTES
        if self.capacity < 2 * SLAB_ALIGN or self.capacity % SLAB_ALIGN:
            raise ValueError(f"ring capacity {self.capacity} invalid")
        self._ptrs = np.ndarray(
            2, dtype=np.int64, buffer=shm.buf, offset=0, strides=(64,)
        )
        self._data = np.ndarray(
            self.capacity, dtype=np.uint8, buffer=shm.buf, offset=HEADER_BYTES
        )
        # Consumer-side head position staged by pop_slabs until commit.
        self._pending_head: int | None = None
        self.pushes = 0
        self.push_stalls = 0  # try_push refusals (ring full)
        self.hwm_bytes = 0  # high-water occupancy observed by producer
        self.pad_slabs = 0  # K_PAD slabs written at region ends
        self.pad_bytes = 0  # bytes burnt on PAD framing (header + fill)
        self.torn_retries = 0  # consumer seq re-reads before a match/raise

    # -- lifecycle -----------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._ptrs = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        self._shm.close()

    def destroy(self) -> None:
        """Parent-side teardown: unmap and unlink the segment."""
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double teardown
            pass

    # -- pointers ------------------------------------------------------
    @property
    def tail(self) -> int:
        return int(self._ptrs[0])

    @property
    def head(self) -> int:
        return int(self._ptrs[1])

    def used(self) -> int:
        return self.tail - self.head

    def health(self) -> dict[str, int]:
        """Ring-level health counters (cheap ints, always maintained).

        Producer side: ``pushes`` / ``push_stalls`` (``try_push``
        refusals on a full ring) / ``hwm_bytes`` / ``pad_slabs`` /
        ``pad_bytes``.  Consumer side: ``torn_retries``.  ``used`` is
        the instantaneous occupancy at the call.
        """
        return {
            "pushes": self.pushes,
            "push_stalls": self.push_stalls,
            "hwm_bytes": self.hwm_bytes,
            "pad_slabs": self.pad_slabs,
            "pad_bytes": self.pad_bytes,
            "torn_retries": self.torn_retries,
            "used": self.used(),
            "capacity": self.capacity,
        }

    # -- producer ------------------------------------------------------
    def try_push(
        self,
        kind: int,
        n_records: int,
        payload: bytes | memoryview | np.ndarray,
        sender: int,
    ) -> bool:
        """Append one slab; False (and no write) if it does not fit.

        ``payload`` may be any contiguous buffer; it is copied into the
        ring with one bulk assignment.
        """
        payload = np.frombuffer(payload, dtype=np.uint8)
        nbytes = payload.nbytes
        slab = _align(SLAB_HEADER + nbytes)
        if slab > self.capacity:
            raise ValueError(
                f"slab of {slab} bytes exceeds ring capacity {self.capacity}"
            )
        tail, head = self.tail, self.head
        pos = tail % self.capacity
        remain = self.capacity - pos
        pad = remain if remain < slab else 0
        if tail + pad + slab - head > self.capacity:
            self.push_stalls += 1
            return False
        if pad:
            self._write_header(pos, tail, K_PAD, 0, pad - SLAB_HEADER)
            self.pad_slabs += 1
            self.pad_bytes += pad
            tail += pad
            pos = 0
        self._write_header(pos, tail, kind, n_records, nbytes, sender)
        if nbytes:
            self._data[pos + SLAB_HEADER : pos + SLAB_HEADER + nbytes] = payload
        tail += slab
        self._ptrs[0] = tail  # publish: single int64 store, last
        self.pushes += 1
        used = tail - head
        if used > self.hwm_bytes:
            self.hwm_bytes = used
        return True

    def _write_header(
        self,
        pos: int,
        seq: int,
        kind: int,
        n_records: int,
        nbytes: int,
        sender: int = 0,
    ) -> None:
        hdr = np.ndarray((), dtype=_SLAB_HDR_DTYPE, buffer=self._data.data, offset=pos)
        hdr["seq"] = seq
        hdr["kind"] = kind
        hdr["n_records"] = n_records
        hdr["nbytes"] = nbytes
        hdr["sender"] = sender

    # -- consumer ------------------------------------------------------
    def pop_slabs(self) -> list[tuple[int, int, int, np.ndarray]]:
        """Read every committed slab as ``(kind, n_records, sender,
        payload_view)`` without advancing ``head``.

        The payload views alias the shared pages (the zero-copy read
        path): decode and apply them, then call :meth:`commit` to
        release the space back to the producer.  PAD slabs are skipped.
        """
        tail, head = self.tail, self.head
        out: list[tuple[int, int, int, np.ndarray]] = []
        while head < tail:
            pos = head % self.capacity
            hdr = np.ndarray(
                (), dtype=_SLAB_HDR_DTYPE, buffer=self._data.data, offset=pos
            )
            seq = int(hdr["seq"])
            if seq != head:
                # On TSO hardware the tail store is published last, so a
                # mismatch here is corruption; on a weaker machine it can
                # also be a header store the consumer raced ahead of.  A
                # bounded re-read separates the transient from the fatal
                # and counts how often it happened (health telemetry).
                for _ in range(_TORN_REREADS):
                    self.torn_retries += 1
                    seq = int(hdr["seq"])
                    if seq == head:
                        break
            if seq != head:
                raise RingCorruption(
                    f"slab at ring offset {pos} stamped seq={seq}, "
                    f"expected {head} (torn or misframed write)"
                )
            kind = int(hdr["kind"])
            nbytes = int(hdr["nbytes"])
            slab = (
                _align(SLAB_HEADER + nbytes)
                if kind != K_PAD
                else SLAB_HEADER + nbytes
            )
            if pos + SLAB_HEADER + nbytes > self.capacity:
                raise RingCorruption(
                    f"slab at ring offset {pos} claims {nbytes} payload bytes "
                    "past the region end"
                )
            if kind != K_PAD:
                view = self._data[pos + SLAB_HEADER : pos + SLAB_HEADER + nbytes]
                out.append((kind, int(hdr["n_records"]), int(hdr["sender"]), view))
            head += slab
        self._pending_head = head
        return out

    def commit(self) -> None:
        """Release everything returned by the last :meth:`pop_slabs`.

        Must only be called once no payload view from that pop is still
        referenced — the producer may overwrite the space immediately.
        """
        if self._pending_head is not None:
            self._ptrs[1] = self._pending_head
            self._pending_head = None


def create_ring(capacity: int) -> ShmRing:
    """Parent-side: allocate one ring segment (unlink via ``destroy``)."""
    if capacity < 2 * SLAB_ALIGN or capacity % SLAB_ALIGN:
        raise ValueError(
            f"ring capacity must be a positive multiple of {SLAB_ALIGN}, "
            f"got {capacity}"
        )
    shm = shared_memory.SharedMemory(create=True, size=HEADER_BYTES + capacity)
    shm.buf[:HEADER_BYTES] = b"\x00" * HEADER_BYTES
    return ShmRing(shm, owns=True)


def attach_ring(name: str) -> ShmRing:
    """Worker-side: map an existing ring by segment name.

    The attach must not register with the resource tracker — the parent
    owns the segment's lifetime, and on CPython < 3.13 (no ``track=``
    parameter) an attach-side registration would have the tracker unlink
    the segment at the first worker's exit, tearing the ring out from
    under its peers (spawn) or double-unregistering at parent teardown
    (fork, where the tracker process is shared).  Registration is
    suppressed for the duration of the attach; workers are
    single-threaded when they attach.
    """
    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register  # type: ignore[assignment]
    return ShmRing(shm, owns=False)
