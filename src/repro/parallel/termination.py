"""Distributed termination for the process-parallel backend.

The DES backend proves quiescence with the four-counter method driven
by coordinator *broadcast* waves (:mod:`repro.comm.termination`) —
cheap there, because virtual-time alarms make a broadcast free.  On
real processes a broadcast wave costs ``2(n-1)`` wakeups per round, so
the mp backend runs the same four-counter rule over an **async token
ring**: rank 0 originates a token carrying ``(round, sent, received,
all_idle)``; each rank holds the token until it is locally idle, adds
its own cumulative wire counters, and forwards it to ``(rank+1) % n``.
When the token returns, rank 0 has one complete round.  Termination is
concluded by exactly the DES rule: two *consecutive* rounds that are
all-idle, balanced (``sent == received``) and report identical totals.

Soundness sketch (mirrors Mattern's four-counter argument): counters
are cumulative and monotone, so two rounds with identical totals mean
no rank sent or received anything between its two visits.  Those visit
intervals all contain the instant rank 0 originated the second round,
which makes that instant a consistent cut: globally ``sent ==
received`` (nothing in flight), every rank idle with its stream
exhausted, and — since an idle rank with an empty inbox and a dead
stream has no way to create work — permanently quiescent.  A rank only
reports itself idle once its *outbuffers are flushed*, so every
entrusted message is visible to the counters; messages still queued in
a sender thread or a pipe are covered by ``sent > received``.

The classes here are pure state machines (no I/O) so the protocol is
unit-testable without spawning processes; :mod:`repro.parallel.worker`
moves the actual token frames over the pipes.
"""

from __future__ import annotations


class RingCoordinator:
    """Rank 0's conclusion rule over completed token rounds.

    Mirrors :meth:`repro.comm.termination.TerminationCoordinator.conclude`:
    terminated iff two consecutive complete rounds are all-idle,
    balanced, and report identical cumulative totals.
    """

    def __init__(self) -> None:
        self._prev: tuple[int, int, bool] | None = None
        self.rounds_completed = 0
        self.terminated = False

    def round_complete(self, sent: int, received: int, all_idle: bool) -> bool:
        """Feed one returned token's totals; True iff now terminated."""
        if self.terminated:
            raise RuntimeError("coordinator already concluded termination")
        self.rounds_completed += 1
        totals = (sent, received, all_idle)
        consistent = all_idle and sent == received
        if consistent and self._prev == totals:
            self.terminated = True
        self._prev = totals
        return self.terminated


class RingMember:
    """One rank's token-holding state (any rank, including rank 0).

    The worker calls :meth:`receive` when a token frame arrives and
    :meth:`take_if_idle` on every idle iteration; a non-None return is
    the payload to forward (or, at rank 0, to conclude on).
    """

    def __init__(self, rank: int, n_ranks: int) -> None:
        if not 0 <= rank < n_ranks:
            raise ValueError(f"rank {rank} out of range for {n_ranks} ranks")
        self.rank = rank
        self.n_ranks = n_ranks
        self.next_rank = (rank + 1) % n_ranks
        self._held: tuple[int, int, int, bool] | None = None

    @property
    def holding(self) -> bool:
        return self._held is not None

    def receive(self, round_id: int, sent: int, received: int, all_idle: bool) -> None:
        """A token frame arrived; hold it until the rank is idle."""
        if self._held is not None:
            raise RuntimeError(f"rank {self.rank} already holds a token")
        self._held = (round_id, sent, received, all_idle)

    def take_if_idle(
        self, local_sent: int, local_received: int, local_idle: bool
    ) -> tuple[int, int, int, bool] | None:
        """Release the held token with this rank's counters folded in.

        Returns ``(round, sent_sum, received_sum, all_idle)`` to send to
        :attr:`next_rank` — at rank 0 the caller instead feeds it to the
        :class:`RingCoordinator` (rank 0's counters were folded in when
        it originated the round, so they are *not* re-added here).
        Returns None while no token is held or the rank is busy.
        """
        if self._held is None or not local_idle:
            return None
        round_id, sent, received, all_idle = self._held
        self._held = None
        if self.rank == 0:
            return (round_id, sent, received, all_idle)
        return (
            round_id,
            sent + local_sent,
            received + local_received,
            all_idle and local_idle,
        )

    def originate(
        self, round_id: int, local_sent: int, local_received: int
    ) -> tuple[int, int, int, bool]:
        """Rank 0 starts a round seeded with its own counters (it must
        be locally idle when calling this — that instant is the
        consistent cut the soundness argument hinges on)."""
        if self.rank != 0:
            raise RuntimeError("only rank 0 originates token rounds")
        return (round_id, local_sent, local_received, True)
