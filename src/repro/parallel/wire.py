"""Wire format and sender plumbing of the process-parallel backend.

Frames are small picklable tuples with a one-character tag first, one
pickle per frame (``multiprocessing.Connection.send``), carried over a
per-(src,dst) duplex pipe mesh:

========= ==========================================================
tag       payload
========= ==========================================================
``"B"``   ``("B", sender_rank, [visitor, ...])`` — a batch of plain
          visitor tuples in :mod:`repro.runtime.visitor` layout (the
          DES wire format travels unchanged)
``"T"``   ``("T", round, sent_sum, recv_sum, all_idle)`` — the
          termination token (:mod:`repro.parallel.termination`)
``"S"``   ``("S",)`` — stop: rank 0 concluded termination
``"D"``   ``("D", sender_rank)`` — doorbell: the sender's shm ring to
          this rank went empty→nonempty (shm wire only; wakes a
          receiver blocked in ``Connection.poll``)
========= ==========================================================

Worker → parent frames (on the dedicated parent pipe):

========= ==========================================================
``"R"``   ``("R", result_dict)`` — the rank's final state harvest
``"E"``   ``("E", rank, traceback_str)`` — the worker died
========= ==========================================================

Every worker sends through one background :class:`Sender` thread fed by
an unbounded queue, so the main thread never blocks on a full pipe
buffer.  ``Connection.send`` blocks once the OS buffer fills; with
direct sends, a cycle of ranks all blocked sending into each other
deadlocks even though every rank would eventually drain.  The thread
preserves enqueue order, so each (src, dst) channel stays FIFO — the
ordering the engine's §III-C edge-creation serialisation relies on.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

FRAME_BATCH = "B"
FRAME_TOKEN = "T"
FRAME_STOP = "S"
FRAME_RESULT = "R"
FRAME_ERROR = "E"
FRAME_DOORBELL = "D"


@dataclass(frozen=True)
class WireConfig:
    """Knobs of the pipe transport and the worker's service loop."""

    batch_max: int = 512  # outbuffer flush threshold (messages)
    jitter_seed: int | None = None  # randomize flush thresholds (tests)
    dispatch_slice: int = 512  # inbox messages dispatched per loop turn
    pull_slice: int = 128  # stream events pulled per loop turn
    poll_timeout: float = 0.02  # blocking-wait seconds when idle
    start_method: str = "spawn"  # multiprocessing context
    inbox_coalesce: bool = True  # receive-side UPDATE squashing
    kind: str = "shm"  # data plane: "shm" rings or legacy "pipe"
    ring_capacity: int = 1 << 20  # bytes per (src,dst) shm ring
    vectorize: bool = True  # apply shm slabs via bulk kernels when eligible
    ingest_chunk: int = 4096  # stream events per bulk-ingest chunk (vec only)

    def __post_init__(self) -> None:
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.dispatch_slice < 1 or self.pull_slice < 1:
            raise ValueError("dispatch_slice and pull_slice must be >= 1")
        if self.poll_timeout <= 0:
            raise ValueError("poll_timeout must be > 0")
        if self.kind not in ("shm", "pipe"):
            raise ValueError(f"wire kind must be 'shm' or 'pipe', got {self.kind!r}")
        if self.ring_capacity < 4096:
            raise ValueError(f"ring_capacity must be >= 4096, got {self.ring_capacity}")
        if self.ingest_chunk < 1:
            raise ValueError(f"ingest_chunk must be >= 1, got {self.ingest_chunk}")


class Sender(threading.Thread):
    """The per-worker background send thread.

    ``put(dst, frame)`` never blocks; frames to one destination leave in
    put order.  A wire error (peer died) is captured and re-raised in
    the worker's main thread at the next :meth:`check`.
    """

    def __init__(self, conns: dict[int, object]):
        super().__init__(name="repro-mp-sender", daemon=True)
        self._conns = conns
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._error: BaseException | None = None

    def put(self, dst_rank: int, frame: tuple) -> None:
        self._queue.put((dst_rank, frame))

    def run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            dst_rank, frame = item
            try:
                self._conns[dst_rank].send(frame)  # type: ignore[attr-defined]
            except BaseException as exc:  # noqa: BLE001 - reported to main thread
                self._error = exc
                return

    def check(self) -> None:
        """Re-raise (in the caller) any error the thread hit."""
        if self._error is not None:
            raise RuntimeError("wire send failed") from self._error

    def close(self) -> None:
        """Flush outstanding frames and stop the thread."""
        self._queue.put(None)
        self.join(timeout=30.0)
        self.check()
