"""The per-rank worker process of the mp backend.

Each worker builds a completely ordinary :class:`DynamicEngine` (full
``n_ranks``-wide configuration, so partitioning, counters and combiners
are bit-identical to the DES run), then swaps ``engine.loop`` for a
:class:`repro.parallel.loop.PipeLoop` and acts as exactly one rank of
it: every ``engine.on_message`` / ``engine.pull_source`` call happens
with this process's rank, so only this rank's store/value/counter slots
are ever touched — the cluster state is the disjoint union of the
workers' slots, harvested by the parent after termination.

Service loop, per turn: drain arrived shm ring slabs and pipe frames
into the inbox (vectorized-eligible record slabs go straight to the
kernel drain of :mod:`repro.parallel.vecapply` instead) → dispatch a
slice of inbox visitors → pull a slice of stream events when the inbox
is empty → if nothing progressed, force-flush the outbuffers and do
token-ring work, blocking briefly on the pipes when there is truly
nothing to do (a ``"D"`` doorbell frame wakes the block when a peer's
push makes a ring go empty→nonempty).  Quiescence is concluded by
rank 0's :class:`RingCoordinator` (two consecutive balanced all-idle
token rounds), after which rank 0 broadcasts STOP and every worker
ships its final state to the parent — the cross-process,
quiescence-based collection of the run's end state.
"""

from __future__ import annotations

import traceback
from multiprocessing.connection import wait as conn_wait
from typing import Any

from repro.obs.distributed import RankObs, harvest_payload
from repro.parallel.codec import Codec
from repro.parallel.loop import PipeLoop, ShmLoop
from repro.parallel.shm import K_ADD, K_DEL, K_RADD, K_UPDATE, ShmRing, attach_ring
from repro.parallel.termination import RingCoordinator, RingMember
from repro.parallel.vecapply import VecApplier, vec_eligible
from repro.parallel.wire import (
    FRAME_BATCH,
    FRAME_DOORBELL,
    FRAME_ERROR,
    FRAME_RESULT,
    FRAME_STOP,
    FRAME_TOKEN,
    Sender,
    WireConfig,
)
from repro.runtime.engine import EngineConfig
from repro.runtime.lifecycle import EngineBuilder
from repro.runtime.plugins import build_plugin
from repro.runtime.visitor import VT_INIT

_VEC_KINDS = (K_ADD, K_RADD, K_UPDATE)


def worker_main(
    rank: int,
    n_ranks: int,
    parent_conn: Any,
    peer_conns: dict[int, Any],
    programs: list,
    config: EngineConfig,
    stream_columns: tuple | None,
    init: list[tuple[Any, int, Any]],
    wire: WireConfig,
    collect_edges: bool,
    ring_names: dict[tuple[int, int], str] | None = None,
    add_only: bool = True,
    obs_config: Any = None,
    plugin_specs: list[tuple[str, dict[str, Any]]] | None = None,
) -> None:
    """Process entry point (top-level, so it is spawn-picklable)."""
    try:
        result = _run_rank(
            rank,
            n_ranks,
            peer_conns,
            programs,
            config,
            stream_columns,
            init,
            wire,
            collect_edges,
            ring_names,
            add_only,
            obs_config,
            plugin_specs,
        )
        parent_conn.send((FRAME_RESULT, result))
    except BaseException:  # noqa: BLE001 - forwarded to the parent
        try:
            parent_conn.send((FRAME_ERROR, rank, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
        raise
    finally:
        parent_conn.close()
        for conn in peer_conns.values():
            conn.close()


def _run_rank(
    rank: int,
    n_ranks: int,
    peer_conns: dict[int, Any],
    programs: list,
    config: EngineConfig,
    stream_columns: tuple | None,
    init: list[tuple[Any, int, Any]],
    wire: WireConfig,
    collect_edges: bool,
    ring_names: dict[tuple[int, int], str] | None,
    add_only: bool,
    obs_config: Any = None,
    plugin_specs: list[tuple[str, dict[str, Any]]] | None = None,
) -> dict[str, Any]:
    if config.bulk_ingest or config.trace or config.sample_interval is not None:
        raise ValueError(
            "mp workers need a sanitized EngineConfig "
            "(bulk_ingest/trace/sample_interval are DES-only)"
        )
    # Plugin re-hydration: instances don't cross the spawn boundary, so
    # the parent ships picklable ``(name, kwargs)`` specs and each rank
    # rebuilds real plugins locally.  Same gate discipline as the
    # config flags above: DES-only plugins are rejected, not ignored.
    plugins = [build_plugin(name, kwargs) for name, kwargs in plugin_specs or []]
    for pl in plugins:
        if not pl.mp_safe:
            raise ValueError(
                f"plugin {pl.name!r} is DES-only; mp workers accept only "
                "mp_safe plugins"
            )
    engine = (
        EngineBuilder()
        .with_programs(programs)
        .with_config(config)
        .with_plugins(plugins)
        .build()
    )
    sender = Sender(peer_conns)
    jitter_rng = None
    if wire.jitter_seed is not None:
        import numpy as np

        jitter_rng = np.random.default_rng((wire.jitter_seed, rank))
    rings_in: dict[int, ShmRing] = {}
    rings_out: dict[int, ShmRing] = {}
    codec: Codec | None = None
    applier: VecApplier | None = None
    loop: PipeLoop
    if wire.kind == "shm" and n_ranks > 1:
        if ring_names is None:
            raise ValueError("shm wire needs the parent-created ring names")
        codec = Codec(programs)
        for other in peer_conns:
            rings_out[other] = attach_ring(ring_names[(rank, other)])
            rings_in[other] = attach_ring(ring_names[(other, rank)])
        loop = ShmLoop(
            rank,
            n_ranks,
            sender.put,
            rings_out,
            codec,
            engine.partitioner,
            batch_max=wire.batch_max,
            jitter_rng=jitter_rng,
            inbox_coalesce=wire.inbox_coalesce,
        )
        if vec_eligible(engine, wire, add_only):
            applier = VecApplier(engine, rank, codec)
    else:
        loop = PipeLoop(
            rank,
            n_ranks,
            sender.put,
            batch_max=wire.batch_max,
            jitter_rng=jitter_rng,
            inbox_coalesce=wire.inbox_coalesce,
        )
    loop.set_update_combiners(engine._combiners)
    engine.loop = loop
    # Per-rank wall-clock telemetry (repro.obs.distributed).  Unlike the
    # engine-level DES telemetry rejected above, this layer is built for
    # the mp runtime: wall timestamps, per-process capture, harvested
    # and clock-aligned by the parent.  Disabled = obs stays None and
    # every emission site below costs one identity check.
    obs: Any = None
    if obs_config is not None and obs_config.enabled:
        obs = RankObs(rank, obs_config)
        loop.obs = obs
        if applier is not None:
            applier.obs = obs
    stream_live = False
    vec_stream = None
    if stream_columns is not None:
        from repro.events.stream import ArrayEventStream

        stream = ArrayEventStream(*stream_columns)
        if applier is not None:
            # Vec runs bulk-ingest straight from the columns; the
            # engine never sees a stream (or any per-event visitor
            # beyond INIT), so its store stays empty and the applier's
            # mirror is the rank's topology of record.
            vec_stream = stream
        else:
            engine.attach_stream(rank, stream)
        stream_live = True
    # Ownership-gated seeding: every worker gets the full init list but
    # enqueues only visitors for vertices it owns (version 0 — inits
    # precede any stream cut by definition).
    for prog, vertex, payload in init:
        if engine.partitioner.owner(vertex) == rank:
            p = engine.prog_index(prog)
            loop.enqueue_local((VT_INIT, p, vertex, payload, 0))
    sender.start()

    ring = RingMember(rank, n_ranks)
    coordinator = RingCoordinator() if rank == 0 else None
    conns = list(peer_conns.values())
    round_id = 0
    token_outstanding = False
    stopping = False

    def deopt_applier() -> None:
        """Tear the vec applier down to per-event operation.

        The applier folds its mirror back into the engine
        (:meth:`VecApplier.deopt`); the rank's remaining stream slice —
        bulk-pulled until now — re-attaches for per-event ingestion at
        its current cursor.
        """
        nonlocal applier, vec_stream
        assert applier is not None
        applier.deopt(loop)
        applier = None
        if vec_stream is not None:
            if not vec_stream.exhausted:
                engine.attach_stream(rank, vec_stream)
            vec_stream = None

    def drain_rings() -> bool:
        """Consume every committed slab from the incoming rings.

        Vectorized-eligible record slabs accumulate for one kernel
        drain (counting their own wire_received — they bypass
        ``deliver_batch``); everything else decodes back to visitor
        tuples for per-event dispatch.  A K_DEL slab reaching an engaged
        applier is first flushed through the pending kernel drain (FIFO
        before the delete), then retired vectorized when every named
        edge is provably non-support — otherwise the applier de-opts
        and the slab (and every later one) dispatches per-event.  Rings
        are committed only after the kernel drain, which copies out of
        the shared pages before any emission it triggers could need the
        space back.
        """
        nonlocal applier
        if not rings_in:
            return False
        assert codec is not None
        t0 = obs.now() if obs is not None else 0.0
        got = False
        n_slabs = 0
        vec_slabs: list[tuple[int, int, int, Any]] = []
        touched = []
        for r_in in rings_in.values():
            slabs = r_in.pop_slabs()
            if not slabs:
                r_in.commit()  # release PAD-only space, if any
                continue
            got = True
            touched.append(r_in)
            n_slabs += len(slabs)
            for kind, n, sender_rank, payload in slabs:
                if applier is not None and kind in _VEC_KINDS:
                    vec_slabs.append((kind, n, sender_rank, payload))
                    loop.wire_received += n
                    loop.frames_received += 1
                elif applier is not None and kind == K_DEL:
                    if vec_slabs:
                        applier.drain(vec_slabs, loop)
                        vec_slabs = []
                    if applier.apply_deletes(codec.del_view(payload), loop):
                        loop.wire_received += n
                        loop.frames_received += 1
                    else:
                        deopt_applier()
                        loop.deliver_batch(
                            sender_rank, codec.decode_to_tuples(kind, payload)
                        )
                else:
                    loop.deliver_batch(
                        sender_rank, codec.decode_to_tuples(kind, payload)
                    )
        if vec_slabs:
            assert applier is not None
            applier.drain(vec_slabs, loop)
        for r_in in touched:
            r_in.commit()
        if got and obs is not None:
            obs.inc("slabs_decoded", n_slabs)
            obs.span("drain", t0, "drain", {"slabs": n_slabs})
        return got

    doorbells_seen = 0

    def drain(block: bool) -> bool:
        nonlocal stopping, doorbells_seen
        got = drain_rings()
        if block and conns and not got:
            if obs is not None:
                t_wait = obs.now()
                ready = conn_wait(conns, wire.poll_timeout)
                obs.span("wait", t_wait, "wait")
            else:
                ready = conn_wait(conns, wire.poll_timeout)
        else:
            ready = [c for c in conns if c.poll()]
        rang = False
        for conn in ready:
            while conn.poll():
                try:
                    frame = conn.recv()
                except EOFError:
                    # The peer exited: that only happens after it saw
                    # rank 0's STOP, i.e. after global termination was
                    # proved, so our own STOP is queued (rank 0 sends
                    # it before closing) — stop polling this channel.
                    conns.remove(conn)
                    break
                tag = frame[0]
                if tag == FRAME_BATCH:
                    loop.deliver_batch(frame[1], frame[2])
                    got = True
                elif tag == FRAME_DOORBELL:
                    rang = True
                elif tag == FRAME_TOKEN:
                    ring.receive(frame[1], frame[2], frame[3], frame[4])
                elif tag == FRAME_STOP:
                    stopping = True
                    return got
                else:
                    raise ValueError(f"unknown wire frame {frame!r}")
        if rang:
            if obs is not None:
                # Doorbell boundaries are where the occupancy picture
                # just changed — the designated ring-sampling instants.
                doorbells_seen += 1
                if doorbells_seen % obs.config.ring_sample_every == 0:
                    obs.sample_rings(rings_in, loop)
            # The doorbell only says "ring went nonempty"; the slabs
            # themselves are picked up here.
            got = drain_rings() or got
        return got

    while not stopping:
        sender.check()
        if isinstance(loop, ShmLoop):
            loop.pump()  # retry any backpressured slabs
        progressed = drain(block=False)
        t_disp = obs.now() if obs is not None else 0.0
        dispatched = 0
        for _ in range(wire.dispatch_slice):
            msg = loop.pop_message()
            if msg is None:
                break
            engine.on_message(loop, rank, msg)
            dispatched += 1
        if dispatched:
            progressed = True
            if obs is not None:
                obs.span("dispatch", t_disp, "compute", {"messages": dispatched})
        if stream_live and loop.inbox_len == 0:
            t_ing = obs.now() if obs is not None else 0.0
            pulled = 0
            if vec_stream is not None:
                assert applier is not None
                s_col, d_col, w_col = vec_stream.pull_chunk(wire.ingest_chunk)
                if s_col.size == 0:
                    stream_live = False
                else:
                    applier.ingest(s_col, d_col, w_col, loop)
                    engine.counters[rank].source_events += int(s_col.size)
                    pulled = int(s_col.size)
                    progressed = True
            else:
                for _ in range(wire.pull_slice):
                    if not engine.pull_source(loop, rank):
                        stream_live = False
                        break
                    pulled += 1
                    progressed = True
            if pulled and obs is not None:
                obs.span("ingest", t_ing, "ingest", {"events": pulled})
        if progressed:
            continue
        # Locally quiescent this turn: entrust everything buffered to
        # the wire (making it visible to the counters), then do ring
        # work.  Idle = empty inbox ∧ empty outbuffers ∧ dead stream.
        loop.flush_all()
        idle = loop.idle() and not stream_live
        if rank == 0:
            assert coordinator is not None  # rank 0 always builds one
            payload = ring.take_if_idle(loop.wire_sent, loop.wire_received, idle)
            if payload is not None:
                token_outstanding = False
                _, sent_sum, recv_sum, all_idle = payload
                if obs is not None:
                    obs.inc("token_rounds")
                    obs.instant(
                        "token_round",
                        args={"sent": sent_sum, "received": recv_sum},
                    )
                if coordinator.round_complete(sent_sum, recv_sum, all_idle):
                    for other in peer_conns:
                        sender.put(other, (FRAME_STOP,))
                    stopping = True
                    continue
            if idle and not token_outstanding and not ring.holding:
                round_id += 1
                payload = ring.originate(round_id, loop.wire_sent, loop.wire_received)
                if n_ranks == 1:
                    # Degenerate ring: the round completes immediately.
                    if coordinator.round_complete(payload[1], payload[2], True):
                        stopping = True
                        continue
                else:
                    token_outstanding = True
                    sender.put(ring.next_rank, (FRAME_TOKEN,) + payload)
        else:
            payload = ring.take_if_idle(loop.wire_sent, loop.wire_received, idle)
            if payload is not None:
                if obs is not None:
                    obs.inc("token_forwards")
                sender.put(ring.next_rank, (FRAME_TOKEN,) + payload)
        if idle:
            drain(block=True)
        elif isinstance(loop, ShmLoop) and loop.outbuffered:
            # Backpressured: the consumer must run before a retry can
            # succeed, so block briefly instead of hot-spinning.
            drain(block=True)

    # Termination was proved globally: nothing may remain queued here.
    if loop.inbox_len or loop.outbuffered or stream_live:
        raise AssertionError(
            f"rank {rank} stopped non-quiescent: inbox={loop.inbox_len} "
            f"outbuf={loop.outbuffered} stream_live={stream_live}"
        )
    sender.close()
    t_harvest = obs.now() if obs is not None else 0.0

    # Drain-side squashes are this rank's visitor-queue combines; fold
    # them into the same counter the DES books sender-observed squashes
    # to, so totals are comparable across backends.
    engine.counters[rank].updates_squashed += loop.inbox_squashed
    counters = engine.counters[0]
    for c in engine.counters[1:]:
        counters = counters.merge(c)
    wire_stats = loop.wire_stats()
    if rings_in:
        # Consumer-side ring health: the producer counters live on the
        # *peer's* ring object; only torn-write retries are observed on
        # this side of each inbound ring.
        wire_stats["ring_torn_retries"] = sum(
            r.torn_retries for r in rings_in.values()
        )
    if applier is not None:
        wire_stats.update(applier.stats)
        num_edges = applier.num_edges
        edges = applier.edges() if collect_edges else None
    else:
        num_edges = engine.stores[rank].num_edges
        edges = list(engine.stores[rank].edges()) if collect_edges else None
    result: dict[str, Any] = {
        "rank": rank,
        "values": {
            prog.name: dict(engine.values[rank][p])
            for p, prog in enumerate(engine.programs)
        },
        "counters": counters,
        "wire": wire_stats,
        "virtual_time": loop.clock[rank],
        "num_edges": num_edges,
        "edges": edges,
    }
    if coordinator is not None:
        result["token_rounds"] = coordinator.rounds_completed
    plugin_payloads = engine.plugins.harvest()
    if plugin_payloads:
        # Per-rank plugin results (e.g. hook_stats firing counts) ride
        # the result dict home, keyed by plugin name.
        result["plugins"] = plugin_payloads
    if obs is not None:
        obs.span("harvest", t_harvest, "ctrl")
        result["obs"] = harvest_payload(obs, wire_stats)
    for r_ring in (*rings_in.values(), *rings_out.values()):
        r_ring.close()  # drop mappings; the parent unlinks the segments
    return result
