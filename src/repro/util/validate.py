"""Small argument-validation helpers used at public API boundaries.

Internal hot paths do *not* validate (per the HPC guideline of keeping the
inner loops lean); validation happens once, at construction/configuration
time, with error messages that name the offending parameter.
"""

from __future__ import annotations

from typing import Any


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``.

    ``bool`` is rejected where an int is expected, since ``True`` silently
    passing as ``1`` is a classic source of confusing configs.
    """
    if isinstance(value, bool) and expected in (int, (int,)):
        raise TypeError(f"{name} must be int, got bool {value!r}")
    if not isinstance(value, expected):
        exp = expected if isinstance(expected, type) else "/".join(t.__name__ for t in expected)
        exp_name = exp.__name__ if isinstance(exp, type) else exp
        raise TypeError(f"{name} must be {exp_name}, got {type(value).__name__} ({value!r})")


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
