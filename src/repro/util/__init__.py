"""Foundational utilities shared by every subsystem.

This subpackage deliberately has no dependency on the rest of :mod:`repro`:
hashing/mixing primitives (:mod:`repro.util.hashing`), deterministic RNG
helpers (:mod:`repro.util.rng`), virtual/wall-clock timing helpers
(:mod:`repro.util.timers`) and argument validation (:mod:`repro.util.validate`).
"""

from repro.util.hashing import (
    fibonacci_hash,
    mix64,
    splitmix64,
    stable_vertex_hash,
)
from repro.util.rng import SeedSequenceFactory, derive_seed, make_rng
from repro.util.timers import WallTimer, format_rate, format_seconds
from repro.util.validate import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_type,
)

__all__ = [
    "fibonacci_hash",
    "mix64",
    "splitmix64",
    "stable_vertex_hash",
    "SeedSequenceFactory",
    "derive_seed",
    "make_rng",
    "WallTimer",
    "format_rate",
    "format_seconds",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_power_of_two",
    "check_type",
]
