"""Wall-clock timing helpers and human-readable formatting.

The evaluation distinguishes two clocks:

* **virtual time** — the per-rank clocks advanced by the discrete-event
  simulator's cost model (see :mod:`repro.comm.costmodel`); this is what
  the scaling figures report, standing in for the paper's cluster time.
* **wall time** — how long the simulator itself took, reported alongside
  so that readers can judge simulation overhead.

This module only deals with the wall clock; virtual time lives with the
simulator kernel.
"""

from __future__ import annotations

import time


class WallTimer:
    """A restartable stopwatch usable as a context manager.

    >>> with WallTimer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed = 0.0

    def start(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("WallTimer.stop() called before start()")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (includes the live segment if running)."""
        live = time.perf_counter() - self._start if self._start is not None else 0.0
        return self._elapsed + live

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0

    def __enter__(self) -> "WallTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def format_seconds(seconds: float) -> str:
    """Render a duration compactly: ``1.23us``, ``45.6ms``, ``7.89s``, ``2m03s``."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    if seconds < 120.0:
        return f"{seconds:.3g}s"
    minutes, secs = divmod(seconds, 60.0)
    return f"{int(minutes)}m{secs:04.1f}s"


def format_rate(count: float, seconds: float, unit: str = "ev/s") -> str:
    """Render a rate with SI-style scaling: ``1.30 Gev/s``, ``421 Kev/s``."""
    if seconds <= 0:
        return f"inf {unit}"
    rate = count / seconds
    for scale, prefix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if rate >= scale:
            return f"{rate / scale:.3g} {prefix}{unit}"
    return f"{rate:.3g} {unit}"
