"""64-bit integer mixing and hashing primitives.

The paper's middleware relies on hashing in three distinct places:

* **Partitioning** (§III-C): vertex ownership is decided by
  ``hash(V) mod P`` so that any rank can locate any vertex's owner in
  constant time without coordination.
* **Storage** (§III-B): DegAwareRHH uses open addressing with Robin Hood
  hashing, which needs a well-mixed 64-bit hash to keep probe distances
  short.
* **Connected Components** (Alg. 6): each vertex seeds its component label
  with ``hash(vertex_id)`` so that insertion order does not bias which
  component label "dominates".

Python's builtin ``hash`` on small ints is the identity function, which is
catastrophic for all three uses on the near-contiguous vertex IDs produced
by graph generators.  We therefore provide explicit finalizers with strong
avalanche behaviour.  All functions operate in the unsigned 64-bit domain
and are deterministic across processes and Python versions (unlike
``hash(str)`` under PYTHONHASHSEED randomisation).
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1

# SplitMix64 constants (Steele, Lea & Flood; also used by xxHash/wyhash
# derivatives). These give full avalanche: each input bit flips each output
# bit with probability ~0.5.
_SM64_GAMMA = 0x9E3779B97F4A7C15
_SM64_MUL1 = 0xBF58476D1CE4E5B9
_SM64_MUL2 = 0x94D049BB133111EB

# 2^64 / phi, used by Fibonacci hashing to map a hash to a power-of-two
# table index using the *high* bits (which are the best mixed).
_FIB_MUL = 0x9E3779B97F4A7C15


def splitmix64(x: int) -> int:
    """Advance-and-output step of the SplitMix64 generator.

    Unlike :func:`mix64` this adds the odd gamma constant first, so
    ``splitmix64(0) != 0``; it is safe to feed sequential integers.
    """
    x = (x + _SM64_GAMMA) & _MASK64
    return mix64(x)


def mix64(x: int) -> int:
    """The SplitMix64 finalizer: a bijective avalanche mix of a 64-bit int.

    Note ``mix64(0) == 0``; when zero inputs are possible and a nonzero
    output matters, use :func:`splitmix64` instead.
    """
    x &= _MASK64
    x ^= x >> 30
    x = (x * _SM64_MUL1) & _MASK64
    x ^= x >> 27
    x = (x * _SM64_MUL2) & _MASK64
    x ^= x >> 31
    return x


def stable_vertex_hash(vertex_id: int, salt: int = 0) -> int:
    """Deterministic 64-bit hash of a vertex ID, optionally salted.

    Used for CC label seeding (Alg. 6) and for consistent-hash
    partitioning.  The salt lets different subsystems draw independent
    hash functions from the same ID space (e.g. so the partitioner and the
    CC labels are not correlated).
    """
    return splitmix64((vertex_id & _MASK64) ^ (salt * _SM64_GAMMA & _MASK64))


def fibonacci_hash(hashed: int, table_bits: int) -> int:
    """Map an already-mixed 64-bit hash to a ``2**table_bits`` table index.

    Multiplies by 2^64/phi and keeps the top ``table_bits`` bits, which
    spreads clustered hashes better than masking the low bits.
    """
    if table_bits <= 0:
        return 0
    return ((hashed * _FIB_MUL) & _MASK64) >> (64 - table_bits)


def mix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`mix64` over a uint64 array (used by generators).

    Matches the scalar function exactly, element-wise.
    """
    x = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x ^= x >> np.uint64(30)
        x *= np.uint64(_SM64_MUL1)
        x ^= x >> np.uint64(27)
        x *= np.uint64(_SM64_MUL2)
        x ^= x >> np.uint64(31)
    return x


def stable_vertex_hash_array(vertex_ids: np.ndarray, salt: int = 0) -> np.ndarray:
    """Vectorised :func:`stable_vertex_hash` over an array of vertex IDs."""
    salted = vertex_ids.astype(np.uint64) ^ np.uint64((salt * _SM64_GAMMA) & _MASK64)
    with np.errstate(over="ignore"):
        salted = salted + np.uint64(_SM64_GAMMA)
    return mix64_array(salted)
