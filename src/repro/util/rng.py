"""Deterministic random-number plumbing.

Every stochastic component in the reproduction (graph generators, stream
shuffling, partition salts, benchmark harness) draws its randomness through
this module so that a single top-level seed makes an entire experiment
bit-reproducible — the paper averages over 10 runs; we instead expose the
run index as part of the seed derivation so each "run" is independently
seeded yet replayable.
"""

from __future__ import annotations

import numpy as np

from repro.util.hashing import splitmix64

DEFAULT_SEED = 0x5EED_2019


def derive_seed(root_seed: int, *components: int | str) -> int:
    """Derive a child seed from a root seed and a path of components.

    String components are folded in bytewise so textual labels such as
    ``("fig5", "twitter_like", run_idx)`` produce stable, well-separated
    child seeds.
    """
    state = splitmix64(root_seed)
    for comp in components:
        if isinstance(comp, str):
            for byte in comp.encode("utf-8"):
                state = splitmix64(state ^ byte)
        else:
            state = splitmix64(state ^ (int(comp) & (1 << 64) - 1))
    return state


def make_rng(root_seed: int, *components: int | str) -> np.random.Generator:
    """Create a NumPy generator seeded via :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(root_seed, *components))


class SeedSequenceFactory:
    """Hands out independent, labelled RNG streams from one root seed.

    Example::

        seeds = SeedSequenceFactory(42)
        gen_rng = seeds.rng("generator")
        shuffle_rng = seeds.rng("stream-shuffle", rank)
    """

    def __init__(self, root_seed: int = DEFAULT_SEED):
        self.root_seed = int(root_seed)

    def seed(self, *components: int | str) -> int:
        return derive_seed(self.root_seed, *components)

    def rng(self, *components: int | str) -> np.random.Generator:
        return make_rng(self.root_seed, *components)

    def child(self, *components: int | str) -> "SeedSequenceFactory":
        """A factory rooted at a derived seed (for handing to subsystems)."""
        return SeedSequenceFactory(self.seed(*components))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(root_seed={self.root_seed:#x})"
