"""Edge-weight assignment for SSSP workloads.

The paper's SSSP (Alg. 5) uses integer edge weights whose updates are
"limited only to reducing edge weight" to preserve monotonicity.  Weights
here are positive int64 draws; :func:`decreasing_reweights` produces a
stream of weight-*decrease* attribute updates for the SSSP-update tests.
"""

from __future__ import annotations

import numpy as np

from repro.util.validate import check_positive


def uniform_weights(
    n_edges: int, lo: int = 1, hi: int = 100, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Uniform integer weights in ``[lo, hi]`` (inclusive), int64."""
    check_positive("n_edges", n_edges)
    check_positive("lo", lo)
    if hi < lo:
        raise ValueError(f"hi ({hi}) must be >= lo ({lo})")
    if rng is None:
        rng = np.random.default_rng()
    return rng.integers(lo, hi + 1, size=n_edges, dtype=np.int64)


def pairwise_weights(
    src: np.ndarray,
    dst: np.ndarray,
    lo: int = 1,
    hi: int = 100,
    salt: int = 0,
) -> np.ndarray:
    """Deterministic weight per (src, dst) pair: duplicates of an edge in
    a stream carry the *same* weight.

    SSSP's monotonicity (§II-B) requires that re-observing an edge never
    raises its weight; hashing the endpoint pair guarantees that while
    keeping weights uniform-ish in ``[lo, hi]``.  Note the weight is
    direction-sensitive only through the hash being symmetrised (so the
    undirected reverse edge also matches).
    """
    check_positive("lo", lo)
    if hi < lo:
        raise ValueError(f"hi ({hi}) must be >= lo ({lo})")
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src/dst length mismatch")
    # Symmetric pair key so (a,b) and (b,a) agree.
    lo_end = np.minimum(src, dst).astype(np.uint64)
    hi_end = np.maximum(src, dst).astype(np.uint64)
    from repro.util.hashing import mix64_array

    with np.errstate(over="ignore"):
        key = mix64_array(lo_end * np.uint64(0x9E3779B97F4A7C15) ^ hi_end)
        key = mix64_array(key ^ np.uint64(salt))
    span = np.uint64(hi - lo + 1)
    return (np.int64(lo) + (key % span).astype(np.int64)).astype(np.int64)


def decreasing_reweights(
    weights: np.ndarray,
    fraction: float,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pick a fraction of edges and draw strictly smaller weights for them.

    Returns ``(indices, new_weights)`` where ``new_weights[i]`` is drawn
    uniformly from ``[1, weights[indices[i]] - 1]``; edges of weight 1
    are never selected (they cannot decrease further).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if rng is None:
        rng = np.random.default_rng()
    weights = np.asarray(weights, dtype=np.int64)
    eligible = np.nonzero(weights > 1)[0]
    k = int(round(fraction * len(eligible)))
    if k == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    chosen = rng.choice(eligible, size=k, replace=False)
    new = np.array([rng.integers(1, w) for w in weights[chosen]], dtype=np.int64)
    return chosen, new
