"""Barabási–Albert preferential-attachment edge generator.

Used by the dataset presets for graphs whose degree distribution comes
from growth-with-preferential-attachment (social networks) rather than
RMAT's recursive-matrix structure.  The implementation uses the standard
repeated-targets trick: sampling uniformly from the flat list of all
prior edge endpoints *is* degree-proportional sampling, so no per-step
degree bookkeeping is needed.  The repeated-targets array is preallocated
(2 endpoints per edge), keeping the loop allocation-free.
"""

from __future__ import annotations

import numpy as np

from repro.util.validate import check_positive


def barabasi_albert_edges(
    n: int, m: int, rng: np.random.Generator | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a BA graph: ``n`` vertices, ``m`` edges per arrival.

    The first ``m + 1`` vertices form a seed star (vertex i connects to
    vertex 0) so early arrivals have nonzero degree.  Edges are returned
    in *arrival order* — important for streaming experiments, where BA
    output doubles as a realistic temporal edge stream (old vertices keep
    acquiring edges, as in real social networks).

    Returns parallel (src, dst) int64 arrays; src is always the newly
    arrived vertex, so the stream is add-only and time-respecting.
    """
    check_positive("n", n)
    check_positive("m", m)
    if n <= m:
        raise ValueError(f"n ({n}) must exceed m ({m})")
    if rng is None:
        rng = np.random.default_rng()

    seed_edges = m  # star over vertices 0..m
    n_edges = seed_edges + (n - m - 1) * m
    src = np.empty(n_edges, dtype=np.int64)
    dst = np.empty(n_edges, dtype=np.int64)
    # endpoint pool for preferential sampling (2 slots per edge)
    pool = np.empty(2 * n_edges, dtype=np.int64)

    # seed star: vertices 1..m attach to 0
    for i in range(m):
        src[i], dst[i] = i + 1, 0
        pool[2 * i], pool[2 * i + 1] = i + 1, 0
    edge_count = seed_edges

    for v in range(m + 1, n):
        # Sample m distinct targets degree-proportionally via the pool.
        targets: set[int] = set()
        while len(targets) < m:
            draw = pool[rng.integers(0, 2 * edge_count, size=m - len(targets))]
            targets.update(int(t) for t in draw if t != v)
        for t in targets:
            src[edge_count] = v
            dst[edge_count] = t
            pool[2 * edge_count], pool[2 * edge_count + 1] = v, t
            edge_count += 1
    return src, dst
