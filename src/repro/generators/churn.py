"""Churn workload generator: interleaved add+delete event streams.

The §VI-B delete extension needs workloads where edges both arrive and
retire.  Two scenarios:

* :func:`churn_events` — steady-state churn: an ER add stream with a
  configurable delete:insert ratio, every delete naming an edge added
  *earlier in the event order* (deletes are sampled per-victim at a
  uniformly random position after the victim's add).
* :func:`flash_crowd_events` — flash-crowd-then-decay: a baseline ER
  phase, then a burst of adds concentrated on one hub vertex, then a
  decay phase deleting a fraction of the crowd edges (the on-line
  analytics story: a hot entity spikes and fades).

**Stream confinement.**  Cross-stream event order is undefined (streams
are concurrent, §V-A), so a delete split into a different stream than
its add races it — the final topology becomes interleaving-dependent
and no two backends need agree.  :func:`split_churn_streams` therefore
deals events by a hash of the *canonical edge* (unordered endpoint
pair): every event touching one edge lands in one stream, in generation
order, and the final topology is well-defined on every backend.  This
is also why the split must never re-shuffle (``split_streams``'s
``rng`` pre-randomisation would reorder deletes before their adds).
"""

from __future__ import annotations

import numpy as np

from repro.events.stream import ArrayEventStream
from repro.events.types import ADD, DELETE
from repro.generators.er import erdos_renyi_edges
from repro.util.validate import check_positive

_PAIR_MIX = np.int64(0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF)


def _pair_weights(
    src: np.ndarray, dst: np.ndarray, weight_high: int
) -> np.ndarray:
    """Per-edge weights as a deterministic function of the *canonical
    pair* in ``[1, weight_high)``.

    ER sampling produces duplicate pairs; a re-add carrying a different
    weight than the stored edge is a non-monotone attribute change
    (worsening weights are outside the engine's re-add contract, and a
    weight *drop* would silently strand values computed at the old
    weight on a delete).  Hashing the pair makes every occurrence of an
    edge — including a re-add after its delete — carry the same weight.
    """
    if weight_high < 2:
        raise ValueError(f"weight_high must be >= 2, got {weight_high}")
    lo = np.minimum(src, dst).astype(np.uint64)
    hi = np.maximum(src, dst).astype(np.uint64)
    mix = (lo * np.uint64(0x9E3779B97F4A7C15) + hi * np.uint64(0xC2B2AE3D27D4EB4F))
    mix ^= mix >> np.uint64(29)
    return (np.uint64(1) + mix % np.uint64(weight_high - 1)).astype(np.int64)


def _interleave_deletes(
    n_adds: int, victims: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Merge ``n_adds`` adds with one delete per victim add index.

    Returns ``(event_index, is_delete)`` in event order: adds keep their
    relative order, and each victim's delete lands at a uniform position
    strictly after its add.  ``event_index`` points into the add arrays
    for both kinds (a delete names its victim's edge).
    """
    add_keys = np.arange(n_adds, dtype=np.float64)
    # Key in [victim_index, n_adds): on a key tie the stable sort keeps
    # the add (first segment) ahead of the delete, so order is safe even
    # at the degenerate key == victim_index draw.
    del_keys = victims + rng.uniform(size=victims.size) * (n_adds - victims)
    keys = np.concatenate([add_keys, del_keys])
    idx = np.concatenate([np.arange(n_adds, dtype=np.int64), victims])
    is_del = np.zeros(keys.size, dtype=bool)
    is_del[n_adds:] = True
    order = np.argsort(keys, kind="stable")
    return idx[order], is_del[order]


def churn_events(
    n_vertices: int,
    n_adds: int,
    delete_ratio: float = 0.2,
    rng: np.random.Generator | None = None,
    weight_high: int = 16,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Steady-state churn columns ``(src, dst, weights, kinds)``.

    ``delete_ratio`` is the fraction of *total events* that are deletes
    (0.2 → one delete per four adds); victims are sampled without
    replacement from the adds, and each delete is interleaved uniformly
    after its victim's add.
    """
    check_positive("n_vertices", n_vertices)
    check_positive("n_adds", n_adds)
    if not 0.0 <= delete_ratio < 1.0:
        raise ValueError(f"delete_ratio must be in [0, 1), got {delete_ratio}")
    if rng is None:
        rng = np.random.default_rng()
    src, dst = erdos_renyi_edges(n_vertices, n_adds, rng)
    weights = _pair_weights(src, dst, weight_high)
    n_dels = min(n_adds, round(delete_ratio * n_adds / (1.0 - delete_ratio)))
    victims = np.sort(
        rng.choice(n_adds, size=n_dels, replace=False).astype(np.int64)
    )
    idx, is_del = _interleave_deletes(n_adds, victims, rng)
    kinds = np.where(is_del, DELETE, ADD).astype(np.int64)
    return src[idx], dst[idx], weights[idx], kinds


def flash_crowd_events(
    n_vertices: int,
    n_base: int,
    crowd_size: int,
    decay_ratio: float = 0.6,
    rng: np.random.Generator | None = None,
    hub: int = 0,
    weight_high: int = 16,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flash-crowd-then-decay columns ``(src, dst, weights, kinds)``.

    Phase 1: ``n_base`` baseline ER adds.  Phase 2: ``crowd_size`` adds
    all incident to ``hub``.  Phase 3: a ``decay_ratio`` fraction of the
    crowd edges deletes, in random order.  Phases are concatenated, so
    every delete trivially follows its add.
    """
    check_positive("n_vertices", n_vertices)
    check_positive("n_base", n_base)
    check_positive("crowd_size", crowd_size)
    if not 0.0 <= decay_ratio <= 1.0:
        raise ValueError(f"decay_ratio must be in [0, 1], got {decay_ratio}")
    if rng is None:
        rng = np.random.default_rng()
    b_src, b_dst = erdos_renyi_edges(n_vertices, n_base, rng)
    c_dst = rng.integers(0, n_vertices, size=crowd_size, dtype=np.int64)
    c_dst[c_dst == hub] = (hub + 1) % n_vertices
    c_src = np.full(crowd_size, hub, dtype=np.int64)
    n_decay = round(decay_ratio * crowd_size)
    decay = rng.choice(crowd_size, size=n_decay, replace=False).astype(np.int64)
    src = np.concatenate([b_src, c_src, c_src[decay]])
    dst = np.concatenate([b_dst, c_dst, c_dst[decay]])
    weights = _pair_weights(src, dst, weight_high)
    kinds = np.concatenate(
        [
            np.full(n_base + crowd_size, ADD, dtype=np.int64),
            np.full(n_decay, DELETE, dtype=np.int64),
        ]
    )
    return src, dst, weights, kinds


def split_churn_streams(
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
    kinds: np.ndarray,
    n_streams: int,
) -> list[ArrayEventStream]:
    """Deal churn columns into streams by canonical-edge hash.

    Every event on one unordered endpoint pair lands in the same stream
    (in the input order), so an edge's whole add/delete lifecycle is
    totally ordered and the final topology is backend-independent.  No
    pre-randomisation: the input order IS the causal order.
    """
    check_positive("n_streams", n_streams)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    sid = (lo * _PAIR_MIX + hi) % np.int64(n_streams)
    out = []
    for s in range(n_streams):
        sel = sid == s
        out.append(
            ArrayEventStream(
                src[sel],
                dst[sel],
                np.asarray(weights, dtype=np.int64)[sel],
                np.asarray(kinds, dtype=np.int64)[sel],
                stream_id=s,
            )
        )
    return out
