"""Structure-matched synthetic stand-ins for the paper's datasets.

Table I evaluates on four real graphs (Friendster, Twitter, SK2005, the
WDC Webgraph) plus RMAT.  The real datasets are 49 GB - 5.1 TB on disk
and not redistributable here, so each preset generates a *scaled-down
synthetic graph matched in structure class*:

========== ==================== =========================================
Preset     Paper dataset        Stand-in structure
========== ==================== =========================================
friendster Friendster [25]      Barabási–Albert growth (social network:
                                preferential attachment, moderate skew)
twitter    Twitter [20]         RMAT with raised A quadrant (follower
                                graph: celebrity hubs, extreme skew)
sk2005     SK2005 crawl [26]    RMAT with strong diagonal (web crawl:
                                host locality -> community structure)
webgraph   WDC Webgraph [27]    RMAT, Graph500 params, largest default
                                scale (the stress dataset)
rmat       RMAT(SCALE)          Graph500 reference parameters
========== ==================== =========================================

Why this preserves the relevant behaviour: the paper's own conclusion is
that event rate "is more closely tied with the structure of the graph
topology ... rather than the growth of the graph" (§V-E); Fig. 5's
per-dataset differences come from degree skew and locality, which the
presets vary, not from absolute size.  Paper-scale vertex/edge counts are
retained as metadata so the Table I bench can print paper-vs-stand-in
rows side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.generators.ba import barabasi_albert_edges
from repro.generators.rmat import rmat_edges


@dataclass(frozen=True)
class DatasetPreset:
    """One Table-I dataset and its synthetic stand-in recipe."""

    name: str
    paper_name: str
    paper_vertices: int
    paper_edges: int
    paper_disk: str
    kind: str  # "rmat" | "ba"
    params: tuple  # generator-specific
    default_scale: int  # log2 of stand-in vertex universe

    def describe(self) -> str:
        return (
            f"{self.name}: stand-in for {self.paper_name} "
            f"({self.paper_vertices:,} V / {self.paper_edges:,} E in the paper), "
            f"{self.kind} generator at default scale {self.default_scale}"
        )


# (a, b, c, noise) for rmat presets; (m,) for ba presets.
DATASET_PRESETS: dict[str, DatasetPreset] = {
    "friendster": DatasetPreset(
        name="friendster",
        paper_name="Friendster [25]",
        paper_vertices=65_608_366,
        paper_edges=3_612_134_270,
        paper_disk="61 GB",
        kind="ba",
        params=(8,),
        default_scale=12,
    ),
    "twitter": DatasetPreset(
        name="twitter",
        paper_name="Twitter [20]",
        paper_vertices=41_652_230,
        paper_edges=2_936_729_768,
        paper_disk="49 GB",
        kind="rmat",
        params=(0.62, 0.19, 0.14, 0.05),
        default_scale=12,
    ),
    "sk2005": DatasetPreset(
        name="sk2005",
        paper_name="SK2005 [26]",
        paper_vertices=50_636_059,
        paper_edges=3_860_585_896,
        paper_disk="65 GB",
        kind="rmat",
        params=(0.66, 0.12, 0.12, 0.05),
        default_scale=12,
    ),
    "webgraph": DatasetPreset(
        name="webgraph",
        paper_name="Webgraph [27]",
        paper_vertices=3_563_602_686,
        paper_edges=257_473_828_334,
        paper_disk="5.1 TB",
        kind="rmat",
        params=(0.57, 0.19, 0.19, 0.05),
        default_scale=13,
    ),
}


def generate_preset(
    name: str,
    rng: np.random.Generator,
    scale: int | None = None,
    edge_factor: int = 16,
) -> tuple[np.ndarray, np.ndarray, DatasetPreset]:
    """Generate a preset's edge list: ``(src, dst, preset_metadata)``.

    ``scale`` overrides the preset's default log2-vertex-universe size;
    ``edge_factor`` applies to RMAT presets (BA presets derive edge count
    from their attachment parameter).
    """
    try:
        preset = DATASET_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; available: {sorted(DATASET_PRESETS)}"
        ) from None
    use_scale = preset.default_scale if scale is None else int(scale)
    if preset.kind == "ba":
        (m,) = preset.params
        src, dst = barabasi_albert_edges(1 << use_scale, m, rng=rng)
    else:
        a, b, c, noise = preset.params
        src, dst = rmat_edges(
            use_scale, edge_factor=edge_factor, rng=rng, a=a, b=b, c=c, noise=noise
        )
    return src, dst, preset
