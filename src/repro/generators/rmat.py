"""Vectorised Graph500-style RMAT edge generator.

RMAT recursively subdivides the adjacency matrix into quadrants with
probabilities (A, B, C, D) and samples one quadrant per bit level; the
Graph500 reference parameters (A=0.57, B=0.19, C=0.19, D=0.05) produce
the skewed, scale-free streams the paper uses for its scaling studies
("RMAT graphs (Graph500 parameters) have a 16x undirected (32x directed)
edge factor", Table I).

The implementation is fully vectorised over edges: for each of ``scale``
bit levels it draws one uniform per edge and splits it against the
cumulative quadrant probabilities, setting one source bit and one
destination bit — no Python-level loop over edges.  Per-level noise
(Graph500's parameter smoothing) is supported to avoid the artificial
self-similarity of pure RMAT.
"""

from __future__ import annotations

import numpy as np

from repro.util.validate import check_in_range, check_positive

GRAPH500_A = 0.57
GRAPH500_B = 0.19
GRAPH500_C = 0.19
GRAPH500_D = 0.05


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    rng: np.random.Generator | None = None,
    a: float = GRAPH500_A,
    b: float = GRAPH500_B,
    c: float = GRAPH500_C,
    noise: float = 0.0,
    scramble: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``edge_factor * 2**scale`` RMAT edges over ``2**scale`` IDs.

    Parameters
    ----------
    scale:
        log2 of the vertex-ID universe (Graph500 SCALE).
    edge_factor:
        Edges per vertex (Graph500 uses 16 undirected).
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c``.
    noise:
        Per-level multiplicative jitter in ``[0, 1)`` applied to the
        quadrant split, as in the Graph500 reference implementation.
    scramble:
        Permute vertex IDs afterwards so ID order does not encode degree
        (Graph500 "scrambles" IDs; we use a seeded permutation).

    Returns
    -------
    (src, dst):
        Parallel int64 arrays of length ``edge_factor * 2**scale``.
        Self-loops and duplicates are possible, as in Graph500 output.
    """
    check_positive("scale", scale)
    check_positive("edge_factor", edge_factor)
    d = 1.0 - a - b - c
    for name, val in (("a", a), ("b", b), ("c", c), ("d", d)):
        check_in_range(name, val, 0.0, 1.0)
    check_in_range("noise", noise, 0.0, 0.99)
    if rng is None:
        rng = np.random.default_rng()

    n_edges = edge_factor * (1 << scale)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)

    for level in range(scale):
        if noise > 0.0:
            # Graph500-style symmetric jitter, renormalised each level.
            jitter = 1.0 + noise * (2.0 * rng.random(4) - 1.0)
            pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
            total = pa + pb + pc + pd
            pa, pb, pc = pa / total, pb / total, pc / total
        else:
            pa, pb, pc = a, b, c
        u = rng.random(n_edges)
        # Quadrants: A=(0,0) B=(0,1) C=(1,0) D=(1,1); split u against the
        # cumulative probabilities to extract one src bit and one dst bit.
        src_bit = u >= (pa + pb)
        dst_bit = (u >= pa) & (u < pa + pb) | (u >= pa + pb + pc)
        bit = np.int64(1 << (scale - 1 - level))
        src += bit * src_bit
        dst += bit * dst_bit

    if scramble:
        perm = rng.permutation(1 << scale).astype(np.int64)
        src = perm[src]
        dst = perm[dst]
    return src, dst
