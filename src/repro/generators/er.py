"""Erdős–Rényi (uniform random) edge generator.

The structureless control: no degree skew, no locality.  Used by tests
(where uniform randomness is the easiest case to reason about) and as the
flat-degree contrast in the partitioning ablation — consistent hashing
balances edges on ER streams but not on power-law streams, which is
exactly the §III-C caveat.
"""

from __future__ import annotations

import numpy as np

from repro.util.validate import check_positive


def erdos_renyi_edges(
    n: int,
    n_edges: int,
    rng: np.random.Generator | None = None,
    allow_self_loops: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n_edges`` uniform directed edges over ``n`` vertices.

    Sampling is with replacement (the G(n, M)-with-multiplicity model):
    duplicates are possible, matching the multi-edge streams the dynamic
    engine must tolerate.  Self-loops are rejected and resampled unless
    ``allow_self_loops``.
    """
    check_positive("n", n)
    check_positive("n_edges", n_edges)
    if n < 2 and not allow_self_loops:
        raise ValueError("need n >= 2 to sample loop-free edges")
    if rng is None:
        rng = np.random.default_rng()

    src = rng.integers(0, n, size=n_edges, dtype=np.int64)
    dst = rng.integers(0, n, size=n_edges, dtype=np.int64)
    if not allow_self_loops:
        loops = src == dst
        while loops.any():
            dst[loops] = rng.integers(0, n, size=int(loops.sum()), dtype=np.int64)
            loops = src == dst
    return src, dst
