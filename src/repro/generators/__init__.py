"""Synthetic graph and workload generators.

The paper evaluates on RMAT streams (Graph500 parameters) and four large
real-world graphs (Table I).  The real datasets are not redistributable
at laptop scale, so :mod:`repro.generators.presets` provides
structure-matched synthetic stand-ins (documented per-preset), while
:mod:`repro.generators.rmat` is a faithful vectorised Graph500 RMAT
generator used for the scaling studies (Figs. 4 and 6).
"""

from repro.generators.ba import barabasi_albert_edges
from repro.generators.churn import (
    churn_events,
    flash_crowd_events,
    split_churn_streams,
)
from repro.generators.er import erdos_renyi_edges
from repro.generators.presets import (
    DATASET_PRESETS,
    DatasetPreset,
    generate_preset,
)
from repro.generators.rmat import rmat_edges
from repro.generators.weights import uniform_weights

__all__ = [
    "barabasi_albert_edges",
    "churn_events",
    "erdos_renyi_edges",
    "flash_crowd_events",
    "split_churn_streams",
    "DATASET_PRESETS",
    "DatasetPreset",
    "generate_preset",
    "rmat_edges",
    "uniform_weights",
]
