"""Verification and measurement helpers.

:mod:`repro.analytics.verify` checks the REMO convergence guarantee —
after quiescence, dynamic state must equal the static algorithm's answer
on the final topology, for any interleaving (§II-D); the test suite
leans on it heavily.  :mod:`repro.analytics.metrics` turns engine
counters into the events/s-style reports the benchmark harness prints.
"""

from repro.analytics.graphstats import (
    ComponentStats,
    DegreeStats,
    component_stats,
    degree_stats,
)
from repro.analytics.metrics import (
    ThroughputReport,
    parallel_throughput_report,
    throughput_report,
)
from repro.analytics.verify import (
    csr_from_engine,
    verify_bfs,
    verify_cc,
    verify_sssp,
    verify_st,
    verify_widest,
)

__all__ = [
    "ComponentStats",
    "DegreeStats",
    "component_stats",
    "degree_stats",
    "ThroughputReport",
    "parallel_throughput_report",
    "throughput_report",
    "csr_from_engine",
    "verify_bfs",
    "verify_cc",
    "verify_sssp",
    "verify_st",
    "verify_widest",
]
