"""Throughput and cost reporting for simulated runs.

Turns a finished engine's counters and virtual clocks into the metrics
the paper's evaluation reports: topology events per (virtual) second,
message volumes, per-rank utilisation, and the construction-vs-algorithm
cost split.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.util.timers import format_rate, format_seconds


@dataclass(frozen=True)
class ThroughputReport:
    """Summary of one dynamic run."""

    n_ranks: int
    source_events: int
    makespan: float  # virtual seconds
    visits: int
    edge_inserts: int
    edge_deletes: int
    messages_local: int
    messages_remote: int
    control_messages: int
    busy_time_total: float
    updates_squashed: int = 0  # UPDATEs coalesced in visitor queues (§II-D)
    batch_sends: int = 0  # send_many fan-out batches emitted
    bulk_chunks: int = 0  # bulk-ingest chunks drained (fast path)
    bulk_events: int = 0  # events ingested via the bulk path
    fallback_flushes: int = 0  # bulk de-optimizations to per-event
    bulk_enabled: bool = False  # run was configured with bulk_ingest=True
    wall_seconds: float | None = None
    #: Wire/ring-health counters from the mp backend (ring_stalls,
    #: ring_pad_bytes, overflow_hwm_records, torn retries, ...); None
    #: for DES runs, which have no physical wire.
    wire: dict | None = None

    @property
    def events_per_second(self) -> float:
        """Topology events per virtual second — the headline metric."""
        return self.source_events / self.makespan if self.makespan > 0 else 0.0

    @property
    def mean_utilisation(self) -> float:
        """Average fraction of the makespan each rank spent busy."""
        if self.makespan <= 0 or self.n_ranks == 0:
            return 0.0
        return self.busy_time_total / (self.makespan * self.n_ranks)

    @property
    def visits_per_event(self) -> float:
        """Algorithm work amplification: callbacks per topology event."""
        return self.visits / self.source_events if self.source_events else 0.0

    @property
    def squash_fraction(self) -> float:
        """Fraction of emitted data-lane messages that were coalesced
        away in a visitor queue instead of being dispatched (§II-D)."""
        emitted = self.messages_local + self.messages_remote + self.updates_squashed
        return self.updates_squashed / emitted if emitted else 0.0

    def summary(self) -> str:
        lines = [
            f"ranks={self.n_ranks} events={self.source_events:,} "
            f"makespan={format_seconds(self.makespan)} "
            f"rate={format_rate(self.source_events, self.makespan)}",
            f"  visits={self.visits:,} ({self.visits_per_event:.2f}/event) "
            f"inserts={self.edge_inserts:,} deletes={self.edge_deletes:,}",
            f"  msgs local={self.messages_local:,} remote={self.messages_remote:,} "
            f"ctrl={self.control_messages:,} util={self.mean_utilisation:.1%}",
            f"  coalescing: updates_squashed={self.updates_squashed:,} "
            f"({self.squash_fraction:.1%} of emissions) "
            f"batch_sends={self.batch_sends:,}",
        ]
        # The bulk line always prints for a bulk-configured run, even
        # with all counters at 0: "the fast path never engaged" is
        # exactly what the user needs to see then.
        if (
            self.bulk_enabled
            or self.bulk_chunks
            or self.bulk_events
            or self.fallback_flushes
        ):
            lines.append(
                f"  bulk ingest: chunks={self.bulk_chunks:,} "
                f"events={self.bulk_events:,} "
                f"fallback_flushes={self.fallback_flushes:,}"
            )
        if self.wall_seconds is not None:
            lines.append(
                f"  simulator wall time: {format_seconds(self.wall_seconds)}"
            )
        if self.wire is not None and any(
            k.startswith(("ring_", "overflow_")) for k in self.wire
        ):
            lines.append(
                f"  rings: stalls={self.wire.get('ring_stalls', 0):,} "
                f"pad_bytes={self.wire.get('ring_pad_bytes', 0):,} "
                f"overflow_hwm={self.wire.get('overflow_hwm_records', 0):,} "
                f"torn_retries={self.wire.get('ring_torn_retries', 0):,}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Every field plus the derived metrics, JSON-ready.  The
        benchmark harness and ``repro run --json`` both emit exactly
        this, so the machine-readable artifact can never drift from the
        report's fields."""
        d = asdict(self)
        d["events_per_second"] = self.events_per_second
        d["mean_utilisation"] = self.mean_utilisation
        d["visits_per_event"] = self.visits_per_event
        d["squash_fraction"] = self.squash_fraction
        return d


def throughput_report(engine, wall_seconds: float | None = None) -> ThroughputReport:
    """Build a :class:`ThroughputReport` from a (finished) engine."""
    total = engine.total_counters()
    return ThroughputReport(
        n_ranks=engine.config.n_ranks,
        source_events=total.source_events,
        makespan=engine.loop.max_time(),
        visits=total.visits,
        edge_inserts=total.edge_inserts,
        edge_deletes=total.edge_deletes,
        messages_local=total.messages_sent_local,
        messages_remote=total.messages_sent_remote,
        control_messages=total.control_messages,
        busy_time_total=total.busy_time,
        updates_squashed=total.updates_squashed,
        batch_sends=total.batch_sends,
        bulk_chunks=total.bulk_chunks,
        bulk_events=total.bulk_events,
        fallback_flushes=total.fallback_flushes,
        bulk_enabled=bool(engine.config.bulk_ingest),
        wall_seconds=wall_seconds,
    )


def parallel_throughput_report(result) -> ThroughputReport:
    """Build a :class:`ThroughputReport` from a
    :class:`~repro.parallel.runner.ParallelResult`.

    The mp backend has no virtual clock, so ``makespan`` is the wall
    time (``events_per_second`` then matches
    ``result.events_per_second``), and the wire/ring-health counters
    land in :attr:`ThroughputReport.wire` — the post-mortem view of shm
    backpressure the DES never has.
    """
    total = result.counters
    return ThroughputReport(
        n_ranks=result.n_ranks,
        source_events=total.source_events,
        makespan=result.wall_seconds,
        visits=total.visits,
        edge_inserts=total.edge_inserts,
        edge_deletes=total.edge_deletes,
        messages_local=total.messages_sent_local,
        messages_remote=result.wire.get("wire_sent", 0),
        control_messages=total.control_messages,
        busy_time_total=total.busy_time,
        updates_squashed=total.updates_squashed
        + result.wire.get("outbuf_squashed", 0)
        + result.wire.get("inbox_squashed", 0),
        batch_sends=result.wire.get("batch_sends", 0),
        wall_seconds=result.wall_seconds,
        wire=dict(result.wire),
    )
