"""Dynamic-vs-static equivalence checking.

The central REMO claim (§II-D): asynchronous, concurrent event
propagation "does not impact the correctness of the above algorithms" —
after quiescence the dynamically maintained state equals the static
algorithm's answer on the final topology, for *any* legal interleaving.
These checkers make that claim executable; the property-based tests
drive them across random graphs, stream splits, and rank counts.

Conventions: the dynamic engine only materialises values for vertices
it has touched; a vertex absent from the dynamic state, or carrying
0/INF, counts as "unreached", and must then be unreached statically too.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.algorithms.base import INF
from repro.staticalgs.algorithms import (
    static_bfs,
    static_cc,
    static_sssp,
    static_st_connectivity,
)
from repro.storage.csr import CSRGraph


def csr_from_engine(engine) -> CSRGraph:
    """Materialise the engine's current topology as a CSR graph.

    The engine stores each undirected input edge at both endpoints, so
    no symmetrization is applied here.
    """
    srcs, dsts, weights = [], [], []
    for s, d, w in engine.edges():
        srcs.append(s)
        dsts.append(d)
        weights.append(w)
    return CSRGraph.from_edges(
        np.array(srcs, dtype=np.int64),
        np.array(dsts, dtype=np.int64),
        np.array(weights, dtype=np.int64),
    )


def _compare(
    dynamic: dict[int, Any],
    static: dict[int, Any],
    unreached: Callable[[Any], bool],
) -> list[str]:
    """Generic comparison; returns a list of mismatch descriptions."""
    mismatches = []
    for vid, expect in static.items():
        got = dynamic.get(vid, 0)
        if unreached(got):
            mismatches.append(f"vertex {vid}: static={expect!r} but dynamic unreached")
        elif got != expect:
            mismatches.append(f"vertex {vid}: static={expect!r} dynamic={got!r}")
    for vid, got in dynamic.items():
        if not unreached(got) and vid not in static:
            mismatches.append(f"vertex {vid}: dynamic={got!r} but static unreached")
    return mismatches


def verify_bfs(
    engine,
    prog: int | str,
    source: int,
    value_of: Callable[[Any], int] | None = None,
    state: dict[int, Any] | None = None,
) -> list[str]:
    """Check a quiesced BFS program against static BFS on the final
    topology; returns mismatch descriptions (empty = verified).

    ``value_of`` extracts a level from a stored value (used by the
    generational programs whose values are ``(gen, dist, parent)``);
    ``state`` substitutes a collected snapshot for the live state.
    """
    graph = csr_from_engine(engine)
    expect, _ = static_bfs(graph, source)
    raw = engine.state(prog) if state is None else state
    dynamic = _extract(raw, value_of)
    return _compare(dynamic, expect, lambda v: v == 0 or v >= INF)


def verify_sssp(
    engine,
    prog: int | str,
    source: int,
    value_of: Callable[[Any], int] | None = None,
    state: dict[int, Any] | None = None,
) -> list[str]:
    """Check a quiesced SSSP program against Dijkstra on the final
    topology (same contract as :func:`verify_bfs`)."""
    graph = csr_from_engine(engine)
    expect, _ = static_sssp(graph, source)
    raw = engine.state(prog) if state is None else state
    dynamic = _extract(raw, value_of)
    return _compare(dynamic, expect, lambda v: v == 0 or v >= INF)


def verify_cc(
    engine,
    prog: int | str,
    value_of: Callable[[Any], int] | None = None,
    state: dict[int, Any] | None = None,
) -> list[str]:
    """Check a quiesced CC program: every vertex's label must be the max
    component hash of its component in the final topology."""
    graph = csr_from_engine(engine)
    expect, _ = static_cc(graph)
    raw = engine.state(prog) if state is None else state
    dynamic = _extract(raw, value_of)
    mismatches = []
    for vid, want in expect.items():
        got = dynamic.get(vid, 0)
        if got != want:
            mismatches.append(f"vertex {vid}: static={want} dynamic={got}")
    from repro.algorithms.cc import component_label

    for vid, got in dynamic.items():
        if got == 0 or vid in expect:
            continue
        # Labeled vertex absent from the CSR: legal only if deletes left
        # it isolated, in which case it is its own singleton component.
        rank = engine.partitioner.owner(vid)
        if engine.stores[rank].degree(vid) != 0:
            mismatches.append(f"vertex {vid}: labeled but not in final graph")
        elif got != component_label(vid):
            mismatches.append(
                f"isolated vertex {vid}: label {got} != own hash "
                f"{component_label(vid)}"
            )
    return mismatches


def verify_st(
    engine,
    prog: int | str,
    sources: list[int],
    value_of: Callable[[Any], int] | None = None,
    state: dict[int, Any] | None = None,
) -> list[str]:
    """Check a quiesced Multi S-T program against per-source BFS masks.

    ``sources`` must be in *bit order* (the order they were registered
    with :meth:`MultiSTConnectivity.register_source`).  ``value_of``
    extracts a plain bitmap from a stored value (the generational
    program stores ``(gen, mask)``).
    """
    graph = csr_from_engine(engine)
    expect, _ = static_st_connectivity(graph, sources)
    raw = engine.state(prog) if state is None else state
    raw = _extract(raw, value_of)
    # Source vertices trivially reach themselves; the dynamic side only
    # materialises that once the init() was processed, which quiescence
    # guarantees.  Masks of 0 mean "reaches no source".
    mismatches = []
    vertices = set(expect) | set(raw)
    for vid in vertices:
        got = raw.get(vid, 0)
        want = expect.get(vid, 0)
        if got != want:
            mismatches.append(f"vertex {vid}: static mask={want:b} dynamic={got:b}")
    return mismatches


def verify_widest(
    engine,
    prog: int | str,
    source: int,
    value_of: Callable[[Any], int] | None = None,
    state: dict[int, Any] | None = None,
) -> list[str]:
    """Check a quiesced Widest Path program against the static max-min
    Dijkstra oracle on the final topology.  0 = unreached (capacities
    are >= 1, the source holds CAP_INF).  ``value_of`` extracts a plain
    capacity from a stored value (the generational program stores
    ``(epoch, cap, parent)``)."""
    from repro.algorithms.widest_path import static_widest_path

    graph = csr_from_engine(engine)
    expect = static_widest_path(graph, source)
    raw = engine.state(prog) if state is None else state
    raw = _extract(raw, value_of)
    return _compare(raw, expect, lambda v: v == 0)


def _extract(
    raw: dict[int, Any], value_of: Callable[[Any], int] | None
) -> dict[int, int]:
    if value_of is None:
        return raw
    return {vid: (0 if v == 0 else value_of(v)) for vid, v in raw.items()}
