"""Workload characterisation: degree and structure statistics.

§III's challenges are all structural ("highly heterogeneous node degree
distribution", "power-law", "scale-free"), and §V-D attributes the
per-dataset performance differences to "the resulting structure and
topology".  This module quantifies that structure so benches and users
can relate event rates to the workload's shape:

* degree distribution summary (mean/median/max, skew ratio, Gini);
* an approximate power-law tail exponent (rank-size regression);
* component census via union-find.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DegreeStats:
    """Summary of an (undirected) degree distribution."""

    n_vertices: int
    n_edges: int
    mean: float
    median: float
    max: int
    skew: float  # max / mean — the hub dominance the engine feels
    gini: float  # 0 = perfectly even, -> 1 = one hub owns everything
    tail_exponent: float | None  # approximate power-law alpha, if fit

    def describe(self) -> str:
        alpha = f"{self.tail_exponent:.2f}" if self.tail_exponent else "n/a"
        return (
            f"V={self.n_vertices:,} E={self.n_edges:,} "
            f"deg mean={self.mean:.1f} median={self.median:.0f} max={self.max} "
            f"(skew {self.skew:.0f}x, gini {self.gini:.2f}, alpha~{alpha})"
        )


def degree_stats(src: np.ndarray, dst: np.ndarray) -> DegreeStats:
    """Compute :class:`DegreeStats` from an edge list (undirected view)."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if len(src) == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0, 0.0, 0.0, None)
    endpoints = np.concatenate([src, dst])
    _ids, degs = np.unique(endpoints, return_counts=True)
    degs = degs.astype(np.float64)
    mean = float(degs.mean())
    # Gini via the sorted-cumulative formulation.
    sorted_degs = np.sort(degs)
    n = len(sorted_degs)
    cum = np.cumsum(sorted_degs)
    gini = float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)
    return DegreeStats(
        n_vertices=n,
        n_edges=len(src),
        mean=mean,
        median=float(np.median(degs)),
        max=int(degs.max()),
        skew=float(degs.max() / mean) if mean > 0 else 0.0,
        gini=gini,
        tail_exponent=_tail_exponent(degs),
    )


def _tail_exponent(degs: np.ndarray, top_fraction: float = 0.1) -> float | None:
    """Approximate power-law exponent from a rank-size log-log fit.

    Crude but serviceable for characterisation (not a statistical
    claim): fits ``log(degree) ~ -1/(alpha-1) * log(rank)`` over the top
    ``top_fraction`` of vertices.  Returns None when there is too little
    tail to fit.
    """
    tail = np.sort(degs)[::-1]
    k = max(int(len(tail) * top_fraction), 10)
    tail = tail[: min(k, len(tail))]
    tail = tail[tail > 0]
    if len(tail) < 10 or tail[0] == tail[-1]:
        return None
    ranks = np.arange(1, len(tail) + 1, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(tail), 1)
    if slope >= 0:
        return None
    return float(1.0 - 1.0 / slope)


@dataclass(frozen=True)
class ComponentStats:
    """Component census of an edge list (undirected view)."""

    n_components: int
    largest: int
    isolated_free_vertices: int  # vertices in the edge list, all in comps

    @property
    def largest_fraction(self) -> float:
        total = self.isolated_free_vertices
        return self.largest / total if total else 0.0


def component_stats(src: np.ndarray, dst: np.ndarray) -> ComponentStats:
    """Union-find census over the undirected closure of the edge list."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if len(src) == 0:
        return ComponentStats(0, 0, 0)
    ids = np.unique(np.concatenate([src, dst]))
    index = {int(v): i for i, v in enumerate(ids)}
    parent = np.arange(len(ids), dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    for s, d in zip(src, dst):
        a, b = find(index[int(s)]), find(index[int(d)])
        if a != b:
            parent[a] = b
    roots = np.array([find(i) for i in range(len(ids))])
    _uniq, counts = np.unique(roots, return_counts=True)
    return ComponentStats(
        n_components=len(counts),
        largest=int(counts.max()),
        isolated_free_vertices=len(ids),
    )
