"""Experiment report assembly.

Collects the per-figure tables the benchmark suite writes to
``benchmarks/out/`` into a single markdown report, ordered to follow
the paper's evaluation section, with a provenance header.  Used by
maintainers to refresh the measured blocks quoted in EXPERIMENTS.md
after a benchmark run:

    python -m repro.analytics.report benchmarks/out report.md
"""

from __future__ import annotations

import sys
from pathlib import Path

# Presentation order: paper figures first, ablations after.
SECTION_ORDER = [
    ("table1", "Table I — graphs used in experiments"),
    ("fig3", "Figure 3 — static vs. dynamic strategies"),
    ("fig4", "Figure 4 — global state collection vs. static recompute"),
    ("fig5", "Figure 5 — dynamic algorithm queries on real-graph stand-ins"),
    ("fig6", "Figure 6 — strong and weak scaling (incremental BFS)"),
    ("fig7", "Figure 7 — Multi S-T source scaling"),
    ("ablation_robinhood", "Ablation — Robin Hood map probe profile"),
    ("ablation_degaware", "Ablation — degree-aware promotion threshold"),
    ("ablation_partition", "Ablation — partition balance"),
    ("ablation_partition_rate", "Ablation — hash-draw rate sensitivity"),
    ("ablation_snapshot", "Ablation — versioned vs stop-the-world snapshots"),
    ("ablation_flowcontrol", "Ablation — bounded visitor queues"),
    ("ablation_nvram", "Ablation — NVRAM spill budget"),
    ("ablation_offered_load", "Ablation — latency vs offered load"),
    ("ablation_batching", "Ablation — continuous engine vs batching"),
]


def assemble_report(out_dir: str | Path) -> str:
    """Build the markdown report from the tables in ``out_dir``.

    Tables the benchmark run did not produce are listed as missing
    rather than silently skipped, so a partial run is visible.
    """
    out_dir = Path(out_dir)
    lines = [
        "# Benchmark report",
        "",
        f"Assembled from `{out_dir}` "
        "(regenerate with `pytest benchmarks/ --benchmark-only`).",
        "",
    ]
    known = {name for name, _ in SECTION_ORDER}
    missing = []
    for name, title in SECTION_ORDER:
        path = out_dir / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    # Any extra tables a new bench added but this list does not know.
    extras = sorted(
        p.stem for p in out_dir.glob("*.txt") if p.stem not in known
    )
    for name in extras:
        lines.append(f"## {name} (unlisted)")
        lines.append("")
        lines.append("```")
        lines.append((out_dir / f"{name}.txt").read_text().rstrip())
        lines.append("```")
        lines.append("")
    if missing:
        lines.append("## Missing tables")
        lines.append("")
        for name in missing:
            lines.append(f"- `{name}` (bench not run)")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) not in (1, 2):
        print("usage: python -m repro.analytics.report OUT_DIR [REPORT.md]")
        return 2
    report = assemble_report(args[0])
    if len(args) == 2:
        Path(args[1]).write_text(report)
        print(f"wrote {args[1]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
