"""An open-addressing hash map with Robin Hood displacement.

DegAwareRHH [18] stores adjacency data in "open addressing and compact
hash tables with Robin Hood Hashing", which keeps the *variance* of probe
distances small: on insertion, a key that has probed further than the
resident key steals the slot ("takes from the rich"), and the resident is
re-inserted further along.  Deletion uses backward shifting, so no
tombstones accumulate and lookups can terminate early at the first slot
whose displacement is smaller than the probe distance.

The map stores ``int64 -> int64`` in three parallel NumPy arrays (keys,
values, 8-bit displacement+occupancy metadata).  Compared with a Python
``dict`` this is a real reproduction of the data-structure behaviour the
paper measures — probe distances, displacement work, load-factor-driven
resizes — all of which are surfaced as counters so the storage ablation
bench can report them, and which feed the simulator's cost model as a
stand-in for the out-of-core access counts the paper optimises.

Keys may be any int64 value (including negatives); there is no reserved
"empty key" because occupancy lives in the metadata byte.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.util.hashing import fibonacci_hash, mix64
from repro.util.validate import check_in_range, check_power_of_two

_EMPTY = np.uint8(0xFF)  # metadata byte marking an unoccupied slot
_MAX_DISP = 0xFE  # displacements are capped; hitting the cap forces a resize


class RobinHoodMap:
    """Open-addressing int64→int64 map with Robin Hood displacement.

    Parameters
    ----------
    initial_capacity:
        Starting table size; rounded up to a power of two, minimum 8.
    max_load_factor:
        Resize threshold in ``(0, 1)``; DegAwareRHH-style compactness
        favours high load factors (default 0.85), which Robin Hood
        tolerates because probe-length variance stays low.

    Notes
    -----
    Instrumentation counters (``probe_count``, ``displacement_count``,
    ``resize_count``) accumulate over the map's lifetime and are read by
    the ablation benches; they are not reset by ``clear()`` resizes.
    """

    __slots__ = (
        "_keys",
        "_values",
        "_meta",
        "_bits",
        "_mask",
        "_size",
        "_max_load_factor",
        "probe_count",
        "displacement_count",
        "resize_count",
    )

    def __init__(self, initial_capacity: int = 8, max_load_factor: float = 0.85):
        cap = 8
        while cap < initial_capacity:
            cap <<= 1
        check_power_of_two("initial_capacity (rounded)", cap)
        check_in_range("max_load_factor", max_load_factor, 0.1, 0.97)
        self._allocate(cap)
        self._size = 0
        self._max_load_factor = float(max_load_factor)
        self.probe_count = 0
        self.displacement_count = 0
        self.resize_count = 0

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _allocate(self, capacity: int) -> None:
        self._keys = np.zeros(capacity, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._meta = np.full(capacity, _EMPTY, dtype=np.uint8)
        self._bits = int(capacity).bit_length() - 1
        self._mask = capacity - 1

    def _home(self, key: int) -> int:
        return fibonacci_hash(mix64(key), self._bits)

    def _resize(self, new_capacity: int) -> None:
        old_keys, old_values, old_meta = self._keys, self._values, self._meta
        self._allocate(new_capacity)
        self._size = 0
        self.resize_count += 1
        occupied = np.nonzero(old_meta != _EMPTY)[0]
        for idx in occupied:
            self._insert(int(old_keys[idx]), int(old_values[idx]))

    def _grow_if_needed(self) -> None:
        if (self._size + 1) > self._max_load_factor * len(self._keys):
            self._resize(len(self._keys) * 2)

    def _insert(self, key: int, value: int) -> bool:
        """Core Robin Hood insertion; returns True iff the key was new."""
        keys, values, meta, mask = self._keys, self._values, self._meta, self._mask
        idx = self._home(key)
        disp = 0
        while True:
            self.probe_count += 1
            slot_meta = meta[idx]
            if slot_meta == _EMPTY:
                keys[idx] = key
                values[idx] = value
                meta[idx] = disp
                self._size += 1
                return True
            if keys[idx] == key:
                values[idx] = value
                return False
            if slot_meta < disp:
                # Robin Hood: the resident is "richer" (closer to home);
                # swap it out and keep walking with the evicted entry.
                self.displacement_count += 1
                key, keys[idx] = int(keys[idx]), key
                value, values[idx] = int(values[idx]), value
                disp, meta[idx] = int(slot_meta), disp
            disp += 1
            if disp >= _MAX_DISP:
                self._resize(len(self._keys) * 2)
                return self._insert(key, value)
            idx = (idx + 1) & mask

    def _find_slot(self, key: int) -> int:
        """Return the slot index holding ``key``, or -1 if absent."""
        keys, meta, mask = self._keys, self._meta, self._mask
        idx = self._home(key)
        disp = 0
        while True:
            self.probe_count += 1
            slot_meta = meta[idx]
            # Early termination: if the resident is closer to home than our
            # probe distance, Robin Hood ordering guarantees key is absent.
            if slot_meta == _EMPTY or slot_meta < disp:
                return -1
            if keys[idx] == key:
                return idx
            disp += 1
            idx = (idx + 1) & mask

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def put(self, key: int, value: int) -> bool:
        """Insert or overwrite; returns True iff ``key`` was not present."""
        self._grow_if_needed()
        return self._insert(int(key), int(value))

    def get(self, key: int, default: int | None = None) -> int | None:
        """Return the value for ``key``, or ``default`` if absent."""
        idx = self._find_slot(int(key))
        if idx < 0:
            return default
        return int(self._values[idx])

    def delete(self, key: int) -> bool:
        """Remove ``key`` using backward-shift deletion; True iff removed."""
        idx = self._find_slot(int(key))
        if idx < 0:
            return False
        keys, values, meta, mask = self._keys, self._values, self._meta, self._mask
        nxt = (idx + 1) & mask
        # Shift the following cluster back one slot until we hit an empty
        # slot or an entry already sitting at its home position.
        while meta[nxt] != _EMPTY and meta[nxt] > 0:
            keys[idx] = keys[nxt]
            values[idx] = values[nxt]
            meta[idx] = meta[nxt] - 1
            idx = nxt
            nxt = (nxt + 1) & mask
        meta[idx] = _EMPTY
        self._size -= 1
        return True

    def __contains__(self, key: int) -> bool:
        return self._find_slot(int(key)) >= 0

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, key: int) -> int:
        idx = self._find_slot(int(key))
        if idx < 0:
            raise KeyError(key)
        return int(self._values[idx])

    def __setitem__(self, key: int, value: int) -> None:
        self.put(key, value)

    def items(self) -> Iterator[tuple[int, int]]:
        """Iterate (key, value) pairs in table order.

        Mutation during iteration is undefined behaviour (as for dict).
        """
        occupied = np.nonzero(self._meta != _EMPTY)[0]
        keys, values = self._keys, self._values
        for idx in occupied:
            yield int(keys[idx]), int(values[idx])

    def keys(self) -> Iterator[int]:
        for k, _ in self.items():
            yield k

    @property
    def capacity(self) -> int:
        return len(self._keys)

    @property
    def load_factor(self) -> float:
        return self._size / len(self._keys)

    def mean_probe_distance(self) -> float:
        """Average displacement of resident entries (0 = everyone at home)."""
        if self._size == 0:
            return 0.0
        occ = self._meta != _EMPTY
        return float(self._meta[occ].astype(np.float64).mean())

    def max_probe_distance(self) -> int:
        """Largest displacement of any resident entry."""
        occ = self._meta != _EMPTY
        if not occ.any():
            return 0
        return int(self._meta[occ].max())

    def check_invariants(self) -> None:
        """Verify the Robin Hood layout invariants (used by tests).

        * every resident's recorded displacement matches its actual
          distance from home;
        * along any probe cluster, displacement increases by at most one
          per step (the Robin Hood ordering property).
        """
        meta, keys, mask = self._meta, self._keys, self._mask
        n_occ = 0
        for idx in range(len(keys)):
            if meta[idx] == _EMPTY:
                continue
            n_occ += 1
            home = self._home(int(keys[idx]))
            actual = (idx - home) & mask
            if actual != int(meta[idx]):
                raise AssertionError(
                    f"slot {idx}: recorded displacement {int(meta[idx])} != actual {actual}"
                )
            prev = (idx - 1) & mask
            if meta[prev] == _EMPTY:
                if meta[idx] != 0:
                    raise AssertionError(
                        f"slot {idx}: displacement {int(meta[idx])} follows an empty slot"
                    )
            elif int(meta[idx]) > int(meta[prev]) + 1:
                raise AssertionError(
                    f"slot {idx}: displacement jumps {int(meta[prev])} -> {int(meta[idx])}"
                )
        if n_occ != self._size:
            raise AssertionError(f"size {self._size} != occupied slots {n_occ}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RobinHoodMap(size={self._size}, capacity={self.capacity}, "
            f"load={self.load_factor:.2f})"
        )
