"""Graph storage substrates.

Three stores, mirroring the paper's storage story (§III-B, §V-B):

* :class:`repro.storage.robin_hood.RobinHoodMap` — an open-addressing
  int64→int64 hash map with Robin Hood displacement, the building block
  of DegAwareRHH [Iwabuchi et al., GABB'16].
* :class:`repro.storage.degaware.DegAwareRHH` — the degree-aware dynamic
  adjacency store: a compact array region for low-degree vertices and a
  per-vertex Robin Hood table once a vertex's degree crosses a threshold.
* :class:`repro.storage.csr.CSRGraph` — the static Compressed Sparse Row
  baseline the paper compares against in Fig. 3 (construction includes
  the sort/compress step, as in the paper).
"""

from repro.storage.csr import CSRGraph
from repro.storage.degaware import AdjacencyStats, DegAwareRHH
from repro.storage.robin_hood import RobinHoodMap

__all__ = ["CSRGraph", "DegAwareRHH", "AdjacencyStats", "RobinHoodMap"]
