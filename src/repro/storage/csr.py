"""Static Compressed Sparse Row graph — the paper's static baseline.

Figure 3 compares "static construction + static BFS" against the dynamic
pipeline.  Static construction, as in the paper, includes compressing the
input ``[src, dst]`` pairs into CSR (a sort + offset build) and benefits
from knowing vertex degrees a priori; this is exactly why the paper finds
static construction ~2x faster per edge than dynamic ingestion, and static
algorithms faster on CSR than on the dynamic structure (better locality,
pre-sized state buffers).

Vertex IDs are *not* assumed dense: construction builds a dense relabeling
(``vertex_ids`` maps dense index -> original ID), mirroring the relabel
pass a real loader performs.  All arrays are NumPy; neighbour access is a
zero-copy slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CSRBuildStats:
    """Operation counts from CSR construction, fed to the cost model."""

    num_input_edges: int
    num_vertices: int
    num_stored_edges: int
    symmetrized: bool


class CSRGraph:
    """Immutable CSR adjacency built from edge arrays.

    Use :meth:`from_edges` to construct.  Attributes:

    * ``offsets`` — int64 array of length ``num_vertices + 1``;
    * ``targets`` — int64 array of dense neighbour indices;
    * ``weights`` — int64 array parallel to ``targets``;
    * ``vertex_ids`` — dense index -> original vertex ID.
    """

    def __init__(
        self,
        offsets: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        vertex_ids: np.ndarray,
        build_stats: CSRBuildStats,
    ):
        self.offsets = offsets
        self.targets = targets
        self.weights = weights
        self.vertex_ids = vertex_ids
        self.build_stats = build_stats
        # original ID -> dense index (kept as a dict: lookups are only on
        # the query path, never inside traversal inner loops)
        self._id_to_dense = {int(v): i for i, v in enumerate(vertex_ids)}

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        symmetrize: bool = False,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel ``src``/``dst`` (original IDs).

        ``symmetrize=True`` adds the reverse of every edge (the paper makes
        graphs "undirected with reverse edges where needed").  Duplicate
        edges are preserved — like the paper's loaders, CSR construction
        does not deduplicate; callers control multiplicity upstream.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError(f"src/dst length mismatch: {src.shape} vs {dst.shape}")
        n_input = len(src)
        if weights is None:
            weights = np.ones(n_input, dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != src.shape:
                raise ValueError("weights must parallel src/dst")
        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            weights = np.concatenate([weights, weights])

        # Dense relabeling (the "compression from input pairs" step).
        all_ids = np.unique(np.concatenate([src, dst])) if n_input else np.empty(0, np.int64)
        n = len(all_ids)
        src_d = np.searchsorted(all_ids, src)
        dst_d = np.searchsorted(all_ids, dst)

        # Sort edges by source, then build offsets with bincount/cumsum.
        order = np.argsort(src_d, kind="stable")
        src_sorted = src_d[order]
        targets = dst_d[order]
        w_sorted = weights[order]
        counts = np.bincount(src_sorted, minlength=n) if n else np.empty(0, np.int64)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        stats = CSRBuildStats(
            num_input_edges=n_input,
            num_vertices=n,
            num_stored_edges=len(targets),
            symmetrized=symmetrize,
        )
        return cls(offsets, targets.astype(np.int64), w_sorted, all_ids, stats)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges (after any symmetrization)."""
        return len(self.targets)

    def dense_index(self, vertex_id: int) -> int:
        """Dense index of an original vertex ID (KeyError if absent)."""
        return self._id_to_dense[int(vertex_id)]

    def has_vertex(self, vertex_id: int) -> bool:
        return int(vertex_id) in self._id_to_dense

    def degree(self, dense_v: int) -> int:
        return int(self.offsets[dense_v + 1] - self.offsets[dense_v])

    def neighbors(self, dense_v: int) -> np.ndarray:
        """Dense neighbour indices of ``dense_v`` (zero-copy slice)."""
        return self.targets[self.offsets[dense_v] : self.offsets[dense_v + 1]]

    def neighbor_weights(self, dense_v: int) -> np.ndarray:
        return self.weights[self.offsets[dense_v] : self.offsets[dense_v + 1]]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(V={self.num_vertices}, E={self.num_edges})"
