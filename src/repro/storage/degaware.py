"""Degree-aware dynamic adjacency store (the DegAwareRHH substrate).

The paper incorporates DegAwareRHH [18] as its node-local topology store
(§III-B): open-addressing Robin Hood hash tables give good locality for
high-degree vertices, while a "separate, compact data structure" serves
low-degree vertices — important because power-law graphs are dominated by
low-degree vertices, for which a full hash table per vertex wastes space
and probes.

This reproduction keeps both tiers:

* **low-degree tier** — a compact insertion-ordered list of
  ``(neighbour, weight)`` pairs, linearly scanned (degree < threshold, so
  scans are O(threshold));
* **high-degree tier** — a :class:`~repro.storage.robin_hood.RobinHoodMap`
  keyed by neighbour ID, promoted to lazily when a vertex's degree
  crosses ``promote_threshold``.

The vertex index itself is also a Robin Hood map by default (pass
``vertex_index="dict"`` to use a Python dict — the storage ablation bench
compares the two).  Edge weights are stored as int64; unweighted graphs
use weight 1.

The store is *rank-local*: each simulated process owns one instance and
only ever inserts edges whose source vertex it owns (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.storage.robin_hood import RobinHoodMap
from repro.util.validate import check_positive


@dataclass
class AdjacencyStats:
    """Lifetime counters for one DegAwareRHH instance."""

    edge_inserts: int = 0  # successful (new-edge) inserts
    duplicate_inserts: int = 0  # inserts of an already-present edge
    edge_deletes: int = 0
    promotions: int = 0  # low-degree lists promoted to hash tables
    low_degree_scans: int = 0  # linear-scan comparison steps


class _LowDegreeAdjacency:
    """Compact adjacency for the low-degree tier.

    Two parallel Python lists keep the footprint minimal and preserve
    insertion order, matching the 'compact data structure for low-degree
    vertices' in DegAwareRHH.
    """

    __slots__ = ("nbrs", "weights")

    def __init__(self) -> None:
        self.nbrs: list[int] = []
        self.weights: list[int] = []

    def find(self, dst: int) -> int:
        try:
            return self.nbrs.index(dst)
        except ValueError:
            return -1


class DegAwareRHH:
    """Dynamic, degree-aware adjacency store for one rank's vertices.

    Parameters
    ----------
    promote_threshold:
        Degree at which a vertex's adjacency is promoted from the compact
        list tier to a per-vertex Robin Hood table (default 8, matching
        the "low degree" regime of scale-free graphs).
    vertex_index:
        ``"robinhood"`` (default, faithful) or ``"dict"`` (Python dict
        baseline used by the storage ablation).
    """

    def __init__(self, promote_threshold: int = 8, vertex_index: str = "robinhood"):
        check_positive("promote_threshold", promote_threshold)
        if vertex_index not in ("robinhood", "dict"):
            raise ValueError(f"vertex_index must be 'robinhood' or 'dict', got {vertex_index!r}")
        self.promote_threshold = int(promote_threshold)
        self._index_kind = vertex_index
        # vertex id -> slot in self._adj
        self._index: RobinHoodMap | dict[int, int]
        self._index = RobinHoodMap(64) if vertex_index == "robinhood" else {}
        # Bind the index-lookup strategy once: _slot_of is on every
        # edge operation's critical path, so a per-call string compare
        # on the index kind is measurable overhead (see bench_micro).
        self._slot_of = (
            self._slot_of_dict if vertex_index == "dict" else self._slot_of_rhh
        )
        self._adj: list[_LowDegreeAdjacency | RobinHoodMap] = []
        self._vids: list[int] = []
        self._num_edges = 0
        # Bulk-ingest append buffers (numpy column chunks), materialised
        # through insert_edge on first classic access — see
        # bulk_append_edges.
        self._pending_src: list[np.ndarray] = []
        self._pending_dst: list[np.ndarray] = []
        self._pending_w: list[np.ndarray] = []
        self._pending_count = 0
        self.stats = AdjacencyStats()

    # ------------------------------------------------------------------
    # vertex level
    # ------------------------------------------------------------------
    def _slot_of_dict(self, vid: int) -> int:
        return self._index.get(vid, -1)  # type: ignore[union-attr]

    def _slot_of_rhh(self, vid: int) -> int:
        got = self._index.get(vid)  # type: ignore[union-attr]
        return -1 if got is None else got

    def ensure_vertex(self, vid: int) -> bool:
        """Register ``vid`` if unseen; returns True iff it was new."""
        if self._pending_count:
            self._flush_pending()
        if self._slot_of(vid) >= 0:
            return False
        slot = len(self._adj)
        self._adj.append(_LowDegreeAdjacency())
        self._vids.append(vid)
        if self._index_kind == "dict":
            self._index[vid] = slot  # type: ignore[index]
        else:
            self._index.put(vid, slot)  # type: ignore[union-attr]
        return True

    def has_vertex(self, vid: int) -> bool:
        if self._pending_count:
            self._flush_pending()
        return self._slot_of(vid) >= 0

    def vertices(self) -> Iterator[int]:
        """Iterate all registered vertex IDs (insertion order)."""
        if self._pending_count:
            self._flush_pending()
        return iter(self._vids)

    @property
    def num_vertices(self) -> int:
        if self._pending_count:
            self._flush_pending()
        return len(self._vids)

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges (undirected edges count twice
        across the whole system, once per endpoint's rank)."""
        if self._pending_count:
            self._flush_pending()
        return self._num_edges

    # -- no-flush observation (telemetry sampling) ---------------------
    # The exact properties above materialise pending bulk appends, which
    # would make the act of sampling de-facto disable the bulk fast
    # path's laziness.  These stay O(1) and never touch the buffers:
    # edge count is exact up to within-buffer duplicates, vertex count
    # excludes vertices seen only in pending appends.
    @property
    def approx_num_edges(self) -> int:
        return self._num_edges + self._pending_count

    @property
    def approx_num_vertices(self) -> int:
        return len(self._vids)

    # ------------------------------------------------------------------
    # bulk-ingest tier (array append buffers + CSR-delta view)
    # ------------------------------------------------------------------
    def bulk_append_edges(
        self, src: np.ndarray, dst: np.ndarray, weights: np.ndarray
    ) -> None:
        """Append directed edges as numpy columns without touching the
        per-vertex tiers (the bulk-ingest fast path).

        The buffers are invisible to the classic API until
        :meth:`flush_bulk` runs — every classic accessor triggers it
        lazily, replaying the buffered edges through the exact
        ``insert_edge`` path (dedup, weight overwrite, promotion), so
        correctness is by construction and only the *timing* of the
        per-edge work moves.
        """
        if len(src) != len(dst) or len(src) != len(weights):
            raise ValueError("bulk_append_edges column length mismatch")
        if not len(src):
            return
        self._pending_src.append(np.asarray(src, dtype=np.int64))
        self._pending_dst.append(np.asarray(dst, dtype=np.int64))
        self._pending_w.append(np.asarray(weights, dtype=np.int64))
        self._pending_count += len(src)

    @property
    def bulk_pending(self) -> int:
        """Edges appended in bulk but not yet materialised."""
        return self._pending_count

    def bulk_pending_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The un-materialised append buffers as ``(src, dst, weights)``
        columns, in append order (read-only view of the delta)."""
        if not self._pending_count:
            e = np.empty(0, dtype=np.int64)
            return e, e, e
        return (
            np.concatenate(self._pending_src),
            np.concatenate(self._pending_dst),
            np.concatenate(self._pending_w),
        )

    def bulk_delta_csr(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR view of the pending delta: ``(vids, indptr, dsts, weights)``.

        ``vids`` are the distinct pending source vertices (sorted);
        ``indptr[i]:indptr[i+1]`` slices ``dsts``/``weights`` for
        ``vids[i]``.  This is the array-native continuation of
        :meth:`neighbors_arrays` for not-yet-materialised edges;
        within-buffer duplicate edges are *not* collapsed (they collapse
        on flush, like repeated ``insert_edge`` calls).
        """
        src, dst, w = self.bulk_pending_arrays()
        if not src.size:
            return src, np.zeros(1, dtype=np.int64), dst, w
        order = np.argsort(src, kind="stable")
        src, dst, w = src[order], dst[order], w[order]
        vids, counts = np.unique(src, return_counts=True)
        indptr = np.zeros(len(vids) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return vids, indptr, dst, w

    def flush_bulk(self) -> int:
        """Materialise the append buffers now; returns edges replayed."""
        n = self._pending_count
        if n:
            self._flush_pending()
        return n

    def _flush_pending(self) -> None:
        srcs = np.concatenate(self._pending_src)
        dsts = np.concatenate(self._pending_dst)
        ws = np.concatenate(self._pending_w)
        self._pending_src.clear()
        self._pending_dst.clear()
        self._pending_w.clear()
        self._pending_count = 0
        insert = self.insert_edge
        for s, d, w in zip(srcs.tolist(), dsts.tolist(), ws.tolist()):
            insert(s, d, w)

    # ------------------------------------------------------------------
    # edge level
    # ------------------------------------------------------------------
    def insert_edge(self, src: int, dst: int, weight: int = 1) -> bool:
        """Insert directed edge ``src -> dst``; returns True iff new.

        Re-inserting an existing edge overwrites its weight (attribute
        update, which the paper treats "similar to an addition").
        """
        self.ensure_vertex(src)
        slot = self._slot_of(src)
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            new = adj.put(dst, weight)
            if new:
                self._num_edges += 1
                self.stats.edge_inserts += 1
            else:
                self.stats.duplicate_inserts += 1
            return new
        # low-degree tier
        pos = adj.find(dst)
        self.stats.low_degree_scans += pos + 1 if pos >= 0 else len(adj.nbrs)
        if pos >= 0:
            adj.weights[pos] = weight
            self.stats.duplicate_inserts += 1
            return False
        adj.nbrs.append(dst)
        adj.weights.append(weight)
        self._num_edges += 1
        self.stats.edge_inserts += 1
        if len(adj.nbrs) >= self.promote_threshold:
            self._promote(slot, adj)
        return True

    def _promote(self, slot: int, adj: _LowDegreeAdjacency) -> None:
        table = RobinHoodMap(initial_capacity=2 * self.promote_threshold)
        for nbr, w in zip(adj.nbrs, adj.weights):
            table.put(nbr, w)
        self._adj[slot] = table
        self.stats.promotions += 1

    def delete_edge(self, src: int, dst: int) -> bool:
        """Remove directed edge ``src -> dst``; returns True iff present.

        High-degree vertices are not demoted back to the compact tier
        (matching the promote-only behaviour of DegAwareRHH).
        """
        if self._pending_count:
            self._flush_pending()
        slot = self._slot_of(src)
        if slot < 0:
            return False
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            removed = adj.delete(dst)
        else:
            pos = adj.find(dst)
            self.stats.low_degree_scans += pos + 1 if pos >= 0 else len(adj.nbrs)
            if pos < 0:
                removed = False
            else:
                adj.nbrs.pop(pos)
                adj.weights.pop(pos)
                removed = True
        if removed:
            self._num_edges -= 1
            self.stats.edge_deletes += 1
        return removed

    def has_edge(self, src: int, dst: int) -> bool:
        return self.edge_weight(src, dst) is not None

    def edge_weight(self, src: int, dst: int) -> int | None:
        """Weight of ``src -> dst``, or None if the edge is absent."""
        if self._pending_count:
            self._flush_pending()
        slot = self._slot_of(src)
        if slot < 0:
            return None
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            return adj.get(dst)
        pos = adj.find(dst)
        self.stats.low_degree_scans += pos + 1 if pos >= 0 else len(adj.nbrs)
        return adj.weights[pos] if pos >= 0 else None

    def degree(self, src: int) -> int:
        if self._pending_count:
            self._flush_pending()
        slot = self._slot_of(src)
        if slot < 0:
            return 0
        adj = self._adj[slot]
        return len(adj) if isinstance(adj, RobinHoodMap) else len(adj.nbrs)

    def neighbors(self, src: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(neighbour, weight)`` pairs of ``src``.

        Low-degree vertices iterate in insertion order; promoted vertices
        iterate in table order.  Mutating during iteration is undefined.
        """
        if self._pending_count:
            self._flush_pending()
        slot = self._slot_of(src)
        if slot < 0:
            return iter(())
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            return adj.items()
        return iter(zip(list(adj.nbrs), list(adj.weights)))

    def neighbors_arrays(self, src: int) -> tuple[list[int], list[int]]:
        """``src``'s adjacency as parallel ``(nbrs, weights)`` lists.

        The fast path for bulk fan-out emission: on the low-degree tier
        the *internal* parallel lists are returned directly — no pair
        tuples, no copies.  The lists are borrowed, read-only views:
        callers must fully consume them before any store mutation (same
        contract as :meth:`neighbors`' "mutating during iteration is
        undefined").  Promoted vertices materialise fresh lists from the
        hash table.
        """
        if self._pending_count:
            self._flush_pending()
        slot = self._slot_of(src)
        if slot < 0:
            return [], []
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            nbrs: list[int] = []
            weights: list[int] = []
            for nbr, w in adj.items():
                nbrs.append(nbr)
                weights.append(w)
            return nbrs, weights
        return adj.nbrs, adj.weights

    def edges(self) -> Iterable[tuple[int, int, int]]:
        """Iterate all stored directed edges as ``(src, dst, weight)``."""
        if self._pending_count:
            self._flush_pending()
        for vid in self._vids:
            for dst, w in self.neighbors(vid):
                yield vid, dst, w

    def is_promoted(self, src: int) -> bool:
        """True if ``src``'s adjacency lives in the high-degree tier."""
        if self._pending_count:
            self._flush_pending()
        slot = self._slot_of(src)
        return slot >= 0 and isinstance(self._adj[slot], RobinHoodMap)

    def approx_bytes(self) -> int:
        """O(1) estimate of the store's memory footprint, used by the
        cost model's NVRAM-spill fraction (§III-B).

        Per vertex: index entry + container header (~88 B); per stored
        edge: neighbour id + weight + container slack (~40 B); promoted
        tables carry extra open-addressing slack (~24 B per threshold
        slot at promotion time).  Pending bulk-append edges count at
        their packed column footprint (3 x int64) without forcing a
        flush.
        """
        return (
            88 * len(self._vids)
            + 40 * self._num_edges
            + 24 * self.promote_threshold * self.stats.promotions
            + 24 * self._pending_count
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DegAwareRHH(vertices={self.num_vertices}, edges={self._num_edges}, "
            f"promotions={self.stats.promotions})"
        )
