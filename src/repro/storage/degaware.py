"""Degree-aware dynamic adjacency store (the DegAwareRHH substrate).

The paper incorporates DegAwareRHH [18] as its node-local topology store
(§III-B): open-addressing Robin Hood hash tables give good locality for
high-degree vertices, while a "separate, compact data structure" serves
low-degree vertices — important because power-law graphs are dominated by
low-degree vertices, for which a full hash table per vertex wastes space
and probes.

This reproduction keeps both tiers:

* **low-degree tier** — a compact insertion-ordered list of
  ``(neighbour, weight)`` pairs, linearly scanned (degree < threshold, so
  scans are O(threshold));
* **high-degree tier** — a :class:`~repro.storage.robin_hood.RobinHoodMap`
  keyed by neighbour ID, promoted to lazily when a vertex's degree
  crosses ``promote_threshold``.

The vertex index itself is also a Robin Hood map by default (pass
``vertex_index="dict"`` to use a Python dict — the storage ablation bench
compares the two).  Edge weights are stored as int64; unweighted graphs
use weight 1.

The store is *rank-local*: each simulated process owns one instance and
only ever inserts edges whose source vertex it owns (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.storage.robin_hood import RobinHoodMap
from repro.util.validate import check_positive


@dataclass
class AdjacencyStats:
    """Lifetime counters for one DegAwareRHH instance."""

    edge_inserts: int = 0  # successful (new-edge) inserts
    duplicate_inserts: int = 0  # inserts of an already-present edge
    edge_deletes: int = 0
    promotions: int = 0  # low-degree lists promoted to hash tables
    low_degree_scans: int = 0  # linear-scan comparison steps


class _LowDegreeAdjacency:
    """Compact adjacency for the low-degree tier.

    Two parallel Python lists keep the footprint minimal and preserve
    insertion order, matching the 'compact data structure for low-degree
    vertices' in DegAwareRHH.
    """

    __slots__ = ("nbrs", "weights")

    def __init__(self) -> None:
        self.nbrs: list[int] = []
        self.weights: list[int] = []

    def find(self, dst: int) -> int:
        try:
            return self.nbrs.index(dst)
        except ValueError:
            return -1


class DegAwareRHH:
    """Dynamic, degree-aware adjacency store for one rank's vertices.

    Parameters
    ----------
    promote_threshold:
        Degree at which a vertex's adjacency is promoted from the compact
        list tier to a per-vertex Robin Hood table (default 8, matching
        the "low degree" regime of scale-free graphs).
    vertex_index:
        ``"robinhood"`` (default, faithful) or ``"dict"`` (Python dict
        baseline used by the storage ablation).
    """

    def __init__(self, promote_threshold: int = 8, vertex_index: str = "robinhood"):
        check_positive("promote_threshold", promote_threshold)
        if vertex_index not in ("robinhood", "dict"):
            raise ValueError(f"vertex_index must be 'robinhood' or 'dict', got {vertex_index!r}")
        self.promote_threshold = int(promote_threshold)
        self._index_kind = vertex_index
        # vertex id -> slot in self._adj
        self._index: RobinHoodMap | dict[int, int]
        self._index = RobinHoodMap(64) if vertex_index == "robinhood" else {}
        self._adj: list[_LowDegreeAdjacency | RobinHoodMap] = []
        self._vids: list[int] = []
        self._num_edges = 0
        self.stats = AdjacencyStats()

    # ------------------------------------------------------------------
    # vertex level
    # ------------------------------------------------------------------
    def _slot_of(self, vid: int) -> int:
        if self._index_kind == "dict":
            return self._index.get(vid, -1)  # type: ignore[union-attr]
        got = self._index.get(vid)  # type: ignore[union-attr]
        return -1 if got is None else got

    def ensure_vertex(self, vid: int) -> bool:
        """Register ``vid`` if unseen; returns True iff it was new."""
        if self._slot_of(vid) >= 0:
            return False
        slot = len(self._adj)
        self._adj.append(_LowDegreeAdjacency())
        self._vids.append(vid)
        if self._index_kind == "dict":
            self._index[vid] = slot  # type: ignore[index]
        else:
            self._index.put(vid, slot)  # type: ignore[union-attr]
        return True

    def has_vertex(self, vid: int) -> bool:
        return self._slot_of(vid) >= 0

    def vertices(self) -> Iterator[int]:
        """Iterate all registered vertex IDs (insertion order)."""
        return iter(self._vids)

    @property
    def num_vertices(self) -> int:
        return len(self._vids)

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges (undirected edges count twice
        across the whole system, once per endpoint's rank)."""
        return self._num_edges

    # ------------------------------------------------------------------
    # edge level
    # ------------------------------------------------------------------
    def insert_edge(self, src: int, dst: int, weight: int = 1) -> bool:
        """Insert directed edge ``src -> dst``; returns True iff new.

        Re-inserting an existing edge overwrites its weight (attribute
        update, which the paper treats "similar to an addition").
        """
        self.ensure_vertex(src)
        slot = self._slot_of(src)
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            new = adj.put(dst, weight)
            if new:
                self._num_edges += 1
                self.stats.edge_inserts += 1
            else:
                self.stats.duplicate_inserts += 1
            return new
        # low-degree tier
        pos = adj.find(dst)
        self.stats.low_degree_scans += pos + 1 if pos >= 0 else len(adj.nbrs)
        if pos >= 0:
            adj.weights[pos] = weight
            self.stats.duplicate_inserts += 1
            return False
        adj.nbrs.append(dst)
        adj.weights.append(weight)
        self._num_edges += 1
        self.stats.edge_inserts += 1
        if len(adj.nbrs) >= self.promote_threshold:
            self._promote(slot, adj)
        return True

    def _promote(self, slot: int, adj: _LowDegreeAdjacency) -> None:
        table = RobinHoodMap(initial_capacity=2 * self.promote_threshold)
        for nbr, w in zip(adj.nbrs, adj.weights):
            table.put(nbr, w)
        self._adj[slot] = table
        self.stats.promotions += 1

    def delete_edge(self, src: int, dst: int) -> bool:
        """Remove directed edge ``src -> dst``; returns True iff present.

        High-degree vertices are not demoted back to the compact tier
        (matching the promote-only behaviour of DegAwareRHH).
        """
        slot = self._slot_of(src)
        if slot < 0:
            return False
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            removed = adj.delete(dst)
        else:
            pos = adj.find(dst)
            self.stats.low_degree_scans += pos + 1 if pos >= 0 else len(adj.nbrs)
            if pos < 0:
                removed = False
            else:
                adj.nbrs.pop(pos)
                adj.weights.pop(pos)
                removed = True
        if removed:
            self._num_edges -= 1
            self.stats.edge_deletes += 1
        return removed

    def has_edge(self, src: int, dst: int) -> bool:
        return self.edge_weight(src, dst) is not None

    def edge_weight(self, src: int, dst: int) -> int | None:
        """Weight of ``src -> dst``, or None if the edge is absent."""
        slot = self._slot_of(src)
        if slot < 0:
            return None
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            return adj.get(dst)
        pos = adj.find(dst)
        self.stats.low_degree_scans += pos + 1 if pos >= 0 else len(adj.nbrs)
        return adj.weights[pos] if pos >= 0 else None

    def degree(self, src: int) -> int:
        slot = self._slot_of(src)
        if slot < 0:
            return 0
        adj = self._adj[slot]
        return len(adj) if isinstance(adj, RobinHoodMap) else len(adj.nbrs)

    def neighbors(self, src: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(neighbour, weight)`` pairs of ``src``.

        Low-degree vertices iterate in insertion order; promoted vertices
        iterate in table order.  Mutating during iteration is undefined.
        """
        slot = self._slot_of(src)
        if slot < 0:
            return iter(())
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            return adj.items()
        return iter(zip(list(adj.nbrs), list(adj.weights)))

    def neighbors_arrays(self, src: int) -> tuple[list[int], list[int]]:
        """``src``'s adjacency as parallel ``(nbrs, weights)`` lists.

        The fast path for bulk fan-out emission: on the low-degree tier
        the *internal* parallel lists are returned directly — no pair
        tuples, no copies.  The lists are borrowed, read-only views:
        callers must fully consume them before any store mutation (same
        contract as :meth:`neighbors`' "mutating during iteration is
        undefined").  Promoted vertices materialise fresh lists from the
        hash table.
        """
        slot = self._slot_of(src)
        if slot < 0:
            return [], []
        adj = self._adj[slot]
        if isinstance(adj, RobinHoodMap):
            nbrs: list[int] = []
            weights: list[int] = []
            for nbr, w in adj.items():
                nbrs.append(nbr)
                weights.append(w)
            return nbrs, weights
        return adj.nbrs, adj.weights

    def edges(self) -> Iterable[tuple[int, int, int]]:
        """Iterate all stored directed edges as ``(src, dst, weight)``."""
        for vid in self._vids:
            for dst, w in self.neighbors(vid):
                yield vid, dst, w

    def is_promoted(self, src: int) -> bool:
        """True if ``src``'s adjacency lives in the high-degree tier."""
        slot = self._slot_of(src)
        return slot >= 0 and isinstance(self._adj[slot], RobinHoodMap)

    def approx_bytes(self) -> int:
        """O(1) estimate of the store's memory footprint, used by the
        cost model's NVRAM-spill fraction (§III-B).

        Per vertex: index entry + container header (~88 B); per stored
        edge: neighbour id + weight + container slack (~40 B); promoted
        tables carry extra open-addressing slack (~24 B per threshold
        slot at promotion time).
        """
        return (
            88 * self.num_vertices
            + 40 * self._num_edges
            + 24 * self.promote_threshold * self.stats.promotions
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DegAwareRHH(vertices={self.num_vertices}, edges={self._num_edges}, "
            f"promotions={self.stats.promotions})"
        )
