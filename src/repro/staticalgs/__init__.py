"""Static graph algorithms on CSR — the paper's baselines.

Each returns both the answer and an :class:`OpCounts` of the work
performed (vertex visits, edge scans), which the benchmark harness
multiplies by the cost model's static-side constants to obtain the
virtual run time of the "static algorithm from scratch" bars in
Figs. 3 and 4.  The answers double as ground truth for verifying the
dynamic algorithms' convergence (value conventions match §IV: source
level/cost 1, CC labels = max vertex hash in the component).
"""

from repro.staticalgs.algorithms import (
    OpCounts,
    static_bfs,
    static_cc,
    static_sssp,
    static_st_connectivity,
)

__all__ = [
    "OpCounts",
    "static_bfs",
    "static_cc",
    "static_sssp",
    "static_st_connectivity",
]
