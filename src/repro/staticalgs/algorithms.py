"""Static BFS / SSSP / CC / S-T on a CSR graph.

Conventions are aligned with the dynamic programs so results compare
directly (see :mod:`repro.analytics.verify`):

* BFS/SSSP: source value 1; a vertex's value is 1 + (hops | weighted
  distance); unreachable vertices are absent from the result.
* CC: label = max :func:`repro.algorithms.cc.component_label` hash in
  the vertex's component.
* S-T: bitmask over the source list, bit *i* set iff reachable from
  ``sources[i]``.

Results are keyed by **original vertex IDs** (the CSR relabeling is
internal).  ``OpCounts`` captures the traversal work for the virtual
cost model.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.algorithms.cc import component_label
from repro.storage.csr import CSRGraph


@dataclass(frozen=True)
class OpCounts:
    """Work performed by one static algorithm execution."""

    vertex_visits: int
    edge_scans: int


def static_bfs(graph: CSRGraph, source: int) -> tuple[dict[int, int], OpCounts]:
    """Level-synchronous BFS; returns ({vertex: level}, ops).

    The source has level 1, matching Alg. 4's ``init``.
    """
    if not graph.has_vertex(source):
        return {source: 1}, OpCounts(1, 0)
    n = graph.num_vertices
    levels = np.zeros(n, dtype=np.int64)  # 0 = unreached
    s = graph.dense_index(source)
    levels[s] = 1
    frontier = deque([s])
    visits = 0
    scans = 0
    offsets, targets = graph.offsets, graph.targets
    while frontier:
        v = frontier.popleft()
        visits += 1
        lvl = levels[v] + 1
        for t in targets[offsets[v] : offsets[v + 1]]:
            scans += 1
            if levels[t] == 0:
                levels[t] = lvl
                frontier.append(t)
    reached = np.nonzero(levels)[0]
    result = {int(graph.vertex_ids[v]): int(levels[v]) for v in reached}
    return result, OpCounts(visits, scans)


def static_sssp(graph: CSRGraph, source: int) -> tuple[dict[int, int], OpCounts]:
    """Dijkstra; returns ({vertex: cost}, ops) with source cost 1."""
    if not graph.has_vertex(source):
        return {source: 1}, OpCounts(1, 0)
    n = graph.num_vertices
    INF = 1 << 62
    dist = np.full(n, INF, dtype=np.int64)
    s = graph.dense_index(source)
    dist[s] = 1
    heap = [(1, s)]
    visits = 0
    scans = 0
    offsets, targets, weights = graph.offsets, graph.targets, graph.weights
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        visits += 1
        for idx in range(offsets[v], offsets[v + 1]):
            scans += 1
            t = targets[idx]
            nd = d + weights[idx]
            if nd < dist[t]:
                dist[t] = nd
                heapq.heappush(heap, (int(nd), int(t)))
    reached = np.nonzero(dist < INF)[0]
    result = {int(graph.vertex_ids[v]): int(dist[v]) for v in reached}
    return result, OpCounts(visits, scans)


def static_cc(graph: CSRGraph) -> tuple[dict[int, int], OpCounts]:
    """Connected components over the *undirected closure* of the CSR.

    Returns ({vertex: label}, ops) where the label is the maximum
    salted vertex hash in the component (the dynamic CC's deterministic
    answer).  Uses union-find with path halving; ops count the find
    steps as edge scans.
    """
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)
    scans = 0

    def find(x: int) -> int:
        nonlocal scans
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
            scans += 1
        return x

    offsets, targets = graph.offsets, graph.targets
    for v in range(n):
        for idx in range(offsets[v], offsets[v + 1]):
            a, b = find(v), find(int(targets[idx]))
            if a != b:
                parent[a] = b
    # component -> max hash label
    labels: dict[int, int] = {}
    for v in range(n):
        root = find(v)
        h = component_label(int(graph.vertex_ids[v]))
        if labels.get(root, -1) < h:
            labels[root] = h
    result = {
        int(graph.vertex_ids[v]): labels[find(v)] for v in range(n)
    }
    return result, OpCounts(n, scans + graph.num_edges)


def static_st_connectivity(
    graph: CSRGraph, sources: list[int]
) -> tuple[dict[int, int], OpCounts]:
    """Multi-source reachability; returns ({vertex: bitmask}, ops).

    Bit *i* of a vertex's mask is set iff it is reachable from
    ``sources[i]`` (a vertex always reaches itself).
    """
    masks: dict[int, int] = {}
    visits = 0
    scans = 0
    offsets, targets = graph.offsets, graph.targets
    for bit, src in enumerate(sources):
        masks[src] = masks.get(src, 0) | (1 << bit)
        if not graph.has_vertex(src):
            continue
        seen = np.zeros(graph.num_vertices, dtype=bool)
        s = graph.dense_index(src)
        seen[s] = True
        frontier = deque([s])
        while frontier:
            v = frontier.popleft()
            visits += 1
            for t in targets[offsets[v] : offsets[v + 1]]:
                scans += 1
                if not seen[t]:
                    seen[t] = True
                    frontier.append(t)
        for v in np.nonzero(seen)[0]:
            vid = int(graph.vertex_ids[v])
            masks[vid] = masks.get(vid, 0) | (1 << bit)
    return masks, OpCounts(visits, scans)
