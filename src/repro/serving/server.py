"""On-line query serving against live REMO state (the "millions of
users" tier).

The paper's §III-E observes that REMO state is constant-time observable
at the owning rank; this module turns that observation into a serving
surface: point lookups (distance, component membership, reachability,
widest-path capacity) and snapshot reads answered *during* ingest,
without stopping the stream, in three tiers —

1. **stable-value cache hit** — O(1), never touches the engine.
   Admission is monotone-bound gated (see
   :mod:`repro.serving.cache`): a value enters the cache only when it
   is provably converged, either absorbing (equals the static bound on
   the full stream — can never change again) or settled (the engine is
   drained / the freshness probe proved lag zero at an unchanged write
   epoch — converged on the ingested prefix, dropped again by the
   per-write invalidation hook the moment anything improves it).
2. **bounded-staleness live read** — a constant-time read of live rank
   state with an explicit ``(value, as_of_vtime, stale)`` envelope;
   ``stale=True`` says pending frontier work may still improve this
   answer.
3. **subscription** — the "When"-trigger tier
   (:class:`repro.runtime.queries.TriggerManager`): a predicate plus
   callback fired at the exact virtual instant the condition first
   holds.

Whole-state reads stay available as the in-protocol versioned
collection (:meth:`ServingLayer.snapshot` — the paper's cut → drain →
harvest epoch), which is also the baseline the stable-cache point read
is benchmarked against (``benchmarks/bench_serving_latency.py``).

Backends: :class:`EngineBackend` serves a live
:class:`~repro.runtime.engine.DynamicEngine` (the DES backend);
:class:`FrozenBackend` serves a quiesced state harvest (e.g. the mp
backend's :class:`~repro.parallel.ParallelResult`), where every value
is trivially stable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping

from repro.algorithms.base import INF
from repro.obs.registry import MetricsRegistry
from repro.serving.cache import StableValueCache


@dataclass(frozen=True)
class QueryResult:
    """One served answer with its staleness envelope.

    ``stale=False`` is a guarantee: the value equals the static answer
    on the discretized prefix ingested so far (differentially tested in
    ``tests/serving/test_differential.py``).  ``stale=True`` is a
    bounded-staleness read: the monotone live value, which pending
    frontier work may still improve.
    """

    prog: str
    vertex: int
    value: Any
    as_of_vtime: float
    stale: bool
    source: str  # "cache" | "live"

    def to_dict(self) -> dict[str, Any]:
        return {
            "prog": self.prog,
            "vertex": self.vertex,
            "value": self.value,
            "as_of_vtime": self.as_of_vtime,
            "stale": self.stale,
            "source": self.source,
        }


class EngineBackend:
    """Serving adapter over a live :class:`DynamicEngine` (DES)."""

    supports_subscriptions = True
    supports_snapshots = True

    def __init__(self, engine):
        self.engine = engine
        self.prog_names = [p.name for p in engine.programs]
        # The dynamically installed cache-coherence hooks, kept so
        # uninstall_hooks can remove exactly what it added.
        self._invalidate_fn: Callable[..., None] | None = None
        self._flush_fn: Callable[[int], None] | None = None

    def prog_index(self, prog: int | str) -> int:
        return self.engine.prog_index(prog)

    def read(self, prog: int, vertex: int) -> Any:
        eng = self.engine
        b = eng._bulk
        if b is not None and b.engaged:
            # Exactness barrier, as in the freshness probe: fold the
            # dense bulk mirror back so the read observes exact state
            # (not counted as a de-optimization).
            b.flush_values(count_fallback=False)
        return eng.value_of(prog, vertex)

    def vtime(self) -> float:
        return self.engine.vtime()

    def drained(self) -> bool:
        return self.engine.drained()

    def add_only(self) -> bool:
        """Are the attached streams provably insert-only?  Deletes
        (§VI-B) break the monotone-bound argument behind absorbing
        cache entries, so the serving layer must ask per admission —
        a delete-carrying stream can be attached at any time."""
        return self.engine._streams_add_only

    def watermark(self) -> int:
        return self.engine.ingest_watermark()

    def probe_converged(self, prog: int) -> bool:
        """Freshness-probe stability: the last probe sample found zero
        stale vertices and nothing mutated since (write epoch
        unchanged), so the live state is still converged."""
        eng = self.engine
        sampler = eng.sampler
        if sampler is None or sampler.freshness is None:
            return False
        w = sampler.freshness.watch_for(self.prog_names[prog])
        return (
            w is not None
            and w.last_stale == 0
            and w.last_epoch == eng.write_epoch()
        )

    def install_hooks(
        self,
        invalidate: Callable[..., None],
        flush: Callable[[int], None],
    ) -> None:
        """Route cache coherence through the engine's plugin registry:
        ``invalidate`` rides the per-write ``on_write`` site, ``flush``
        the coarse ``on_bulk_flush`` site."""
        self._invalidate_fn = invalidate
        self._flush_fn = flush
        self.engine.install_hook("on_write", invalidate)
        self.engine.install_hook("on_bulk_flush", flush)

    def uninstall_hooks(self) -> None:
        if self._invalidate_fn is not None:
            self.engine.uninstall_hook("on_write", self._invalidate_fn)
            self._invalidate_fn = None
        if self._flush_fn is not None:
            self.engine.uninstall_hook("on_bulk_flush", self._flush_fn)
            self._flush_fn = None


class FrozenBackend:
    """Serving adapter over a quiesced state harvest.

    Used for the mp backend: :func:`repro.parallel.run_parallel` ships
    every rank's post-quiescence values back to the parent, and this
    backend serves them.  The harvest is by construction converged, so
    every read is stable and every vertex is cache-admissible.
    """

    supports_subscriptions = False
    supports_snapshots = False

    def __init__(
        self,
        prog_names: list[str],
        states: list[Mapping[int, Any]],
        vtime: float = 0.0,
    ):
        if len(prog_names) != len(states):
            raise ValueError(
                f"{len(prog_names)} program names for {len(states)} states"
            )
        self.prog_names = list(prog_names)
        self._states = [dict(s) for s in states]
        self._vtime = float(vtime)

    @classmethod
    def from_parallel_result(cls, result, programs) -> "FrozenBackend":
        """Wrap an mp-backend :class:`ParallelResult` state harvest."""
        names = [p.name for p in programs]
        return cls(names, [result.state(i) for i in range(len(names))])

    def prog_index(self, prog: int | str) -> int:
        if isinstance(prog, int):
            if not 0 <= prog < len(self.prog_names):
                raise ValueError(f"program index {prog} out of range")
            return prog
        try:
            return self.prog_names.index(prog)
        except ValueError:
            raise ValueError(f"no program named {prog!r}") from None

    def read(self, prog: int, vertex: int) -> Any:
        return self._states[prog].get(vertex, 0)

    def vtime(self) -> float:
        return self._vtime

    def drained(self) -> bool:
        return True

    def add_only(self) -> bool:
        return True  # frozen harvests are final regardless of history

    def watermark(self) -> int:
        return 0

    def probe_converged(self, prog: int) -> bool:
        return True

    def install_hooks(self, invalidate, flush) -> None:
        pass  # frozen state never mutates; nothing to invalidate

    def uninstall_hooks(self) -> None:
        pass


class ServingLayer:
    """Long-lived query front-end over live (or harvested) REMO state.

    Parameters
    ----------
    engine:
        A :class:`DynamicEngine`, or an explicit backend
        (:class:`EngineBackend` / :class:`FrozenBackend`).
    metrics:
        A :class:`MetricsRegistry` for the serve counters
        (``serve_hits`` / ``serve_misses`` / ``serve_admissions`` /
        ``serve_stale_served``) and the ``serve_latency_us`` histogram.
        Defaults to the engine's registry when telemetry is configured,
        else a private one.
    references:
        Optional ``{prog: {vertex: final_value}}`` monotone bounds (the
        static answer on the full intended stream).  With a reference,
        a vertex whose live value already equals its bound is cached
        *absorbing* — served stale-free even mid-ingest, the
        stable-vertex-values short-circuit.
    """

    def __init__(
        self,
        engine,
        metrics: MetricsRegistry | None = None,
        references: Mapping[int | str, Mapping[int, Any]] | None = None,
    ):
        if isinstance(engine, (EngineBackend, FrozenBackend)):
            self.backend = engine
        else:
            self.backend = EngineBackend(engine)
        self.cache = StableValueCache(len(self.backend.prog_names))
        if metrics is not None:
            self.metrics = metrics
        else:
            engine_metrics = getattr(
                getattr(self.backend, "engine", None), "metrics", None
            )
            self.metrics = (
                engine_metrics if engine_metrics is not None else MetricsRegistry()
            )
        self._refs: dict[int, Mapping[int, Any]] = {}
        self._hooked = False
        for prog, vals in (references or {}).items():
            self.set_reference(prog, vals)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_reference(self, prog: int | str, final_values: Mapping[int, Any]) -> None:
        """Register a monotone bound for ``prog`` (see class docs)."""
        self._refs[self.backend.prog_index(prog)] = final_values

    def close(self) -> None:
        """Detach the invalidation hooks and drop the cache."""
        if self._hooked:
            self.backend.uninstall_hooks()
            self._hooked = False
        self.cache.clear()

    # ------------------------------------------------------------------
    # the point-read tiers
    # ------------------------------------------------------------------
    def point(self, prog: int | str, vertex: int) -> QueryResult:
        """Serve one raw point lookup of a program's vertex value."""
        t0 = time.perf_counter_ns()
        backend = self.backend
        p = prog if type(prog) is int else backend.prog_index(prog)
        m = self.metrics
        entry = self.cache.lookup(p, vertex)
        if entry is not None and entry[2] and not backend.add_only():
            # The entry was admitted absorbing while every stream was
            # insert-only, but a delete-carrying stream has since been
            # attached: under deletes a value can move away from the
            # full-stream bound again, so the absorbing claim is void.
            self.cache.demote(p, vertex)
            entry = None
        if entry is not None:
            value, _admitted_at, absorbing = entry
            stale = not absorbing and not self._stable_now(p)
            res = QueryResult(
                backend.prog_names[p], vertex, value, backend.vtime(), stale, "cache"
            )
            m.inc("serve_hits")
        else:
            value = backend.read(p, vertex)
            settled = self._stable_now(p)
            ref = self._refs.get(p)
            # Absorbing admission requires the monotone-bound argument,
            # which only holds on insert-only sources (§VI-B deletes
            # make "equals the bound" a revisitable state, not a fixed
            # point) — on churn streams only settled admission remains.
            absorbing = (
                ref is not None
                and backend.add_only()
                and value == ref.get(vertex, 0)
            )
            if absorbing or settled:
                if not self._hooked:
                    backend.install_hooks(self.cache.invalidate, self._flush_prog)
                    self._hooked = True
                self.cache.admit(p, vertex, value, backend.vtime(), absorbing)
                m.inc("serve_admissions")
            stale = not (absorbing or settled)
            res = QueryResult(
                backend.prog_names[p], vertex, value, backend.vtime(), stale, "live"
            )
            m.inc("serve_misses")
        if res.stale:
            m.inc("serve_stale_served")
        m.histogram("serve_latency_us").observe((time.perf_counter_ns() - t0) / 1e3)
        return res

    def _stable_now(self, prog: int) -> bool:
        """Is every already-ingested event provably propagated?"""
        backend = self.backend
        return backend.drained() or backend.probe_converged(prog)

    def _flush_prog(self, prog: int) -> None:
        """Bulk-flush hook: absorbing entries survive only while the
        monotone-bound argument does (insert-only sources)."""
        self.cache.flush_prog(prog, keep_absorbing=self.backend.add_only())

    # -- typed wrappers over point() -------------------------------------
    def distance(self, prog: int | str, vertex: int) -> QueryResult:
        """BFS level / SSSP cost; ``value=None`` when unreached."""
        res = self.point(prog, vertex)
        value = None if res.value == 0 or res.value >= INF else res.value
        return replace(res, value=value)

    def reachable(self, prog: int | str, vertex: int) -> QueryResult:
        """Is the vertex reached from the program's source?  (For
        distance-convention programs: BFS / det-BFS / SSSP.)"""
        res = self.point(prog, vertex)
        return replace(res, value=bool(res.value != 0 and res.value < INF))

    def connected_to(self, prog: int | str, vertex: int, bit: int) -> QueryResult:
        """Multi S-T tier: is source ``bit`` in the vertex's bitset?
        (``bit`` from :meth:`MultiSTConnectivity.bit_of`.)"""
        res = self.point(prog, vertex)
        return replace(res, value=bool(res.value >> bit & 1))

    def capacity(self, prog: int | str, vertex: int) -> QueryResult:
        """Widest-path capacity; ``value=None`` when no path yet
        (the source itself reads CAP_INF)."""
        res = self.point(prog, vertex)
        return replace(res, value=None if res.value == 0 else res.value)

    def same_component(self, prog: int | str, u: int, v: int) -> QueryResult:
        """Component membership: are ``u`` and ``v`` in one component?

        Two point reads; equal non-zero labels mean one component.  The
        result is stamped stale unless both sides were stable (equal
        transient labels could still diverge)."""
        a = self.point(prog, u)
        b = self.point(prog, v)
        return QueryResult(
            a.prog,
            v,
            bool(a.value != 0 and a.value == b.value),
            max(a.as_of_vtime, b.as_of_vtime),
            a.stale or b.stale,
            "cache" if (a.source == "cache" and b.source == "cache") else "live",
        )

    # ------------------------------------------------------------------
    # the slow tiers: snapshots and subscriptions
    # ------------------------------------------------------------------
    def snapshot(self, prog: int | str, max_rounds: int = 1_000_000):
        """Whole-state read via the in-protocol versioned collection
        (§III-D cut → drain → harvest); returns the
        :class:`CollectionResult`.  This is the quiescence path a cached
        point read replaces — and the bench baseline for the >=50x
        claim.  Ingest continues during the epoch (the collection is
        continuous / non-pausing)."""
        if not self.backend.supports_snapshots:
            raise RuntimeError("snapshot reads need a live engine backend")
        eng = self.backend.engine
        p = eng.prog_index(prog)
        n0 = len(eng.collection_results)
        eng.request_collection(p, at_time=eng.vtime())
        for _ in range(max_rounds):
            eng.run(max_actions=8192)
            if len(eng.collection_results) > n0:
                return eng.collection_results[-1]
        raise RuntimeError(f"collection did not conclude in {max_rounds} rounds")

    def subscribe(
        self,
        prog: int | str,
        predicate: Callable[[int, Any], bool],
        callback: Callable[[int, Any, float], None],
        vertex: int | None = None,
        once: bool = True,
    ):
        """The subscription tier: a "When" trigger fired at the exact
        virtual instant the predicate first holds (§III-E)."""
        if not self.backend.supports_subscriptions:
            raise RuntimeError("subscriptions need a live engine backend")
        self.metrics.inc("serve_subscriptions")
        return self.backend.engine.add_trigger(prog, predicate, callback, vertex, once)

    def unsubscribe(self, trigger) -> bool:
        if not self.backend.supports_subscriptions:
            raise RuntimeError("subscriptions need a live engine backend")
        return self.backend.engine.triggers.remove(trigger)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        out = self.cache.stats()
        out["references"] = sorted(
            self.backend.prog_names[p] for p in self._refs
        )
        out["watermark"] = self.backend.watermark()
        h = self.metrics.histograms.get("serve_latency_us")
        if h is not None:
            out["latency_us"] = h.to_dict()
        for key in (
            "serve_hits",
            "serve_misses",
            "serve_admissions",
            "serve_stale_served",
            "serve_subscriptions",
        ):
            if key in self.metrics.counters:
                out[key] = self.metrics.counters[key]
        return out
