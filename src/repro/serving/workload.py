"""Mixed update+query workloads: serving while the stream runs.

The on-line analytics scenario the serving layer exists for is not
"ingest, quiesce, then answer" — it is a live system fielding point
queries *while* topology events keep arriving.  This module drives that
mix deterministically on the DES backend: ingest runs in bounded
slices (``engine.run(max_actions=...)``), and between slices a query
batch sized by the configured query:update ratio is served through a
:class:`~repro.serving.server.ServingLayer`, with per-query latency
recorded and (optionally) every ``stale=False`` envelope checked
against the static oracle recomputed on the exact ingested prefix.

Used by ``repro serve`` (the CLI front-end), the serving-latency bench,
and the differential tests — one driver, three consumers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.algorithms.base import INF

#: Query kinds the driver can issue, per algorithm family.
KINDS_FOR = {
    "bfs": ("point", "distance", "reachable"),
    "det-bfs": ("point",),
    "sssp": ("point", "distance", "reachable"),
    "cc": ("point", "component"),
    "st": ("point", "connected"),
    "widest": ("point", "capacity"),
}

#: Per-family "this raw value means unreached" predicates (the
#: repro.analytics.verify conventions).
UNREACHED = {
    "bfs": lambda v: v == 0 or v >= INF,
    "det-bfs": lambda v: v == 0 or (isinstance(v, tuple) and v[1] >= INF),
    "sssp": lambda v: v == 0 or v >= INF,
    "cc": lambda v: v == 0,
    "st": lambda v: v == 0,
    "widest": lambda v: v == 0,
}


def make_prefix_oracle(
    engine,
    kind: str,
    source: int | None = None,
    sources: list[int] | None = None,
) -> Callable[[], dict[int, Any]]:
    """A zero-arg closure computing ``{vertex: static value}`` on the
    engine's *current* topology — the discretized ingested prefix.

    This is the ground truth every ``stale=False`` served answer must
    match (absent vertex = statically unreached).
    """
    from repro.analytics.verify import csr_from_engine
    from repro.staticalgs.algorithms import (
        static_bfs,
        static_cc,
        static_sssp,
        static_st_connectivity,
    )

    def oracle() -> dict[int, Any]:
        graph = csr_from_engine(engine)
        if kind == "bfs":
            expect, _ = static_bfs(graph, source)
        elif kind == "sssp":
            expect, _ = static_sssp(graph, source)
        elif kind == "cc":
            expect, _ = static_cc(graph)
        elif kind == "st":
            expect, _ = static_st_connectivity(graph, sources)
        elif kind == "widest":
            from repro.algorithms.widest_path import static_widest_path

            expect = static_widest_path(graph, source)
        else:
            raise ValueError(f"no prefix oracle for algorithm kind {kind!r}")
        return expect

    return oracle


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a mixed update+query run.

    ``ratio`` is queries per ingested topology event (0.1 = one query
    per ten events); ``slice_actions`` bounds each ingest slice in DES
    actions, setting the query interleaving granularity.
    """

    ratio: float = 0.1
    slice_actions: int = 2048
    kinds: tuple[str, ...] | None = None  # None = KINDS_FOR[algo]
    seed: int = 0
    max_queries: int | None = None
    # Converged-tail batch served once the stream quiesces: ingest-time
    # pauses rarely land exactly on a drained instant, so this batch
    # guarantees every run also exercises the stale-free/cache-hit path.
    final_queries: int = 64

    @classmethod
    def from_spec(cls, spec: str) -> "WorkloadSpec":
        """Parse ``"ratio=0.5,slice=4096,kinds=point:distance,seed=7,max=10000"``
        (any subset; same shape as ``FaultPlan.from_spec``)."""
        kw: dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"workload spec term {part!r} is not key=value")
            key, _, val = part.partition("=")
            key = key.strip()
            val = val.strip()
            if key == "ratio":
                kw["ratio"] = float(val)
            elif key == "slice":
                kw["slice_actions"] = int(val)
            elif key == "kinds":
                kw["kinds"] = tuple(val.split(":"))
            elif key == "seed":
                kw["seed"] = int(val)
            elif key == "max":
                kw["max_queries"] = int(val)
            elif key == "final":
                kw["final_queries"] = int(val)
            else:
                raise ValueError(f"unknown workload spec key {key!r}")
        if kw.get("ratio", 0.1) < 0:
            raise ValueError("workload ratio must be >= 0")
        if kw.get("slice_actions", 2048) <= 0:
            raise ValueError("workload slice must be > 0")
        return cls(**kw)

    def describe(self) -> str:
        kinds = ":".join(self.kinds) if self.kinds else "auto"
        out = (
            f"ratio={self.ratio:g}, slice={self.slice_actions}, "
            f"kinds={kinds}, seed={self.seed}, final={self.final_queries}"
        )
        if self.max_queries is not None:
            out += f", max={self.max_queries}"
        return out


@dataclass
class WorkloadResult:
    """Everything a mixed run measured."""

    queries: int = 0
    events_ingested: int = 0
    slices: int = 0
    wall_seconds: float = 0.0
    query_seconds: float = 0.0
    latencies_ns: list[int] = field(default_factory=list)
    per_kind: dict[str, int] = field(default_factory=dict)
    stale_served: int = 0
    verified: int = 0
    violations: list[str] = field(default_factory=list)
    cache_stats: dict[str, Any] = field(default_factory=dict)

    def percentile_ns(self, p: float) -> float:
        if not self.latencies_ns:
            return 0.0
        return float(np.percentile(np.array(self.latencies_ns), p))

    @property
    def p50_us(self) -> float:
        return self.percentile_ns(50) / 1e3

    @property
    def p99_us(self) -> float:
        return self.percentile_ns(99) / 1e3

    @property
    def qps(self) -> float:
        """Serving throughput over pure query time (what a dedicated
        serving thread would sustain against this engine state)."""
        return self.queries / self.query_seconds if self.query_seconds else 0.0

    @property
    def hit_rate(self) -> float:
        hits = self.cache_stats.get("hits", 0)
        misses = self.cache_stats.get("misses", 0)
        return hits / (hits + misses) if hits + misses else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "queries": self.queries,
            "events_ingested": self.events_ingested,
            "slices": self.slices,
            "wall_seconds": self.wall_seconds,
            "query_seconds": self.query_seconds,
            "qps": self.qps,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "per_kind": dict(self.per_kind),
            "stale_served": self.stale_served,
            "hit_rate": self.hit_rate,
            "verified": self.verified,
            "violations": len(self.violations),
            "cache": dict(self.cache_stats),
        }


class MixedWorkloadDriver:
    """Interleave saturation ingest with served query batches.

    Parameters
    ----------
    serving:
        The :class:`ServingLayer` over a live engine backend.
    spec:
        The :class:`WorkloadSpec` mix shape.
    pool:
        Candidate query target vertices (typically the stream's vertex
        universe).  Targets are drawn uniformly with a seeded RNG, so
        a given (spec, pool) replays identically.
    algo:
        Algorithm family key (``KINDS_FOR``) — picks the issued query
        kinds and the unreached convention.
    aux:
        Family extras: for ``st``, the list of registered source bits
        to probe; ignored otherwise.
    oracle_fn:
        Optional prefix oracle (see :func:`make_prefix_oracle`).  When
        given, every ``stale=False`` answer in a batch is checked
        against the oracle recomputed once per batch; mismatches are
        recorded as envelope violations (and are test failures — the
        stale flag is a *guarantee*, not a hint).
    """

    def __init__(
        self,
        serving,
        spec: WorkloadSpec,
        pool,
        algo: str,
        aux: list[int] | None = None,
        oracle_fn: Callable[[], dict[int, Any]] | None = None,
        max_violations: int = 32,
    ):
        if algo not in KINDS_FOR:
            raise ValueError(f"unknown algorithm family {algo!r}")
        self.serving = serving
        self.spec = spec
        self.pool = np.asarray(pool, dtype=np.int64)
        if len(self.pool) == 0:
            raise ValueError("query target pool is empty")
        self.algo = algo
        self.aux = aux or []
        self.oracle_fn = oracle_fn
        self.max_violations = max_violations
        self.kinds = tuple(spec.kinds) if spec.kinds else KINDS_FOR[algo]
        for k in self.kinds:
            if k not in KINDS_FOR[algo]:
                raise ValueError(
                    f"query kind {k!r} not available for {algo!r} "
                    f"(choose from {KINDS_FOR[algo]})"
                )
        self.rng = np.random.default_rng(spec.seed)
        self.prog = serving.backend.prog_names[0] if serving.backend.prog_names else None

    # ------------------------------------------------------------------
    def run(self) -> WorkloadResult:
        """Drive ingest to quiescence, serving query batches between
        slices; returns the measured :class:`WorkloadResult`."""
        serving = self.serving
        engine = serving.backend.engine
        spec = self.spec
        res = WorkloadResult()
        carry = 0.0
        last_wm = engine.ingest_watermark()
        t_start = time.perf_counter()
        while True:
            engine.run(max_actions=spec.slice_actions)
            res.slices += 1
            wm = engine.ingest_watermark()
            carry += (wm - last_wm) * spec.ratio
            last_wm = wm
            n = int(carry)
            carry -= n
            if spec.max_queries is not None:
                n = min(n, spec.max_queries - res.queries)
            if n > 0:
                self._serve_batch(n, res)
            if engine.loop.quiescent():
                break
        n = spec.final_queries
        if spec.max_queries is not None:
            n = min(n, spec.max_queries - res.queries)
        if n > 0:
            self._serve_batch(n, res)
        res.wall_seconds = time.perf_counter() - t_start
        res.events_ingested = engine.ingest_watermark()
        res.cache_stats = serving.cache.stats()
        return res

    def serve_only(self, n: int) -> WorkloadResult:
        """Serve ``n`` queries with no ingest interleaving — the mp
        (frozen-harvest) serving mode, where the state is already
        quiescent and every answer must come back ``stale=False``."""
        res = WorkloadResult()
        t_start = time.perf_counter()
        self._serve_batch(n, res)
        res.wall_seconds = time.perf_counter() - t_start
        res.cache_stats = self.serving.cache.stats()
        return res

    # ------------------------------------------------------------------
    def _serve_batch(self, n: int, res: WorkloadResult) -> None:
        serving = self.serving
        oracle = self.oracle_fn() if self.oracle_fn is not None else None
        targets = self.rng.choice(self.pool, size=n)
        kind_picks = self.rng.integers(0, len(self.kinds), size=n)
        t0 = time.perf_counter()
        for i in range(n):
            kind = self.kinds[kind_picks[i]]
            v = int(targets[i])
            q0 = time.perf_counter_ns()
            result, aux = self._issue(kind, v)
            res.latencies_ns.append(time.perf_counter_ns() - q0)
            res.queries += 1
            res.per_kind[kind] = res.per_kind.get(kind, 0) + 1
            if result.stale:
                res.stale_served += 1
            elif oracle is not None:
                res.verified += 1
                err = self._check(kind, v, aux, result, oracle)
                if err and len(res.violations) < self.max_violations:
                    res.violations.append(err)
        res.query_seconds += time.perf_counter() - t0

    def _issue(self, kind: str, v: int):
        """Issue one query; returns (QueryResult, aux) where aux is the
        second operand (peer vertex or source bit) if any."""
        s = self.serving
        if kind == "point":
            return s.point(self.prog, v), None
        if kind == "distance":
            return s.distance(self.prog, v), None
        if kind == "reachable":
            return s.reachable(self.prog, v), None
        if kind == "capacity":
            return s.capacity(self.prog, v), None
        if kind == "component":
            u = int(self.rng.choice(self.pool))
            return s.same_component(self.prog, u, v), u
        if kind == "connected":
            bit = int(self.rng.integers(0, max(len(self.aux), 1)))
            return s.connected_to(self.prog, v, bit), bit
        raise AssertionError(f"unhandled query kind {kind!r}")

    def _check(
        self, kind: str, v: int, aux, result, oracle: dict[int, Any]
    ) -> str | None:
        """Differential envelope check for one stale=False answer;
        returns a mismatch description or None."""
        unreached = UNREACHED[self.algo]
        got = result.value
        if kind == "point":
            want = oracle.get(v)
            if want is None:
                if not unreached(got):
                    return f"point {v}: served {got!r}, statically unreached"
            elif got != want:
                return f"point {v}: served {got!r}, static {want!r}"
        elif kind in ("distance", "capacity"):
            want = oracle.get(v)
            if (got is None) != (want is None):
                return f"{kind} {v}: served {got!r}, static {want!r}"
            if got is not None and got != want:
                return f"{kind} {v}: served {got!r}, static {want!r}"
        elif kind == "reachable":
            want = v in oracle
            if got != want:
                return f"reachable {v}: served {got}, static {want}"
        elif kind == "component":
            u = aux
            lu, lv = oracle.get(u, 0), oracle.get(v, 0)
            want = bool(lu != 0 and lu == lv)
            if got != want:
                return f"component ({u},{v}): served {got}, static {want}"
        elif kind == "connected":
            bit = aux
            want = bool(oracle.get(v, 0) >> bit & 1)
            if got != want:
                return f"connected ({v},bit {bit}): served {got}, static {want}"
        return None
