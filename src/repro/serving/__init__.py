"""On-line query serving against live REMO state (DESIGN.md §10).

Sub-millisecond point reads — distance, component membership,
reachability, widest-path capacity — served *during* ingest via a
stable-value cache with monotone-bound admission, falling back to
bounded-staleness live reads with an explicit
``(value, as_of_vtime, stale)`` envelope.
"""

from repro.serving.cache import StableValueCache
from repro.serving.server import (
    EngineBackend,
    FrozenBackend,
    QueryResult,
    ServingLayer,
)
from repro.serving.workload import (
    KINDS_FOR,
    MixedWorkloadDriver,
    WorkloadResult,
    WorkloadSpec,
    make_prefix_oracle,
)

__all__ = [
    "StableValueCache",
    "EngineBackend",
    "FrozenBackend",
    "QueryResult",
    "ServingLayer",
    "KINDS_FOR",
    "MixedWorkloadDriver",
    "WorkloadResult",
    "WorkloadSpec",
    "make_prefix_oracle",
]
