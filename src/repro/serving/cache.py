"""The stable-value cache: O(1) point reads for provably converged state.

The serving layer's core perf mechanism, after Afarin et al.'s stable
vertex values (PAPERS.md): for a REMO program a vertex's value moves
*monotonically* toward its static answer and never overshoots it, so
there are two moments at which a value is provably done changing —

* **absorbing** — the value equals a known monotone bound (the static
  answer on the *full* intended stream).  Monotone convergence makes
  equality absorbing: the value can never move again, ever, so the
  entry survives even bulk value flushes.  This argument needs an
  insert-only source — under §VI-B deletes values are not monotone and
  equality with the bound is revisitable, so the serving layer refuses
  absorbing admission (and demotes stale absorbing entries) the moment
  a delete-carrying stream is attached;
* **settled** — the engine is drained (or the freshness probe proved
  lag zero at an unchanged write epoch), i.e. the value is the
  converged answer on the *ingested-so-far* prefix.  It may still
  change when future stream events arrive, which is why every per-event
  value write fires the engine's ``on_write`` hook site
  (:mod:`repro.runtime.plugins`) and drops the entry.

Either way, a cached entry always equals the live engine value — the
per-write invalidation hook guarantees coherence — so a cache hit is an
exact substitute for a live read that costs one dict probe instead of
touching engine state at all.

Keyed by ``(prog, vertex)`` as two levels of dict; the hot invalidation
path (`invalidate`) is a get + pop, cheap enough to ride every value
write once any entries exist (the ServingLayer installs the hook
lazily so an idle serving layer costs nothing).
"""

from __future__ import annotations

from typing import Any

#: Cache entry tuple layout: (value, admitted_vtime, absorbing).
Entry = tuple[Any, float, bool]


class StableValueCache:
    """Per-program stable-value store with hit/miss/invalidation stats."""

    __slots__ = ("_entries", "hits", "misses", "admissions", "invalidations")

    def __init__(self, n_progs: int) -> None:
        self._entries: list[dict[int, Entry]] = [dict() for _ in range(n_progs)]
        self.hits = 0
        self.misses = 0
        self.admissions = 0
        self.invalidations = 0

    # -- read path -------------------------------------------------------
    def lookup(self, prog: int, vertex: int) -> Entry | None:
        """The entry for ``(prog, vertex)``, counting the hit/miss."""
        entry = self._entries[prog].get(vertex)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    # -- admission -------------------------------------------------------
    def admit(
        self, prog: int, vertex: int, value: Any, vtime: float, absorbing: bool
    ) -> None:
        self._entries[prog][vertex] = (value, vtime, absorbing)
        self.admissions += 1

    # -- invalidation ----------------------------------------------------
    def invalidate(self, prog: int, vertex: int, _value: Any = None) -> None:
        """Per-write hook: the engine wrote ``(prog, vertex)``; drop the
        entry (absorbing included — a write to an absorbed vertex can
        only restate the same value, so dropping is merely a re-miss).
        Matches the ``on_write`` hook-site signature; the written value
        is irrelevant to invalidation and ignored."""
        if self._entries[prog].pop(vertex, None) is not None:
            self.invalidations += 1

    def demote(self, prog: int, vertex: int) -> None:
        """Reclassify the hit just counted for ``(prog, vertex)`` as a
        miss and drop the entry: the caller found the entry's absorbing
        claim no longer valid (a delete-carrying stream was attached
        after admission) and falls through to a live read."""
        self.hits -= 1
        self.misses += 1
        if self._entries[prog].pop(vertex, None) is not None:
            self.invalidations += 1

    def flush_prog(self, prog: int, keep_absorbing: bool = True) -> None:
        """Bulk-flush hook: values for ``prog`` were rewritten outside
        the per-write path; drop everything except absorbing entries
        (their monotone bound holds regardless of how values flow).

        ``keep_absorbing=False`` drops absorbing entries too — required
        once the source streams carry deletes (§VI-B): under deletes a
        value can move *away* from the full-stream bound again, so
        "equals the bound" is no longer an absorbing state and a bulk
        rewrite may strand the entry incoherent."""
        entries = self._entries[prog]
        doomed = [
            v for v, e in entries.items() if not (keep_absorbing and e[2])
        ]
        for v in doomed:
            del entries[v]
        self.invalidations += len(doomed)

    def clear(self) -> None:
        for d in self._entries:
            d.clear()

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return sum(len(d) for d in self._entries)

    def size(self, prog: int) -> int:
        return len(self._entries[prog])

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "admissions": self.admissions,
            "invalidations": self.invalidations,
        }
