"""Crash-recovery orchestration: checkpoints, rollback, replay.

The recovery model is **whole-cluster rollback**: losing any rank loses
its un-checkpointed vertex state, and because REMO state is globally
entangled (a lost BFS level invalidates levels derived from it), the
prototype restarts the cluster from the last quiescent checkpoint
rather than attempting per-rank log replay.  What makes this cheap is
the paper's own algorithm class: REMO programs are monotone and
interleaving-independent, so replaying the event-stream suffix after
the checkpoint — in whatever order the new incarnation produces —
converges to exactly the static answer.

Delete-carrying (churn) streams stay recoverable, with a sharper
argument: raw generational state (epochs, restart initiators, parents)
is *not* interleaving-independent, but its value **projections**
(distance, label, mask, capacity) are — they equal the static answer on
the final topology.  A quiescent checkpoint is a consistent generational
cut (epoch counters ride the vertex values, see
:mod:`repro.runtime.checkpoint`), so an incarnation that replays the
suffix — deletes included — quiesces with the same projections as a
fault-free run, even though its epoch tags may differ.  Recovery tests
must therefore compare projections, never raw generational tuples.

One run under a :class:`~repro.faults.FaultPlan` is therefore a
sequence of *incarnations*:

1. build a fresh engine (factory), attach the reliable transport,
   restore the last checkpoint if one exists (or run the caller's init
   function on the very first incarnation);
2. rebuild the streams (factory) and ``seek()`` each to the replay
   position saved in the checkpoint's ``extra`` payload;
3. drive the engine in segments bounded by the next checkpoint instant
   and the next scheduled crash;
4. a checkpoint pauses the sources, drains to quiescence (including
   every outstanding retransmission), saves, and resumes;
5. a crash discards the engine mid-flight — no draining, no goodbye —
   and loops back to step 1.

Crash and checkpoint instants are interpreted in each incarnation's own
virtual clock (which restarts at zero on rollback); the fault plan's
random generator is *not* reset, so the whole multi-incarnation run is
one deterministic replayable sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.events.stream import EventStream
from repro.runtime.checkpoint import load_checkpoint, save_checkpoint
from repro.runtime.engine import DynamicEngine
from repro.runtime.plugins import FaultInjectionPlugin


@dataclass
class FaultRunResult:
    """Outcome of a fault-tolerant run (the final incarnation's engine
    plus bookkeeping summed over every incarnation)."""

    engine: DynamicEngine
    virtual_time: float  # summed makespans of all incarnations
    incarnations: int
    recoveries: int  # crashes survived (incarnations - 1)
    checkpoints: int  # checkpoints written
    events_replayed: int  # source events re-ingested after rollbacks
    wire: dict[str, int] = field(default_factory=dict)  # summed transport counters


class FaultTolerantRunner:
    """Drives a workload to completion under a fault plan.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable returning a *fresh* engine with identical
        configuration every time (each incarnation gets a new one).
    stream_factory:
        Zero-argument callable returning the same list of streams, in
        the same order with identical contents, every time (rebuild
        from the same seed — streams must be deterministic for replay).
    plan:
        The :class:`~repro.faults.FaultPlan`; its crash events are
        consumed here, one per incarnation, in time order.
    checkpoint_path:
        Where the (single, overwritten) checkpoint lives.
    checkpoint_interval:
        Virtual seconds between checkpoints, or None for none (a crash
        then rolls all the way back to the start).
    init_fn:
        Called with the engine on the first incarnation only (register
        sources via ``init_program`` etc.); restored incarnations carry
        that state in the checkpoint.
    """

    def __init__(
        self,
        engine_factory: Callable[[], DynamicEngine],
        stream_factory: Callable[[], Sequence[EventStream]],
        plan: Any,
        checkpoint_path: str | Path,
        checkpoint_interval: float | None = None,
        init_fn: Callable[[DynamicEngine], None] | None = None,
        max_incarnations: int = 32,
    ):
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be > 0, got {checkpoint_interval}"
            )
        self.engine_factory = engine_factory
        self.stream_factory = stream_factory
        self.plan = plan
        self.checkpoint_path = Path(checkpoint_path)
        self.checkpoint_interval = checkpoint_interval
        self.init_fn = init_fn
        self.max_incarnations = max_incarnations

    # ------------------------------------------------------------------
    def run(self) -> FaultRunResult:
        """Run to completion; returns the final engine + bookkeeping."""
        crashes = list(self.plan.crashes)
        have_ckpt = False
        incarnations = 0
        checkpoints = 0
        events_replayed = 0
        total_vt = 0.0
        wire: dict[str, int] = {}
        while True:
            if incarnations >= self.max_incarnations:
                raise RuntimeError(
                    f"no completion after {incarnations} incarnations "
                    "(crash schedule denser than checkpoint progress?)"
                )
            incarnations += 1
            engine = self.engine_factory()
            # Register through the plugin registry (the enable_faults
            # sugar does exactly this): each incarnation is a fresh
            # engine, so the "faults" name never collides.
            engine.plugins.register_late(FaultInjectionPlugin(self.plan), engine)
            streams = list(self.stream_factory())
            if have_ckpt:
                extra = load_checkpoint(engine, self.checkpoint_path)
                positions = extra.get("stream_positions", {})
                for i, s in enumerate(streams):
                    s.seek(positions.get(i, 0))
            elif self.init_fn is not None:
                self.init_fn(engine)
            if incarnations > 1:
                events_replayed += sum(s.remaining() for s in streams)
            engine.attach_streams(streams)
            crash_time = crashes[0].time if crashes else None
            crashed, n_ckpts = self._drive(engine, streams, crash_time)
            checkpoints += n_ckpts
            if n_ckpts:
                have_ckpt = True
            total_vt += engine.loop.max_time()
            for k, v in engine.transport.counters().items():
                wire[k] = wire.get(k, 0) + v
            if crashed:
                crashes.pop(0)
                continue
            recoveries = incarnations - 1
            if engine.metrics is not None:
                engine.metrics.inc("recoveries", recoveries)
                engine.metrics.inc("checkpoints", checkpoints)
            return FaultRunResult(
                engine=engine,
                virtual_time=total_vt,
                incarnations=incarnations,
                recoveries=recoveries,
                checkpoints=checkpoints,
                events_replayed=events_replayed,
                wire=wire,
            )

    # ------------------------------------------------------------------
    def _drive(
        self,
        engine: DynamicEngine,
        streams: Sequence[EventStream],
        crash_time: float | None,
    ) -> tuple[bool, int]:
        """Drive one incarnation; returns (crashed, checkpoints_taken)."""
        interval = self.checkpoint_interval
        next_ckpt = interval
        n_ckpts = 0
        while True:
            bounds = [b for b in (next_ckpt, crash_time) if b is not None]
            boundary = min(bounds) if bounds else None
            engine.run(max_virtual_time=boundary)
            if engine.loop.quiescent():
                # Sources exhausted and every message drained: done —
                # any scheduled crash after this instant is moot.
                return (False, n_ckpts)
            if crash_time is not None and boundary == crash_time:
                # The rank dies mid-flight: no draining, no goodbye.
                if engine.tracer is not None:
                    victim = (
                        self.plan.crashes[0].rank
                        if self.plan.crashes and self.plan.crashes[0].rank >= 0
                        else 0
                    )
                    engine.tracer.instant(
                        victim, "fault/crash", crash_time, "fault", {}
                    )
                return (True, n_ckpts)
            self._checkpoint(engine, streams)
            n_ckpts += 1
            next_ckpt += interval

    def _checkpoint(
        self, engine: DynamicEngine, streams: Sequence[EventStream]
    ) -> None:
        """Pause sources, drain to quiescence, save, resume."""
        loop = engine.loop
        paused = [
            r
            for r in range(engine.config.n_ranks)
            if engine._streams[r] is not None and not engine._stream_done[r]
        ]
        for r in paused:
            loop.set_source_active(r, False)
        engine.run()  # drain: in-flight visitors, retransmits, acks
        positions = {i: s.position for i, s in enumerate(streams)}
        save_checkpoint(
            engine, self.checkpoint_path, extra={"stream_positions": positions}
        )
        if engine.metrics is not None:
            engine.metrics.inc("checkpoints_taken")
        if engine.tracer is not None:
            engine.tracer.instant(
                engine.config.coordinator_rank,
                "fault/checkpoint",
                loop.max_time(),
                "fault",
                {"positions": positions},
            )
        for r in paused:
            s = engine._streams[r]
            if s is not None and not s.exhausted:
                loop.set_source_active(r, True)
        if engine.sampler is not None:
            # The sampler saw quiescence during the drain and stopped;
            # re-arm it for the resumed segment (next fresh instant to
            # avoid a duplicate row at the drain time).
            engine.sampler._next_t += engine.sampler.interval
            engine.sampler.schedule()
