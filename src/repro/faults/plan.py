"""Seeded virtual-time fault schedules.

A :class:`FaultPlan` is the single source of hostility for a run: the
wire consults it once per frame (drop / duplicate / delay), and the
fault-tolerant runner consults its crash/stall event lists.  Everything
is driven by one seeded generator, so a plan replays identically —
including across crash recoveries, because the generator's state simply
continues into the next incarnation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

US = 1e-6


@dataclass(frozen=True)
class RankCrash:
    """Kill one rank (whole-cluster rollback) at a virtual instant.

    ``rank`` < 0 lets the plan pick a victim with its own generator.
    """

    time: float
    rank: int = -1


@dataclass(frozen=True)
class RankStall:
    """Freeze one rank for ``duration`` virtual seconds (GC pause / OS
    hiccup): the rank services nothing while frozen; peers keep sending
    and the reliability layer absorbs the resulting retransmissions."""

    time: float
    rank: int = -1
    duration: float = 200.0 * US


class FaultPlan:
    """One run's worth of scheduled misfortune.

    Parameters
    ----------
    drop, dup, delay:
        Per-frame probabilities (disjoint: one uniform draw per frame
        is bucketed drop → dup → delay → ok).  ``drop`` is capped at
        0.5 — above that, retransmission becomes a coin-flip gambler's
        ruin and runs stop terminating in reasonable virtual time.
    delay_scale:
        Upper bound of the uniform extra latency (also used as the
        duplicate copy's lag).
    crashes, stalls:
        :class:`RankCrash` / :class:`RankStall` events, consumed in
        time order by the runner / engine.
    seed:
        Seeds the single generator behind frame fates and victim picks.
    """

    def __init__(
        self,
        drop: float = 0.0,
        dup: float = 0.0,
        delay: float = 0.0,
        delay_scale: float = 50.0 * US,
        crashes: tuple[RankCrash, ...] | list[RankCrash] = (),
        stalls: tuple[RankStall, ...] | list[RankStall] = (),
        seed: int = 0,
    ):
        for name, p in (("drop", drop), ("dup", dup), ("delay", delay)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if drop > 0.5:
            raise ValueError(f"drop must be <= 0.5, got {drop}")
        if drop + dup + delay > 1.0:
            raise ValueError("drop + dup + delay must not exceed 1")
        if delay_scale < 0:
            raise ValueError(f"delay_scale must be >= 0, got {delay_scale}")
        self.drop = float(drop)
        self.dup = float(dup)
        self.delay = float(delay)
        self.delay_scale = float(delay_scale)
        self.crashes = sorted(crashes, key=lambda c: c.time)
        self.stalls = sorted(stalls, key=lambda s: s.time)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def frame_fate(self) -> tuple[str, float]:
        """Decide one frame's fate: ``("ok"|"drop"|"dup"|"delay", lag)``.

        ``lag`` is the extra in-flight latency for a delayed frame, or
        the duplicate copy's lag behind the original.
        """
        r = self.rng.random()
        if r < self.drop:
            return ("drop", 0.0)
        if r < self.drop + self.dup:
            return ("dup", float(self.rng.uniform(0.0, self.delay_scale)))
        if r < self.drop + self.dup + self.delay:
            return ("delay", float(self.rng.uniform(0.0, self.delay_scale)))
        return ("ok", 0.0)

    def pick_rank(self, n_ranks: int) -> int:
        """Choose a victim rank for an event that left it unspecified."""
        return int(self.rng.integers(n_ranks))

    def describe(self) -> dict:
        """JSON-safe summary (benchmark/CLI reports)."""
        return {
            "drop": self.drop,
            "dup": self.dup,
            "delay": self.delay,
            "delay_scale": self.delay_scale,
            "seed": self.seed,
            "crashes": [(c.time, c.rank) for c in self.crashes],
            "stalls": [(s.time, s.rank, s.duration) for s in self.stalls],
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, time_scale: float = 1.0) -> "FaultPlan":
        """Parse a CLI-style plan spec.

        ``spec`` is comma-separated ``key=value`` pairs::

            drop=0.1,dup=0.02,delay=0.05,seed=7,crash=0.5,stall=0.3

        ``crash``/``stall`` may repeat; their values are *fractions* of
        the run's estimated makespan and are multiplied by
        ``time_scale`` to become virtual instants (the CLI passes its
        makespan estimate).  A stall may carry a duration in virtual
        microseconds as ``stall=FRAC:US``.
        """
        kwargs: dict = {}
        crashes: list[RankCrash] = []
        stalls: list[RankStall] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad fault spec item {part!r} (need key=value)")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "crash":
                crashes.append(RankCrash(time=float(value) * time_scale))
            elif key == "stall":
                frac, _, dur = value.partition(":")
                duration = float(dur) * US if dur else RankStall.duration
                stalls.append(
                    RankStall(time=float(frac) * time_scale, duration=duration)
                )
            elif key in ("drop", "dup", "delay", "delay_scale"):
                kwargs[key] = float(value)
            elif key == "seed":
                kwargs[key] = int(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return cls(crashes=crashes, stalls=stalls, **kwargs)
