"""Fault injection and crash recovery for the simulated cluster.

The paper's platform runs on thousands of cores for hours; at that
scale message loss and rank failure are operating conditions, not
exceptions.  This subpackage makes the simulator hostile on purpose:

* :class:`~repro.faults.plan.FaultPlan` — a seeded, virtual-time fault
  schedule: per-frame drop/duplicate/delay probabilities for the wire
  (consumed by :class:`repro.comm.channel.ReliableDelivery`), plus
  rank crash and stall events at chosen virtual instants;
* :class:`~repro.faults.runner.FaultTolerantRunner` — orchestrates a
  run under a plan: periodic quiescent checkpoints, whole-cluster
  rollback on a crash (fresh engine + last checkpoint + stream
  ``seek()`` to the saved positions), replaying the suffix until the
  workload completes.  REMO algorithms make the replay safe: they are
  monotone and interleaving-independent, so re-processing a suffix
  converges to the same answer as the fault-free run.
"""

from repro.faults.plan import FaultPlan, RankCrash, RankStall
from repro.faults.runner import FaultRunResult, FaultTolerantRunner

__all__ = [
    "FaultPlan",
    "RankCrash",
    "RankStall",
    "FaultRunResult",
    "FaultTolerantRunner",
]
