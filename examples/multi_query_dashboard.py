#!/usr/bin/env python
"""An on-line analytics "dashboard": many live queries, one topology.

The paper's stated design target (§I): "the code implementing various
algorithms is separated from the underlying infrastructure and multiple
algorithms can be executed simultaneously (i.e. maintain their state)
on the same underlying dynamic data structure, thus enabling support
for multiple queries."  The prototype in the paper supports hooking one
algorithm; this reproduction supports many — here five at once:

* deterministic BFS with parent tree (who is upstream of whom),
* weighted shortest paths from a service hub,
* connected components (is the network fragmenting?),
* multi-source connectivity with a reachability trigger,
* per-vertex degree with a hotspot trigger,

over one simulated web-infrastructure graph, with a versioned global
snapshot taken mid-stream and all five verified against their static
oracles at the end.

Run:  python examples/multi_query_dashboard.py
"""

import numpy as np

from repro import (
    DegreeTracker,
    DeterministicBFS,
    DynamicEngine,
    EngineConfig,
    INF,
    IncrementalCC,
    IncrementalSSSP,
    MultiSTConnectivity,
    split_streams,
    throughput_report,
)
from repro.analytics import verify_cc, verify_sssp, verify_st
from repro.generators import rmat_edges
from repro.generators.weights import pairwise_weights

RANKS = 12
SCALE = 10


def main() -> None:
    rng = np.random.default_rng(4242)
    src, dst = rmat_edges(SCALE, edge_factor=12, rng=rng)
    weights = pairwise_weights(src, dst, 1, 40)
    hub = int(src[0])
    print(f"{len(src):,} link events over {RANKS} ranks; hub vertex {hub}")

    bfs = DeterministicBFS()
    sssp = IncrementalSSSP()
    cc = IncrementalCC()
    st = MultiSTConnectivity()
    degree = DegreeTracker()
    engine = DynamicEngine(
        [bfs, sssp, cc, st, degree], EngineConfig(n_ranks=RANKS)
    )

    engine.init_program("det-bfs", hub)
    engine.init_program("sssp", hub)
    monitors = sorted({int(v) for v in dst[:3]})
    for m in monitors:
        engine.init_program("st", m, payload=st.register_source(m))

    hotspots: list[int] = []
    engine.add_trigger(
        "degree",
        lambda v, deg: deg >= 100,
        lambda v, deg, t: hotspots.append(v),
    )
    reachable_events: list[tuple[int, float]] = []
    engine.add_trigger(
        "st",
        lambda v, mask: mask != 0,
        lambda v, mask, t: reachable_events.append((v, t)),
        vertex=hub,
    )

    engine.attach_streams(split_streams(src, dst, RANKS, weights=weights, rng=rng))
    engine.request_collection("cc", at_time=2e-3)
    engine.run()

    print("\n--- dashboard after quiescence ---")
    tree = engine.state("det-bfs")
    reached = {v: val for v, val in tree.items() if val != 0 and val[0] < INF}
    print(f"BFS: {len(reached):,} vertices reachable from hub; "
          f"deepest level {max(v[0] for v in reached.values())}")
    costs = [v for v in engine.state("sssp").values() if 0 < v < INF]
    print(f"SSSP: median cost from hub {int(np.median(costs))}")
    labels = {v for v in engine.state("cc").values() if v}
    print(f"CC: {len(labels)} components")
    if reachable_events:
        v, t = reachable_events[0]
        print(f"ST trigger: hub first reached a monitored vertex at t={t * 1e3:.2f}ms")
    print(f"degree hotspots (>=100 edges): {len(set(hotspots))} vertices")
    snap = engine.collection_results[0]
    print(f"mid-stream CC snapshot: {snap.vertices_collected:,} vertices, "
          f"latency {snap.latency * 1e6:.0f}us, {snap.probe_waves} probe waves")

    print("\n--- verification against static oracles ---")
    checks = {
        "sssp": verify_sssp(engine, "sssp", hub),
        "cc": verify_cc(engine, "cc"),
        "st": verify_st(engine, "st", monitors),
    }
    for name, mismatches in checks.items():
        print(f"  {name}: {'OK' if not mismatches else mismatches[:2]}")

    print("\n" + throughput_report(engine).summary())


if __name__ == "__main__":
    main()
