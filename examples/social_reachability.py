#!/usr/bin/env python
"""Live influence-distance tracking on a growing social network.

The paper's Fig. 4 scenario: a graph under continuous ingestion, with
global algorithm state collected on demand — *without pausing the
stream* (§III-D).  We grow a Barabási–Albert social network (friendship
events arrive in preferential-attachment order, old users keep making
friends), maintain BFS hop-distance from an "influencer" account, and
take three non-blocking snapshots mid-stream via the Chandy-Lamport-
style versioned collection.  Each snapshot is a consistent view of the
influence frontier at its cut, delivered in fractions of the time a
from-scratch recomputation would take.

Run:  python examples/social_reachability.py
"""

import numpy as np

from repro import (
    CostModel,
    DynamicEngine,
    EngineConfig,
    INF,
    IncrementalBFS,
    split_streams,
)
from repro.generators import barabasi_albert_edges
from repro.staticalgs import static_bfs
from repro.storage.csr import CSRGraph

N_USERS = 3_000
ATTACH = 4
RANKS = 12


def main() -> None:
    rng = np.random.default_rng(2026)
    src, dst = barabasi_albert_edges(N_USERS, ATTACH, rng=rng)
    print(f"{len(src):,} friendship events, {N_USERS:,} users, {RANKS} ranks")

    bfs = IncrementalBFS()
    engine = DynamicEngine([bfs], EngineConfig(n_ranks=RANKS))
    influencer = 0  # the seed vertex every early user attached to
    engine.init_program("bfs", influencer)

    # Estimate the stream duration, then cut three snapshots inside it.
    cm = CostModel()
    per_event = cm.stream_pull_cpu + 2 * (cm.edge_insert_cpu + cm.visit_cpu)
    est_makespan = len(src) * per_event / RANKS
    # Each collection completes in ~100us of virtual time, far less than
    # the spacing between cuts, so the one-at-a-time rule is satisfied.
    for frac in (0.25, 0.5, 0.75):
        engine.request_collection("bfs", at_time=frac * est_makespan)

    engine.attach_streams(split_streams(src, dst, RANKS, rng=rng))
    engine.run()

    print("\nsnapshot    cut-events   reach   median-hops   latency")
    for res in engine.collection_results:
        cut_events = sum(engine.cut_positions[res.collection_id].values())
        reach = {v: l for v, l in res.state.items() if 0 < l < INF}
        median = int(np.median(list(reach.values()))) - 1 if reach else 0
        print(
            f"  t={res.requested_at * 1e3:6.2f}ms  {cut_events:10,}  "
            f"{len(reach):6,}  {median:8}        {res.latency * 1e6:7.1f}us"
        )

    final = {v: l for v, l in engine.state("bfs").items() if 0 < l < INF}
    print(f"\nfinal reach of user {influencer}: {len(final):,} users")

    # What would a from-scratch static recomputation have cost at the end?
    g = CSRGraph.from_edges(src, dst, symmetrize=True)
    _, ops = static_bfs(g, influencer)
    static_virtual = (
        ops.vertex_visits * cm.static_vertex_cpu + ops.edge_scans * cm.static_edge_cpu
    ) / RANKS
    worst_snap = max(r.latency for r in engine.collection_results)
    print(
        f"static BFS from scratch (modelled): {static_virtual * 1e6:.1f}us vs "
        f"worst live-collection latency {worst_snap * 1e6:.1f}us"
    )
    print(
        "(collection latency is dominated by drain/probe rounds and stays "
        "roughly flat as the graph grows, while the static recompute grows "
        "linearly — benchmarks/bench_fig4.py shows the crossover; and the "
        "collection never paused ingestion, unlike a snapshotting pipeline)"
    )


if __name__ == "__main__":
    main()
