#!/usr/bin/env python
"""Real-time fraud-path detection on a payment stream.

The paper motivates on-line analytics with "financial fraud detection"
(§I) and the observation that payment networks are *add-only*: "a
payment that happened in the past is never truly reversed — instead a
new, second payment is created" (§I).  This example models that:

* Accounts are vertices; every payment is an edge-add event (Visa-style
  throughput, thousands of events/s).
* A small set of accounts is sanctioned/blacklisted.  Multi S-T
  Connectivity (Alg. 7) maintains, for every account, *which* sanctioned
  sources can reach it through the payment graph.
* A "When" trigger (§III-E) fires the moment money becomes traceable
  from any sanctioned account into a monitored merchant account — while
  the stream is still flowing, not in a nightly batch.

The synthetic workload plants a laundering chain: sanctioned account ->
three mule hops -> merchant, interleaved into ordinary background
payments.  Run:  python examples/fraud_alert.py
"""

import numpy as np

from repro import (
    DynamicEngine,
    EngineConfig,
    MultiSTConnectivity,
    split_streams,
    throughput_report,
)
from repro.events.types import ADD

N_ACCOUNTS = 2_000
N_PAYMENTS = 12_000
RANKS = 8

SANCTIONED = [1_900, 1_901, 1_902]
MERCHANT = 7
MULES = [1_500, 1_501, 1_502]


def build_payment_stream(rng: np.random.Generator):
    """Background payments + a laundering chain buried mid-stream."""
    src = rng.integers(0, N_ACCOUNTS // 2, size=N_PAYMENTS, dtype=np.int64)
    dst = rng.integers(0, N_ACCOUNTS // 2, size=N_PAYMENTS, dtype=np.int64)
    dst = np.where(dst == src, (dst + 1) % (N_ACCOUNTS // 2), dst)
    amounts = rng.integers(1, 10_000, size=N_PAYMENTS, dtype=np.int64)
    # The chain: sanctioned -> mule1 -> mule2 -> mule3 -> merchant,
    # spread through the middle of the stream.
    chain = [
        (SANCTIONED[0], MULES[0]),
        (MULES[0], MULES[1]),
        (MULES[1], MULES[2]),
        (MULES[2], MERCHANT),
    ]
    positions = np.linspace(N_PAYMENTS * 0.4, N_PAYMENTS * 0.8, len(chain)).astype(int)
    for pos, (a, b) in zip(positions, chain):
        src[pos], dst[pos] = a, b
    return src, dst, amounts


def main() -> None:
    rng = np.random.default_rng(7)
    src, dst, amounts = build_payment_stream(rng)
    print(f"{N_PAYMENTS:,} payments between {N_ACCOUNTS:,} accounts, {RANKS} ranks")

    # Directed: money flows payer -> payee, and taint follows the money.
    st = MultiSTConnectivity()
    engine = DynamicEngine([st], EngineConfig(n_ranks=RANKS, undirected=False))

    for acct in SANCTIONED:
        engine.init_program("st", acct, payload=st.register_source(acct))
    print(f"monitoring flows from sanctioned accounts {SANCTIONED}")

    alerts: list[tuple[int, float]] = []

    def on_alert(vertex: int, mask: int, vtime: float) -> None:
        tainted_by = st.sources_in(mask)
        alerts.append((vertex, vtime))
        print(
            f"  [ALERT] merchant account {vertex} is now reachable from "
            f"sanctioned account(s) {tainted_by} at virtual t={vtime * 1e3:.3f}ms"
        )

    engine.add_trigger("st", lambda v, mask: mask != 0, on_alert, vertex=MERCHANT)

    engine.attach_streams(split_streams(src, dst, RANKS, weights=amounts, rng=rng))
    engine.run()

    assert alerts, "the planted laundering chain must be detected"
    print(f"\nalert latency: fired at {alerts[0][1] * 1e3:.3f}ms of "
          f"{engine.loop.max_time() * 1e3:.3f}ms total stream time")

    # Post-hoc audit: how widely did the taint spread?
    tainted = [v for v, mask in engine.state("st").items() if mask]
    print(f"accounts transitively exposed to sanctioned funds: {len(tainted):,}")
    print("\n" + throughput_report(engine).summary())


if __name__ == "__main__":
    main()
