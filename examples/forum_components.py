#!/usr/bin/env python
"""Live community structure of a Reddit-style forum, with moderation.

The paper's motivating example for add-only dynamism is a forum: "the
bipartite graph between posts and users is only ever appended to as
time moves forward; while a user/post visibility might change (e.g. due
to moderation), the data itself is often never actually deleted" (§I).

This example models both regimes:

1. **Append-only phase** — users comment on posts (bipartite edges);
   incremental Connected Components (Alg. 6) maintains live discussion
   communities; a trigger watches for two seed users ending up in the
   same community.
2. **Moderation phase** — §VI-B territory: a moderator *removes* a
   brigading user's interactions.  The generational CC handles the
   deletes asynchronously, re-labelling the split communities without
   stopping the stream.

Run:  python examples/forum_components.py
"""

import numpy as np

from repro import (
    DynamicEngine,
    EngineConfig,
    GenerationalCC,
    split_streams,
)
from repro.analytics import verify_cc
from repro.events.types import ADD, DELETE

N_USERS = 400
N_POSTS = 150
RANKS = 6

# vertex numbering: users are 0..N_USERS-1, posts N_USERS..N_USERS+N_POSTS-1
POST0 = N_USERS


def community_sizes(engine) -> dict[int, int]:
    sizes: dict[int, int] = {}
    for _v, (gen, label) in engine.state("gen-cc").items():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes


def main() -> None:
    rng = np.random.default_rng(99)

    # Two clustered communities plus a brigading user bridging them.
    def interactions(users, posts, k):
        u = rng.choice(users, size=k)
        p = rng.choice(posts, size=k)
        return np.stack([u, p])

    left = interactions(np.arange(0, 180), np.arange(POST0, POST0 + 70), 800)
    right = interactions(np.arange(200, 380), np.arange(POST0 + 80, POST0 + 150), 800)
    brigader = 399
    bridge = np.array(
        [[brigader, brigader], [POST0 + 10, POST0 + 90]]
    )  # one foot in each community
    src = np.concatenate([left[0], right[0], bridge[0]])
    dst = np.concatenate([left[1], right[1], bridge[1]])
    order = rng.permutation(len(src))
    src, dst = src[order], dst[order]

    cc = GenerationalCC()
    engine = DynamicEngine([cc], EngineConfig(n_ranks=RANKS))

    merged = []
    engine.add_trigger(
        "gen-cc",
        # users 0 and 300 share a community once their labels agree --
        # watch user 0's label flips and compare on the fly.
        lambda v, val: val != 0
        and engine.value_of("gen-cc", 300) != 0
        and val[1] == engine.value_of("gen-cc", 300)[1],
        lambda v, val, t: merged.append(t),
        vertex=0,
        once=True,
    )

    engine.attach_streams(split_streams(src, dst, RANKS))
    engine.run()

    sizes = sorted(community_sizes(engine).values(), reverse=True)
    print(f"after append-only phase: {len(sizes)} communities, largest {sizes[:3]}")
    if merged:
        print(f"  [trigger] users 0 and 300 first shared a community at "
              f"t={merged[0] * 1e3:.2f}ms (the brigader bridged them)")

    # Moderation: delete every interaction of the brigading user.
    mod_events = [
        (DELETE, brigader, int(p), 0)
        for p, _w in [(POST0 + 10, 1), (POST0 + 90, 1)]
    ]
    engine.attach_streams(split_streams(
        np.array([e[1] for e in mod_events]),
        np.array([e[2] for e in mod_events]),
        1,
        kinds=np.array([DELETE] * len(mod_events)),
    ))
    engine.run()

    sizes_after = sorted(community_sizes(engine).values(), reverse=True)
    print(f"after moderation deletes: largest communities {sizes_after[:3]}")
    label0 = engine.value_of("gen-cc", 0)[1]
    label300 = engine.value_of("gen-cc", 300)[1]
    print(f"users 0 and 300 same community now? {label0 == label300}")

    mismatches = verify_cc(engine, "gen-cc", value_of=lambda v: v[1])
    print(f"verified against static recompute: "
          f"{'OK' if not mismatches else mismatches[:3]}")


if __name__ == "__main__":
    main()
