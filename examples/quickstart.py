#!/usr/bin/env python
"""Quickstart: live BFS over a streaming graph in ~40 lines.

Builds an RMAT edge stream, splits it across 8 simulated ranks, hooks an
incremental BFS to the stream, and shows the three ways to observe the
result the paper describes (§II-C, §III-E):

1. constant-time *local state* reads while the system runs,
2. a *"When"* trigger firing the instant a condition becomes true,
3. the converged *global state* after quiescence.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DynamicEngine,
    EngineConfig,
    INF,
    IncrementalBFS,
    split_streams,
    throughput_report,
)
from repro.generators import rmat_edges

RANKS = 8
SCALE = 10  # 2**10 vertex universe, 16x edge factor


def main() -> None:
    rng = np.random.default_rng(42)
    src, dst = rmat_edges(SCALE, edge_factor=16, rng=rng)
    print(f"streaming {len(src):,} edge events over {RANKS} ranks")

    bfs = IncrementalBFS()
    engine = DynamicEngine([bfs], EngineConfig(n_ranks=RANKS))

    source = int(src[0])
    engine.init_program("bfs", source)
    print(f"BFS source: vertex {source}")

    # "When" queries: tell me the moment these vertices become reachable.
    watched = sorted({int(v) for v in dst[-5:]})
    for v in watched:
        engine.add_trigger(
            "bfs",
            lambda _v, level: 0 < level < INF,
            lambda v_, level, t: print(
                f"  [trigger] vertex {v_} reachable at level {level} "
                f"(virtual t={t * 1e6:.1f}us)"
            ),
            vertex=v,
        )

    engine.attach_streams(split_streams(src, dst, RANKS, rng=rng))

    # Run the first chunk, peek at live local state, then finish.
    engine.run(max_actions=2_000)
    probe = int(dst[0])
    level = engine.value_of("bfs", probe)
    print(
        f"mid-stream local read: vertex {probe} -> "
        f"{'unseen' if level == 0 else 'unreached' if level >= INF else f'level {level}'}"
    )
    engine.run()

    state = engine.state("bfs")
    reached = {v: l for v, l in state.items() if 0 < l < INF}
    print(f"\nconverged: {len(reached):,} vertices reachable from {source}")
    print(f"max level: {max(reached.values())}")
    print("\n" + throughput_report(engine).summary())


if __name__ == "__main__":
    main()
