"""Tests for the benchmark report assembler."""

from pathlib import Path

from repro.analytics.report import SECTION_ORDER, assemble_report, main


def seed_out(tmp_path: Path, names):
    for name in names:
        (tmp_path / f"{name}.txt").write_text(f"table for {name}\nrow 1")
    return tmp_path


class TestAssemble:
    def test_orders_sections_and_includes_content(self, tmp_path):
        seed_out(tmp_path, ["fig4", "fig3", "table1"])
        report = assemble_report(tmp_path)
        i3 = report.index("Figure 3")
        i4 = report.index("Figure 4")
        it = report.index("Table I")
        assert it < i3 < i4
        assert "table for fig3" in report

    def test_missing_tables_listed(self, tmp_path):
        seed_out(tmp_path, ["fig3"])
        report = assemble_report(tmp_path)
        assert "Missing tables" in report
        assert "`fig7` (bench not run)" in report

    def test_unlisted_extras_appended(self, tmp_path):
        seed_out(tmp_path, ["fig3", "my_new_bench"])
        report = assemble_report(tmp_path)
        assert "my_new_bench (unlisted)" in report

    def test_full_set_has_no_missing_section(self, tmp_path):
        seed_out(tmp_path, [name for name, _ in SECTION_ORDER])
        report = assemble_report(tmp_path)
        assert "Missing tables" not in report


class TestCli:
    def test_writes_file(self, tmp_path, capsys):
        seed_out(tmp_path, ["fig3"])
        out = tmp_path / "report.md"
        assert main([str(tmp_path), str(out)]) == 0
        assert "Figure 3" in out.read_text()

    def test_prints_to_stdout(self, tmp_path, capsys):
        seed_out(tmp_path, ["fig3"])
        assert main([str(tmp_path)]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_usage_error(self):
        assert main([]) == 2
