"""Tests for workload characterisation statistics."""

import numpy as np
import pytest

from repro.analytics.graphstats import component_stats, degree_stats
from repro.generators import barabasi_albert_edges, erdos_renyi_edges, rmat_edges


class TestDegreeStats:
    def test_star_graph(self):
        src = np.zeros(10, dtype=np.int64)
        dst = np.arange(1, 11, dtype=np.int64)
        s = degree_stats(src, dst)
        assert s.n_vertices == 11
        assert s.n_edges == 10
        assert s.max == 10
        assert s.median == 1.0
        assert s.skew == pytest.approx(10 / s.mean)
        assert 0.0 < s.gini < 1.0

    def test_regular_ring_has_low_gini(self):
        n = 100
        src = np.arange(n)
        dst = (src + 1) % n
        s = degree_stats(src, dst)
        assert s.gini == pytest.approx(0.0, abs=1e-9)
        assert s.skew == pytest.approx(1.0)

    def test_empty(self):
        s = degree_stats(np.empty(0, np.int64), np.empty(0, np.int64))
        assert s.n_vertices == 0
        assert s.tail_exponent is None

    def test_rmat_more_skewed_than_er(self):
        rng = np.random.default_rng(0)
        r_src, r_dst = rmat_edges(12, edge_factor=8, rng=rng)
        e_src, e_dst = erdos_renyi_edges(1 << 12, 8 << 12, rng=rng)
        r = degree_stats(r_src, r_dst)
        e = degree_stats(e_src, e_dst)
        assert r.skew > 5 * e.skew
        assert r.gini > e.gini

    def test_ba_tail_exponent_near_three(self):
        rng = np.random.default_rng(1)
        src, dst = barabasi_albert_edges(5000, 3, rng=rng)
        s = degree_stats(src, dst)
        # BA's theoretical exponent is 3; the crude fit lands near it.
        assert s.tail_exponent is not None
        assert 1.8 < s.tail_exponent < 4.5

    def test_describe_readable(self):
        s = degree_stats(np.array([0, 0]), np.array([1, 2]))
        assert "V=3" in s.describe()


class TestComponentStats:
    def test_two_components(self):
        c = component_stats(np.array([0, 5]), np.array([1, 6]))
        assert c.n_components == 2
        assert c.largest == 2
        assert c.largest_fraction == pytest.approx(0.5)

    def test_single_giant_component(self):
        src = np.arange(50)
        dst = np.arange(50) + 1
        c = component_stats(src, dst)
        assert c.n_components == 1
        assert c.largest == 51

    def test_empty(self):
        c = component_stats(np.empty(0, np.int64), np.empty(0, np.int64))
        assert c.n_components == 0
        assert c.largest_fraction == 0.0

    def test_matches_networkx(self):
        import networkx as nx

        rng = np.random.default_rng(2)
        src, dst = erdos_renyi_edges(200, 150, rng=rng)
        c = component_stats(src, dst)
        g = nx.Graph(zip(src.tolist(), dst.tolist()))
        comps = list(nx.connected_components(g))
        assert c.n_components == len(comps)
        assert c.largest == max(len(x) for x in comps)
