"""Tests for the verification helpers and throughput metrics."""

import dataclasses
import json

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    ListEventStream,
)
from repro.analytics.metrics import ThroughputReport
from repro.analytics import (
    csr_from_engine,
    throughput_report,
    verify_bfs,
    verify_cc,
)
from repro.events.types import ADD


def small_engine(events, programs=None, init=None):
    progs = programs or [IncrementalBFS()]
    e = DynamicEngine(progs, EngineConfig(n_ranks=2))
    if init is not None:
        e.init_program(progs[0].name, init)
    e.attach_streams([ListEventStream(events)])
    e.run()
    return e


class TestCsrFromEngine:
    def test_reflects_engine_topology(self):
        e = small_engine([(ADD, 0, 1, 3)], init=0)
        g = csr_from_engine(e)
        assert g.num_edges == 2  # both directions, no extra symmetrize
        assert g.num_vertices == 2
        v0 = g.dense_index(0)
        assert list(g.neighbor_weights(v0)) == [3]


class TestVerifiers:
    def test_verify_bfs_accepts_correct(self):
        e = small_engine([(ADD, 0, 1, 1), (ADD, 1, 2, 1)], init=0)
        assert verify_bfs(e, "bfs", 0) == []

    def test_verify_bfs_detects_wrong_value(self):
        e = small_engine([(ADD, 0, 1, 1)], init=0)
        rank = e.partitioner.owner(1)
        e.values[rank][0][1] = 7  # corrupt
        mm = verify_bfs(e, "bfs", 0)
        assert len(mm) == 1 and "vertex 1" in mm[0]

    def test_verify_bfs_detects_false_reachability(self):
        e = small_engine([(ADD, 0, 1, 1), (ADD, 5, 6, 1)], init=0)
        rank = e.partitioner.owner(5)
        e.values[rank][0][5] = 3  # claims reachable
        assert any("static unreached" in m for m in verify_bfs(e, "bfs", 0))

    def test_verify_bfs_detects_missed_vertex(self):
        e = small_engine([(ADD, 0, 1, 1)], init=0)
        rank = e.partitioner.owner(1)
        del e.values[rank][0][1]
        assert any("dynamic unreached" in m for m in verify_bfs(e, "bfs", 0))

    def test_verify_bfs_with_snapshot_state(self):
        e = small_engine([(ADD, 0, 1, 1)], init=0)
        assert verify_bfs(e, "bfs", 0, state={0: 1, 1: 2}) == []
        assert verify_bfs(e, "bfs", 0, state={0: 1, 1: 9}) != []

    def test_verify_cc_accepts_correct(self):
        e = small_engine([(ADD, 0, 1, 1)], programs=[IncrementalCC()])
        assert verify_cc(e, "cc") == []

    def test_verify_cc_detects_wrong_label(self):
        e = small_engine([(ADD, 0, 1, 1)], programs=[IncrementalCC()])
        rank = e.partitioner.owner(0)
        e.values[rank][0][0] = 12345
        assert verify_cc(e, "cc") != []


class TestThroughputReport:
    def test_report_fields(self):
        e = small_engine([(ADD, i, i + 1, 1) for i in range(20)], init=0)
        rep = throughput_report(e, wall_seconds=0.5)
        assert rep.source_events == 20
        assert rep.n_ranks == 2
        assert rep.events_per_second > 0
        assert rep.visits_per_event > 0
        assert 0 < rep.mean_utilisation <= 1.0
        assert rep.makespan == e.loop.max_time()

    def test_summary_readable(self):
        e = small_engine([(ADD, 0, 1, 1)], init=0)
        text = throughput_report(e, wall_seconds=0.1).summary()
        assert "events=1" in text
        assert "wall time" in text

    def test_zero_event_report(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=1))
        e.attach_streams([ListEventStream([])])
        e.run()
        rep = throughput_report(e)
        assert rep.events_per_second == 0.0
        assert rep.visits_per_event == 0.0


def make_report(**overrides):
    base = dict(
        n_ranks=2,
        source_events=10,
        makespan=1.0,
        visits=20,
        edge_inserts=10,
        edge_deletes=0,
        messages_local=5,
        messages_remote=5,
        control_messages=0,
        busy_time_total=1.0,
    )
    base.update(overrides)
    return ThroughputReport(**base)


class TestThroughputReportEdgeCases:
    def test_zero_makespan_rates_are_zero(self):
        rep = make_report(makespan=0.0, source_events=0, visits=0,
                          busy_time_total=0.0)
        assert rep.events_per_second == 0.0
        assert rep.mean_utilisation == 0.0
        assert rep.visits_per_event == 0.0

    def test_zero_ranks_utilisation_is_zero(self):
        assert make_report(n_ranks=0).mean_utilisation == 0.0

    def test_squash_fraction_zero_without_emissions(self):
        rep = make_report(messages_local=0, messages_remote=0)
        assert rep.squash_fraction == 0.0

    def test_bulk_line_printed_when_enabled_even_with_zero_counters(self):
        # "the fast path never engaged" is itself the signal: a run
        # configured with bulk_ingest=True must always show the line.
        text = make_report(bulk_enabled=True).summary()
        assert "bulk ingest: chunks=0" in text

    def test_bulk_line_suppressed_when_disabled_and_idle(self):
        assert "bulk ingest" not in make_report().summary()

    def test_bulk_line_printed_when_counters_moved(self):
        text = make_report(bulk_chunks=3, bulk_events=9).summary()
        assert "chunks=3" in text and "events=9" in text

    def test_no_wall_line_without_wall_seconds(self):
        assert "wall time" not in make_report().summary()


class TestThroughputReportToDict:
    def test_every_field_and_derived_metric_present(self):
        # Reflection guard: to_dict is the single source of truth for
        # the bench JSON and `run --json`; a new field must show up.
        rep = make_report(wall_seconds=0.5)
        d = rep.to_dict()
        for f in dataclasses.fields(ThroughputReport):
            assert f.name in d, f.name
            assert d[f.name] == getattr(rep, f.name)
        for derived in ("events_per_second", "mean_utilisation",
                        "visits_per_event", "squash_fraction"):
            assert d[derived] == getattr(rep, derived)

    def test_json_ready(self):
        json.dumps(make_report().to_dict())

    def test_engine_report_marks_bulk_enabled(self):
        src = [(ADD, i, i + 1, 1) for i in range(8)]
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=1, bulk_ingest=True))
        e.attach_streams([ListEventStream(src)])
        e.run()
        rep = throughput_report(e)
        assert rep.bulk_enabled is True
        assert "bulk ingest" in rep.summary()
