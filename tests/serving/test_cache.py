"""Unit contract of the stable-value cache (repro.serving.cache)."""

from repro.serving.cache import StableValueCache


class TestLookupAdmit:
    def test_empty_cache_misses(self):
        cache = StableValueCache(2)
        assert cache.lookup(0, 7) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_admit_then_hit_returns_entry(self):
        cache = StableValueCache(1)
        cache.admit(0, 7, value=3, vtime=1.5, absorbing=False)
        entry = cache.lookup(0, 7)
        assert entry == (3, 1.5, False)
        assert cache.hits == 1 and cache.admissions == 1

    def test_programs_are_isolated(self):
        cache = StableValueCache(2)
        cache.admit(0, 7, 3, 0.0, False)
        assert cache.lookup(1, 7) is None
        assert cache.size(0) == 1 and cache.size(1) == 0

    def test_readmission_overwrites(self):
        cache = StableValueCache(1)
        cache.admit(0, 7, 3, 0.0, False)
        cache.admit(0, 7, 2, 1.0, True)
        assert cache.lookup(0, 7) == (2, 1.0, True)
        assert len(cache) == 1


class TestInvalidation:
    def test_invalidate_drops_and_counts(self):
        cache = StableValueCache(1)
        cache.admit(0, 7, 3, 0.0, False)
        cache.invalidate(0, 7)
        assert cache.lookup(0, 7) is None
        assert cache.invalidations == 1

    def test_invalidate_absent_is_free(self):
        cache = StableValueCache(1)
        cache.invalidate(0, 99)
        assert cache.invalidations == 0

    def test_invalidate_drops_absorbing_too(self):
        # A write to an absorbed vertex can only restate the bound, so
        # dropping is safe (merely a re-miss) — and simpler than
        # branching on the per-write hot path.
        cache = StableValueCache(1)
        cache.admit(0, 7, 3, 0.0, absorbing=True)
        cache.invalidate(0, 7)
        assert cache.lookup(0, 7) is None

    def test_flush_prog_keeps_only_absorbing(self):
        cache = StableValueCache(2)
        cache.admit(0, 1, 10, 0.0, absorbing=True)
        cache.admit(0, 2, 20, 0.0, absorbing=False)
        cache.admit(1, 3, 30, 0.0, absorbing=False)
        cache.flush_prog(0)
        assert cache.lookup(0, 1) is not None  # monotone bound holds
        assert cache.lookup(0, 2) is None
        assert cache.lookup(1, 3) is not None  # other program untouched
        assert cache.invalidations == 1

    def test_clear_empties_everything(self):
        cache = StableValueCache(2)
        cache.admit(0, 1, 1, 0.0, True)
        cache.admit(1, 2, 2, 0.0, False)
        cache.clear()
        assert len(cache) == 0


class TestStats:
    def test_hit_rate(self):
        cache = StableValueCache(1)
        assert cache.hit_rate == 0.0
        cache.admit(0, 1, 1, 0.0, False)
        cache.lookup(0, 1)
        cache.lookup(0, 2)
        assert cache.hit_rate == 0.5

    def test_stats_dict(self):
        cache = StableValueCache(1)
        cache.admit(0, 1, 1, 0.0, False)
        cache.lookup(0, 1)
        cache.invalidate(0, 1)
        stats = cache.stats()
        assert stats == {
            "entries": 0,
            "hits": 1,
            "misses": 0,
            "hit_rate": 1.0,
            "admissions": 1,
            "invalidations": 1,
        }
