"""Differential envelope verification across all five algorithms.

The acceptance bar for the serving layer: every answer the layer marks
``stale=False`` must equal the static recompute on the exact ingested
prefix — for bfs, sssp, cc, st and widest, under a mixed update+query
workload with the full admission machinery engaged (drained admission,
absorbing reference bounds, per-write invalidation, bulk flush hooks).
The MixedWorkloadDriver's per-batch oracle check does the comparison;
these tests assert it never fires.
"""

import numpy as np
import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    MultiSTConnectivity,
    WidestPath,
)
from repro.events.stream import split_streams
from repro.generators import rmat_edges
from repro.generators.weights import pairwise_weights
from repro.serving import MixedWorkloadDriver, ServingLayer, WorkloadSpec, make_prefix_oracle
from repro.staticalgs.algorithms import (
    static_bfs,
    static_cc,
    static_sssp,
    static_st_connectivity,
)
from repro.storage.csr import CSRGraph

N_RANKS = 4
SCALE = 7
EDGE_FACTOR = 6


def _stream(seed: int, weighted: bool):
    rng = np.random.default_rng(seed)
    src, dst = rmat_edges(SCALE, edge_factor=EDGE_FACTOR, rng=rng)
    weights = pairwise_weights(src, dst, 1, 50) if weighted else None
    return src, dst, weights


def _setup(algo: str, src, dst):
    """Programs, init triples, oracle kwargs and the full-stream
    reference arguments for one algorithm family."""
    source = int(src[0])
    if algo == "bfs":
        return [IncrementalBFS()], [("bfs", source, None)], {"source": source}
    if algo == "sssp":
        return [IncrementalSSSP()], [("sssp", source, None)], {"source": source}
    if algo == "cc":
        return [IncrementalCC()], [], {}
    if algo == "widest":
        return [WidestPath()], [("widest", source, None)], {"source": source}
    st = MultiSTConnectivity()
    sources = []
    for v in np.unique(src)[:3]:
        sources.append(int(v))
    init = [("st", s, st.register_source(s)) for s in sources]
    return [st], init, {"sources": sources}


def _static_final(algo: str, src, dst, weights, oracle_kw):
    graph = CSRGraph.from_edges(src, dst, weights, symmetrize=True)
    if algo == "bfs":
        return static_bfs(graph, oracle_kw["source"])[0]
    if algo == "sssp":
        return static_sssp(graph, oracle_kw["source"])[0]
    if algo == "cc":
        return static_cc(graph)[0]
    if algo == "st":
        return static_st_connectivity(graph, oracle_kw["sources"])[0]
    from repro.algorithms.widest_path import static_widest_path

    return static_widest_path(graph, oracle_kw["source"])


@pytest.mark.parametrize("algo", ["bfs", "sssp", "cc", "st", "widest"])
@pytest.mark.parametrize("with_reference", [False, True])
def test_mixed_workload_envelope(algo, with_reference):
    """Mixed ingest+query run: zero envelope violations, and both the
    live and (with a reference bound) absorbing admission paths taken."""
    src, dst, weights = _stream(seed=3, weighted=algo in ("sssp", "widest"))
    programs, init, oracle_kw = _setup(algo, src, dst)
    engine = DynamicEngine(programs, EngineConfig(n_ranks=N_RANKS))
    for prog, vertex, payload in init:
        engine.init_program(prog, vertex, payload=payload)
    engine.attach_streams(
        split_streams(src, dst, N_RANKS, weights=weights,
                      rng=np.random.default_rng(1))
    )
    serving = ServingLayer(engine)
    if with_reference:
        serving.set_reference(
            programs[0].name, _static_final(algo, src, dst, weights, oracle_kw)
        )
    aux = (
        list(range(len(oracle_kw["sources"]))) if algo == "st" else None
    )
    driver = MixedWorkloadDriver(
        serving,
        WorkloadSpec(ratio=0.3, slice_actions=512, seed=9),
        np.unique(np.concatenate([src, dst])),
        algo,
        aux=aux,
        oracle_fn=make_prefix_oracle(engine, algo, **oracle_kw),
    )
    res = driver.run()
    assert res.violations == []
    assert res.queries > 50
    assert res.verified > 0, "no stale-free answer was ever produced"
    assert res.events_ingested == len(src)
    assert engine.loop.quiescent()


@pytest.mark.parametrize("algo", ["bfs", "sssp", "cc", "st", "widest"])
def test_quiesced_point_reads_equal_static(algo):
    """After quiescence every vertex's served answer is stale-free and
    equals the static answer on the full stream — via the cache."""
    src, dst, weights = _stream(seed=5, weighted=algo in ("sssp", "widest"))
    programs, init, oracle_kw = _setup(algo, src, dst)
    engine = DynamicEngine(programs, EngineConfig(n_ranks=N_RANKS))
    for prog, vertex, payload in init:
        engine.init_program(prog, vertex, payload=payload)
    engine.attach_streams(
        split_streams(src, dst, N_RANKS, weights=weights,
                      rng=np.random.default_rng(2))
    )
    engine.run()
    serving = ServingLayer(engine)
    expect = _static_final(algo, src, dst, weights, oracle_kw)
    name = programs[0].name
    for vertex, want in expect.items():
        res = serving.point(name, vertex)
        assert res.stale is False
        assert res.value == want, f"{algo} vertex {vertex}"
        assert serving.point(name, vertex).source == "cache"
