"""ServingLayer behaviour: envelope semantics, admission, invalidation.

The contract under test (DESIGN.md §10): a ``stale=False`` answer
always equals the static answer on the ingested prefix; a cache entry
always equals the live engine value; the engine pays nothing for an
idle serving layer (hooks install lazily on first admission).
"""

import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    ListEventStream,
    MultiSTConnectivity,
    ServingLayer,
    WidestPath,
)
from repro.algorithms.cc import component_label
from repro.events.types import ADD
from repro.serving import FrozenBackend, QueryResult


def path_engine(n: int = 5, n_ranks: int = 2):
    """BFS over the path 0-1-...-n with the source at 0."""
    e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=n_ranks))
    e.init_program("bfs", 0)
    e.attach_streams([ListEventStream([(ADD, i, i + 1, 1) for i in range(n)])])
    return e


class TestEnvelope:
    def test_drained_read_is_stale_free_live(self):
        e = path_engine()
        e.run()
        serving = ServingLayer(e)
        res = serving.point("bfs", 3)
        assert isinstance(res, QueryResult)
        assert res.value == 4  # source is level 1
        assert res.stale is False
        assert res.source == "live"
        assert res.as_of_vtime == e.vtime()
        assert res.prog == "bfs"

    def test_second_read_hits_cache(self):
        e = path_engine()
        e.run()
        serving = ServingLayer(e)
        first = serving.point("bfs", 3)
        second = serving.point("bfs", 3)
        assert second.source == "cache"
        assert second.value == first.value
        assert second.stale is False

    def test_midrun_read_is_flagged_stale(self):
        e = path_engine(n=12)
        # One action: the stream pull is in flight, nothing propagated.
        e.run(max_actions=1)
        assert not e.drained()
        serving = ServingLayer(e)
        res = serving.point("bfs", 11)
        assert res.stale is True
        assert res.source == "live"
        # Unstable values are not admitted.
        assert len(serving.cache) == 0

    def test_unknown_program_rejected(self):
        e = path_engine()
        serving = ServingLayer(e)
        with pytest.raises(ValueError):
            serving.point("nope", 0)


class TestAdmissionAndInvalidation:
    def test_hooks_install_lazily(self):
        e = path_engine(n=12)
        serving = ServingLayer(e)
        assert e._hk_write == ()  # idle layer: no hook
        e.run(max_actions=1)
        serving.point("bfs", 11)  # stale miss: still no admission
        assert e._hk_write == ()
        e.run()
        serving.point("bfs", 11)  # drained miss: admits, installs
        assert e._hk_write != ()
        assert e._hk_bulk_flush != ()
        serving.close()
        assert e._hk_write == ()
        assert e._hk_bulk_flush == ()

    def test_write_invalidates_cached_entry(self):
        # Path 0-1-2-3-4-5 ingested in two stages; a shortcut edge 0-5
        # then improves vertex 5 (level 6 -> 2), which must evict the
        # cached entry rather than serve the superseded value.
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.init_program("bfs", 0)
        stage1 = ListEventStream([(ADD, i, i + 1, 1) for i in range(5)])
        e.attach_streams([stage1])
        e.run()
        serving = ServingLayer(e)
        assert serving.point("bfs", 5).value == 6
        assert serving.point("bfs", 5).source == "cache"
        e.attach_streams([ListEventStream([(ADD, 0, 5, 1)])])
        e.run()
        res = serving.point("bfs", 5)
        assert res.source == "live"  # entry was invalidated by the write
        assert res.value == 2
        assert serving.cache.invalidations >= 1
        # ...and the improved value re-admits and hits.
        assert serving.point("bfs", 5).source == "cache"

    def test_reference_bound_admits_absorbing_midrun(self):
        # The static-final bound for the path: vertex i is level i+1.
        # Mid-ingest, already-converged vertices serve stale-free even
        # though the engine is not drained.
        e = path_engine(n=12)
        serving = ServingLayer(
            e, references={"bfs": {i: i + 1 for i in range(13)}}
        )
        seen_absorbing = False
        while not e.loop.quiescent():
            e.run(max_actions=40)
            res = serving.point("bfs", 1)
            if not e.drained() and res.value == 2:
                assert res.stale is False  # absorbing: equals the bound
                seen_absorbing = True
        assert seen_absorbing
        assert serving.point("bfs", 1).source == "cache"

    def test_cached_value_always_equals_live(self):
        e = path_engine(n=8)
        serving = ServingLayer(e, references={"bfs": {i: i + 1 for i in range(9)}})
        while not e.loop.quiescent():
            e.run(max_actions=17)
            for v in range(9):
                res = serving.point("bfs", v)
                assert res.value == e.value_of("bfs", v)
        for v in range(9):
            assert serving.point("bfs", v).value == v + 1


class TestTypedQueries:
    def test_distance_normalizes_unreached(self):
        e = path_engine()
        e.run()
        serving = ServingLayer(e)
        assert serving.distance("bfs", 2).value == 3
        assert serving.distance("bfs", 999).value is None
        assert serving.reachable("bfs", 2).value is True
        assert serving.reachable("bfs", 999).value is False

    def test_same_component(self):
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=2))
        events = [(ADD, 0, 1, 1), (ADD, 1, 2, 1), (ADD, 10, 11, 1)]
        e.attach_streams([ListEventStream(events)])
        e.run()
        serving = ServingLayer(e)
        res = serving.same_component("cc", 0, 2)
        assert res.value is True and res.stale is False
        assert serving.same_component("cc", 0, 10).value is False
        assert serving.same_component("cc", 0, 99).value is False
        assert serving.point("cc", 0).value == max(
            component_label(v) for v in (0, 1, 2)
        )

    def test_connected_to_bit(self):
        st = MultiSTConnectivity()
        e = DynamicEngine([st], EngineConfig(n_ranks=2))
        bit = st.register_source(0)
        e.init_program("st", 0, payload=bit)
        e.attach_streams([ListEventStream([(ADD, i, i + 1, 1) for i in range(3)])])
        e.run()
        serving = ServingLayer(e)
        assert serving.connected_to("st", 3, bit).value is True
        assert serving.connected_to("st", 77, bit).value is False

    def test_widest_capacity(self):
        e = DynamicEngine([WidestPath()], EngineConfig(n_ranks=2))
        e.init_program("widest", 0)
        e.attach_streams(
            [ListEventStream([(ADD, 0, 1, 7), (ADD, 1, 2, 3)])]
        )
        e.run()
        serving = ServingLayer(e)
        assert serving.capacity("widest", 1).value == 7
        assert serving.capacity("widest", 2).value == 3  # min along path
        assert serving.capacity("widest", 50).value is None


class TestSubscriptionsAndSnapshots:
    def test_subscribe_unsubscribe(self):
        e = path_engine(n=6)
        serving = ServingLayer(e)
        fired = []
        trig = serving.subscribe(
            "bfs", lambda v, lvl: lvl > 0, lambda v, lvl, t: fired.append(v),
            vertex=6,
        )
        e.run()
        assert fired == [6]
        assert serving.unsubscribe(trig) is True
        assert serving.unsubscribe(trig) is False
        assert serving.metrics.counters["serve_subscriptions"] == 1

    def test_snapshot_returns_collection(self):
        e = path_engine()
        e.run()
        serving = ServingLayer(e)
        result = serving.snapshot("bfs")
        assert result.vertices_collected == 6
        assert dict(result.state) == {i: i + 1 for i in range(6)}


class TestMetrics:
    def test_counters_and_latency_histogram(self):
        e = path_engine()
        e.run()
        serving = ServingLayer(e)
        serving.point("bfs", 1)
        serving.point("bfs", 1)
        m = serving.metrics
        assert m.counters["serve_misses"] == 1
        assert m.counters["serve_hits"] == 1
        assert m.counters["serve_admissions"] == 1
        assert m.histograms["serve_latency_us"].count == 2
        stats = serving.stats()
        assert stats["serve_hits"] == 1
        assert stats["latency_us"]["count"] == 2
        assert stats["watermark"] == 5

    def test_uses_engine_registry_when_sampling(self):
        e = DynamicEngine(
            [IncrementalBFS()],
            EngineConfig(n_ranks=2, sample_interval=1e-4),
        )
        e.init_program("bfs", 0)
        e.attach_streams([ListEventStream([(ADD, 0, 1, 1)])])
        e.run()
        serving = ServingLayer(e)
        assert serving.metrics is e.metrics


class TestFrozenBackend:
    def test_frozen_serving_is_always_stable(self):
        backend = FrozenBackend(["bfs"], [{0: 1, 1: 2, 2: 3}], vtime=4.5)
        serving = ServingLayer(backend)
        res = serving.point("bfs", 1)
        assert res.value == 2 and res.stale is False
        assert res.as_of_vtime == 4.5
        assert serving.point("bfs", 1).source == "cache"
        assert serving.point("bfs", 9).value == 0  # absent = unreached

    def test_frozen_rejects_live_tiers(self):
        serving = ServingLayer(FrozenBackend(["bfs"], [{}]))
        with pytest.raises(RuntimeError):
            serving.subscribe("bfs", lambda v, x: True, lambda *a: None)
        with pytest.raises(RuntimeError):
            serving.snapshot("bfs")

    def test_frozen_prog_resolution(self):
        backend = FrozenBackend(["a", "b"], [{}, {}])
        assert backend.prog_index("b") == 1
        with pytest.raises(ValueError):
            backend.prog_index("c")
        with pytest.raises(ValueError):
            backend.prog_index(2)
        with pytest.raises(ValueError):
            FrozenBackend(["a"], [{}, {}])
