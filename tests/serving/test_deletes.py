"""Serving-layer soundness under delete-carrying streams (§VI-B).

The absorbing admission tier rests on a monotone-bound argument that
only holds for insert-only sources: once a delete-carrying stream is
attached, a value can move *away* from the full-stream bound again, so
"equals the bound" stops being absorbing.  The layer must (a) refuse
new absorbing admissions, (b) demote absorbing entries admitted before
the delete stream arrived, and (c) stop absorbing entries surviving
bulk flushes.  Frozen harvests stay absorbing-eligible: they are final
regardless of the stream's history.
"""

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    ListEventStream,
    ServingLayer,
)
from repro.events.types import ADD, DELETE
from repro.serving import FrozenBackend
from repro.serving.cache import StableValueCache


def path_engine(n=4, n_ranks=2):
    e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=n_ranks))
    e.init_program("bfs", 0)
    e.attach_streams([ListEventStream([(ADD, i, i + 1, 1) for i in range(n)])])
    return e


REFS = {"bfs": {i: i + 1 for i in range(10)}}


class TestAbsorbingRefusedUnderDeletes:
    def test_churn_source_never_admits_absorbing(self):
        # one churn stream: the path's adds plus a trailing delete
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.init_program("bfs", 0)
        events = [(ADD, i, i + 1, 1) for i in range(4)] + [(DELETE, 2, 3, 0)]
        e.attach_streams([ListEventStream(events)])
        e.run()
        assert not e._streams_add_only
        serving = ServingLayer(e, references=REFS)
        res = serving.point("bfs", 1)
        assert res.value == 2
        entry = serving.cache._entries[0].get(1)
        assert entry is not None and entry[2] is False  # settled, not absorbing

    def test_absorbing_entry_demoted_when_deletes_arrive(self):
        e = path_engine()
        e.run()
        serving = ServingLayer(e, references=REFS)
        first = serving.point("bfs", 2)
        assert first.value == 3
        assert serving.cache._entries[0][2][2] is True  # absorbing admitted
        assert serving.point("bfs", 2).source == "cache"

        # A delete-carrying stream arrives: the absorbing claim is void.
        e.attach_streams([ListEventStream([(DELETE, 3, 4, 0)])])
        e.run()
        assert not e._streams_add_only
        demoted = serving.point("bfs", 2)
        assert demoted.source == "live"  # the stale entry did not serve
        assert demoted.value == 3
        # Any re-admission is non-absorbing from now on.
        entry = serving.cache._entries[0].get(2)
        if entry is not None:
            assert entry[2] is False

    def test_frozen_backend_still_absorbing_eligible(self):
        backend = FrozenBackend(["bfs"], [{0: 1, 1: 2, 2: 3}])
        serving = ServingLayer(backend, references=REFS)
        res = serving.point("bfs", 1)
        assert res.value == 2 and res.stale is False
        assert serving.cache._entries[0][1][2] is True
        assert serving.point("bfs", 1).source == "cache"


class TestCacheDeleteAwareness:
    def test_demote_reclassifies_hit_as_miss(self):
        cache = StableValueCache(1)
        cache.admit(0, 7, "v", 1.0, True)
        assert cache.lookup(0, 7) is not None
        assert (cache.hits, cache.misses) == (1, 0)
        cache.demote(0, 7)
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.invalidations == 1
        assert cache.lookup(0, 7) is None  # entry dropped

    def test_flush_prog_can_drop_absorbing(self):
        cache = StableValueCache(1)
        cache.admit(0, 1, "a", 1.0, True)
        cache.admit(0, 2, "b", 1.0, False)
        cache.flush_prog(0, keep_absorbing=True)
        assert cache.size(0) == 1  # absorbing survived
        cache.flush_prog(0, keep_absorbing=False)
        assert cache.size(0) == 0  # deletes void the absorbing argument
