"""WorkloadSpec parsing and MixedWorkloadDriver mechanics."""

import numpy as np
import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    ListEventStream,
    ServingLayer,
)
from repro.events.types import ADD
from repro.serving import (
    FrozenBackend,
    KINDS_FOR,
    MixedWorkloadDriver,
    WorkloadSpec,
)


class TestSpecParsing:
    def test_defaults(self):
        spec = WorkloadSpec.from_spec("")
        assert spec == WorkloadSpec()
        assert spec.ratio == 0.1 and spec.slice_actions == 2048
        assert spec.final_queries == 64

    def test_full_spec(self):
        spec = WorkloadSpec.from_spec(
            "ratio=0.5, slice=4096, kinds=point:distance, seed=7, "
            "max=1000, final=10"
        )
        assert spec.ratio == 0.5
        assert spec.slice_actions == 4096
        assert spec.kinds == ("point", "distance")
        assert spec.seed == 7
        assert spec.max_queries == 1000
        assert spec.final_queries == 10

    def test_describe_round_trips_the_mix(self):
        spec = WorkloadSpec.from_spec("ratio=0.25,slice=128")
        assert "ratio=0.25" in spec.describe()
        assert "slice=128" in spec.describe()

    @pytest.mark.parametrize(
        "bad",
        ["ratio", "bogus=1", "ratio=-1", "slice=0", "ratio=x"],
    )
    def test_rejects_malformed_terms(self, bad):
        with pytest.raises(ValueError):
            WorkloadSpec.from_spec(bad)


def _bfs_driver(spec, pool=None, n=12):
    e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
    e.init_program("bfs", 0)
    e.attach_streams([ListEventStream([(ADD, i, i + 1, 1) for i in range(n)])])
    serving = ServingLayer(e)
    pool = np.arange(n + 1) if pool is None else pool
    return MixedWorkloadDriver(serving, spec, pool, "bfs")


class TestDriver:
    def test_rejects_unknown_algo_and_kinds(self):
        serving = ServingLayer(FrozenBackend(["bfs"], [{}]))
        with pytest.raises(ValueError):
            MixedWorkloadDriver(serving, WorkloadSpec(), [0], "nope")
        with pytest.raises(ValueError):
            MixedWorkloadDriver(
                serving, WorkloadSpec(kinds=("component",)), [0], "bfs"
            )
        with pytest.raises(ValueError):
            MixedWorkloadDriver(serving, WorkloadSpec(), [], "bfs")

    def test_query_count_tracks_ratio(self):
        spec = WorkloadSpec(ratio=0.5, slice_actions=16, final_queries=0)
        res = _bfs_driver(spec).run()
        # 12 events at 0.5 queries/event, fractional carry preserved.
        assert res.queries == 6
        assert res.events_ingested == 12
        assert res.latencies_ns and len(res.latencies_ns) == res.queries

    def test_max_queries_caps(self):
        spec = WorkloadSpec(ratio=2.0, slice_actions=16, max_queries=5)
        res = _bfs_driver(spec).run()
        assert res.queries == 5

    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(ratio=1.0, slice_actions=32, seed=13)
        r1 = _bfs_driver(spec).run()
        r2 = _bfs_driver(spec).run()
        assert r1.queries == r2.queries
        assert r1.per_kind == r2.per_kind
        assert r1.stale_served == r2.stale_served

    def test_final_batch_serves_converged(self):
        spec = WorkloadSpec(ratio=0.0, slice_actions=1 << 20, final_queries=40)
        res = _bfs_driver(spec).run()
        assert res.queries == 40
        assert res.stale_served == 0  # quiesced: every answer exact

    def test_serve_only_against_frozen_state(self):
        backend = FrozenBackend(["bfs"], [{i: i + 1 for i in range(8)}])
        serving = ServingLayer(backend)
        driver = MixedWorkloadDriver(
            serving,
            WorkloadSpec(seed=3),
            np.arange(8),
            "bfs",
            oracle_fn=lambda: {i: i + 1 for i in range(8)},
        )
        res = driver.serve_only(200)
        assert res.queries == 200
        assert res.stale_served == 0
        assert res.verified == 200
        assert res.violations == []
        assert res.hit_rate > 0.5  # 8 distinct targets, 200 queries

    def test_result_to_dict_shape(self):
        spec = WorkloadSpec(ratio=0.5, slice_actions=64)
        doc = _bfs_driver(spec).run().to_dict()
        for key in (
            "queries", "events_ingested", "qps", "p50_us", "p99_us",
            "per_kind", "stale_served", "hit_rate", "verified",
            "violations", "cache",
        ):
            assert key in doc

    def test_every_kind_table_entry_is_issuable(self):
        for algo, kinds in KINDS_FOR.items():
            assert "point" in kinds
