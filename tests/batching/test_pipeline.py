"""Tests for the snapshot/batching baseline pipeline (§VI-A)."""

import numpy as np
import pytest

from repro.batching import SnapshotPipeline
from repro.comm.costmodel import CostModel


def chain(n):
    return np.arange(n, dtype=np.int64), np.arange(n, dtype=np.int64) + 1


class TestBatching:
    def test_batch_count_by_interval(self):
        src, dst = chain(100)
        p = SnapshotPipeline(batch_interval=1e-5, arrival_rate=1e6, n_ranks=4)
        r = p.run(src, dst, 0)
        # 10 events per batch -> 10 batches
        assert r.n_batches == 10
        assert r.n_events == 100

    def test_batch_size_caps_interval(self):
        src, dst = chain(100)
        p = SnapshotPipeline(
            batch_interval=1.0, arrival_rate=1e6, n_ranks=4, batch_size=25
        )
        r = p.run(src, dst, 0)
        assert r.n_batches == 4

    def test_staleness_at_least_waiting_time(self):
        src, dst = chain(50)
        p = SnapshotPipeline(batch_interval=1e-5, arrival_rate=1e6, n_ranks=4)
        r = p.run(src, dst, 0)
        # The first event of every batch waits the whole interval before
        # compute even starts.
        assert r.staleness_max >= 1e-5
        assert 0 < r.staleness_mean <= r.staleness_max

    def test_smaller_batches_reduce_staleness_but_raise_compute(self):
        # In the regime where compute keeps up with the cadence, finer
        # batches trade compute for freshness.  (When compute cannot
        # keep up, finer batches *backlog* and staleness explodes — see
        # test_backlogged_compute_serialises.)
        src, dst = chain(200)
        fine = SnapshotPipeline(batch_interval=2.5e-5, arrival_rate=1e6, n_ranks=64)
        coarse = SnapshotPipeline(batch_interval=1e-4, arrival_rate=1e6, n_ranks=64)
        rf, rc = fine.run(src, dst, 0), coarse.run(src, dst, 0)
        assert rf.staleness_mean < rc.staleness_mean
        # Finer batching recomputes from scratch far more often.
        assert rf.compute_time > rc.compute_time
        assert rf.n_batches > rc.n_batches

    def test_compute_grows_superlinearly_with_stream(self):
        # Drawback (i): every batch rebuilds everything so far, so total
        # compute grows ~quadratically in the number of batches.
        p = SnapshotPipeline(batch_interval=1e-5, arrival_rate=1e6, n_ranks=4)
        src1, dst1 = chain(100)
        src2, dst2 = chain(200)
        r1, r2 = p.run(src1, dst1, 0), p.run(src2, dst2, 0)
        assert r2.compute_time > 3 * r1.compute_time

    def test_backlogged_compute_serialises(self):
        # With a compute stage slower than the batch cadence, completions
        # queue: each completion strictly after the previous.
        slow = CostModel().with_overrides(static_build_edge_cpu=5e-5)
        p = SnapshotPipeline(
            batch_interval=1e-6, arrival_rate=1e6, n_ranks=1, cost_model=slow
        )
        src, dst = chain(30)
        r = p.run(src, dst, 0)
        assert all(
            b < a for b, a in zip(r.batch_completion_times, r.batch_completion_times[1:])
        )
        # staleness blows up under backlog
        assert r.staleness_max > 10 * 1e-6

    def test_empty_stream(self):
        p = SnapshotPipeline(batch_interval=1e-5, arrival_rate=1e6, n_ranks=2)
        r = p.run(np.empty(0, np.int64), np.empty(0, np.int64), 0)
        assert r.n_batches == 0
        assert r.staleness_mean == 0.0

    def test_summary_readable(self):
        src, dst = chain(20)
        p = SnapshotPipeline(batch_interval=1e-5, arrival_rate=1e6, n_ranks=2)
        assert "batches=" in p.run(src, dst, 0).summary()

    def test_validation(self):
        with pytest.raises(ValueError):
            SnapshotPipeline(batch_interval=0, arrival_rate=1, n_ranks=1)
        with pytest.raises(ValueError, match="known:.*bfs"):
            SnapshotPipeline(batch_interval=1, arrival_rate=1, n_ranks=1, algorithm="pr")

    @pytest.mark.parametrize("algorithm", ["bfs", "sssp", "cc"])
    def test_registry_algorithms_all_run(self, algorithm):
        src, dst = chain(60)
        p = SnapshotPipeline(
            batch_interval=1e-5, arrival_rate=1e6, n_ranks=2, algorithm=algorithm
        )
        r = p.run(src, dst, 0)
        assert r.n_batches == 6
        assert r.compute_time > 0.0
        assert r.staleness_mean > 0.0

    def test_cc_ignores_source_vertex(self):
        src, dst = chain(40)
        p = SnapshotPipeline(
            batch_interval=1e-5, arrival_rate=1e6, n_ranks=2, algorithm="cc"
        )
        # A source that does not exist in the graph must not matter.
        a = p.run(src, dst, 10**9)
        b = p.run(src, dst, 0)
        assert a.compute_time == b.compute_time
        assert a.batch_completion_times == b.batch_completion_times
