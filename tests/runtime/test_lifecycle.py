"""Lifecycle phase-grammar properties and the EngineBuilder front door.

The grammar under test (repro.runtime.lifecycle)::

    configure -> setup -> { ingest | drain | collect | harvest }* -> teardown

with exactly two legal no-op repeats: a steady phase re-entering itself
and teardown after teardown.  The property tests drive random phase
sequences against an independent reference acceptor and require the
real :class:`Lifecycle` to agree on every accept/reject verdict, the
final phase, and the coalesced history.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicEngine, EngineConfig, IncrementalBFS, ListEventStream
from repro.events.types import ADD
from repro.runtime.lifecycle import (
    PHASES,
    EngineBuilder,
    Lifecycle,
    LifecycleError,
)

STEADY = {"ingest", "drain", "collect", "harvest"}


def reference_step(cur, phase):
    """Independent re-statement of the grammar: returns the verdict for
    one transition as ``("ok", advanced)`` or ``("err", None)``."""
    if phase not in PHASES:
        return ("err", None)
    if cur == phase:
        if phase in STEADY or phase == "teardown":
            return ("ok", False)
        return ("err", None)
    if cur == "teardown":
        return ("err", None)
    if phase == "configure":
        ok = cur is None
    elif phase == "setup":
        ok = cur == "configure"
    elif phase in STEADY:
        ok = cur == "setup" or cur in STEADY
    else:  # teardown
        ok = cur is not None
    return ("ok", True) if ok else ("err", None)


class TestGrammarProperties:
    @given(
        st.lists(
            st.sampled_from(PHASES + ("bogus", "run")),
            min_size=0,
            max_size=30,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_agrees_with_reference_acceptor(self, sequence):
        lc = Lifecycle()
        cur = None
        expected_history = []
        for phase in sequence:
            verdict, advanced = reference_step(cur, phase)
            if verdict == "err":
                with pytest.raises(LifecycleError):
                    lc.advance(phase)
                # A rejected transition must leave the state untouched.
                assert lc.phase == cur
            else:
                assert lc.advance(phase) is advanced
                if advanced:
                    cur = phase
                    expected_history.append(phase)
        assert lc.phase == cur
        assert lc.history == expected_history

    @given(
        st.lists(st.sampled_from(sorted(STEADY)), min_size=1, max_size=20)
    )
    @settings(max_examples=100, deadline=None)
    def test_steady_phases_interleave_freely(self, steady_seq):
        lc = Lifecycle()
        lc.advance("configure")
        lc.advance("setup")
        for phase in steady_seq:
            lc.advance(phase)  # never raises
        # History holds the run-length-coalesced sequence.
        coalesced = [steady_seq[0]]
        for p in steady_seq[1:]:
            if p != coalesced[-1]:
                coalesced.append(p)
        assert lc.history == ["configure", "setup"] + coalesced
        lc.advance("teardown")
        assert lc.torn_down


class TestGrammarEdges:
    def test_must_start_with_configure(self):
        for phase in PHASES[1:]:
            with pytest.raises(LifecycleError):
                Lifecycle().advance(phase)

    def test_configure_and_setup_run_once(self):
        lc = Lifecycle()
        lc.advance("configure")
        with pytest.raises(LifecycleError):
            lc.advance("configure")
        lc.advance("setup")
        with pytest.raises(LifecycleError):
            lc.advance("setup")

    def test_coalesced_repeats_return_false(self):
        lc = Lifecycle()
        lc.advance("configure")
        lc.advance("setup")
        assert lc.advance("ingest") is True
        assert lc.advance("ingest") is False
        assert lc.advance("drain") is True
        assert lc.history == ["configure", "setup", "ingest", "drain"]

    def test_teardown_is_terminal_and_idempotent(self):
        lc = Lifecycle()
        lc.advance("configure")
        lc.advance("teardown")
        assert lc.advance("teardown") is False
        for phase in PHASES[:-1]:
            with pytest.raises(LifecycleError):
                lc.advance(phase)

    def test_unknown_phase_rejected(self):
        with pytest.raises(LifecycleError):
            Lifecycle().advance("warmup")


def path_events(n):
    return ListEventStream([(ADD, i, i + 1, 1) for i in range(n)])


class TestEngineIntegration:
    def test_construction_runs_configure_and_setup(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        assert e.lifecycle.history == ["configure", "setup"]

    def test_run_walks_ingest_then_drain(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.init_program("bfs", 0)
        e.attach_streams([path_events(6)])
        e.run()
        assert e.lifecycle.history == ["configure", "setup", "ingest", "drain"]

    def test_collection_enters_collect_and_harvest(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.init_program("bfs", 0)
        e.attach_streams([path_events(6)])
        e.request_collection("bfs", at_time=0.0)
        e.run()
        history = e.lifecycle.history
        assert "collect" in history and "harvest" in history
        assert history.index("collect") < history.index("harvest")

    def test_teardown_blocks_further_runs(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.init_program("bfs", 0)
        e.attach_streams([path_events(4)])
        e.run()
        e.teardown()
        e.teardown()  # idempotent
        assert e.lifecycle.torn_down
        with pytest.raises(LifecycleError):
            e.run()
        with pytest.raises(LifecycleError):
            e.attach_streams([path_events(2)])


class TestEngineBuilder:
    def test_fluent_methods_return_self(self):
        b = EngineBuilder()
        assert b.with_programs([IncrementalBFS()]) is b
        assert b.with_config(EngineConfig(n_ranks=2)) is b
        assert b.with_plugins([]) is b

    def test_build_defaults_to_fresh_config(self):
        e = EngineBuilder().with_programs([IncrementalBFS()]).build()
        assert e.config.n_ranks == EngineConfig().n_ranks

    def test_built_engine_runs(self):
        e = (
            EngineBuilder()
            .with_programs([IncrementalBFS()])
            .with_config(EngineConfig(n_ranks=2))
            .build()
        )
        e.init_program("bfs", 0)
        e.attach_streams([path_events(5)])
        e.run()
        assert e.value_of("bfs", 5) == 6
