"""PluginRegistry semantics: registration, compilation, dynamic hooks.

The contract (repro.runtime.plugins): duplicate names are rejected,
unknown hook sites are rejected at compile, compiled firing order is
plugin registration order followed by dynamic installation order, an
empty registry leaves every per-site tuple empty (the disabled-cost
guard), and teardown is idempotent and runs in reverse order.
"""

import pytest

from repro import DynamicEngine, EngineConfig, IncrementalBFS, ListEventStream
from repro.events.types import ADD
from repro.runtime.plugins import (
    HOOK_ATTRS,
    HOOK_SITES,
    EnginePlugin,
    HookStatsPlugin,
    MetricsPlugin,
    PluginRegistry,
    TracerPlugin,
    build_plugin,
    plugins_from_config,
)


def bare_engine(plugins=None):
    return DynamicEngine(
        [IncrementalBFS()], EngineConfig(n_ranks=2), plugins=plugins
    )


def run_path(e, n=6):
    e.init_program("bfs", 0)
    e.attach_streams([ListEventStream([(ADD, i, i + 1, 1) for i in range(n)])])
    e.run()


class Named(EnginePlugin):
    def __init__(self, name, hooks=None, log=None):
        self.name = name
        self._hooks = hooks or {}
        self.log = log if log is not None else []

    def hooks(self):
        return self._hooks

    def teardown(self, engine):
        self.log.append(f"teardown:{self.name}")


class TestRegistration:
    def test_duplicate_name_rejected(self):
        reg = PluginRegistry([Named("a")])
        with pytest.raises(ValueError, match="duplicate plugin name"):
            reg.register(Named("a"))

    def test_duplicate_name_rejected_via_engine(self):
        e = bare_engine(plugins=[Named("a")])
        with pytest.raises(ValueError, match="duplicate plugin name"):
            e.plugins.register_late(Named("a"), e)

    def test_unknown_hook_site_rejected_at_compile(self):
        bad = Named("bad", hooks={"on_warp": lambda: None})
        with pytest.raises(ValueError, match="unknown hook site"):
            bare_engine(plugins=[bad])

    def test_register_after_compile_requires_register_late(self):
        e = bare_engine()
        with pytest.raises(RuntimeError, match="already compiled"):
            e.plugins.register(Named("late"))
        e.plugins.register_late(Named("late"), e)
        assert "late" in e.plugins.names()

    def test_register_late_rejects_foreign_engine(self):
        e1, e2 = bare_engine(), bare_engine()
        with pytest.raises(RuntimeError, match="not compiled for this engine"):
            e1.plugins.register_late(Named("x"), e2)

    def test_get_and_names(self):
        p = Named("a")
        e = bare_engine(plugins=[p])
        assert e.plugins.get("a") is p
        assert e.plugins.get("nope") is None
        assert e.plugins.names() == ["a"]


class TestEmptyRegistryGuard:
    def test_every_hook_site_is_the_empty_tuple(self):
        e = bare_engine()
        assert e.plugins.names() == []
        for site in HOOK_SITES:
            assert getattr(e, HOOK_ATTRS[site]) == (), site

    def test_no_sugar_objects_without_flags(self):
        e = bare_engine()
        assert e.tracer is None
        assert e.metrics is None
        assert e.sampler is None
        assert e._bulk is None


class TestCompiledOrder:
    def test_firing_order_is_registration_then_install_order(self):
        fired = []
        a = Named("a", hooks={"on_write": lambda *args: fired.append("a")})
        b = Named("b", hooks={"on_write": lambda *args: fired.append("b")})
        e = bare_engine(plugins=[a, b])
        dyn = lambda *args: fired.append("dyn")
        e.install_hook("on_write", dyn)
        run_path(e, n=3)
        assert fired[:3] == ["a", "b", "dyn"]
        # One a/b/dyn round per committed value write, same order each.
        assert fired == ["a", "b", "dyn"] * (len(fired) // 3)

    def test_installed_reports_static_then_dynamic(self):
        hook = lambda *args: None
        a = Named("a", hooks={"on_write": hook})
        e = bare_engine(plugins=[a])
        dyn = lambda *args: None
        e.install_hook("on_write", dyn)
        assert e.plugins.installed("on_write") == (hook, dyn)
        assert e._hk_write == (hook, dyn)


class TestDynamicHooks:
    def test_install_uninstall_round_trip(self):
        e = bare_engine()
        fn = lambda *args: None
        e.install_hook("on_insert", fn)
        assert e._hk_insert == (fn,)
        assert e.uninstall_hook("on_insert", fn) is True
        assert e._hk_insert == ()
        assert e.uninstall_hook("on_insert", fn) is False

    def test_unknown_site_rejected(self):
        e = bare_engine()
        with pytest.raises(ValueError, match="unknown hook site"):
            e.install_hook("on_warp", lambda: None)
        with pytest.raises(ValueError, match="unknown hook site"):
            e.uninstall_hook("on_warp", lambda: None)


class TestTeardown:
    def test_reverse_order_and_idempotent(self):
        log = []
        a, b = Named("a", log=log), Named("b", log=log)
        e = bare_engine(plugins=[a, b])
        e.install_hook("on_write", lambda *args: None)
        e.teardown()
        assert log == ["teardown:b", "teardown:a"]
        e.teardown()
        assert log == ["teardown:b", "teardown:a"]  # ran once
        for site in HOOK_SITES:
            assert getattr(e, HOOK_ATTRS[site]) == (), site

    def test_register_after_teardown_rejected(self):
        e = bare_engine()
        e.teardown()
        with pytest.raises(RuntimeError, match="torn down"):
            e.plugins.register_late(Named("x"), e)


class TestHookStats:
    def test_counts_every_fired_site(self):
        stats = HookStatsPlugin()
        e = bare_engine(plugins=[stats])
        run_path(e, n=6)
        assert stats.counts["on_dispatch"] > 0
        assert stats.counts["on_write"] > 0
        # Each ADD applies its canonical and reverse directed twin.
        assert stats.counts["on_insert"] == 12
        assert stats.counts["on_delete"] == 0
        assert stats.counts["on_quiesce"] == 1
        assert e.plugins.harvest() == {"hook_stats": stats.counts}

    def test_harvest_skips_none_payloads(self):
        e = bare_engine(plugins=[Named("quiet")])
        assert e.plugins.harvest() == {}


class TestConfigSugar:
    def test_flag_derivation_order(self):
        cfg = EngineConfig(
            n_ranks=2, bulk_ingest=True, trace=True, sample_interval=1e-3
        )
        names = [p.name for p in plugins_from_config(cfg)]
        assert names == ["bulk-ingest", "tracer", "metrics"]
        assert plugins_from_config(EngineConfig(n_ranks=2)) == []

    def test_flags_build_the_sugar_objects(self):
        e = DynamicEngine(
            [IncrementalBFS()],
            EngineConfig(n_ranks=2, trace=True, sample_interval=1e-3),
        )
        assert e.tracer is not None
        assert e.metrics is not None
        assert e.sampler is not None
        assert e.plugins.names() == ["tracer", "metrics"]


class TestBuildPlugin:
    def test_round_trip(self):
        p = build_plugin("metrics", {"sample_interval": 0.5})
        assert isinstance(p, MetricsPlugin)
        assert p.sample_interval == 0.5
        assert isinstance(build_plugin("tracer"), TracerPlugin)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown plugin"):
            build_plugin("warp-drive")
