"""Engine edge cases: partial streams, deletes without programs,
directed deletes, re-running, and version bookkeeping."""

import numpy as np

from repro import (
    DegreeTracker,
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    ListEventStream,
    split_streams,
)
from repro.events.types import ADD, DELETE


class TestPartialStreams:
    def test_fewer_streams_than_ranks(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=8))
        e.init_program("bfs", 0)
        e.attach_streams([ListEventStream([(ADD, i, i + 1, 1) for i in range(5)])])
        e.run()
        assert e.value_of("bfs", 5) == 6
        assert e.loop.quiescent()

    def test_streams_of_unequal_length(self):
        e = DynamicEngine([DegreeTracker()], EngineConfig(n_ranks=3))
        e.attach_streams(
            [
                ListEventStream([(ADD, 0, 1, 1)] ),
                ListEventStream([(ADD, i, i + 1, 1) for i in range(10)]),
            ]
        )
        e.run()
        # stream 1's (0,1) duplicates stream 2's: 10 unique undirected
        # edges, stored in both directions
        assert e.num_edges == 20

    def test_attach_more_streams_after_run(self):
        e = DynamicEngine([DegreeTracker()], EngineConfig(n_ranks=2))
        e.attach_streams([ListEventStream([(ADD, 0, 1, 1)])])
        e.run()
        e.attach_streams([ListEventStream([(ADD, 1, 2, 1)])])
        e.run()
        assert e.value_of("degree", 1) == 2


class TestDeletes:
    def test_delete_without_programs(self):
        e = DynamicEngine([], EngineConfig(n_ranks=2))
        e.attach_streams(
            [ListEventStream([(ADD, 0, 1, 1), (DELETE, 0, 1, 0)])]
        )
        e.run()
        assert e.num_edges == 0
        assert e.total_counters().edge_deletes == 2  # both directions

    def test_delete_of_absent_edge_is_noop(self):
        e = DynamicEngine([], EngineConfig(n_ranks=2))
        e.attach_streams([ListEventStream([(DELETE, 5, 6, 0)])])
        e.run()
        assert e.num_edges == 0
        assert e.total_counters().edge_deletes == 0

    def test_directed_delete_one_side_only(self):
        e = DynamicEngine([], EngineConfig(n_ranks=2, undirected=False))
        e.attach_streams(
            [ListEventStream([(ADD, 0, 1, 1), (ADD, 1, 0, 1), (DELETE, 0, 1, 0)])]
        )
        e.run()
        assert not e.has_edge(0, 1)
        assert e.has_edge(1, 0)

    def test_canonicalised_routing_keeps_edges_symmetric(self):
        # Adversarial interleaving: both orientations + a delete spread
        # over different streams must never leave a half-edge.
        e = DynamicEngine([], EngineConfig(n_ranks=4))
        e.attach_streams(
            [
                ListEventStream([(ADD, 7, 3, 1)]),
                ListEventStream([(ADD, 3, 7, 1)]),
                ListEventStream([(DELETE, 7, 3, 0)]),
            ]
        )
        e.run()
        assert e.has_edge(3, 7) == e.has_edge(7, 3)


class TestVersionBookkeeping:
    def test_stream_version_starts_zero(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=3))
        assert e.stream_version == [0, 0, 0]

    def test_cut_bumps_all_stream_versions(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 50, 200)
        dst = (src + 1 + rng.integers(0, 48, 200)) % 50
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=4))
        e.init_program("bfs", int(src[0]))
        e.attach_streams(split_streams(src, dst, 4))
        e.request_collection("bfs", at_time=1e-5)
        e.run()
        assert all(v >= 1 for v in e.stream_version)

    def test_term_counters_balance_per_version(self):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 50, 300)
        dst = (src + 1 + rng.integers(0, 48, 300)) % 50
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=4))
        e.attach_streams(split_streams(src, dst, 4))
        e.request_collection("cc", at_time=2e-5)
        e.run()
        for version in (0, 1):
            sent = sum(t.sent(version) for t in e.term)
            recv = sum(t.received(version) for t in e.term)
            assert sent == recv, f"version {version}: {sent} != {recv}"


class TestSelfLoopsAndOddShapes:
    def test_self_loop_with_programs(self):
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=2))
        e.attach_streams([ListEventStream([(ADD, 3, 3, 1), (ADD, 3, 4, 1)])])
        e.run()
        assert e.value_of("cc", 3) == e.value_of("cc", 4) != 0

    def test_large_vertex_ids(self):
        big = 10**17
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=3))
        e.init_program("bfs", big)
        e.attach_streams([ListEventStream([(ADD, big, big + 1, 1)])])
        e.run()
        assert e.value_of("bfs", big + 1) == 2

    def test_negative_vertex_ids(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=3))
        e.init_program("bfs", -5)
        e.attach_streams([ListEventStream([(ADD, -5, -6, 1)])])
        e.run()
        assert e.value_of("bfs", -6) == 2
