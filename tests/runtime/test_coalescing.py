"""Engine-level tests for visitor coalescing and batched dispatch (§II-D).

The REMO safety claim: squashing monotone UPDATE visitors in the
visitor queue must not change any converged answer.  These tests run
every REMO algorithm with coalescing ON and OFF over random graphs
(multiple seeds x rank counts) and require identical final states,
both also equal to the static reference; plus targeted checks that the
combiner actually fires on a high-fan-in workload, that four-counter
termination still concludes with squashed messages in the books, and
that the new observability counters surface in throughput reports.
"""

import numpy as np
import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    MultiSTConnectivity,
    split_streams,
    throughput_report,
)
from repro.analytics import verify_bfs, verify_cc, verify_sssp, verify_st


def random_graph(seed, n_vertices=24, n_edges=110):
    """Random multigraph with one weight per undirected pair (the SSSP
    monotonicity precondition)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, size=n_edges)
    dst = rng.integers(0, n_vertices, size=n_edges)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    pair_weights = {}
    weights = []
    for s, d in zip(src, dst):
        key = (min(s, d), max(s, d))
        if key not in pair_weights:
            pair_weights[key] = int(rng.integers(1, 9))
        weights.append(pair_weights[key])
    return src, dst, np.array(weights, dtype=np.int64)


def high_fanin_stream(n_hubs=6, n_spokes=80):
    """Hub stars merged last by a label-ascending chain — every merge
    re-floods all previously absorbed stars (coalescible traffic)."""
    rng = np.random.default_rng(0)
    src, dst = [], []
    spoke = n_hubs + 1
    for hub in range(1, n_hubs + 1):
        for _ in range(n_spokes):
            src.append(hub)
            dst.append(spoke)
            spoke += 1
    order = rng.permutation(len(src))
    src = list(np.array(src, dtype=np.int64)[order])
    dst = list(np.array(dst, dtype=np.int64)[order])
    for hub in range(1, n_hubs):
        src.append(hub)
        dst.append(hub + 1)
    return np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


def run_once(make_programs, init, src, dst, weights, n_ranks, coalesce):
    engine = DynamicEngine(
        make_programs(),
        EngineConfig(
            n_ranks=n_ranks, coalesce_updates=coalesce, batch_updates=coalesce
        ),
    )
    init(engine)
    engine.attach_streams(
        split_streams(src, dst, n_ranks, weights=weights, rng=np.random.default_rng(7))
    )
    engine.run()
    assert engine.loop.quiescent()
    return engine


ALGORITHMS = {
    "bfs": (
        lambda: [IncrementalBFS()],
        lambda e: e.init_program("bfs", 0),
        lambda e: verify_bfs(e, "bfs", 0),
    ),
    "sssp": (
        lambda: [IncrementalSSSP()],
        lambda e: e.init_program("sssp", 0),
        lambda e: verify_sssp(e, "sssp", 0),
    ),
    "cc": (
        lambda: [IncrementalCC()],
        lambda e: None,
        lambda e: verify_cc(e, "cc"),
    ),
    "st": (
        lambda: [_make_st()],
        lambda e: _init_st(e),
        lambda e: verify_st(e, "st", [0, 5]),
    ),
}


def _make_st():
    st = MultiSTConnectivity()
    return st


def _init_st(engine):
    st = engine.programs[0]
    for s in (0, 5):
        engine.init_program("st", s, payload=st.register_source(s))


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n_ranks", [1, 4])
def test_coalescing_preserves_converged_state(algo, seed, n_ranks):
    make_programs, init, verify = ALGORITHMS[algo]
    src, dst, weights = random_graph(seed)
    runs = {
        coalesce: run_once(make_programs, init, src, dst, weights, n_ranks, coalesce)
        for coalesce in (False, True)
    }
    # ON == OFF == static reference.
    assert runs[True].state(algo) == runs[False].state(algo)
    assert verify(runs[True]) == []
    # The baseline run must not have coalesced anything.
    assert runs[False].total_counters().updates_squashed == 0


def test_high_fanin_workload_actually_squashes():
    src, dst = high_fanin_stream()
    engine = run_once(
        lambda: [IncrementalCC()], lambda e: None, src, dst, None, 4, True
    )
    total = engine.total_counters()
    assert total.updates_squashed > 0
    assert total.batch_sends > 0
    # Four-counter termination concluded with squashed messages in the
    # books: the run drained fully (quiescence is asserted by run_once)
    # and the answer is still right.
    assert verify_cc(engine, "cc") == []


def test_toggles_are_independent():
    src, dst = high_fanin_stream(n_hubs=4, n_spokes=40)
    coalesce_only = DynamicEngine(
        [IncrementalCC()],
        EngineConfig(n_ranks=4, coalesce_updates=True, batch_updates=False),
    )
    coalesce_only.attach_streams(split_streams(src, dst, 4))
    coalesce_only.run()
    c = coalesce_only.total_counters()
    assert c.updates_squashed > 0 and c.batch_sends == 0

    batch_only = DynamicEngine(
        [IncrementalCC()],
        EngineConfig(n_ranks=4, coalesce_updates=False, batch_updates=True),
    )
    batch_only.attach_streams(split_streams(src, dst, 4))
    batch_only.run()
    b = batch_only.total_counters()
    assert b.updates_squashed == 0 and b.batch_sends > 0
    assert verify_cc(batch_only, "cc") == []
    assert coalesce_only.state("cc") == batch_only.state("cc")


def test_counters_surface_in_throughput_report():
    src, dst = high_fanin_stream(n_hubs=4, n_spokes=40)
    engine = run_once(
        lambda: [IncrementalCC()], lambda e: None, src, dst, None, 4, True
    )
    report = throughput_report(engine)
    assert report.updates_squashed > 0
    assert report.batch_sends > 0
    assert 0.0 < report.squash_fraction < 1.0
    text = report.summary()
    assert "updates_squashed=" in text
    assert "batch_sends=" in text
