"""Unit tests of the bulk-ingest machinery: eligibility, de-optimization
triggers, counters, and the DegAwareRHH array append tier."""

import numpy as np
import pytest

from repro import (
    CallbackProgram,
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    ListEventStream,
    throughput_report,
)
from repro.events.stream import ArrayEventStream, split_streams
from repro.events.types import ADD, DELETE
from repro.storage.degaware import DegAwareRHH


def workload(seed=0, n_vertices=80, n_events=400):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, n_events, dtype=np.int64)
    dst = rng.integers(0, n_vertices, n_events, dtype=np.int64)
    return src, dst


def cc_engine(bulk=True, n_ranks=2, bulk_chunk=64, **overrides):
    return DynamicEngine(
        [IncrementalCC()],
        EngineConfig(
            n_ranks=n_ranks, bulk_ingest=bulk, bulk_chunk=bulk_chunk, **overrides
        ),
    )


# ----------------------------------------------------------------------
# counters and reporting
# ----------------------------------------------------------------------
def test_pure_cc_run_is_fully_bulk_with_no_fallback():
    src, dst = workload()
    eng = cc_engine(n_ranks=2, bulk_chunk=64)
    eng.attach_streams(split_streams(src, dst, 2))
    eng.run()
    tot = eng.total_counters()
    assert tot.bulk_events == len(src)
    assert tot.source_events == len(src)
    # Each rank drains its 200-event stream in ceil(200/64) = 4 chunks.
    assert tot.bulk_chunks == 8
    # No message ever dispatched -> the end-of-run flush is not a
    # de-optimization and must not count as one.
    assert tot.fallback_flushes == 0
    assert eng.state("cc")  # flushed values are observable


def test_throughput_report_carries_bulk_counters():
    src, dst = workload(n_events=100)
    eng = cc_engine(n_ranks=1, bulk_chunk=32)
    eng.attach_streams(split_streams(src, dst, 1))
    eng.run()
    rep = throughput_report(eng)
    assert rep.bulk_events == 100
    assert rep.bulk_chunks == 4
    assert rep.fallback_flushes == 0
    assert "bulk ingest:" in rep.summary()


def test_per_event_run_reports_zero_bulk_counters():
    src, dst = workload(n_events=60)
    eng = cc_engine(bulk=False)
    eng.attach_streams(split_streams(src, dst, 2))
    eng.run()
    rep = throughput_report(eng)
    assert rep.bulk_chunks == rep.bulk_events == rep.fallback_flushes == 0
    assert "bulk ingest:" not in rep.summary()


def test_init_message_forces_fallback_then_reengages():
    # BFS needs an INIT visitor; dispatching it while the dense mirror
    # is ahead must flush (fallback) — and afterwards chunking resumes.
    src, dst = workload(n_events=600)
    eng = DynamicEngine(
        [IncrementalBFS()],
        EngineConfig(n_ranks=2, bulk_ingest=True, bulk_chunk=32),
    )
    eng.init_program("bfs", int(src[0]))
    eng.attach_streams(split_streams(src, dst, 2))
    eng.run()
    tot = eng.total_counters()
    assert tot.fallback_flushes >= 1
    assert tot.bulk_events == len(src)


# ----------------------------------------------------------------------
# eligibility and de-optimization
# ----------------------------------------------------------------------
def test_trigger_disables_bulk_entirely():
    src, dst = workload(n_events=120)
    eng = cc_engine()
    eng.add_trigger("cc", lambda v, val: True, lambda v, val, t: None, once=False)
    eng.attach_streams(split_streams(src, dst, 2))
    eng.run()
    assert eng.total_counters().bulk_events == 0

    ref = cc_engine(bulk=False)
    ref.attach_streams(split_streams(src, dst, 2))
    ref.run()
    assert eng.state("cc") == ref.state("cc")


def test_removed_trigger_restores_eligibility():
    eng = cc_engine()
    trig = eng.add_trigger("cc", lambda v, val: True, lambda v, val, t: None)
    assert not eng._bulk_eligible()
    assert eng.triggers.remove(trig)
    assert eng._bulk_eligible()


def test_delete_events_in_stream_disable_bulk():
    events = [(ADD, 0, 1, 1), (ADD, 1, 2, 1), (DELETE, 0, 1, 0), (ADD, 2, 3, 1)]
    eng = cc_engine(n_ranks=1)
    eng.attach_streams([ListEventStream(events)])
    assert not eng._bulk_eligible()
    eng.run()
    assert eng.total_counters().bulk_events == 0
    assert not eng.has_edge(0, 1)
    assert eng.has_edge(1, 2)


def test_delete_kinds_in_array_stream_disable_bulk():
    kinds = np.array([ADD, DELETE, ADD], dtype=np.int64)
    s = ArrayEventStream(
        np.array([0, 0, 1]), np.array([1, 1, 2]), kinds=kinds
    )
    assert not s.add_only
    assert ArrayEventStream(np.array([0]), np.array([1])).add_only


def test_injected_timed_events_disable_bulk():
    src, dst = workload(n_events=80)
    eng = cc_engine()
    eng.attach_streams(split_streams(src, dst, 2))
    assert eng._bulk_eligible()
    eng.inject_timed_events([(1e-6, ADD, 500, 501, 1)])
    assert not eng._bulk_eligible()
    eng.run()
    assert eng.total_counters().bulk_events == 0
    assert eng.has_edge(500, 501)


def test_program_without_kernel_disables_bulk():
    degree = CallbackProgram(
        name="degree",
        on_add=lambda ctx, vid, val, w: ctx.set_value(ctx.value + 1),
    )
    src, dst = workload(n_events=60)
    eng = DynamicEngine(
        [IncrementalCC(), degree],
        EngineConfig(n_ranks=2, bulk_ingest=True),
    )
    assert not eng._bulk.supported
    eng.attach_streams(split_streams(src, dst, 2))
    eng.run()
    assert eng.total_counters().bulk_events == 0


def test_bulk_chunk_must_be_positive():
    with pytest.raises(ValueError):
        EngineConfig(bulk_ingest=True, bulk_chunk=0)


def test_bulk_off_has_no_controller():
    assert cc_engine(bulk=False)._bulk is None


# ----------------------------------------------------------------------
# DegAwareRHH array append tier
# ----------------------------------------------------------------------
def test_store_bulk_append_then_lazy_flush_matches_per_event():
    a = DegAwareRHH(4, "dict")
    b = DegAwareRHH(4, "dict")
    src = np.array([1, 1, 2, 1, 3], dtype=np.int64)
    dst = np.array([2, 3, 4, 2, 1], dtype=np.int64)
    w = np.array([5, 6, 7, 9, 1], dtype=np.int64)
    a.bulk_append_edges(src, dst, w)
    assert a.bulk_pending == 5
    for s, d, wt in zip(src.tolist(), dst.tolist(), w.tolist()):
        b.insert_edge(s, d, wt)
    # Any classic access flushes the buffers through insert_edge replay.
    assert sorted(a.edges()) == sorted(b.edges())
    assert a.bulk_pending == 0
    assert a.num_edges == b.num_edges
    assert a.edge_weight(1, 2) == 9  # duplicate overwrote the weight
    assert sorted(a.neighbors(1)) == sorted(b.neighbors(1))


def test_store_bulk_pending_arrays_and_delta_csr():
    s = DegAwareRHH(4, "dict")
    s.bulk_append_edges(
        np.array([3, 1, 3], dtype=np.int64),
        np.array([4, 2, 5], dtype=np.int64),
        np.array([1, 1, 2], dtype=np.int64),
    )
    ps, pd, pw = s.bulk_pending_arrays()
    assert ps.tolist() == [3, 1, 3]
    vids, indptr, dsts, weights = s.bulk_delta_csr()
    assert vids.tolist() == [1, 3]
    assert indptr.tolist() == [0, 1, 3]
    assert dsts.tolist() == [2, 4, 5]
    assert weights.tolist() == [1, 1, 2]
    assert s.flush_bulk() == 3
    assert s.flush_bulk() == 0  # idempotent
    assert s.num_edges == 3


def test_store_approx_bytes_counts_pending_without_flushing():
    s = DegAwareRHH(4, "dict")
    base = s.approx_bytes()
    s.bulk_append_edges(
        np.arange(10, dtype=np.int64),
        np.arange(10, 20, dtype=np.int64),
        np.ones(10, dtype=np.int64),
    )
    assert s.approx_bytes() > base
    assert s.bulk_pending == 10  # approx_bytes did not force the flush


def test_store_bulk_append_validates_lengths():
    s = DegAwareRHH(4, "dict")
    with pytest.raises(ValueError):
        s.bulk_append_edges(
            np.array([1, 2], dtype=np.int64),
            np.array([3], dtype=np.int64),
            np.array([1], dtype=np.int64),
        )
