"""Tests for the program API surface (VertexContext, CallbackProgram)
and the visitor wire-format helpers."""

import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    ListEventStream,
    VertexProgram,
)
from repro.events.types import ADD
from repro.runtime.program import CallbackProgram
from repro.runtime.visitor import (
    VT_ADD,
    VT_CTRL,
    VT_RADD,
    VT_UPDATE,
    visit_name,
)


class TestVisitorNames:
    def test_known_types(self):
        assert visit_name(VT_ADD) == "ADD"
        assert visit_name(VT_RADD) == "REVERSE_ADD"
        assert visit_name(VT_UPDATE) == "UPDATE"
        assert visit_name(VT_CTRL) == "CONTROL"

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            visit_name(99)


class TestCallbackProgram:
    def test_degree_in_two_callbacks(self):
        """The §II-A promise: a degree query is just two callbacks."""
        prog = CallbackProgram(
            name="mydeg",
            on_add=lambda ctx, vid, val, w: ctx.set_value(ctx.degree),
            on_reverse_add=lambda ctx, vid, val, w: ctx.set_value(ctx.degree),
        )
        e = DynamicEngine([prog], EngineConfig(n_ranks=2))
        e.attach_streams(
            [ListEventStream([(ADD, 0, 1, 1), (ADD, 0, 2, 1), (ADD, 0, 3, 1)])]
        )
        e.run()
        assert e.value_of("mydeg", 0) == 3
        assert e.value_of("mydeg", 2) == 1

    def test_unset_callbacks_are_noops(self):
        prog = CallbackProgram(name="empty")
        e = DynamicEngine([prog], EngineConfig(n_ranks=1))
        e.attach_streams([ListEventStream([(ADD, 0, 1, 1)])])
        e.run()
        assert e.value_of("empty", 0) == 0

    def test_update_callback_wired(self):
        hops = []
        prog = CallbackProgram(
            name="probe",
            on_reverse_add=lambda ctx, vid, val, w: ctx.update_single_nbr(vid, "ping", w),
            on_update=lambda ctx, vid, val, w: hops.append((ctx.vertex, val)),
        )
        e = DynamicEngine([prog], EngineConfig(n_ranks=2))
        e.attach_streams([ListEventStream([(ADD, 0, 1, 1)])])
        e.run()
        assert hops == [(0, "ping")]


class TestVertexContext:
    def make_engine(self, prog):
        e = DynamicEngine([prog], EngineConfig(n_ranks=2))
        e.attach_streams(
            [ListEventStream([(ADD, 0, 1, 7), (ADD, 0, 2, 9)])]
        )
        return e

    def test_context_exposes_topology(self):
        seen = {}

        class Probe(VertexProgram):
            name = "probe"

            def on_add(self, ctx, vid, val, w):
                seen[ctx.vertex] = (ctx.degree, dict(ctx.neighbors()), ctx.undirected)

        e = self.make_engine(Probe())
        e.run()
        degree, nbrs, undirected = seen[0]
        assert degree == 2
        assert nbrs == {1: 7, 2: 9}
        assert undirected is True

    def test_has_edge(self):
        checks = []

        class Probe(VertexProgram):
            name = "probe"

            def on_reverse_add(self, ctx, vid, val, w):
                checks.append((ctx.vertex, ctx.has_edge(vid), ctx.has_edge(12345)))

        e = self.make_engine(Probe())
        e.run()
        assert (1, True, False) in checks

    def test_nbr_cache_requires_declaration(self):
        errors = []

        class Probe(VertexProgram):
            name = "probe"  # needs_nbr_cache defaults to False

            def on_reverse_add(self, ctx, vid, val, w):
                try:
                    ctx.nbr_cache
                except RuntimeError as exc:
                    errors.append(str(exc))

        e = self.make_engine(Probe())
        e.run()
        assert errors and "needs_nbr_cache" in errors[0]

    def test_nbr_cache_records_values(self):
        observed = {}

        class Probe(VertexProgram):
            name = "probe"
            needs_nbr_cache = True

            def on_add(self, ctx, vid, val, w):
                ctx.set_value(ctx.vertex + 100)

            def on_reverse_add(self, ctx, vid, val, w):
                observed[ctx.vertex] = dict(ctx.nbr_cache)

        e = self.make_engine(Probe())
        e.run()
        # vertex 1's cache holds vertex 0's value at ADD time (100)
        assert observed[1] == {0: 100}

    def test_edge_was_new_flag(self):
        observations = []

        class Probe(VertexProgram):
            name = "probe"

            def on_add(self, ctx, vid, val, w):
                observations.append(("add", ctx.vertex, vid, ctx.edge_was_new))

            def on_reverse_add(self, ctx, vid, val, w):
                observations.append(("radd", ctx.vertex, vid, ctx.edge_was_new))

        e = DynamicEngine([Probe()], EngineConfig(n_ranks=2))
        e.attach_streams(
            [ListEventStream([(ADD, 0, 1, 1), (ADD, 0, 1, 2), (ADD, 1, 0, 3)])]
        )
        e.run()
        # endpoint order is canonicalised, so all three events process
        # identically: first insert is new, the re-observations are not.
        add_flags = [f for kind, *_rest, f in observations if kind == "add"]
        radd_flags = [f for kind, *_rest, f in observations if kind == "radd"]
        assert add_flags == [True, False, False]
        assert radd_flags == [True, False, False]

    def test_visit_time_monotone(self):
        times = []

        class Probe(VertexProgram):
            name = "probe"

            def on_add(self, ctx, vid, val, w):
                times.append(ctx.time)

        e = self.make_engine(Probe())
        e.run()
        assert times == sorted(times)
        assert all(t >= 0 for t in times)


class TestBaseProgramDefaults:
    def test_merge_unimplemented(self):
        with pytest.raises(NotImplementedError):
            VertexProgram().merge(1, 2)

    def test_format_value_default(self):
        assert VertexProgram().format_value(7) == "7"

    def test_callbacks_default_noop(self):
        p = VertexProgram()
        # Calling the defaults must not raise even with a None context.
        p.on_init(None, None)
        p.on_add(None, 0, 0, 0)
        p.on_reverse_add(None, 0, 0, 0)
        p.on_update(None, 0, 0, 0)
        p.on_delete(None, 0, 0)
        p.on_reverse_delete(None, 0, 0, 0)
