"""Versioned collection vs generational programs (§VI-B soundness).

Versioned (continuous) collection splits a program's state into
prev/new versions keyed by stream version; the generational programs'
epoch/generation tags are global protocol state that cannot be split
that way — a collection cut through an epoch restart would capture a
mix of old- and new-epoch values that no quiescent run ever exhibits.
Such programs declare ``supports_versioned_collection = False`` and the
engine must refuse the request up front instead of returning garbage.
"""

import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    GenerationalBFS,
    GenerationalCC,
    IncrementalBFS,
    ListEventStream,
    UnsupportedCollectionError,
)
from repro.events.types import ADD


def churn_engine(program, source=None):
    e = DynamicEngine([program], EngineConfig(n_ranks=2, undirected=True))
    if source is not None:
        e.init_program(program.name, source)
    e.attach_streams(
        [ListEventStream([(ADD, i, i + 1, 1) for i in range(6)])]
    )
    e.run()
    return e


class TestGenerationalProgramsRefuse:
    def test_generational_bfs_raises(self):
        e = churn_engine(GenerationalBFS(), source=0)
        with pytest.raises(
            UnsupportedCollectionError, match="versioned collection"
        ):
            e.request_collection("gen-bfs", at_time=e.loop.max_time() + 1.0)

    def test_generational_cc_raises(self):
        e = churn_engine(GenerationalCC())
        with pytest.raises(UnsupportedCollectionError):
            e.request_collection("gen-cc", at_time=e.loop.max_time() + 1.0)

    def test_flag_defaults_on(self):
        assert IncrementalBFS().supports_versioned_collection is True
        assert GenerationalBFS().supports_versioned_collection is False
        assert GenerationalCC().supports_versioned_collection is False

    def test_error_is_a_runtime_error(self):
        # callers catching the old failure mode keep working
        assert issubclass(UnsupportedCollectionError, RuntimeError)


class TestIncrementalProgramsStillCollect:
    def test_incremental_bfs_collection_unaffected(self):
        e = churn_engine(IncrementalBFS(), source=0)
        e.request_collection("bfs", at_time=e.loop.max_time() + 1.0)
        e.run()
        assert len(e.collection_results) == 1
        # the collected snapshot equals the quiescent live state
        assert e.collection_results[0].state == e.state("bfs")
