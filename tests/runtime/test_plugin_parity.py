"""Bit-equality proof for the plugin refactor (the ISSUE 10 contract).

Three construction paths must produce indistinguishable engines for
every legacy EngineConfig flag combination:

1. the legacy constructor, flags in the config (sugar derivation);
2. the EngineBuilder with the same flagged config;
3. the EngineBuilder over a flag-free config with the equivalent
   plugin list passed explicitly.

Hooks are observers consuming no virtual time, so all three runs of
the same workload must agree on every program's state, the virtual
makespan, per-rank counters, and — when tracing — the exact event list.
"""

import itertools

import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    ListEventStream,
)
from repro.events.types import ADD, DELETE
from repro.runtime.lifecycle import EngineBuilder
from repro.runtime.plugins import (
    BulkIngestPlugin,
    HookStatsPlugin,
    MetricsPlugin,
    TracerPlugin,
)

N_RANKS = 3


def churn_events():
    """A small add+delete mix over a 9-vertex mesh (deterministic)."""
    events = [(ADD, i % 9, (i * 5 + 2) % 9, 1 + i % 3) for i in range(36)]
    events += [(DELETE, 2, 7, 0), (DELETE, 4, 1, 0)]
    events += [(ADD, 2, 7, 2), (ADD, 0, 8, 1)]
    return [e for e in events if e[1] != e[2]]


def drive(engine):
    engine.init_program("bfs", 0)
    engine.attach_streams([ListEventStream(churn_events())])
    engine.run()
    return engine


def fingerprint(engine):
    return {
        "bfs": engine.state("bfs"),
        "cc": engine.state("cc"),
        "makespan": engine.loop.max_time(),
        "counters": [
            (c.source_events, c.visits, c.edge_inserts, c.edge_deletes)
            for c in engine.counters
        ],
    }


def explicit_plugins(trace, sample_interval, bulk_ingest):
    plugins = []
    if bulk_ingest:
        plugins.append(BulkIngestPlugin())
    if trace:
        plugins.append(TracerPlugin())
    if sample_interval is not None:
        plugins.append(MetricsPlugin(sample_interval))
    return plugins


FLAG_COMBOS = list(
    itertools.product([False, True], [None, 1e-3], [False, True])
)


@pytest.mark.parametrize("trace,sample_interval,bulk_ingest", FLAG_COMBOS)
def test_all_three_paths_bit_identical(trace, sample_interval, bulk_ingest):
    programs = lambda: [IncrementalBFS(), IncrementalCC()]
    flagged = EngineConfig(
        n_ranks=N_RANKS,
        undirected=True,
        trace=trace,
        sample_interval=sample_interval,
        bulk_ingest=bulk_ingest,
    )
    plain = EngineConfig(n_ranks=N_RANKS, undirected=True)

    legacy = drive(DynamicEngine(programs(), flagged))
    built = drive(
        EngineBuilder().with_programs(programs()).with_config(flagged).build()
    )
    explicit = drive(
        EngineBuilder()
        .with_programs(programs())
        .with_config(plain)
        .with_plugins(explicit_plugins(trace, sample_interval, bulk_ingest))
        .build()
    )

    fp = fingerprint(legacy)
    assert fingerprint(built) == fp
    assert fingerprint(explicit) == fp

    for e in (legacy, built, explicit):
        assert (e.tracer is not None) == trace
        assert (e.sampler is not None) == (sample_interval is not None)
        assert (e._bulk is not None) == bulk_ingest
    if trace:
        assert built.tracer.events == legacy.tracer.events
        assert explicit.tracer.events == legacy.tracer.events
    if sample_interval is not None:
        assert built.metrics.samples == legacy.metrics.samples
        assert explicit.metrics.samples == legacy.metrics.samples


def test_observer_plugin_leaves_results_bit_identical():
    """A hook on every site must not perturb state or the DES schedule."""
    bare = drive(
        DynamicEngine(
            [IncrementalBFS(), IncrementalCC()],
            EngineConfig(n_ranks=N_RANKS, undirected=True),
        )
    )
    stats = HookStatsPlugin()
    hooked = drive(
        EngineBuilder()
        .with_programs([IncrementalBFS(), IncrementalCC()])
        .with_config(EngineConfig(n_ranks=N_RANKS, undirected=True))
        .with_plugin(stats)
        .build()
    )
    assert fingerprint(hooked) == fingerprint(bare)
    assert stats.counts["on_dispatch"] > 0
    assert stats.counts["on_delete"] > 0  # the churn stream fired it
