"""Unit tests for the sequential reference engine (executable spec)."""

import pytest

from repro import (
    DegreeTracker,
    IncrementalBFS,
    IncrementalCC,
    INF,
    ReferenceEngine,
)
from repro.events.types import ADD, DELETE


class TestBasics:
    def test_bfs_on_a_path(self):
        ref = ReferenceEngine([IncrementalBFS()])
        ref.init_program("bfs", 0)
        ref.ingest([(ADD, i, i + 1, 1) for i in range(5)])
        assert ref.value_of("bfs", 5) == 6
        assert ref.value_of("bfs", 0) == 1
        assert ref.events_ingested == 5

    def test_atomic_per_event_semantics(self):
        # After each ingest() returns, the cascade has fully drained:
        # state is immediately consistent — the footnote-1 machine.
        ref = ReferenceEngine([IncrementalBFS()])
        ref.init_program("bfs", 0)
        ref.ingest([(ADD, 0, 1, 1)])
        assert ref.value_of("bfs", 1) == 2
        ref.ingest([(ADD, 1, 2, 1)])
        assert ref.value_of("bfs", 2) == 3
        assert not ref.queue

    def test_undirected_topology(self):
        ref = ReferenceEngine([DegreeTracker()])
        ref.ingest([(ADD, 3, 4, 7)])
        assert ref.num_edges == 2
        assert ref.store.edge_weight(4, 3) == 7

    def test_directed_mode(self):
        ref = ReferenceEngine([IncrementalBFS()], undirected=False)
        ref.init_program("bfs", 0)
        ref.ingest([(ADD, 0, 1, 1), (ADD, 1, 2, 1)])
        assert ref.value_of("bfs", 2) == 3
        assert ref.num_edges == 2  # one direction only

    def test_deletes(self):
        ref = ReferenceEngine([DegreeTracker()])
        ref.ingest([(ADD, 0, 1, 1), (ADD, 0, 2, 1), (DELETE, 0, 1, 0)])
        assert ref.value_of("degree", 0) == 1
        assert not ref.store.has_edge(1, 0)

    def test_multiple_programs(self):
        ref = ReferenceEngine([IncrementalBFS(), IncrementalCC()])
        ref.init_program("bfs", 0)
        ref.ingest([(ADD, 0, 1, 1), (ADD, 5, 6, 1)])
        assert ref.value_of("bfs", 1) == 2
        assert ref.value_of("bfs", 5) == INF
        assert ref.value_of("cc", 5) == ref.value_of("cc", 6) != 0

    def test_state_is_a_copy(self):
        ref = ReferenceEngine([IncrementalCC()])
        ref.ingest([(ADD, 0, 1, 1)])
        snap = ref.state("cc")
        snap[0] = 123
        assert ref.value_of("cc", 0) != 123

    def test_init_after_ingest(self):
        ref = ReferenceEngine([IncrementalBFS()])
        ref.ingest([(ADD, 0, 1, 1), (ADD, 1, 2, 1)])
        ref.init_program("bfs", 2)
        assert ref.value_of("bfs", 0) == 3

    def test_duplicate_program_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ReferenceEngine([IncrementalBFS(), IncrementalBFS()])

    def test_unknown_program_rejected(self):
        ref = ReferenceEngine([IncrementalBFS()])
        with pytest.raises(ValueError):
            ref.prog_index("nope")

    def test_canonical_edge_order(self):
        ref = ReferenceEngine([DegreeTracker()])
        ref.ingest([(ADD, 9, 2, 1), (DELETE, 2, 9, 0)])
        assert ref.num_edges == 0
