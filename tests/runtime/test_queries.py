"""Tests for local-state "When" queries (triggers)."""

import pytest

from repro import (
    DegreeTracker,
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    ListEventStream,
    MultiSTConnectivity,
)
from repro.events.types import ADD
from repro.runtime.queries import TriggerManager


class TestTriggerManagerUnit:
    def test_fires_on_predicate(self):
        tm = TriggerManager()
        fired = []
        tm.add(0, lambda v, val: val > 5, lambda v, val, t: fired.append((v, val)))
        tm.on_change(0, 1, 3, 0.0)
        tm.on_change(0, 1, 7, 0.0)
        assert fired == [(1, 7)]

    def test_once_semantics_per_vertex(self):
        tm = TriggerManager()
        fired = []
        tm.add(0, lambda v, val: True, lambda v, val, t: fired.append(v))
        tm.on_change(0, 1, 1, 0.0)
        tm.on_change(0, 1, 2, 0.0)
        tm.on_change(0, 2, 1, 0.0)
        assert fired == [1, 2]

    def test_raising_callback_does_not_burn_once_trigger(self):
        # Regression: the vertex used to be added to fired_vertices
        # *before* the callback ran, so a raising callback permanently
        # suppressed a once-trigger that never actually fired.
        tm = TriggerManager()
        fired = []
        calls = {"n": 0}

        def flaky(v, val, t):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("downstream notification failed")
            fired.append((v, val))

        tm.add(0, lambda v, val: val > 5, flaky)
        with pytest.raises(RuntimeError):
            tm.on_change(0, 1, 7, 0.0)
        assert fired == []
        # the condition is still met on the next write: retried
        tm.on_change(0, 1, 8, 1.0)
        assert fired == [(1, 8)]
        # once-semantics hold after the successful delivery
        tm.on_change(0, 1, 9, 2.0)
        assert fired == [(1, 8)]

    def test_repeating_trigger(self):
        tm = TriggerManager()
        fired = []
        tm.add(0, lambda v, val: True, lambda v, val, t: fired.append(val), once=False)
        tm.on_change(0, 1, 1, 0.0)
        tm.on_change(0, 1, 2, 0.0)
        assert fired == [1, 2]

    def test_vertex_scoped(self):
        tm = TriggerManager()
        fired = []
        tm.add(0, lambda v, val: True, lambda v, val, t: fired.append(v), vertex=5)
        tm.on_change(0, 4, 1, 0.0)
        tm.on_change(0, 5, 1, 0.0)
        assert fired == [5]

    def test_program_scoped(self):
        tm = TriggerManager()
        fired = []
        tm.add(1, lambda v, val: True, lambda v, val, t: fired.append(v))
        tm.on_change(0, 1, 1, 0.0)
        assert fired == []
        tm.on_change(1, 1, 1, 0.0)
        assert fired == [1]

    def test_remove(self):
        tm = TriggerManager()
        fired = []
        t = tm.add(0, lambda v, val: True, lambda v, val, time: fired.append(v))
        assert tm.remove(t) is True
        assert tm.remove(t) is False
        tm.on_change(0, 1, 1, 0.0)
        assert fired == []

    def test_has_triggers(self):
        tm = TriggerManager()
        assert not tm.has_triggers(0)
        tm.add(0, lambda v, val: True, lambda *a: None, vertex=3)
        assert tm.has_triggers(0)
        assert not tm.has_triggers(1)

    def test_count_tracks_live_triggers(self):
        tm = TriggerManager()
        assert tm.count() == 0 and not tm.has_any()
        a = tm.add(0, lambda v, val: True, lambda *x: None, vertex=3)
        b = tm.add(0, lambda v, val: True, lambda *x: None)
        c = tm.add(1, lambda v, val: True, lambda *x: None, vertex=9)
        assert tm.count() == 3 and tm.has_any()
        assert tm.count(0) == 2 and tm.count(1) == 1 and tm.count(2) == 0
        tm.remove(b)
        assert tm.count(0) == 1
        tm.remove(a)
        tm.remove(c)
        assert tm.count() == 0 and not tm.has_any()

    def test_remove_prunes_index_slots(self):
        # Deregistering the last trigger on a program must restore the
        # O(1) write-path guard to False — emptied lists are pruned,
        # not left behind as truthy-container garbage.
        tm = TriggerManager()
        vertex_scoped = tm.add(0, lambda v, val: True, lambda *x: None, vertex=3)
        any_vertex = tm.add(0, lambda v, val: True, lambda *x: None)
        assert tm.has_triggers(0)
        tm.remove(vertex_scoped)
        assert tm.has_triggers(0)  # the any-vertex one remains
        tm.remove(any_vertex)
        assert not tm.has_triggers(0)
        assert not tm._by_vertex and not tm._global

    def test_fired_count(self):
        tm = TriggerManager()
        tm.add(0, lambda v, val: True, lambda *a: None)
        tm.on_change(0, 1, 1, 0.0)
        tm.on_change(0, 2, 1, 0.0)
        assert tm.fired_count == 2


class TestEngineTriggers:
    def test_degree_threshold_callback(self):
        """The §II-A example: user callback when degree exceeds a bound."""
        e = DynamicEngine([DegreeTracker()], EngineConfig(n_ranks=2))
        alerts = []
        e.add_trigger(
            "degree",
            lambda v, deg: deg >= 3,
            lambda v, deg, t: alerts.append((v, deg)),
        )
        star = [(ADD, 0, i, 1) for i in range(1, 5)]
        e.attach_streams([ListEventStream(star)])
        e.run()
        assert (0, 3) in alerts
        assert len([a for a in alerts if a[0] == 0]) == 1  # fired once

    def test_when_st_connected(self):
        """'When is vertex A connected to vertex B?' — §III-E."""
        st = MultiSTConnectivity()
        e = DynamicEngine([st], EngineConfig(n_ranks=3))
        bit = st.register_source(0)
        e.init_program("st", 0, payload=bit)
        hits = []
        e.add_trigger(
            "st",
            lambda v, mask: bool(mask >> bit & 1),
            lambda v, mask, t: hits.append((v, t)),
            vertex=4,
        )
        # 0-1-2-3-4 path: vertex 4 connects to 0 only at the last edge.
        e.attach_streams([ListEventStream([(ADD, i, i + 1, 1) for i in range(4)])])
        e.run()
        assert len(hits) == 1
        vertex, time = hits[0]
        assert vertex == 4
        assert 0 < time <= e.loop.max_time()

    def test_trigger_time_monotone_along_path(self):
        st = MultiSTConnectivity()
        e = DynamicEngine([st], EngineConfig(n_ranks=2))
        bit = st.register_source(0)
        e.init_program("st", 0, payload=bit)
        times = {}
        e.add_trigger(
            "st",
            lambda v, mask: bool(mask >> bit & 1),
            lambda v, mask, t: times.setdefault(v, t),
        )
        e.attach_streams([ListEventStream([(ADD, i, i + 1, 1) for i in range(5)])])
        e.run()
        # Connectivity flows outward: each hop is observed no earlier
        # than the previous one.
        assert times[1] <= times[2] <= times[3] <= times[4] <= times[5]

    def test_bfs_proximity_trigger(self):
        """Fig. 3 discussion: trigger when a vertex's path to the source
        becomes shorter than a bound."""
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.init_program("bfs", 0)
        hits = []
        e.add_trigger(
            "bfs",
            lambda v, lvl: 0 < lvl <= 3,
            lambda v, lvl, t: hits.append(v),
        )
        events = [(ADD, i, i + 1, 1) for i in range(6)]
        events.append((ADD, 0, 5, 1))  # shortcut: 5 jumps from level 6 to 2
        e.attach_streams([ListEventStream(events)])
        e.run()
        assert set(hits) >= {0, 1, 2, 5, 6}
        assert hits.count(5) == 1  # once, despite improving twice

    def test_trigger_on_unknown_program_rejected(self):
        e = DynamicEngine([IncrementalBFS()])
        with pytest.raises(ValueError):
            e.add_trigger("nope", lambda v, x: True, lambda *a: None)
