"""Tests for quiescent-state checkpointing (suspend / resume)."""

import numpy as np
import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    ListEventStream,
    split_streams,
)
from repro.analytics import verify_bfs, verify_cc
from repro.events.types import ADD
from repro.generators import rmat_edges
from repro.runtime.checkpoint import (
    NotQuiescentError,
    load_checkpoint,
    save_checkpoint,
)


def build_engine(n_ranks=4):
    return DynamicEngine(
        [IncrementalBFS(), IncrementalCC()], EngineConfig(n_ranks=n_ranks)
    )


def run_workload(engine, seed=0):
    rng = np.random.default_rng(seed)
    src, dst = rmat_edges(8, edge_factor=4, rng=rng)
    source = int(src[0])
    engine.init_program("bfs", source)
    engine.attach_streams(split_streams(src, dst, engine.config.n_ranks, rng=rng))
    engine.run()
    return source


class TestRoundTrip:
    def test_save_and_restore_preserve_everything(self, tmp_path):
        original = build_engine()
        source = run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(original, path)

        restored = build_engine()
        load_checkpoint(restored, path)
        assert restored.num_edges == original.num_edges
        assert restored.state("bfs") == original.state("bfs")
        assert restored.state("cc") == original.state("cc")
        assert verify_bfs(restored, "bfs", source) == []
        assert verify_cc(restored, "cc") == []

    def test_restored_engine_keeps_ingesting(self, tmp_path):
        original = build_engine()
        source = run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(original, path)

        restored = build_engine()
        load_checkpoint(restored, path)
        # new edges extend the old state seamlessly
        far_a, far_b = 999_001, 999_002
        restored.attach_streams(
            [ListEventStream([(ADD, source, far_a, 1), (ADD, far_a, far_b, 1)])]
        )
        restored.run()
        assert restored.value_of("bfs", far_b) == 3
        assert verify_bfs(restored, "bfs", source) == []

    def test_restore_into_different_rank_count(self, tmp_path):
        original = build_engine(n_ranks=4)
        source = run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(original, path)
        restored = build_engine(n_ranks=7)  # repartitioned on restore
        load_checkpoint(restored, path)
        assert restored.state("bfs") == original.state("bfs")
        assert verify_bfs(restored, "bfs", source) == []


class TestGuards:
    def test_save_mid_flight_rejected(self, tmp_path):
        e = build_engine()
        rng = np.random.default_rng(1)
        src, dst = rmat_edges(8, edge_factor=4, rng=rng)
        e.init_program("bfs", int(src[0]))
        e.attach_streams(split_streams(src, dst, 4, rng=rng))
        e.run(max_actions=50)  # stop mid-flight
        with pytest.raises(NotQuiescentError):
            save_checkpoint(e, tmp_path / "x.npz")

    def test_save_during_collection_rejected(self, tmp_path):
        e = build_engine()
        run_workload(e)
        e.request_collection("bfs", at_time=e.loop.max_time() + 1.0)
        # the alarm has not fired yet; fire it but stop before it finishes
        e.run(max_actions=1)
        if e.active_collection is not None:
            with pytest.raises(NotQuiescentError):
                save_checkpoint(e, tmp_path / "x.npz")

    def test_restore_into_used_engine_rejected(self, tmp_path):
        original = build_engine()
        run_workload(original)
        save_checkpoint(original, tmp_path / "c.npz")
        dirty = build_engine()
        run_workload(dirty, seed=5)
        with pytest.raises(RuntimeError, match="fresh engine"):
            load_checkpoint(dirty, tmp_path / "c.npz")

    def test_restore_program_mismatch_rejected(self, tmp_path):
        original = build_engine()
        run_workload(original)
        save_checkpoint(original, tmp_path / "c.npz")
        other = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=4))
        with pytest.raises(ValueError, match="program mismatch"):
            load_checkpoint(other, tmp_path / "c.npz")
