"""Tests for quiescent-state checkpointing (suspend / resume)."""

import numpy as np
import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    ListEventStream,
    split_streams,
)
from repro.analytics import verify_bfs, verify_cc
from repro.events.types import ADD
from repro.generators import rmat_edges
from repro.runtime.checkpoint import (
    NotQuiescentError,
    load_checkpoint,
    save_checkpoint,
)


def build_engine(n_ranks=4):
    return DynamicEngine(
        [IncrementalBFS(), IncrementalCC()], EngineConfig(n_ranks=n_ranks)
    )


def run_workload(engine, seed=0):
    rng = np.random.default_rng(seed)
    src, dst = rmat_edges(8, edge_factor=4, rng=rng)
    source = int(src[0])
    engine.init_program("bfs", source)
    engine.attach_streams(split_streams(src, dst, engine.config.n_ranks, rng=rng))
    engine.run()
    return source


class TestRoundTrip:
    def test_save_and_restore_preserve_everything(self, tmp_path):
        original = build_engine()
        source = run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(original, path)

        restored = build_engine()
        load_checkpoint(restored, path)
        assert restored.num_edges == original.num_edges
        assert restored.state("bfs") == original.state("bfs")
        assert restored.state("cc") == original.state("cc")
        assert verify_bfs(restored, "bfs", source) == []
        assert verify_cc(restored, "cc") == []

    def test_restored_engine_keeps_ingesting(self, tmp_path):
        original = build_engine()
        source = run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(original, path)

        restored = build_engine()
        load_checkpoint(restored, path)
        # new edges extend the old state seamlessly
        far_a, far_b = 999_001, 999_002
        restored.attach_streams(
            [ListEventStream([(ADD, source, far_a, 1), (ADD, far_a, far_b, 1)])]
        )
        restored.run()
        assert restored.value_of("bfs", far_b) == 3
        assert verify_bfs(restored, "bfs", source) == []

    def test_restore_into_different_rank_count(self, tmp_path):
        original = build_engine(n_ranks=4)
        source = run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(original, path)
        restored = build_engine(n_ranks=7)  # repartitioned on restore
        load_checkpoint(restored, path)
        assert restored.state("bfs") == original.state("bfs")
        assert verify_bfs(restored, "bfs", source) == []


class TestWeightDtype:
    """Regression: save_checkpoint used to coerce weights to int64,
    silently truncating float weights (SSSP / widest-path workloads)."""

    FLOAT_EDGES = [(1, 2, 0.25), (2, 1, 0.25), (3, 4, 7.5), (4, 3, 7.5)]

    def _place_edges(self, engine, edges):
        for s, d, w in edges:
            engine.stores[engine.partitioner.owner(s)].insert_edge(s, d, w)

    def test_float_weights_round_trip_exactly(self, tmp_path):
        original = build_engine()
        self._place_edges(original, self.FLOAT_EDGES)
        path = tmp_path / "float.npz"
        save_checkpoint(original, path)

        restored = build_engine()
        load_checkpoint(restored, path)
        got = {(s, d): w for s, d, w in restored.edges()}
        assert got == {(s, d): w for s, d, w in self.FLOAT_EDGES}
        # the restored weights are genuine floats, not int-truncated
        assert all(isinstance(w, float) for w in got.values())

    def test_int_weights_stay_int(self, tmp_path):
        original = build_engine()
        self._place_edges(original, [(1, 2, 3), (2, 1, 3)])
        path = tmp_path / "int.npz"
        save_checkpoint(original, path)

        restored = build_engine()
        load_checkpoint(restored, path)
        got = {(s, d): w for s, d, w in restored.edges()}
        assert got == {(1, 2): 3, (2, 1): 3}
        assert all(isinstance(w, int) for w in got.values())


class TestRestoreIntoBulkIngest:
    """Restoring into a ``bulk_ingest=True`` engine: load_checkpoint
    inserts edges directly into the stores, so the bulk ingestor's
    cached topology must be rebuilt before its first chunk — otherwise
    frontier kernels would run on a stale (empty) CSR."""

    def _bulk_engine(self, n_ranks=4):
        return DynamicEngine(
            [IncrementalBFS(), IncrementalCC()],
            EngineConfig(n_ranks=n_ranks, bulk_ingest=True, bulk_chunk=32),
        )

    def test_round_trip_into_bulk_engine(self, tmp_path):
        original = build_engine()
        source = run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(original, path)

        restored = self._bulk_engine()
        load_checkpoint(restored, path)
        assert restored.num_edges == original.num_edges
        assert restored.state("bfs") == original.state("bfs")
        assert restored.state("cc") == original.state("cc")
        assert verify_bfs(restored, "bfs", source) == []

    def test_restored_bulk_engine_resumes_with_bulk_path(self, tmp_path):
        original = build_engine()
        source = run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(original, path)

        restored = self._bulk_engine()
        load_checkpoint(restored, path)
        rng = np.random.default_rng(99)
        src, dst = rmat_edges(7, edge_factor=4, rng=rng)
        restored.attach_streams(
            split_streams(src, dst, restored.config.n_ranks, rng=rng)
        )
        restored.run()
        # per-event continuation from the same checkpoint must agree
        per_event = build_engine()
        load_checkpoint(per_event, path)
        rng = np.random.default_rng(99)
        src, dst = rmat_edges(7, edge_factor=4, rng=rng)
        per_event.attach_streams(
            split_streams(src, dst, per_event.config.n_ranks, rng=rng)
        )
        per_event.run()
        assert restored.state("bfs") == per_event.state("bfs")
        assert restored.state("cc") == per_event.state("cc")
        assert verify_bfs(restored, "bfs", source) == []
        assert verify_cc(restored, "cc") == []

    def test_save_from_bulk_engine_and_restore(self, tmp_path):
        original = self._bulk_engine()
        source = run_workload(original)
        path = tmp_path / "bulk.npz"
        save_checkpoint(original, path)
        restored = build_engine()
        load_checkpoint(restored, path)
        assert restored.state("bfs") == original.state("bfs")
        assert verify_bfs(restored, "bfs", source) == []


class TestExtraPayload:
    def test_extra_round_trips(self, tmp_path):
        original = build_engine()
        run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(
            original, path, extra={"stream_positions": {0: 5, 1: 7}}
        )
        restored = build_engine()
        extra = load_checkpoint(restored, path)
        assert extra == {"stream_positions": {0: 5, 1: 7}}

    def test_missing_extra_defaults_to_empty(self, tmp_path):
        original = build_engine()
        run_workload(original)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(original, path)
        restored = build_engine()
        assert load_checkpoint(restored, path) == {}


class TestCounterRoundTrip:
    """§VI-B delete-safety: the per-rank counters are durable state —
    losing them across a restore silently undercounts ``edge_deletes``
    (and every churn metric derived from it) after each recovery."""

    def _churn_engine(self, n_ranks=3):
        from repro import GenerationalBFS, GenerationalCC
        from repro.generators.churn import churn_events, split_churn_streams

        e = DynamicEngine(
            [GenerationalBFS(), GenerationalCC()],
            EngineConfig(n_ranks=n_ranks, undirected=True),
        )
        e.init_program("gen-bfs", 0)
        cols = churn_events(
            30, 150, delete_ratio=0.3, rng=np.random.default_rng(21)
        )
        e.attach_streams(split_churn_streams(*cols, n_ranks))
        e.run()
        return e

    def test_counters_restore_exactly(self, tmp_path):
        original = self._churn_engine()
        assert sum(c.edge_deletes for c in original.counters) > 0
        path = tmp_path / "counters.npz"
        save_checkpoint(original, path)

        restored = DynamicEngine(
            list(original.programs),
            EngineConfig(n_ranks=3, undirected=True),
        )
        load_checkpoint(restored, path)
        assert list(restored.counters) == list(original.counters)

    def test_rank_count_change_preserves_totals(self, tmp_path):
        # Restoring into a different rank count repartitions, so the
        # counters merge onto rank 0 — no aggregate may be lost.
        original = self._churn_engine(n_ranks=3)
        path = tmp_path / "c.npz"
        save_checkpoint(original, path)
        other = DynamicEngine(
            list(original.programs),
            EngineConfig(n_ranks=5, undirected=True),
        )
        load_checkpoint(other, path)
        assert sum(c.edge_deletes for c in other.counters) == sum(
            c.edge_deletes for c in original.counters
        )
        assert sum(c.source_events for c in other.counters) == sum(
            c.source_events for c in original.counters
        )

    def test_legacy_checkpoint_without_counters_loads(self, tmp_path):
        # Pre-delete checkpoints carry no counters entry; they restore
        # with zeroed counters, exactly the old behaviour.
        import pickle

        original = build_engine()
        run_workload(original)
        path = tmp_path / "legacy.npz"
        save_checkpoint(original, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        payload = pickle.loads(arrays["sidecar"].tobytes())
        del payload["counters"]
        arrays["sidecar"] = np.frombuffer(
            pickle.dumps(payload), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        restored = build_engine()
        load_checkpoint(restored, path)
        assert restored.state("bfs") == original.state("bfs")
        assert all(c.source_events == 0 for c in restored.counters)


class TestGuards:
    def test_save_mid_flight_rejected(self, tmp_path):
        e = build_engine()
        rng = np.random.default_rng(1)
        src, dst = rmat_edges(8, edge_factor=4, rng=rng)
        e.init_program("bfs", int(src[0]))
        e.attach_streams(split_streams(src, dst, 4, rng=rng))
        e.run(max_actions=50)  # stop mid-flight
        with pytest.raises(NotQuiescentError):
            save_checkpoint(e, tmp_path / "x.npz")

    def test_save_during_collection_rejected(self, tmp_path):
        e = build_engine()
        run_workload(e)
        e.request_collection("bfs", at_time=e.loop.max_time() + 1.0)
        # the alarm has not fired yet; fire it but stop before it finishes
        e.run(max_actions=1)
        if e.active_collection is not None:
            with pytest.raises(NotQuiescentError):
                save_checkpoint(e, tmp_path / "x.npz")

    def test_restore_into_used_engine_rejected(self, tmp_path):
        original = build_engine()
        run_workload(original)
        save_checkpoint(original, tmp_path / "c.npz")
        dirty = build_engine()
        run_workload(dirty, seed=5)
        with pytest.raises(RuntimeError, match="fresh engine"):
            load_checkpoint(dirty, tmp_path / "c.npz")

    def test_restore_program_mismatch_rejected(self, tmp_path):
        original = build_engine()
        run_workload(original)
        save_checkpoint(original, tmp_path / "c.npz")
        other = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=4))
        with pytest.raises(ValueError, match="program mismatch"):
            load_checkpoint(other, tmp_path / "c.npz")
