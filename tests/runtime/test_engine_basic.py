"""Engine fundamentals: construction, routing, topology, counters."""

import numpy as np
import pytest

from repro import (
    DegreeTracker,
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    ListEventStream,
    split_streams,
)
from repro.events.types import ADD
from repro.partition import ConsistentHashPartitioner


def path_stream(n):
    return ListEventStream([(ADD, i, i + 1, 1) for i in range(n)])


class TestConstruction:
    def test_construction_only_no_programs(self):
        # The evaluation's CON baseline: topology maintenance alone.
        e = DynamicEngine([], EngineConfig(n_ranks=2))
        e.attach_streams([path_stream(5)])
        e.run()
        assert e.num_edges == 10
        assert e.total_counters().visits == 0

    def test_duplicate_program_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DynamicEngine([IncrementalBFS(), IncrementalBFS()])

    def test_partitioner_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank count"):
            DynamicEngine(
                [IncrementalBFS()],
                EngineConfig(n_ranks=4),
                partitioner=ConsistentHashPartitioner(2),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(n_ranks=0)
        with pytest.raises(ValueError):
            EngineConfig(n_ranks=2, coordinator_rank=5)

    def test_prog_index_lookup(self):
        e = DynamicEngine([IncrementalBFS(), IncrementalCC()])
        assert e.prog_index("bfs") == 0
        assert e.prog_index("cc") == 1
        assert e.prog_index(1) == 1
        with pytest.raises(ValueError):
            e.prog_index("nope")
        with pytest.raises(ValueError):
            e.prog_index(7)

    def test_too_many_streams_rejected(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=1))
        with pytest.raises(ValueError):
            e.attach_streams([path_stream(1), path_stream(1)])


class TestTopologyMaintenance:
    def test_undirected_stores_both_directions(self):
        e = DynamicEngine([DegreeTracker()], EngineConfig(n_ranks=3))
        e.attach_streams([ListEventStream([(ADD, 1, 2, 7)])])
        e.run()
        assert e.has_edge(1, 2)
        assert e.has_edge(2, 1)
        assert e.num_edges == 2

    def test_directed_stores_one_direction(self):
        e = DynamicEngine(
            [DegreeTracker()], EngineConfig(n_ranks=3, undirected=False)
        )
        e.attach_streams([ListEventStream([(ADD, 1, 2, 7)])])
        e.run()
        assert e.has_edge(1, 2)
        assert not e.has_edge(2, 1)
        assert e.num_edges == 1

    def test_duplicate_edges_stored_once(self):
        e = DynamicEngine([DegreeTracker()], EngineConfig(n_ranks=2))
        e.attach_streams([ListEventStream([(ADD, 1, 2, 1)] * 5)])
        e.run()
        assert e.num_edges == 2  # one per direction
        total = e.total_counters()
        assert total.edge_inserts == 2
        assert total.source_events == 5

    def test_edges_iterator_covers_everything(self):
        e = DynamicEngine([DegreeTracker()], EngineConfig(n_ranks=4))
        events = [(ADD, 0, 1, 5), (ADD, 1, 2, 6), (ADD, 0, 2, 7)]
        e.attach_streams([ListEventStream(events)])
        e.run()
        got = set(e.edges())
        expected = set()
        for _, s, d, w in events:
            expected.add((s, d, w))
            expected.add((d, s, w))
        assert got == expected

    def test_vertices_distributed_by_partitioner(self):
        e = DynamicEngine([DegreeTracker()], EngineConfig(n_ranks=4))
        e.attach_streams([path_stream(50)])
        e.run()
        for rank, store in enumerate(e.stores):
            for vid in store.vertices():
                assert e.partitioner.owner(vid) == rank
        assert e.num_vertices == 51

    def test_weights_stored(self):
        e = DynamicEngine([DegreeTracker()], EngineConfig(n_ranks=2))
        e.attach_streams([ListEventStream([(ADD, 3, 4, 42)])])
        e.run()
        rank = e.partitioner.owner(3)
        assert e.stores[rank].edge_weight(3, 4) == 42


class TestExecution:
    def test_run_is_resumable_after_new_injection(self):
        bfs = IncrementalBFS()
        e = DynamicEngine([bfs], EngineConfig(n_ranks=2))
        e.attach_streams([path_stream(5)])
        e.run()
        from repro import INF

        assert e.value_of("bfs", 3) == INF  # touched but no init yet
        e.init_program("bfs", 0)
        e.run()
        assert e.value_of("bfs", 3) == 4

    def test_multiple_programs_share_topology(self):
        bfs, deg = IncrementalBFS(), DegreeTracker()
        e = DynamicEngine([bfs, deg], EngineConfig(n_ranks=3))
        e.init_program("bfs", 0)
        e.attach_streams([path_stream(6)])
        e.run()
        assert e.value_of("bfs", 6) == 7
        assert e.value_of("degree", 0) == 1
        assert e.value_of("degree", 3) == 2
        assert e.num_edges == 12  # topology stored once, not per program

    def test_counters_accumulate(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.init_program("bfs", 0)
        e.attach_streams([path_stream(10)])
        e.run()
        total = e.total_counters()
        assert total.source_events == 10
        assert total.edge_inserts == 20
        assert total.visits > 0
        assert total.busy_time > 0
        assert total.messages_sent_local + total.messages_sent_remote > 0

    def test_makespan_advances_and_rate_positive(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.init_program("bfs", 0)
        e.attach_streams([path_stream(10)])
        e.run()
        assert e.loop.max_time() > 0
        assert e.source_event_rate() > 0

    def test_state_merges_ranks(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=4))
        e.init_program("bfs", 0)
        e.attach_streams([path_stream(8)])
        e.run()
        state = e.state("bfs")
        assert len(state) == 9
        assert state[0] == 1 and state[8] == 9

    def test_parallel_streams_equivalent_to_single(self):
        src = np.arange(30)
        dst = np.arange(30) + 1
        single = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=1))
        single.init_program("bfs", 0)
        single.attach_streams(split_streams(src, dst, 1))
        single.run()
        multi = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=6))
        multi.init_program("bfs", 0)
        multi.attach_streams(split_streams(src, dst, 6))
        multi.run()
        assert single.state("bfs") == multi.state("bfs")

    def test_empty_stream_quiesces(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.attach_streams([ListEventStream([])])
        e.run()
        assert e.loop.quiescent()
        assert e.num_edges == 0
