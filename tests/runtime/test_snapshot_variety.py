"""Versioned collection across the other merge-mode programs (CC, ST)
and interplay with triggers and deletes."""

import numpy as np

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalCC,
    MultiSTConnectivity,
    split_streams,
)
from repro.algorithms.cc import component_label
from repro.generators import erdos_renyi_edges, rmat_edges


def build(programs, seed, n_ranks=6, scale=8):
    rng = np.random.default_rng(seed)
    src, dst = rmat_edges(scale, edge_factor=6, rng=rng)
    e = DynamicEngine(programs, EngineConfig(n_ranks=n_ranks))
    e.attach_streams(split_streams(src, dst, n_ranks, rng=rng))
    return e, src


class TestCCSnapshot:
    def test_cc_snapshot_is_max_monotone_lower_bound(self):
        # CC labels only grow; a prefix snapshot is pointwise <= final.
        e, _ = build([IncrementalCC()], seed=0)
        e.request_collection("cc", at_time=5e-4)
        e.run()
        snap = e.collection_results[0].state
        final = e.state("cc")
        assert snap  # non-empty
        for v, label in snap.items():
            if label == 0:
                continue
            assert final[v] >= label

    def test_cc_snapshot_labels_are_real_hashes(self):
        # Every snapshot label is some vertex's component hash — the
        # split bookkeeping must never manufacture values.
        e, src = build([IncrementalCC()], seed=1)
        e.request_collection("cc", at_time=5e-4)
        e.run()
        valid = {component_label(int(v)) for v in range(1 << 9)}
        for v, label in e.collection_results[0].state.items():
            if label:
                assert label in valid


class TestSTSnapshot:
    def test_st_snapshot_masks_subset_of_final(self):
        st = MultiSTConnectivity()
        e, src = build([st], seed=2)
        sources = sorted({int(v) for v in src[:3]})
        for s in sources:
            e.init_program("st", s, payload=st.register_source(s))
        e.request_collection("st", at_time=5e-4)
        e.run()
        snap = e.collection_results[0].state
        final = e.state("st")
        for v, mask in snap.items():
            # union-monotone: snapshot mask ⊆ final mask
            assert mask & final.get(v, 0) == mask


class TestSnapshotWithTriggers:
    def test_triggers_fire_normally_during_collection(self):
        e, src = build([IncrementalCC()], seed=3)
        fired = []
        e.add_trigger(
            "cc", lambda v, val: val != 0, lambda v, val, t: fired.append(v)
        )
        e.request_collection("cc", at_time=3e-4)
        e.run()
        # every labelled vertex fired exactly once
        assert sorted(fired) == sorted(set(fired))
        assert set(fired) == {v for v, val in e.state("cc").items() if val}


class TestCollectionAccounting:
    def test_control_messages_counted(self):
        e, src = build([IncrementalCC()], seed=4)
        e.request_collection("cc", at_time=5e-4)
        e.run()
        total = e.total_counters()
        r = e.collection_results[0]
        # cut + probes(waves) + reports + harvest + parts, all ranks
        assert total.control_messages >= 6 * (2 + r.probe_waves)

    def test_prev_values_cleared_after_harvest(self):
        e, src = build([IncrementalCC()], seed=5)
        e.request_collection("cc", at_time=5e-4)
        e.run()
        assert e.active_collection is None
        for prev in e._prev_vals:
            assert prev == {}

    def test_collection_on_empty_engine(self):
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=3))
        e.request_collection("cc", at_time=1e-3)
        e.run()
        r = e.collection_results[0]
        assert r.state == {}
        assert r.vertices_collected == 0


class TestVerifiedAgainstPrefixWithDeletesExcluded:
    def test_snapshot_during_er_stream(self):
        rng = np.random.default_rng(6)
        src, dst = erdos_renyi_edges(100, 600, rng=rng)
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=4))
        e.attach_streams(split_streams(src, dst, 4, rng=rng))
        e.request_collection("cc", at_time=2e-4)
        e.run()
        # consistency: labels present in the snapshot agree with label
        # equality classes that persist to the end (merged components
        # can only coarsen, never split, in add-only streams)
        snap = e.collection_results[0].state
        final = e.state("cc")
        groups: dict[int, set[int]] = {}
        for v, label in snap.items():
            if label:
                groups.setdefault(label, set()).add(v)
        for label, members in groups.items():
            final_labels = {final[v] for v in members}
            assert len(final_labels) == 1, f"snapshot group {label} split later"
