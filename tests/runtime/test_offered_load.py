"""Tests for paced (offered-load) ingestion and vertex removal."""

import numpy as np

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    ListEventStream,
)
from repro.analytics import verify_cc
from repro.events.types import ADD, DELETE
from repro.generators import erdos_renyi_edges


class TestInjectTimedEvents:
    def test_events_apply_at_their_times(self):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=2))
        e.init_program("bfs", 0)
        n = e.inject_timed_events(
            [(1e-3, ADD, 0, 1, 1), (2e-3, ADD, 1, 2, 1)]
        )
        assert n == 2
        e.run(max_virtual_time=1.5e-3)
        assert e.value_of("bfs", 1) == 2
        assert e.value_of("bfs", 2) == 0  # second event not yet arrived
        e.run()
        assert e.value_of("bfs", 2) == 3

    def test_converges_same_as_pulled(self):
        rng = np.random.default_rng(0)
        src, dst = erdos_renyi_edges(40, 150, rng=rng)
        timed = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=4))
        timed.inject_timed_events(
            (i * 1e-6, ADD, int(s), int(d), 1) for i, (s, d) in enumerate(zip(src, dst))
        )
        timed.run()
        assert verify_cc(timed, "cc") == []

    def test_low_offered_load_is_real_time(self):
        """§V-A's claim: offered load below the max is absorbed as it
        arrives — the makespan tracks the arrival span, and per-event
        latency stays flat (no queueing backlog)."""
        rng = np.random.default_rng(1)
        src, dst = erdos_renyi_edges(60, 400, rng=rng)
        spacing = 10e-6  # far slower than saturation throughput
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=4))
        e.init_program("bfs", int(src[0]))
        e.inject_timed_events(
            (i * spacing, ADD, int(s), int(d), 1)
            for i, (s, d) in enumerate(zip(src, dst))
        )
        e.run()
        arrival_span = (len(src) - 1) * spacing
        # the run ends within a small tail after the last arrival
        assert e.loop.max_time() < arrival_span + 50e-6
        # and nobody was saturated
        assert all(c.busy_time < 0.5 * e.loop.max_time() for c in e.counters)

    def test_deletes_injectable(self):
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=2))
        e.inject_timed_events(
            [
                (1e-6, ADD, 0, 1, 1),
                (2e-6, ADD, 1, 2, 1),
                (3e-6, DELETE, 0, 1, 0),
            ]
        )
        e.run()
        assert not e.has_edge(0, 1)
        assert e.has_edge(1, 2)

    def test_canonical_routing_applies(self):
        e = DynamicEngine([], EngineConfig(n_ranks=4))
        e.inject_timed_events(
            [(1e-6, ADD, 9, 2, 1), (2e-6, ADD, 2, 9, 1), (3e-6, DELETE, 9, 2, 0)]
        )
        e.run()
        assert e.has_edge(2, 9) == e.has_edge(9, 2) == False  # noqa: E712


class TestVertexRemoval:
    def test_removal_events_cover_adjacency(self):
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=3))
        e.attach_streams(
            [ListEventStream([(ADD, 5, 1, 1), (ADD, 5, 2, 1), (ADD, 1, 2, 1)])]
        )
        e.run()
        events = e.vertex_removal_events(5)
        assert sorted(d for _, _s, d, _ in events) == [1, 2]
        assert all(k == DELETE for k, *_ in events)

    def test_removal_isolates_vertex(self):
        from repro import GenerationalCC

        e = DynamicEngine([GenerationalCC()], EngineConfig(n_ranks=3))
        e.attach_streams(
            [ListEventStream([(ADD, 5, 1, 1), (ADD, 5, 2, 1), (ADD, 1, 2, 1)])]
        )
        e.run()
        e.attach_streams([ListEventStream(e.vertex_removal_events(5))])
        e.run()
        rank = e.partitioner.owner(5)
        assert e.stores[rank].degree(5) == 0
        # 1 and 2 remain connected to each other but not to 5
        assert verify_cc(e, "gen-cc", value_of=lambda v: v[1]) == []

    def test_removal_of_unknown_vertex_is_empty(self):
        e = DynamicEngine([], EngineConfig(n_ranks=2))
        assert e.vertex_removal_events(123) == []
