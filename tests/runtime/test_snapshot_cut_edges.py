"""Regression: post-cut edges must not leak into S_prev (§III-D).

Found by the snapshot-prefix hypothesis property: a vertex processing a
*prev*-version update iterates its live adjacency, which may already
contain edges inserted after the cut — the prev-version flood then
crossed a post-cut edge and polluted the harvested S_prev (here: the
snapshot reported vertex 2 at BFS level 2, reachable only via the
post-cut edge (0, 2), instead of level 3 via the prefix).  The engine
now relabels prev-version emissions crossing post-cut edges to the cut
version, so their effect lands in S_new only while the final state
still converges.
"""

import numpy as np
import pytest

from repro import DynamicEngine, EngineConfig, IncrementalBFS, INF
from repro.analytics import verify_bfs
from repro.events.stream import ListEventStream
from repro.events.types import ADD
from repro.staticalgs import static_bfs
from repro.storage.csr import CSRGraph

# The minimized falsifying stream: dense 0-1 traffic delays the cut
# relative to rank 2's stream, whose last event (0, 2) lands post-cut.
EDGES = [
    (0, 1), (0, 1), (1, 3), (0, 1), (0, 1), (0, 1),
    (1, 3), (0, 1), (0, 3), (2, 3), (0, 1), (0, 2),
]
N_RANKS = 3
CUT_AT = 0.5 * len(EDGES) * 2.5e-6 / N_RANKS


def split(events, n):
    streams = [[] for _ in range(n)]
    for i, ev in enumerate(events):
        streams[i % n].append(ev)
    return streams


@pytest.mark.parametrize("coalesce", [False, True])
@pytest.mark.parametrize("batch", [False, True])
def test_post_cut_edge_does_not_leak_into_snapshot(coalesce, batch):
    events = [(ADD, s, d, 1) for s, d in EDGES]
    source = 0
    evsplit = split(events, N_RANKS)
    streams = [ListEventStream(evts, stream_id=k) for k, evts in enumerate(evsplit)]
    engine = DynamicEngine(
        [IncrementalBFS()],
        EngineConfig(
            n_ranks=N_RANKS, coalesce_updates=coalesce, batch_updates=batch
        ),
    )
    engine.init_program("bfs", source)
    engine.attach_streams(streams)
    engine.request_collection("bfs", at_time=CUT_AT)
    engine.run()

    res = engine.collection_results[0]
    cuts = engine.cut_positions[res.collection_id]
    pre_src, pre_dst = [], []
    for rank, evts in enumerate(evsplit):
        for _, s, d, _w in evts[: cuts.get(rank, 0)]:
            pre_src.append(s)
            pre_dst.append(d)
    prefix = CSRGraph.from_edges(
        np.array(pre_src), np.array(pre_dst), symmetrize=True
    )
    expect, _ = static_bfs(prefix, source)
    got = {v: val for v, val in res.state.items() if 0 < val < INF}
    assert got == expect or got == {**expect, source: 1}
    # The relabelled messages still reach the final state.
    assert verify_bfs(engine, "bfs", source) == []
