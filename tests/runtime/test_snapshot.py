"""Tests for versioned (continuous) global state collection — §III-D."""

import numpy as np

from repro import (
    DegreeTracker,
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    INF,
    split_streams,
)
from repro.analytics import verify_bfs
from repro.generators import rmat_edges
from repro.staticalgs import static_bfs
from repro.storage.csr import CSRGraph


def rmat_engine(n_ranks, scale=8, seed=0, programs=None):
    rng = np.random.default_rng(seed)
    src, dst = rmat_edges(scale, edge_factor=8, rng=rng)
    progs = programs or [IncrementalBFS()]
    e = DynamicEngine(progs, EngineConfig(n_ranks=n_ranks))
    e.attach_streams(split_streams(src, dst, n_ranks, rng=rng))
    return e, src, dst


class TestCollectionBasics:
    def test_collection_completes_and_reports(self):
        e, src, _ = rmat_engine(4)
        e.init_program("bfs", int(src[0]))
        seen = []
        e.request_collection("bfs", at_time=1e-3, callback=seen.append)
        e.run()
        assert len(e.collection_results) == 1
        r = e.collection_results[0]
        assert seen == [r]
        assert r.completed_at > r.requested_at
        assert r.latency > 0
        assert r.probe_waves >= 2  # four-counter needs two agreeing waves
        assert r.vertices_collected == len(r.state)

    def test_collection_does_not_disturb_final_state(self):
        e, src, _ = rmat_engine(4, seed=1)
        source = int(src[0])
        e.init_program("bfs", source)
        e.request_collection("bfs", at_time=5e-4)
        e.run()
        assert verify_bfs(e, "bfs", source) == []

    def test_collection_after_quiescence_equals_final_state(self):
        e, src, _ = rmat_engine(2, seed=2)
        source = int(src[0])
        e.init_program("bfs", source)
        e.run()
        final = dict(e.state("bfs"))
        e.request_collection("bfs", at_time=e.loop.max_time() + 1.0)
        e.run()
        r = e.collection_results[0]
        assert r.state == final

    def test_snapshot_is_monotone_upper_bound_of_final(self):
        # BFS levels only decrease, so any prefix snapshot dominates the
        # final answer pointwise.
        e, src, _ = rmat_engine(8, seed=3)
        e.init_program("bfs", int(src[0]))
        e.request_collection("bfs", at_time=1e-3)
        e.run()
        snap = e.collection_results[0].state
        final = e.state("bfs")
        for v, val in snap.items():
            if val == 0:
                continue
            assert final.get(v, 0) != 0
            assert final[v] <= val

    def test_overlapping_collections_queue(self):
        # A request landing while another collection is active defers
        # until the active one concludes (one at a time, like the
        # paper's prototype).
        e, src, _ = rmat_engine(4, scale=10, seed=4)
        e.init_program("bfs", int(src[0]))
        e.request_collection("bfs", at_time=1e-4)
        e.request_collection("bfs", at_time=1.01e-4)  # while first active
        e.run()
        assert len(e.collection_results) == 2
        first, second = e.collection_results
        assert second.requested_at >= first.completed_at
        assert second.cut_version > first.cut_version

    def test_sequential_collections_allowed(self):
        e, src, _ = rmat_engine(4, seed=5)
        e.init_program("bfs", int(src[0]))
        e.request_collection("bfs", at_time=5e-4)
        e.run()
        e.request_collection("bfs", at_time=e.loop.max_time() + 1e-3)
        e.run()
        assert len(e.collection_results) == 2
        a, b = e.collection_results
        assert b.cut_version > a.cut_version


class TestPrefixExactness:
    def test_single_rank_snapshot_equals_static_prefix(self):
        """On one rank the cut position fully determines the prefix: the
        snapshot must equal static BFS on exactly that prefix graph."""
        rng = np.random.default_rng(7)
        src, dst = rmat_edges(8, edge_factor=8, rng=rng)
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=1))
        source = int(src[0])
        e.init_program("bfs", source)
        e.attach_streams(split_streams(src, dst, 1))
        e.request_collection("bfs", at_time=2e-4)
        e.run()
        r = e.collection_results[0]
        k = e.cut_positions[r.collection_id][0]
        assert 0 < k < len(src)
        prefix = CSRGraph.from_edges(src[:k], dst[:k], symmetrize=True)
        expect, _ = static_bfs(prefix, source)
        got = {v: val for v, val in r.state.items() if 0 < val < INF}
        assert got == expect

    def test_multi_rank_snapshot_equals_static_on_cut_prefixes(self):
        """With per-rank cuts, the discretized graph is the union of each
        stream's prefix; the snapshot must match static BFS on it."""
        rng = np.random.default_rng(8)
        src, dst = rmat_edges(8, edge_factor=8, rng=rng)
        n_ranks = 4
        streams = split_streams(src, dst, n_ranks, rng=np.random.default_rng(9))
        # Keep replayable copies of each stream's event order.
        replay = [[ev for ev in list(s)] for s in streams]
        for s in streams:
            s.reset()
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=n_ranks))
        source = int(src[0])
        e.init_program("bfs", source)
        e.attach_streams(streams)
        e.request_collection("bfs", at_time=3e-4)
        e.run()
        r = e.collection_results[0]
        cuts = e.cut_positions[r.collection_id]
        pre_src, pre_dst = [], []
        for rank, events in enumerate(replay):
            for _, s_, d_, _w in events[: cuts[rank]]:
                pre_src.append(s_)
                pre_dst.append(d_)
        prefix = CSRGraph.from_edges(
            np.array(pre_src), np.array(pre_dst), symmetrize=True
        )
        expect, _ = static_bfs(prefix, source)
        got = {v: val for v, val in r.state.items() if 0 < val < INF}
        assert got == expect


class TestReplayModePrograms:
    def test_degree_collection_completes(self):
        deg = DegreeTracker()
        e, src, dst = rmat_engine(4, seed=11, programs=[deg])
        e.request_collection("degree", at_time=1e-3)
        e.run()
        r = e.collection_results[0]
        assert r.vertices_collected > 0
        # Post-run live degrees match the store exactly.
        for v, d in e.state("degree").items():
            rank = e.partitioner.owner(v)
            assert e.stores[rank].degree(v) == d


class TestMultiProgramCollection:
    def test_collection_targets_one_program_only(self):
        bfs, cc = IncrementalBFS(), IncrementalCC()
        e, src, _ = rmat_engine(4, seed=12, programs=[bfs, cc])
        source = int(src[0])
        e.init_program("bfs", source)
        e.request_collection("cc", at_time=1e-3)
        e.run()
        r = e.collection_results[0]
        assert r.prog == e.prog_index("cc")
        # BFS unaffected by the CC collection.
        assert verify_bfs(e, "bfs", source) == []
