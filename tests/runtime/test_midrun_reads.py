"""Mid-run read coherence across collection cuts (serving regression).

The serving layer reads ``value_of``/``state`` between bounded
``run(max_actions=...)`` slices.  Those reads must always see the
*newest* version of each vertex value: a collection cut rotates stream
versions and harvests ``S_prev``, and a regression that pointed reads
at the harvested (prev-version) dicts would surface as values moving
*backwards* against the program's monotone direction — a min-monotone
BFS level re-increasing or resetting to unset, an st bitmask dropping
bits, a max-monotone CC label shrinking.  These tests slice ingest
finely with a collection scheduled mid-stream and assert monotone
non-regression of every observed value, plus ``state``/``value_of``
agreement at every pause.
"""

import numpy as np
import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    MultiSTConnectivity,
)
from repro.algorithms.base import INF
from repro.events.stream import split_streams
from repro.generators import rmat_edges

N_RANKS = 4


def _edges(seed=11, scale=6, ef=5):
    rng = np.random.default_rng(seed)
    return rmat_edges(scale, edge_factor=ef, rng=rng)


def _attach(engine, src, dst, seed=1):
    engine.attach_streams(
        split_streams(src, dst, N_RANKS, rng=np.random.default_rng(seed))
    )


def _slices(engine, max_actions=64):
    """Yield after every bounded slice until quiescence."""
    while not engine.loop.quiescent():
        engine.run(max_actions=max_actions)
        yield


class TestMinMonotoneBFS:
    def test_levels_never_regress_across_collection_cut(self):
        src, dst = _edges()
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=N_RANKS))
        e.init_program("bfs", int(src[0]))
        _attach(e, src, dst)
        e.request_collection("bfs", at_time=5e-4)
        vertices = np.unique(np.concatenate([src, dst]))
        seen: dict[int, int] = {}
        checked = 0
        for _ in _slices(e):
            for v in vertices:
                got = e.value_of("bfs", int(v))
                if got == 0 or got >= INF:
                    # Unset is fine before first touch, but a vertex
                    # must never revert to unset once levelled.
                    assert v not in seen, (
                        f"vertex {v} reverted to unset after level {seen[v]}"
                    )
                    continue
                if v in seen:
                    assert got <= seen[v], (
                        f"vertex {v} level regressed {seen[v]} -> {got}"
                    )
                    checked += 1
                seen[int(v)] = got
        assert e.collection_results, "the mid-stream collection never ran"
        assert checked > 100  # the monotone assertion actually exercised

    def test_state_agrees_with_value_of_at_every_pause(self):
        src, dst = _edges(seed=12)
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=N_RANKS))
        e.init_program("bfs", int(src[0]))
        _attach(e, src, dst)
        e.request_collection("bfs", at_time=4e-4)
        for _ in _slices(e, max_actions=128):
            merged = e.state("bfs")
            for v, val in merged.items():
                assert e.value_of("bfs", v) == val
        assert e.collection_results


class TestUnionMonotoneST:
    def test_bitmasks_only_grow_across_collection_cut(self):
        src, dst = _edges(seed=13)
        st = MultiSTConnectivity()
        e = DynamicEngine([st], EngineConfig(n_ranks=N_RANKS))
        for s in np.unique(src)[:3]:
            e.init_program("st", int(s), payload=st.register_source(int(s)))
        _attach(e, src, dst)
        e.request_collection("st", at_time=5e-4)
        vertices = np.unique(np.concatenate([src, dst]))
        seen: dict[int, int] = {}
        grew = 0
        for _ in _slices(e):
            for v in vertices:
                got = e.value_of("st", int(v))
                prev = seen.get(int(v), 0)
                assert got & prev == prev, (
                    f"vertex {v} bitmask dropped bits: {prev:b} -> {got:b}"
                )
                if got != prev:
                    grew += 1
                seen[int(v)] = got
        assert e.collection_results
        assert grew > 0


class TestMaxMonotoneCC:
    def test_labels_never_shrink_across_collection_cut(self):
        src, dst = _edges(seed=14)
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=N_RANKS))
        _attach(e, src, dst)
        e.request_collection("cc", at_time=5e-4)
        vertices = np.unique(np.concatenate([src, dst]))
        seen: dict[int, int] = {}
        for _ in _slices(e):
            for v in vertices:
                got = e.value_of("cc", int(v))
                prev = seen.get(int(v), 0)
                assert got >= prev, (
                    f"vertex {v} label shrank {prev} -> {got}"
                )
                seen[int(v)] = got
        assert e.collection_results

    def test_collection_harvest_does_not_leak_into_live_reads(self):
        # The harvested CollectionResult is a *prefix* of the final
        # state; live reads at quiescence must strictly dominate it
        # (max-monotone), proving the read path was never switched to
        # the harvested prev-version dicts.
        src, dst = _edges(seed=15)
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=N_RANKS))
        _attach(e, src, dst)
        e.request_collection("cc", at_time=3e-4)
        for _ in _slices(e, max_actions=256):
            pass
        assert e.collection_results
        harvested = e.collection_results[0].state
        final = e.state("cc")
        assert harvested  # the cut landed mid-stream, not on empty state
        for v, label in harvested.items():
            assert final.get(v, 0) >= label
