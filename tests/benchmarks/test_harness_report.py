"""Output-shape contract of the bench harness's ``report_json``.

The driver and EXPERIMENTS.md consumers rely on the ``BENCH_*.json``
artifacts landing at the repo root, having sorted keys (stable diffs),
ending with a trailing newline (POSIX text files), and carrying a
``meta`` block recording the run environment (cores, python, commit)
so numbers are comparable across hosts.  Locked in here so harness
refactors cannot silently change the artifact format.
"""

import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from harness import REPO_ROOT as HARNESS_ROOT  # noqa: E402
from harness import report_json, run_metadata  # noqa: E402

PAYLOAD = {
    "zeta": 1,
    "alpha": {"nested_z": [3, 2, 1], "nested_a": True},
    "mid": None,
}


def test_run_metadata_contents():
    meta = run_metadata()
    assert meta["cores"] == os.cpu_count()
    assert meta["python"] == platform.python_version()
    assert isinstance(meta["commit"], str) and meta["commit"]
    assert isinstance(meta["bench_scale"], int)
    assert isinstance(meta["ranks_per_node"], int)
    assert meta["host_platform"]


def test_report_json_shape(tmp_path):
    name = "_pytest_shape_probe"
    path = report_json(name, PAYLOAD)
    try:
        # Artifact lands at the repo root under the BENCH_ prefix.
        assert path == REPO_ROOT / f"BENCH_{name}.json"
        assert HARNESS_ROOT == REPO_ROOT
        assert path.parent == REPO_ROOT

        text = path.read_text()
        # Trailing newline, exactly one.
        assert text.endswith("\n")
        assert not text.endswith("\n\n")
        loaded = json.loads(text)
        # The payload round-trips losslessly, plus the stamped meta.
        meta = loaded.pop("meta")
        assert loaded == PAYLOAD
        assert meta["cores"] == os.cpu_count()
        assert meta["python"] == platform.python_version()
        assert meta["commit"]
        # Keys sorted at every nesting level (indent 2, sort_keys).
        assert text == json.dumps(
            json.loads(text), indent=2, sort_keys=True
        ) + "\n"
        lines = text.splitlines()
        top_keys = [
            line.split('"')[1] for line in lines if line.startswith('  "')
        ]
        assert top_keys == sorted(top_keys) == ["alpha", "meta", "mid", "zeta"]
    finally:
        path.unlink(missing_ok=True)


def test_report_json_keeps_explicit_meta(tmp_path):
    name = "_pytest_shape_probe_meta"
    path = report_json(name, {"k": 1, "meta": {"cores": -1}})
    try:
        assert json.loads(path.read_text())["meta"] == {"cores": -1}
    finally:
        path.unlink(missing_ok=True)


def test_report_json_returns_written_path(tmp_path):
    name = "_pytest_shape_probe2"
    path = report_json(name, {"k": 1})
    try:
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["k"] == 1 and "meta" in doc
    finally:
        path.unlink(missing_ok=True)
