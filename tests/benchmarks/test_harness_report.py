"""Output-shape contract of the bench harness's ``report_json``.

The driver and EXPERIMENTS.md consumers rely on three properties of the
``BENCH_*.json`` artifacts: they land at the repo root, their keys are
sorted (stable diffs), and they end with a trailing newline (POSIX
text files).  Locked in here so harness refactors cannot silently
change the artifact format.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from harness import REPO_ROOT as HARNESS_ROOT  # noqa: E402
from harness import report_json  # noqa: E402

PAYLOAD = {
    "zeta": 1,
    "alpha": {"nested_z": [3, 2, 1], "nested_a": True},
    "mid": None,
}


def test_report_json_shape(tmp_path):
    name = "_pytest_shape_probe"
    path = report_json(name, PAYLOAD)
    try:
        # Artifact lands at the repo root under the BENCH_ prefix.
        assert path == REPO_ROOT / f"BENCH_{name}.json"
        assert HARNESS_ROOT == REPO_ROOT
        assert path.parent == REPO_ROOT

        text = path.read_text()
        # Trailing newline, exactly one.
        assert text.endswith("\n")
        assert not text.endswith("\n\n")
        # Round-trips losslessly.
        assert json.loads(text) == PAYLOAD
        # Keys sorted at every nesting level (indent 2, sort_keys).
        assert text == json.dumps(PAYLOAD, indent=2, sort_keys=True) + "\n"
        lines = text.splitlines()
        top_keys = [
            line.split('"')[1] for line in lines if line.startswith('  "')
        ]
        assert top_keys == sorted(top_keys) == ["alpha", "mid", "zeta"]
    finally:
        path.unlink(missing_ok=True)


def test_report_json_returns_written_path(tmp_path):
    name = "_pytest_shape_probe2"
    path = report_json(name, {"k": 1})
    try:
        assert path.exists()
        assert json.loads(path.read_text()) == {"k": 1}
    finally:
        path.unlink(missing_ok=True)
