"""Unit tests for the bench-regression gate (benchmarks/compare.py).

CI trusts this tool to fail the build on a real throughput regression
and to stay quiet on runner noise, so both directions are pinned:
gated virtual metrics fail past tolerance, wall-clock metrics are
never gated, improvements and new benches pass.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from compare import compare_docs, compare_trees, iter_metrics, main  # noqa: E402

BASE = {
    "bench": "demo",
    "events_per_second": 1000.0,
    "wall_seconds": 5.0,
    "results": [
        {"events_per_second": 400.0, "wall_events_per_second": 10.0},
        {"events_per_second": 600.0, "n_ranks": 4},
    ],
    "peak_speedup": 2.0,
}


def clone(doc=BASE, **top_level):
    out = json.loads(json.dumps(doc))
    out.update(top_level)
    return out


class TestIterMetrics:
    def test_collects_gated_keys_recursively(self):
        assert dict(iter_metrics(BASE)) == {
            "events_per_second": 1000.0,
            "results[0].events_per_second": 400.0,
            "results[1].events_per_second": 600.0,
            "peak_speedup": 2.0,
        }

    def test_wall_metrics_are_never_gated(self):
        paths = dict(iter_metrics(BASE))
        assert not any("wall" in p for p in paths)

    def test_non_numeric_gated_keys_ignored(self):
        assert dict(iter_metrics({"events_per_second": "n/a"})) == {}

    def test_wall_speedup_4v1_is_gated_despite_marker(self):
        doc = clone(wall_speedup_4v1=3.0)
        assert dict(iter_metrics(doc))["wall_speedup_4v1"] == 3.0


class TestCompareDocs:
    def test_identical_docs_pass(self):
        assert compare_docs(BASE, clone(), tolerance=0.25) == []

    def test_regression_past_tolerance_fails(self):
        fresh = clone(events_per_second=700.0)  # -30%
        problems = compare_docs(BASE, fresh, tolerance=0.25)
        assert len(problems) == 1
        assert "events_per_second" in problems[0]
        assert "30.0%" in problems[0]

    def test_loss_within_tolerance_passes(self):
        fresh = clone(events_per_second=800.0)  # -20%
        assert compare_docs(BASE, fresh, tolerance=0.25) == []

    def test_improvement_passes(self):
        fresh = clone(events_per_second=5000.0, peak_speedup=9.0)
        assert compare_docs(BASE, fresh, tolerance=0.25) == []

    def test_wall_clock_collapse_is_not_a_regression(self):
        fresh = clone(wall_seconds=500.0)
        fresh["results"][0]["wall_events_per_second"] = 0.001
        assert compare_docs(BASE, fresh, tolerance=0.25) == []

    def test_nested_regression_is_located(self):
        fresh = clone()
        fresh["results"][1]["events_per_second"] = 60.0
        problems = compare_docs(BASE, fresh, tolerance=0.25)
        assert problems and "results[1].events_per_second" in problems[0]

    def test_missing_gated_metric_fails(self):
        fresh = clone()
        del fresh["peak_speedup"]
        problems = compare_docs(BASE, fresh, tolerance=0.25)
        assert problems == ["peak_speedup: gated metric missing from fresh run"]

    def test_wall_speedup_4v1_collapse_is_a_regression(self):
        base = clone(wall_speedup_4v1=3.0)
        fresh = clone(wall_speedup_4v1=1.0)
        problems = compare_docs(base, fresh, tolerance=0.25)
        assert len(problems) == 1 and "wall_speedup_4v1" in problems[0]

    def test_zero_baseline_is_skipped(self):
        base = clone(events_per_second=0.0)
        fresh = clone(events_per_second=0.0)
        assert compare_docs(base, fresh, tolerance=0.25) == []


class TestServingGates:
    """The gate flavours added for BENCH_serving (hit_rate, lower-is-
    better p99 latency, same-host cache-vs-collection ratio)."""

    SERVING = {
        "bench": "serving_latency",
        "converged": {"hit_rate": 0.95, "wall_p99_point_us": 10.0,
                      "wall_p50_point_us": 3.0, "hit_rate_mixed": 0.02},
        "wall_speedup_cache_vs_collection": 100.0,
        "wall_speedup_trigger_index": 2000.0,
    }

    def test_gated_paths(self):
        paths = dict(iter_metrics(self.SERVING))
        assert set(paths) == {
            "converged.hit_rate",
            "converged.wall_p99_point_us",
            "wall_speedup_cache_vs_collection",
            "wall_speedup_trigger_index",
        }
        # hit_rate_mixed (nondeterministic mid-ingest figure) and the
        # plain-wall p50 stay ungated.

    def test_hit_rate_drop_fails(self):
        fresh = clone(self.SERVING)
        fresh["converged"]["hit_rate"] = 0.60  # -37%
        problems = compare_docs(self.SERVING, fresh, tolerance=0.25)
        assert len(problems) == 1 and "hit_rate" in problems[0]

    def test_p99_increase_gated_with_loose_override(self):
        fresh = clone(self.SERVING)
        fresh["converged"]["wall_p99_point_us"] = 24.0  # 2.4x: within 2.5x
        assert compare_docs(self.SERVING, fresh, tolerance=0.25) == []
        fresh["converged"]["wall_p99_point_us"] = 30.0  # 3.0x: blowup
        problems = compare_docs(self.SERVING, fresh, tolerance=0.25)
        assert len(problems) == 1 and "wall_p99_point_us" in problems[0]

    def test_p99_decrease_is_an_improvement(self):
        fresh = clone(self.SERVING)
        fresh["converged"]["wall_p99_point_us"] = 1.0
        assert compare_docs(self.SERVING, fresh, tolerance=0.25) == []

    def test_same_host_ratios_gated_with_override(self):
        # 2x jitter around a ~100x ratio passes (override 0.5)...
        fresh = clone(
            self.SERVING,
            wall_speedup_cache_vs_collection=55.0,
            wall_speedup_trigger_index=1100.0,
        )
        assert compare_docs(self.SERVING, fresh, tolerance=0.25) == []
        # ...a structural collapse does not.
        fresh = clone(self.SERVING, wall_speedup_cache_vs_collection=2.0)
        problems = compare_docs(self.SERVING, fresh, tolerance=0.25)
        assert len(problems) == 1
        assert "wall_speedup_cache_vs_collection" in problems[0]


def write_tree(directory, **docs):
    directory.mkdir(exist_ok=True)
    for name, doc in docs.items():
        (directory / f"BENCH_{name}.json").write_text(json.dumps(doc))
    return directory


class TestCompareTrees:
    def test_clean_trees_pass(self, tmp_path):
        base = write_tree(tmp_path / "base", a=BASE, b=clone())
        fresh = write_tree(tmp_path / "fresh", a=clone(), b=clone())
        problems, notes = compare_trees(base, fresh, 0.25)
        assert problems == []
        assert len(notes) == 2 and all("OK" in n for n in notes)

    def test_regressed_file_fails_with_filename(self, tmp_path):
        base = write_tree(tmp_path / "base", a=BASE)
        fresh = write_tree(tmp_path / "fresh", a=clone(events_per_second=1.0))
        problems, _ = compare_trees(base, fresh, 0.25)
        assert problems and problems[0].startswith("BENCH_a.json:")

    def test_not_rerun_bench_is_skipped(self, tmp_path):
        base = write_tree(tmp_path / "base", a=BASE)
        fresh = write_tree(tmp_path / "fresh")
        problems, notes = compare_trees(base, fresh, 0.25)
        assert problems == []
        assert notes == ["BENCH_a.json: not re-run, skipped"]

    def test_new_bench_without_baseline_passes(self, tmp_path):
        base = write_tree(tmp_path / "base", a=BASE)
        fresh = write_tree(tmp_path / "fresh", a=clone(), extra=clone())
        problems, notes = compare_trees(base, fresh, 0.25)
        assert problems == []
        assert any("new bench" in n for n in notes)

    def test_empty_baseline_dir_fails(self, tmp_path):
        base = write_tree(tmp_path / "base")
        fresh = write_tree(tmp_path / "fresh", a=clone())
        problems, _ = compare_trees(base, fresh, 0.25)
        assert problems == [f"no BENCH_*.json baselines found in {base}"]


class TestMain:
    def test_exit_zero_on_pass(self, tmp_path, capsys):
        base = write_tree(tmp_path / "base", a=BASE)
        fresh = write_tree(tmp_path / "fresh", a=clone())
        assert main(["--baseline", str(base), "--fresh", str(fresh)]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = write_tree(tmp_path / "base", a=BASE)
        fresh = write_tree(tmp_path / "fresh", a=clone(events_per_second=1.0))
        assert main(["--baseline", str(base), "--fresh", str(fresh)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_custom_tolerance(self, tmp_path):
        base = write_tree(tmp_path / "base", a=BASE)
        fresh = write_tree(tmp_path / "fresh", a=clone(events_per_second=800.0))
        argv = ["--baseline", str(base), "--fresh", str(fresh)]
        assert main([*argv, "--tolerance", "0.1"]) == 1
        assert main([*argv, "--tolerance", "0.25"]) == 0

    def test_invalid_tolerance_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--baseline", str(tmp_path), "--fresh", str(tmp_path),
                  "--tolerance", "1.5"])

    def test_gate_passes_on_the_committed_artifacts(self):
        """The committed BENCH files must gate cleanly against
        themselves — guards against a malformed commit."""
        assert main(["--baseline", str(REPO_ROOT), "--fresh", str(REPO_ROOT)]) == 0
