"""Differential testing: distributed engine vs. the sequential spec.

The REMO promise (§II-D): the asynchronous, distributed, shared-nothing
execution converges to the same state the strictly-sequential abstract
machine (footnote 1) produces.  Hypothesis drives both engines with the
same workload and demands identical final states.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DegreeTracker,
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    ListEventStream,
    MultiSTConnectivity,
    WidestPath,
)
from repro.algorithms.bfs_parents import DeterministicBFS
from repro.events.types import ADD
from repro.runtime.reference import ReferenceEngine

edge = st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1])
edge_list = st.lists(st.tuples(edge, st.integers(1, 9)), min_size=1, max_size=50)


def pairwise(edges):
    chosen = {}
    out = []
    for (s, d), w in edges:
        key = (min(s, d), max(s, d))
        w = chosen.setdefault(key, w)
        out.append((ADD, s, d, w))
    return out


def run_both(programs_factory, events, n_ranks, init=None):
    ref = ReferenceEngine(programs_factory())
    if init:
        for prog, vertex, payload_fn in init:
            ref.init_program(prog, vertex, payload_fn(ref))
    ref.ingest(events)

    progs = programs_factory()
    dist = DynamicEngine(progs, EngineConfig(n_ranks=n_ranks))
    if init:
        for prog, vertex, payload_fn in init:
            dist.init_program(prog, vertex, payload_fn(dist))
    streams = [[] for _ in range(n_ranks)]
    for i, ev in enumerate(events):
        streams[i % n_ranks].append(ev)
    dist.attach_streams([ListEventStream(s) for s in streams])
    dist.run()
    return ref, dist


@given(edges=edge_list, n_ranks=st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_bfs_and_cc_match_sequential_spec(edges, n_ranks):
    events = pairwise(edges)
    source = events[0][1]
    init = [("bfs", source, lambda e: None)]
    ref, dist = run_both(
        lambda: [IncrementalBFS(), IncrementalCC()], events, n_ranks, init
    )
    assert dist.state("bfs") == ref.state("bfs")
    assert dist.state("cc") == ref.state("cc")
    assert set(dist.edges()) == set(ref.edges())


@given(edges=edge_list, n_ranks=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_sssp_and_widest_match_sequential_spec(edges, n_ranks):
    events = pairwise(edges)
    source = events[0][1]
    init = [("sssp", source, lambda e: None), ("widest", source, lambda e: None)]
    ref, dist = run_both(
        lambda: [IncrementalSSSP(), WidestPath()], events, n_ranks, init
    )
    assert dist.state("sssp") == ref.state("sssp")
    assert dist.state("widest") == ref.state("widest")


@given(edges=edge_list, n_ranks=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_det_bfs_and_st_match_sequential_spec(edges, n_ranks):
    events = pairwise(edges)
    source = events[0][1]

    def factory():
        return [DeterministicBFS(), MultiSTConnectivity(), DegreeTracker()]

    init = [
        ("det-bfs", source, lambda e: None),
        (
            "st",
            source,
            lambda e: e.programs[e.prog_index("st")].register_source(source),
        ),
    ]
    ref, dist = run_both(factory, events, n_ranks, init)
    assert dist.state("det-bfs") == ref.state("det-bfs")
    assert dist.state("st") == ref.state("st")
    assert dist.state("degree") == ref.state("degree")


@given(
    edges=edge_list,
    delete_picks=st.lists(st.integers(0, 1_000_000), max_size=12),
    n_ranks=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_generational_bfs_distances_match_sequential_spec(
    edges, delete_picks, n_ranks
):
    """With deletes, the *distances* must agree (the epoch tags are
    execution-dependent bookkeeping and legitimately differ)."""
    from repro.events.types import DELETE
    from repro.algorithms import GenerationalBFS

    adds = pairwise(edges)
    events = list(adds)
    for pick in delete_picks:
        _k, s, d, _w = adds[pick % len(adds)]
        events.append((DELETE, s, d, 0))
    source = adds[0][1]
    init = [("gen-bfs", source, lambda e: None)]
    ref, dist = run_both(lambda: [GenerationalBFS()], events, n_ranks, init)

    def dists(state):
        return {v: val[1] for v, val in state.items() if val != 0}

    # With deletes, concurrent streams may legally serialise an
    # add/delete pair either way, so the *final topology itself* is
    # interleaving-dependent.  The spec comparison applies when the
    # topologies agree; otherwise the distributed run must still match
    # the static oracle on its own final topology.
    if set(dist.edges()) == set(ref.edges()):
        assert dists(dist.state("gen-bfs")) == dists(ref.state("gen-bfs"))
    else:
        from repro.analytics import verify_bfs

        assert verify_bfs(dist, "gen-bfs", source, value_of=lambda v: v[1]) == []
