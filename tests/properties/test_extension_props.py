"""Property tests for the extension algorithms (widest path, det-BFS)
and the versioned-snapshot prefix property."""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro import (
    DynamicEngine,
    EngineConfig,
    INF,
    IncrementalBFS,
    ListEventStream,
    WidestPath,
)
from repro.algorithms.bfs_parents import DeterministicBFS
from repro.algorithms.widest_path import static_widest_path
from repro.analytics.verify import csr_from_engine
from repro.events.types import ADD

edge = st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1])
weighted_edge = st.tuples(edge, st.integers(1, 9))
edge_list = st.lists(weighted_edge, min_size=1, max_size=50)


def split(events, n):
    streams = [[] for _ in range(n)]
    for i, ev in enumerate(events):
        streams[i % n].append(ev)
    return [ListEventStream(evts, stream_id=k) for k, evts in enumerate(streams)]


def dedupe_pair_weights(edges):
    """One weight per undirected pair (program precondition)."""
    chosen: dict[tuple[int, int], int] = {}
    events = []
    for (s, d), w in edges:
        key = (min(s, d), max(s, d))
        w = chosen.setdefault(key, w)
        events.append((ADD, s, d, w))
    return events


@given(edges=edge_list, n_ranks=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_widest_path_matches_oracle(edges, n_ranks):
    events = dedupe_pair_weights(edges)
    source = events[0][1]
    e = DynamicEngine([WidestPath()], EngineConfig(n_ranks=n_ranks))
    e.init_program("widest", source)
    e.attach_streams(split(events, n_ranks))
    e.run()
    expect = static_widest_path(csr_from_engine(e), source)
    got = {v: c for v, c in e.state("widest").items() if c > 0}
    assert got == expect


@given(edges=edge_list)
@settings(max_examples=30, deadline=None)
def test_widest_path_capacities_monotonically_increase(edges):
    events = dedupe_pair_weights(edges)
    source = events[0][1]
    e = DynamicEngine([WidestPath()], EngineConfig(n_ranks=3))
    history: dict[int, list[int]] = {}
    e.add_trigger(
        "widest",
        lambda v, val: True,
        lambda v, val, t: history.setdefault(v, []).append(val),
        once=False,
    )
    e.init_program("widest", source)
    e.attach_streams(split(events, 3))
    e.run()
    for v, values in history.items():
        for a, b in zip(values, values[1:]):
            assert b >= a, f"vertex {v} capacity decreased: {values}"


@given(edges=edge_list, seed_a=st.integers(0, 5), seed_b=st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_det_bfs_tree_identical_across_rank_counts(edges, seed_a, seed_b):
    events = [(ADD, s, d, 1) for (s, d), _w in edges]
    source = events[0][1]
    states = []
    for n_ranks in (1 + seed_a % 3, 1 + seed_b % 4):
        e = DynamicEngine([DeterministicBFS()], EngineConfig(n_ranks=n_ranks))
        e.init_program("det-bfs", source)
        e.attach_streams(split(events, n_ranks))
        e.run()
        states.append(e.state("det-bfs"))
    assert states[0] == states[1]


@given(edges=edge_list, cut_frac=st.floats(0.1, 0.9))
@settings(max_examples=30, deadline=None)
def test_snapshot_prefix_property(edges, cut_frac):
    """A versioned snapshot equals static BFS on exactly the per-rank
    cut prefixes, for arbitrary graphs and cut times."""
    from repro.staticalgs import static_bfs
    from repro.storage.csr import CSRGraph

    events = [(ADD, s, d, 1) for (s, d), _w in edges]
    source = events[0][1]
    n_ranks = 3
    streams = split(events, n_ranks)
    replay = [list(s) for s in streams]
    for s in streams:
        s.reset()
    e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=n_ranks))
    e.init_program("bfs", source)
    e.attach_streams(streams)
    # estimate makespan crudely; queued collections tolerate any time
    e.request_collection("bfs", at_time=cut_frac * len(events) * 2.5e-6 / n_ranks)
    e.run()
    res = e.collection_results[0]
    cuts = e.cut_positions[res.collection_id]
    pre_src, pre_dst = [], []
    for rank, evts in enumerate(replay):
        for _, s_, d_, _w in evts[: cuts.get(rank, 0)]:
            pre_src.append(s_)
            pre_dst.append(d_)
    got = {v: val for v, val in res.state.items() if 0 < val < INF}
    if not pre_src:
        # Empty edge prefix: at most the init()'d source is in scope.
        assert got in ({}, {source: 1})
        return
    prefix = CSRGraph.from_edges(
        np.array(pre_src), np.array(pre_dst), symmetrize=True
    )
    expect, _ = static_bfs(prefix, source)
    # The init() visitor is version-0 work too: the source may appear
    # in the snapshot even if the prefix contains no edge touching it.
    assert got == expect or got == {**expect, source: 1}
