"""Property-based tests for the §VI-B generational (delete) algorithms.

Hypothesis drives arbitrary interleaved add/delete sequences through
the generational programs at random rank counts and checks convergence
to the static answer on whatever topology results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DynamicEngine,
    EngineConfig,
    GenerationalBFS,
    GenerationalCC,
    GenerationalSSSP,
    GenerationalST,
    GenerationalWidest,
    ListEventStream,
)
from repro.analytics import verify_bfs, verify_cc, verify_sssp
from repro.analytics.verify import verify_st, verify_widest
from repro.events.types import ADD, DELETE

DIST = lambda v: v[1]  # noqa: E731
LABEL = lambda v: v[1]  # noqa: E731
MASK = GenerationalST.mask_of
CAP = lambda v: v[1]  # noqa: E731

edge = st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1])


@st.composite
def add_delete_sequences(draw):
    """A sequence of events where deletes target previously added edges
    (with occasional spurious deletes of absent edges)."""
    n_ops = draw(st.integers(1, 25))
    added: list[tuple[int, int]] = []
    events = []
    for _ in range(n_ops):
        if added and draw(st.booleans()) and draw(st.booleans()):
            s, d = draw(st.sampled_from(added))
            events.append((DELETE, s, d, 0))
        elif draw(st.integers(0, 9)) == 0:
            s, d = draw(edge)
            events.append((DELETE, s, d, 0))  # spurious delete
        else:
            s, d = draw(edge)
            added.append((s, d))
            events.append((ADD, s, d, 1))
    return events


def split(events, n):
    streams = [[] for _ in range(n)]
    for i, ev in enumerate(events):
        streams[i % n].append(ev)
    return [ListEventStream(evts, stream_id=k) for k, evts in enumerate(streams)]


@given(events=add_delete_sequences(), n_ranks=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_generational_bfs_converges_with_deletes(events, n_ranks):
    source = next((e[1] for e in events if e[0] == ADD), 0)
    e = DynamicEngine([GenerationalBFS()], EngineConfig(n_ranks=n_ranks))
    e.init_program("gen-bfs", source)
    e.attach_streams(split(events, n_ranks))
    e.run()
    assert e.loop.quiescent()
    assert verify_bfs(e, "gen-bfs", source, value_of=DIST) == []


@given(events=add_delete_sequences(), n_ranks=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_generational_cc_converges_with_deletes(events, n_ranks):
    e = DynamicEngine([GenerationalCC()], EngineConfig(n_ranks=n_ranks))
    e.attach_streams(split(events, n_ranks))
    e.run()
    assert verify_cc(e, "gen-cc", value_of=LABEL) == []


def weighted(events):
    """Re-weight adds as a pure function of the *canonical* pair so a
    re-add — in either orientation — never changes a stored weight (the
    monotone re-add contract; cf. the churn generator's pair-hashed
    weights)."""
    return [
        (
            k,
            s,
            d,
            1 + (3 * min(s, d) + 5 * max(s, d)) % 7 if k == ADD else 0,
        )
        for k, s, d, _w in events
    ]


@given(events=add_delete_sequences(), n_ranks=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_generational_sssp_converges_with_deletes(events, n_ranks):
    events = weighted(events)
    source = next((e[1] for e in events if e[0] == ADD), 0)
    e = DynamicEngine([GenerationalSSSP()], EngineConfig(n_ranks=n_ranks))
    e.init_program("gen-sssp", source)
    e.attach_streams(split(events, n_ranks))
    e.run()
    assert verify_sssp(e, "gen-sssp", source, value_of=DIST) == []


@given(events=add_delete_sequences(), n_ranks=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_generational_st_converges_with_deletes(events, n_ranks):
    sources = sorted({e[1] for e in events if e[0] == ADD} | {0})[:2]
    prog = GenerationalST()
    bits = [prog.register_source(s) for s in sources]
    e = DynamicEngine([prog], EngineConfig(n_ranks=n_ranks))
    for s, b in zip(sources, bits):
        e.init_program("gen-st", s, b)
    e.attach_streams(split(events, n_ranks))
    e.run()
    assert verify_st(e, "gen-st", sources, value_of=MASK) == []


@given(events=add_delete_sequences(), n_ranks=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_generational_widest_converges_with_deletes(events, n_ranks):
    events = weighted(events)
    source = next((e[1] for e in events if e[0] == ADD), 0)
    e = DynamicEngine([GenerationalWidest()], EngineConfig(n_ranks=n_ranks))
    e.init_program("gen-widest", source)
    e.attach_streams(split(events, n_ranks))
    e.run()
    assert verify_widest(e, "gen-widest", source, value_of=CAP) == []


@given(events=add_delete_sequences())
@settings(max_examples=20, deadline=None)
def test_generational_state_is_gen_monotone(events):
    """The §VI-B invariant: the (generation, value) pair is monotone —
    generations never decrease, and within one generation a distance
    never increases except by entering a new generation."""
    e = DynamicEngine([GenerationalBFS()], EngineConfig(n_ranks=3))
    source = next((ev[1] for ev in events if ev[0] == ADD), 0)
    history: dict[int, list] = {}
    e.add_trigger(
        "gen-bfs",
        lambda v, val: val != 0,
        lambda v, val, t: history.setdefault(v, []).append(val),
        once=False,
    )
    e.init_program("gen-bfs", source)
    e.attach_streams(split(events, 3))
    e.run()
    for v, values in history.items():
        for (g1, d1, _p1), (g2, d2, _p2) in zip(values, values[1:]):
            assert g2 >= g1, f"vertex {v}: generation decreased {values}"
            if g2 == g1:
                assert d2 <= d1, f"vertex {v}: distance rose within gen {values}"
