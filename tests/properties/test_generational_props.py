"""Property-based tests for the §VI-B generational (delete) algorithms.

Hypothesis drives arbitrary interleaved add/delete sequences through
the generational programs at random rank counts and checks convergence
to the static answer on whatever topology results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DynamicEngine,
    EngineConfig,
    GenerationalBFS,
    GenerationalCC,
    ListEventStream,
)
from repro.analytics import verify_bfs, verify_cc
from repro.events.types import ADD, DELETE

DIST = lambda v: v[1]  # noqa: E731
LABEL = lambda v: v[1]  # noqa: E731

edge = st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1])


@st.composite
def add_delete_sequences(draw):
    """A sequence of events where deletes target previously added edges
    (with occasional spurious deletes of absent edges)."""
    n_ops = draw(st.integers(1, 25))
    added: list[tuple[int, int]] = []
    events = []
    for _ in range(n_ops):
        if added and draw(st.booleans()) and draw(st.booleans()):
            s, d = draw(st.sampled_from(added))
            events.append((DELETE, s, d, 0))
        elif draw(st.integers(0, 9)) == 0:
            s, d = draw(edge)
            events.append((DELETE, s, d, 0))  # spurious delete
        else:
            s, d = draw(edge)
            added.append((s, d))
            events.append((ADD, s, d, 1))
    return events


def split(events, n):
    streams = [[] for _ in range(n)]
    for i, ev in enumerate(events):
        streams[i % n].append(ev)
    return [ListEventStream(evts, stream_id=k) for k, evts in enumerate(streams)]


@given(events=add_delete_sequences(), n_ranks=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_generational_bfs_converges_with_deletes(events, n_ranks):
    source = next((e[1] for e in events if e[0] == ADD), 0)
    e = DynamicEngine([GenerationalBFS()], EngineConfig(n_ranks=n_ranks))
    e.init_program("gen-bfs", source)
    e.attach_streams(split(events, n_ranks))
    e.run()
    assert e.loop.quiescent()
    assert verify_bfs(e, "gen-bfs", source, value_of=DIST) == []


@given(events=add_delete_sequences(), n_ranks=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_generational_cc_converges_with_deletes(events, n_ranks):
    e = DynamicEngine([GenerationalCC()], EngineConfig(n_ranks=n_ranks))
    e.attach_streams(split(events, n_ranks))
    e.run()
    assert verify_cc(e, "gen-cc", value_of=LABEL) == []


@given(events=add_delete_sequences())
@settings(max_examples=20, deadline=None)
def test_generational_state_is_gen_monotone(events):
    """The §VI-B invariant: the (generation, value) pair is monotone —
    generations never decrease, and within one generation a distance
    never increases except by entering a new generation."""
    e = DynamicEngine([GenerationalBFS()], EngineConfig(n_ranks=3))
    source = next((ev[1] for ev in events if ev[0] == ADD), 0)
    history: dict[int, list] = {}
    e.add_trigger(
        "gen-bfs",
        lambda v, val: val != 0,
        lambda v, val, t: history.setdefault(v, []).append(val),
        once=False,
    )
    e.init_program("gen-bfs", source)
    e.attach_streams(split(events, 3))
    e.run()
    for v, values in history.items():
        for (g1, d1, _p1), (g2, d2, _p2) in zip(values, values[1:]):
            assert g2 >= g1, f"vertex {v}: generation decreased {values}"
            if g2 == g1:
                assert d2 <= d1, f"vertex {v}: distance rose within gen {values}"
