"""Property-based tests of the REMO guarantees (hypothesis).

Random edge lists, random stream splits, random rank counts — the core
claims must hold in every case:

* monotonicity: each vertex's value moves in one direction only;
* convergence: the quiesced dynamic state equals the static answer on
  the final topology;
* determinism: the answer is independent of the interleaving.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    INF,
    ListEventStream,
)
from repro.analytics import verify_bfs, verify_cc, verify_sssp
from repro.events.types import ADD

# Small vertex universe forces dense collision-rich graphs.
edge = st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1])
edge_list = st.lists(edge, min_size=1, max_size=60)
rank_count = st.integers(1, 6)


def build_streams(edges, n_streams, weights=None):
    streams = [[] for _ in range(n_streams)]
    for i, (s, d) in enumerate(edges):
        w = 1 if weights is None else weights[i]
        streams[i % n_streams].append((ADD, s, d, w))
    return [ListEventStream(evts, stream_id=k) for k, evts in enumerate(streams)]


@given(edges=edge_list, n_ranks=rank_count)
@settings(max_examples=60, deadline=None)
def test_bfs_converges_for_any_graph_and_split(edges, n_ranks):
    source = edges[0][0]
    e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=n_ranks))
    e.init_program("bfs", source)
    e.attach_streams(build_streams(edges, n_ranks))
    e.run()
    assert e.loop.quiescent()
    assert verify_bfs(e, "bfs", source) == []


@given(edges=edge_list, n_ranks=rank_count)
@settings(max_examples=60, deadline=None)
def test_cc_converges_for_any_graph_and_split(edges, n_ranks):
    e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=n_ranks))
    e.attach_streams(build_streams(edges, n_ranks))
    e.run()
    assert verify_cc(e, "cc") == []


@given(edges=edge_list, n_ranks=rank_count, data=st.data())
@settings(max_examples=40, deadline=None)
def test_sssp_converges_with_random_pair_weights(edges, n_ranks, data):
    # One weight per undirected pair (monotonicity precondition).
    pair_weights = {}
    weights = []
    for s, d in edges:
        key = (min(s, d), max(s, d))
        if key not in pair_weights:
            pair_weights[key] = data.draw(st.integers(1, 9))
        weights.append(pair_weights[key])
    source = edges[0][0]
    e = DynamicEngine([IncrementalSSSP()], EngineConfig(n_ranks=n_ranks))
    e.init_program("sssp", source)
    e.attach_streams(build_streams(edges, n_ranks, weights))
    e.run()
    assert verify_sssp(e, "sssp", source) == []


@given(edges=edge_list)
@settings(max_examples=40, deadline=None)
def test_bfs_vertex_values_monotonically_decrease(edges):
    source = edges[0][0]
    e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=3))
    history: dict[int, list[int]] = {}
    e.add_trigger(
        "bfs",
        lambda v, val: True,
        lambda v, val, t: history.setdefault(v, []).append(val),
        once=False,
    )
    e.init_program("bfs", source)
    e.attach_streams(build_streams(edges, 3))
    e.run()
    for v, values in history.items():
        # First write is the INF (or level-1) initialisation; afterwards
        # values may only decrease — the MOnotone in REMO.
        for a, b in zip(values, values[1:]):
            assert b <= a, f"vertex {v} value increased: {values}"


@given(edges=edge_list)
@settings(max_examples=40, deadline=None)
def test_cc_vertex_labels_monotonically_increase(edges):
    e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=3))
    history: dict[int, list[int]] = {}
    e.add_trigger(
        "cc",
        lambda v, val: True,
        lambda v, val, t: history.setdefault(v, []).append(val),
        once=False,
    )
    e.attach_streams(build_streams(edges, 3))
    e.run()
    for v, values in history.items():
        for a, b in zip(values, values[1:]):
            assert b >= a, f"vertex {v} label decreased: {values}"


@given(edges=edge_list, split_a=rank_count, split_b=rank_count)
@settings(max_examples=30, deadline=None)
def test_answer_independent_of_stream_split(edges, split_a, split_b):
    source = edges[0][0]
    states = []
    for n in (split_a, split_b):
        e = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=n))
        e.init_program("bfs", source)
        e.attach_streams(build_streams(edges, n))
        e.run()
        states.append(e.state("bfs"))
    finite_a = {v: x for v, x in states[0].items() if 0 < x < INF}
    finite_b = {v: x for v, x in states[1].items() if 0 < x < INF}
    assert finite_a == finite_b
