"""Exactness of the bulk-ingest fast path (the tentpole guarantee).

With ``bulk_ingest=True`` the engine drains saturation streams in
chunks and advances REMO state with array frontier kernels; the
contract is that the final vertex states are **bitwise-equal** to the
per-event path, which in turn equals the static answer on the final
topology.  Checked here for BFS, SSSP and CC across seeds and rank
counts, in undirected and directed mode, and through a mid-stream
global-state collection (which must force a per-event fallback and
*still* match).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DynamicEngine,
    EngineConfig,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    ListEventStream,
)
from repro.analytics import verify_bfs, verify_cc, verify_sssp
from repro.events.stream import split_streams
from repro.events.types import ADD

ALGOS = ("bfs", "sssp", "cc")


def make_programs():
    return [IncrementalBFS(), IncrementalSSSP(), IncrementalCC()]


def random_workload(seed, n_vertices=120, n_events=600):
    """Random ADD events with edge-deterministic weights (a re-observed
    edge always carries the same weight, keeping SSSP monotone)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, n_events, dtype=np.int64)
    dst = rng.integers(0, n_vertices, n_events, dtype=np.int64)
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    weights = (lo * 13 + hi) % 9 + 1
    return src, dst, weights


def run_engine(
    src,
    dst,
    weights,
    n_ranks,
    bulk,
    undirected=True,
    bulk_chunk=64,
    collections_at=(),
):
    eng = DynamicEngine(
        make_programs(),
        EngineConfig(
            n_ranks=n_ranks,
            undirected=undirected,
            bulk_ingest=bulk,
            bulk_chunk=bulk_chunk,
        ),
    )
    source = int(src[0])
    eng.init_program("bfs", source)
    eng.init_program("sssp", source)
    eng.attach_streams(
        split_streams(src, dst, n_ranks, weights=weights, rng=np.random.default_rng(0))
    )
    for at_time in collections_at:
        eng.request_collection("cc", at_time=at_time)
    eng.run()
    return eng, source


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("n_ranks", [1, 4])
def test_bulk_on_equals_off_equals_static(seed, n_ranks):
    src, dst, weights = random_workload(seed)
    on, source = run_engine(src, dst, weights, n_ranks, bulk=True)
    off, _ = run_engine(src, dst, weights, n_ranks, bulk=False)

    for name in ALGOS:
        a, b = on.state(name), off.state(name)
        assert a == b
        # Bitwise-equal means types too: plain Python ints both ways.
        assert {type(v) for v in a.values()} == {type(v) for v in b.values()}
    assert sorted(on.edges()) == sorted(off.edges())

    # ... and both equal the static answer on the final topology.
    assert verify_bfs(on, "bfs", source) == []
    assert verify_sssp(on, "sssp", source) == []
    assert verify_cc(on, "cc") == []

    # The fast path actually ran (and only on the bulk engine).
    assert on.total_counters().bulk_events == len(src)
    assert off.total_counters().bulk_events == 0


@pytest.mark.parametrize("seed", [5, 6])
def test_bulk_exact_in_directed_mode(seed):
    src, dst, weights = random_workload(seed, n_vertices=60, n_events=300)
    on, source = run_engine(src, dst, weights, 3, bulk=True, undirected=False)
    off, _ = run_engine(src, dst, weights, 3, bulk=False, undirected=False)
    for name in ALGOS:
        assert on.state(name) == off.state(name)
    assert on.total_counters().bulk_events == len(src)


@pytest.mark.parametrize("n_ranks", [2, 4])
def test_midstream_collection_forces_fallback_and_still_matches(n_ranks):
    src, dst, weights = random_workload(9, n_vertices=200, n_events=1200)
    # A collection cut lands mid-stream: the engine must de-optimize
    # (flush bulk state, run the §III-D protocol per-event) and then
    # re-engage the fast path once the collection concludes.
    on, source = run_engine(
        src, dst, weights, n_ranks, bulk=True, collections_at=(2e-4,)
    )
    off, _ = run_engine(
        src, dst, weights, n_ranks, bulk=False, collections_at=(2e-4,)
    )

    tot = on.total_counters()
    assert tot.fallback_flushes >= 1  # the de-optimization happened
    assert tot.bulk_events > 0  # ... but the fast path still ran
    assert len(on.collection_results) == 1
    assert len(off.collection_results) == 1

    for name in ALGOS:
        assert on.state(name) == off.state(name)
    assert verify_bfs(on, "bfs", source) == []
    assert verify_sssp(on, "sssp", source) == []
    assert verify_cc(on, "cc") == []

    # The snapshot itself is a coherent CC prefix state: labels only
    # grow, so every collected label is dominated by the final one.
    snap = on.collection_results[0].state
    final = on.state("cc")
    assert all(v <= final[k] for k, v in snap.items())


edge = st.tuples(st.integers(0, 12), st.integers(0, 12))
edge_list = st.lists(edge, min_size=1, max_size=50)


@given(edges=edge_list, n_ranks=st.integers(1, 4), chunk=st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_bulk_differential_hypothesis(edges, n_ranks, chunk):
    """Hypothesis sweep: tiny adversarial graphs (self-loops, dupes,
    stars) and tiny chunk sizes must still match per-event exactly."""
    events = [(ADD, s, d, (min(s, d) * 7 + max(s, d)) % 5 + 1) for s, d in edges]
    streams = lambda: [  # noqa: E731 - rebuilt per engine (stateful)
        ListEventStream(events[k::n_ranks], stream_id=k) for k in range(n_ranks)
    ]
    source = edges[0][0]

    def build(bulk):
        eng = DynamicEngine(
            make_programs(),
            EngineConfig(n_ranks=n_ranks, bulk_ingest=bulk, bulk_chunk=chunk),
        )
        eng.init_program("bfs", source)
        eng.init_program("sssp", source)
        eng.attach_streams(streams())
        eng.run()
        return eng

    on, off = build(True), build(False)
    for name in ALGOS:
        assert on.state(name) == off.state(name)
    assert sorted(on.edges()) == sorted(off.edges())
