"""Property-based (hypothesis) tests for RobinHoodMap.

A stateful model-based test drives the map against a Python dict oracle
through arbitrary interleavings of put/get/delete, checking results and
the Robin Hood layout invariants at every step boundary.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage.robin_hood import RobinHoodMap

keys = st.integers(min_value=-(2**63), max_value=2**63 - 1)
values = st.integers(min_value=-(2**63), max_value=2**63 - 1)
small_keys = st.integers(min_value=0, max_value=40)  # force collisions/clusters


class RobinHoodModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.map = RobinHoodMap(initial_capacity=8, max_load_factor=0.85)
        self.model: dict[int, int] = {}

    @rule(k=small_keys, v=values)
    def put(self, k, v):
        was_new = self.map.put(k, v)
        assert was_new == (k not in self.model)
        self.model[k] = v

    @rule(k=small_keys)
    def get(self, k):
        assert self.map.get(k) == self.model.get(k)

    @rule(k=small_keys)
    def delete(self, k):
        removed = self.map.delete(k)
        assert removed == (k in self.model)
        self.model.pop(k, None)

    @rule(k=keys, v=values)
    def put_wide(self, k, v):
        self.map.put(k, v)
        self.model[k] = v

    @invariant()
    def sizes_match(self):
        assert len(self.map) == len(self.model)

    @invariant()
    def layout_invariants_hold(self):
        self.map.check_invariants()


TestRobinHoodModel = RobinHoodModel.TestCase
TestRobinHoodModel.settings = settings(max_examples=25, stateful_step_count=40)


@given(st.lists(st.tuples(keys, values), max_size=300))
@settings(max_examples=50)
def test_bulk_insert_matches_dict(pairs):
    m = RobinHoodMap()
    ref = {}
    for k, v in pairs:
        m.put(k, v)
        ref[k] = v
    assert dict(m.items()) == ref
    m.check_invariants()


@given(st.sets(keys, max_size=200), st.data())
@settings(max_examples=50)
def test_delete_half_keeps_rest(keyset, data):
    m = RobinHoodMap()
    for k in keyset:
        m.put(k, k ^ 0x55)
    to_delete = data.draw(st.sets(st.sampled_from(sorted(keyset)), max_size=len(keyset))
                          if keyset else st.just(set()))
    for k in to_delete:
        assert m.delete(k)
    m.check_invariants()
    for k in keyset:
        if k in to_delete:
            assert k not in m
        else:
            assert m.get(k) == k ^ 0x55
