"""Property tests: every REMO algorithm survives faults + a crash.

For random graphs, random drop/dup/delay rates (loss <= 20%), a random
crash instant and checkpoint cadence, each REMO program driven through
the FaultTolerantRunner must reach quiescence and produce exactly the
static answer on the final topology — the paper's convergence guarantee
extended to a hostile wire and a dying cluster.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    DynamicEngine,
    EngineConfig,
    FaultPlan,
    FaultTolerantRunner,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    MultiSTConnectivity,
    RankCrash,
    WidestPath,
)
from repro.analytics import verify_bfs, verify_cc, verify_sssp, verify_st
from repro.events.stream import ListEventStream
from repro.events.types import ADD

N_RANKS = 3

edge = st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
    lambda e: e[0] != e[1]
)
edge_list = st.lists(edge, min_size=10, max_size=50)
drop_rate = st.floats(0.0, 0.2)
crash_frac = st.floats(0.1, 0.7)
plan_seed = st.integers(0, 2**20)


def build_stream_factory(edges, weights=None):
    streams = [[] for _ in range(N_RANKS)]
    for i, (s, d) in enumerate(edges):
        w = 1 if weights is None else weights[i]
        streams[i % N_RANKS].append((ADD, s, d, w))

    def factory():
        return [
            ListEventStream(list(evts), stream_id=k)
            for k, evts in enumerate(streams)
        ]

    return factory


def run_with_crash(
    make_programs, init_fn, edges, drop, frac, seed, tmp_path, weights=None
):
    """Fault-free makespan first (for instants), then the faulty run."""
    ref = DynamicEngine(make_programs(), EngineConfig(n_ranks=N_RANKS))
    init_fn(ref)
    ref.attach_streams(build_stream_factory(edges, weights)())
    ref.run()
    vt = ref.loop.max_time()

    plan = FaultPlan(
        drop=drop,
        dup=0.03,
        delay=0.05,
        seed=seed,
        crashes=[RankCrash(time=max(vt * frac, 1e-9))],
    )
    res = FaultTolerantRunner(
        lambda: DynamicEngine(make_programs(), EngineConfig(n_ranks=N_RANKS)),
        build_stream_factory(edges, weights),
        plan,
        tmp_path / "ckpt.npz",
        checkpoint_interval=vt * 0.2,
        init_fn=init_fn,
    ).run()
    # Checkpoint drains can compress the virtual schedule enough that a
    # tiny workload finishes before the crash instant; such a crash is
    # legitimately moot, but it is not the scenario under test.
    assume(res.recoveries == 1)
    assert res.engine.loop.quiescent()
    return res.engine, ref


@given(edges=edge_list, drop=drop_rate, frac=crash_frac, seed=plan_seed)
@settings(max_examples=15, deadline=None)
def test_bfs_crash_recovery_equals_static(
    edges, drop, frac, seed, tmp_path_factory
):
    tmp = tmp_path_factory.mktemp("bfs")
    source = edges[0][0]
    eng, _ = run_with_crash(
        lambda: [IncrementalBFS()],
        lambda e: e.init_program("bfs", source),
        edges, drop, frac, seed, tmp,
    )
    assert verify_bfs(eng, "bfs", source) == []


@given(edges=edge_list, drop=drop_rate, frac=crash_frac, seed=plan_seed)
@settings(max_examples=15, deadline=None)
def test_cc_crash_recovery_equals_static(
    edges, drop, frac, seed, tmp_path_factory
):
    tmp = tmp_path_factory.mktemp("cc")
    eng, _ = run_with_crash(
        lambda: [IncrementalCC()], lambda e: None, edges, drop, frac, seed, tmp
    )
    assert verify_cc(eng, "cc") == []


@given(
    edges=edge_list, drop=drop_rate, frac=crash_frac, seed=plan_seed,
    data=st.data(),
)
@settings(max_examples=10, deadline=None)
def test_sssp_crash_recovery_equals_static(
    edges, drop, frac, seed, data, tmp_path_factory
):
    tmp = tmp_path_factory.mktemp("sssp")
    pair_weights, weights = {}, []
    for s, d in edges:
        key = (min(s, d), max(s, d))
        if key not in pair_weights:
            pair_weights[key] = data.draw(st.integers(1, 9))
        weights.append(pair_weights[key])
    source = edges[0][0]
    eng, _ = run_with_crash(
        lambda: [IncrementalSSSP()],
        lambda e: e.init_program("sssp", source),
        edges, drop, frac, seed, tmp, weights=weights,
    )
    assert verify_sssp(eng, "sssp", source) == []


@given(edges=edge_list, drop=drop_rate, frac=crash_frac, seed=plan_seed)
@settings(max_examples=10, deadline=None)
def test_st_crash_recovery_equals_static(
    edges, drop, frac, seed, tmp_path_factory
):
    tmp = tmp_path_factory.mktemp("st")
    sources = sorted({edges[0][0], edges[-1][1]})

    def make_programs():
        return [MultiSTConnectivity()]

    def init_fn(e):
        st_prog = e.programs[0]
        for s in sources:
            e.init_program("st", s, payload=st_prog.register_source(s))

    eng, _ = run_with_crash(
        make_programs, init_fn, edges, drop, frac, seed, tmp
    )
    assert verify_st(eng, "st", sources) == []


@given(edges=edge_list, drop=drop_rate, frac=crash_frac, seed=plan_seed)
@settings(max_examples=10, deadline=None)
def test_widest_path_crash_recovery_matches_fault_free(
    edges, drop, frac, seed, tmp_path_factory
):
    tmp = tmp_path_factory.mktemp("wp")
    # Deterministic per-pair capacities keep WidestPath monotone.
    weights = [((min(s, d) * 7 + max(s, d)) % 9) + 1 for s, d in edges]
    source = edges[0][0]
    eng, ref = run_with_crash(
        lambda: [WidestPath()],
        lambda e: e.init_program("widest", source),
        edges, drop, frac, seed, tmp, weights=weights,
    )
    assert eng.state("widest") == ref.state("widest")
