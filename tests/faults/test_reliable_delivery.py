"""Engine-level fault injection: convergence and detector soundness.

The engine's whole visitor pipeline — streams, REMO programs, triggers,
four-counter collection — runs above the reliable transport here, with
the wire dropping/duplicating/delaying frames.  The REMO contract must
be completely undisturbed: the quiesced state equals the static oracle,
every application message is delivered exactly once, and the
four-counter quiescence detector neither fires early (checked against
the ground-truth dispatch order) nor hangs.
"""

import numpy as np
import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    FaultPlan,
    IncrementalBFS,
    IncrementalCC,
    IncrementalSSSP,
    RankStall,
)
from repro.analytics import verify_bfs, verify_cc, verify_sssp
from repro.comm.termination import FourCounterState, TerminationCoordinator
from repro.events.stream import split_streams


def workload(seed=0, n_vertices=120, n_events=800):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, n_events, dtype=np.int64)
    dst = rng.integers(0, n_vertices, n_events, dtype=np.int64)
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    weights = (lo * 13 + hi) % 9 + 1
    return src, dst, weights


def run_faulty(programs, plan, init=(), n_ranks=4, seed=0, **cfg):
    src, dst, weights = workload(seed)
    eng = DynamicEngine(programs, EngineConfig(n_ranks=n_ranks, **cfg))
    if plan is not None:
        eng.enable_faults(plan)
    for prog, vertex in init:
        eng.init_program(prog, vertex)
    eng.attach_streams(split_streams(src, dst, n_ranks, weights=weights))
    eng.run()
    return eng


class TestConvergenceUnderLoss:
    @pytest.mark.parametrize("drop", [0.05, 0.2])
    def test_bfs_equals_static_oracle(self, drop):
        plan = FaultPlan(drop=drop, dup=0.03, delay=0.05, seed=13)
        eng = run_faulty([IncrementalBFS()], plan, init=[("bfs", 0)])
        assert eng.loop.quiescent()
        assert verify_bfs(eng, "bfs", 0) == []
        assert eng.transport.frames_dropped > 0

    def test_cc_equals_static_oracle(self):
        plan = FaultPlan(drop=0.15, dup=0.05, seed=21)
        eng = run_faulty([IncrementalCC()], plan)
        assert verify_cc(eng, "cc") == []

    def test_sssp_equals_static_oracle(self):
        plan = FaultPlan(drop=0.1, delay=0.1, seed=34)
        eng = run_faulty([IncrementalSSSP()], plan, init=[("sssp", 0)])
        assert verify_sssp(eng, "sssp", 0) == []

    def test_faulty_state_identical_to_fault_free(self):
        clean = run_faulty([IncrementalBFS()], None, init=[("bfs", 0)])
        lossy = run_faulty(
            [IncrementalBFS()],
            FaultPlan(drop=0.2, dup=0.05, delay=0.05, seed=77),
            init=[("bfs", 0)],
        )
        assert clean.state("bfs") == lossy.state("bfs")

    def test_exactly_once_bookkeeping(self):
        plan = FaultPlan(drop=0.2, dup=0.05, seed=5)
        eng = run_faulty([IncrementalBFS()], plan, init=[("bfs", 0)])
        t = eng.transport
        assert t.app_sent == t.app_delivered
        assert t.unacked_total() == 0
        assert t.reorder_total() == 0
        assert eng.loop.in_flight == 0


class TestZeroLossOverheadPath:
    def test_no_retransmits_on_perfect_wire(self):
        # The transport attached with no plan (or an all-ok plan) must
        # never retransmit: the ablation's <5% overhead depends on it.
        eng = run_faulty([IncrementalBFS()], FaultPlan(seed=0), init=[("bfs", 0)])
        assert eng.transport.retransmits == 0
        assert eng.transport.frames_dropped == 0
        assert verify_bfs(eng, "bfs", 0) == []

    def test_transport_disables_bulk_ingest(self):
        plan = FaultPlan(seed=0)
        eng = run_faulty(
            [IncrementalBFS()], plan, init=[("bfs", 0)], bulk_ingest=True
        )
        # Bulk ingest short-circuits the wire, so enable_faults must
        # have forced the per-event path (and still converge).
        assert verify_bfs(eng, "bfs", 0) == []
        assert eng.transport.app_sent > 0


class TestDetectorSoundness:
    def test_collection_never_concludes_early_under_faults(self, monkeypatch):
        """Four-counter conclusion vs the DES ground truth.

        We log every application-level receive (FourCounterState.
        record_receive) and every detector conclusion in the exact
        order the DES executes them.  Soundness: after a collection
        for cut version C concludes, no receive with label < C may
        ever be logged — that would be a pre-cut message the detector
        failed to wait for (an early fire).  Retransmissions and
        duplicates make this a real hazard, hence the lossy plan.
        """
        events = []
        real_recv = FourCounterState.record_receive
        real_conclude = TerminationCoordinator.conclude
        engines = []

        def logged_recv(self, label, n=1):
            events.append(("recv", label))
            return real_recv(self, label, n)

        def logged_conclude(self):
            out = real_conclude(self)
            if out and engines and engines[0].active_collection is not None:
                events.append(
                    ("concluded", engines[0].active_collection.cut_version)
                )
            return out

        monkeypatch.setattr(FourCounterState, "record_receive", logged_recv)
        monkeypatch.setattr(TerminationCoordinator, "conclude", logged_conclude)

        src, dst, weights = workload(seed=3)
        plan = FaultPlan(drop=0.2, dup=0.05, delay=0.05, seed=55)
        eng = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=4))
        engines.append(eng)
        eng.enable_faults(plan)
        eng.init_program("bfs", 0)
        eng.attach_streams(split_streams(src, dst, 4, weights=weights))
        # Mid-stream cut: loss stretches the makespan, so a cut at a
        # fault-free-scale instant lands well inside the run.
        eng.request_collection("bfs", at_time=100e-6)
        eng.run()

        assert len(eng.collection_results) == 1, "collection hung under loss"
        cuts = [c for e, c in events if e == "concluded"]
        assert cuts, "detector never concluded"
        for i, (kind, label) in enumerate(events):
            if kind != "concluded":
                continue
            cut = label
            late = [
                lbl for k, lbl in events[i + 1:] if k == "recv" and lbl < cut
            ]
            assert late == [], (
                f"detector fired early: pre-cut receives {late} after "
                f"conclusion for cut {cut}"
            )
        assert verify_bfs(eng, "bfs", 0) == []

    def test_collection_result_consistent_under_faults(self):
        src, dst, weights = workload(seed=9)
        plan = FaultPlan(drop=0.15, dup=0.05, seed=8)
        eng = DynamicEngine([IncrementalBFS()], EngineConfig(n_ranks=3))
        eng.enable_faults(plan)
        eng.init_program("bfs", 0)
        eng.attach_streams(split_streams(src, dst, 3, weights=weights))
        eng.request_collection("bfs", at_time=150e-6)
        eng.run()
        [res] = eng.collection_results
        assert res.vertices_collected > 0
        # Monotone program: every snapshotted level is an upper bound
        # on (or equal to) the fully converged level (0 = never seen).
        final = eng.state("bfs")
        for v, lvl in res.state.items():
            if lvl > 0:
                assert lvl >= final[v]


class TestFaultTelemetry:
    def test_sampler_rows_carry_wire_counters(self):
        plan = FaultPlan(drop=0.1, seed=2)
        eng = run_faulty(
            [IncrementalBFS()], plan, init=[("bfs", 0)], sample_interval=50e-6
        )
        rows = eng.metrics.rows("sample")
        assert rows
        assert all("retransmits" in r and "dropped" in r for r in rows)
        assert rows[-1]["dropped"] == eng.transport.frames_dropped

    def test_drop_instants_reach_tracer_and_metrics(self):
        plan = FaultPlan(drop=0.1, seed=2)
        eng = run_faulty(
            [IncrementalBFS()],
            plan,
            init=[("bfs", 0)],
            trace=True,
            sample_interval=50e-6,
        )
        drops = [e for e in eng.tracer.events if e[2] == "fault/drop"]
        assert len(drops) == eng.transport.frames_dropped > 0
        assert eng.metrics.counters["frames_dropped"] == len(drops)

    def test_stall_freezes_rank_and_is_traced(self):
        plan = FaultPlan(
            seed=0, stalls=[RankStall(time=50e-6, rank=1, duration=300e-6)]
        )
        eng = run_faulty(
            [IncrementalBFS()], plan, init=[("bfs", 0)], trace=True
        )
        # The freeze runs from the alarm instant to time + duration, so
        # the recorded stall is duration minus the (tiny) alarm skew.
        assert 250e-6 <= eng.loop.fault_stall_time <= 300e-6
        stalls = [e for e in eng.tracer.events if e[2] == "fault/stall"]
        assert len(stalls) == 1
        assert verify_bfs(eng, "bfs", 0) == []
