"""Crash recovery: checkpoints, whole-cluster rollback, suffix replay.

The FaultTolerantRunner must drive a workload through rank crashes —
with and without periodic checkpoints — and end in exactly the state a
fault-free run produces, replaying only the suffix when a checkpoint
exists.
"""

import numpy as np
import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    FaultPlan,
    FaultTolerantRunner,
    IncrementalBFS,
    IncrementalCC,
    RankCrash,
)
from repro.analytics import verify_bfs, verify_cc
from repro.events.stream import split_streams

N_RANKS = 3


def workload(seed=7, n_vertices=80, n_events=500):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, n_events, dtype=np.int64)
    dst = rng.integers(0, n_vertices, n_events, dtype=np.int64)
    return src, dst


def make_harness(src, dst, tmp_path, **engine_kw):
    def engine_factory():
        return DynamicEngine(
            [IncrementalBFS(), IncrementalCC()],
            EngineConfig(n_ranks=N_RANKS, **engine_kw),
        )

    def stream_factory():
        return split_streams(src, dst, N_RANKS)

    def init_fn(eng):
        eng.init_program("bfs", 0)

    return engine_factory, stream_factory, init_fn, tmp_path / "ckpt.npz"


def fault_free_state(src, dst):
    eng = DynamicEngine(
        [IncrementalBFS(), IncrementalCC()], EngineConfig(n_ranks=N_RANKS)
    )
    eng.init_program("bfs", 0)
    eng.attach_streams(split_streams(src, dst, N_RANKS))
    eng.run()
    return eng.state("bfs"), eng.state("cc"), eng.loop.max_time()


class TestCrashRecovery:
    def test_single_crash_with_checkpoints_converges(self, tmp_path):
        src, dst = workload()
        bfs_ref, cc_ref, vt = fault_free_state(src, dst)
        ef, sf, init, path = make_harness(src, dst, tmp_path)
        plan = FaultPlan(drop=0.1, seed=4, crashes=[RankCrash(time=vt * 0.5)])
        res = FaultTolerantRunner(
            ef, sf, plan, path, checkpoint_interval=vt * 0.2, init_fn=init
        ).run()
        assert res.recoveries == 1 and res.incarnations == 2
        assert res.checkpoints >= 1
        assert res.engine.loop.quiescent()
        assert res.engine.state("bfs") == bfs_ref
        assert res.engine.state("cc") == cc_ref
        assert verify_bfs(res.engine, "bfs", 0) == []
        assert verify_cc(res.engine, "cc") == []

    def test_checkpoint_bounds_replay(self, tmp_path):
        # With checkpoints the second incarnation replays a suffix,
        # not the whole stream.
        src, dst = workload()
        _, _, vt = fault_free_state(src, dst)
        ef, sf, init, path = make_harness(src, dst, tmp_path)
        plan = FaultPlan(seed=0, crashes=[RankCrash(time=vt * 0.8)])
        res = FaultTolerantRunner(
            ef, sf, plan, path, checkpoint_interval=vt * 0.25, init_fn=init
        ).run()
        assert res.checkpoints >= 2
        assert 0 < res.events_replayed < len(src)

    def test_no_checkpoint_rolls_back_to_start(self, tmp_path):
        src, dst = workload()
        bfs_ref, _, vt = fault_free_state(src, dst)
        ef, sf, init, path = make_harness(src, dst, tmp_path)
        plan = FaultPlan(seed=0, crashes=[RankCrash(time=vt * 0.5)])
        res = FaultTolerantRunner(ef, sf, plan, path, init_fn=init).run()
        assert res.checkpoints == 0
        assert res.events_replayed == len(src)  # full replay
        assert res.engine.state("bfs") == bfs_ref

    def test_two_crashes_survived(self, tmp_path):
        src, dst = workload(seed=11)
        bfs_ref, cc_ref, vt = fault_free_state(src, dst)
        ef, sf, init, path = make_harness(src, dst, tmp_path)
        plan = FaultPlan(
            drop=0.08,
            dup=0.03,
            seed=9,
            crashes=[RankCrash(time=vt * 0.6), RankCrash(time=vt * 0.4)],
        )
        res = FaultTolerantRunner(
            ef, sf, plan, path, checkpoint_interval=vt * 0.3, init_fn=init
        ).run()
        assert res.recoveries == 2
        assert res.engine.state("bfs") == bfs_ref
        assert res.engine.state("cc") == cc_ref
        # Wire telemetry is summed over all incarnations.
        assert res.wire["app_sent"] == res.wire["app_delivered"]

    def test_crash_after_completion_is_moot(self, tmp_path):
        src, dst = workload()
        _, _, vt = fault_free_state(src, dst)
        ef, sf, init, path = make_harness(src, dst, tmp_path)
        plan = FaultPlan(seed=0, crashes=[RankCrash(time=vt * 100)])
        res = FaultTolerantRunner(
            ef, sf, plan, path, checkpoint_interval=vt * 0.4, init_fn=init
        ).run()
        assert res.incarnations == 1 and res.recoveries == 0

    def test_virtual_time_sums_incarnations(self, tmp_path):
        src, dst = workload()
        _, _, vt = fault_free_state(src, dst)
        ef, sf, init, path = make_harness(src, dst, tmp_path)
        plan = FaultPlan(seed=0, crashes=[RankCrash(time=vt * 0.5)])
        res = FaultTolerantRunner(
            ef, sf, plan, path, checkpoint_interval=vt * 0.2, init_fn=init
        ).run()
        assert res.virtual_time > res.engine.loop.max_time()

    def test_runaway_crash_schedule_raises(self, tmp_path):
        src, dst = workload(n_events=100)
        ef, sf, init, path = make_harness(src, dst, tmp_path)
        plan = FaultPlan(
            seed=0, crashes=[RankCrash(time=1e-9) for _ in range(5)]
        )
        with pytest.raises(RuntimeError, match="incarnations"):
            FaultTolerantRunner(
                ef, sf, plan, path, init_fn=init, max_incarnations=3
            ).run()

    def test_bad_checkpoint_interval_rejected(self, tmp_path):
        src, dst = workload(n_events=10)
        ef, sf, init, path = make_harness(src, dst, tmp_path)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            FaultTolerantRunner(
                ef, sf, FaultPlan(), path, checkpoint_interval=0.0
            )

    def test_recoveries_counter_reaches_metrics(self, tmp_path):
        src, dst = workload()
        _, _, vt = fault_free_state(src, dst)
        ef, sf, init, path = make_harness(
            src, dst, tmp_path, sample_interval=vt / 10
        )
        plan = FaultPlan(seed=0, crashes=[RankCrash(time=vt * 0.5)])
        res = FaultTolerantRunner(
            ef, sf, plan, path, checkpoint_interval=vt * 0.25, init_fn=init
        ).run()
        assert res.engine.metrics.counters["recoveries"] == 1
        assert res.engine.metrics.counters["checkpoints"] == res.checkpoints

    def test_sampler_survives_checkpoint_pauses(self, tmp_path):
        # Checkpoints drain to quiescence mid-run, which stops the
        # sampler; the runner must re-arm it so the resumed segment
        # keeps producing rows.
        src, dst = workload()
        _, _, vt = fault_free_state(src, dst)
        ef, sf, init, path = make_harness(
            src, dst, tmp_path, sample_interval=vt / 20
        )
        plan = FaultPlan(drop=0.05, seed=1)
        res = FaultTolerantRunner(
            ef, sf, plan, path, checkpoint_interval=vt * 0.25, init_fn=init
        ).run()
        assert res.checkpoints >= 2
        rows = res.engine.metrics.rows("sample")
        assert len(rows) >= res.checkpoints + 1
        assert rows[-1]["t"] > vt * 0.5
