"""Crash recovery under churn — checkpoints as consistent generational cuts.

A quiescent checkpoint carries the generational programs' whole epoch /
generation state inside the value tuples plus the per-rank counters, so
replaying a delete-carrying suffix after a crash must land on exactly
the fault-free answers.  Equality is stated on the §VI-B projections
(distance / label / mask / capacity); raw epoch tags legitimately
differ across incarnations.

Crash timing matters: churn runs are compute-dominated, so the sources
exhaust within a small fraction of the virtual makespan and the first
post-exhaustion checkpoint completes the run.  Crashes are planted
inside the ingestion window (3% and 6% of the fault-free makespan, with
a 4% checkpoint interval) so both incarnations genuinely die mid-churn.
"""

import numpy as np
import pytest

from repro import (
    DynamicEngine,
    EngineConfig,
    FaultPlan,
    FaultTolerantRunner,
    GenerationalBFS,
    GenerationalCC,
    GenerationalSSSP,
    GenerationalST,
    GenerationalWidest,
    RankCrash,
)
from repro.analytics.verify import (
    verify_bfs,
    verify_cc,
    verify_sssp,
    verify_st,
    verify_widest,
)
from repro.generators.churn import churn_events, split_churn_streams

N_RANKS = 3

DIST = lambda v: v[1]  # noqa: E731
LABEL = lambda v: v[1]  # noqa: E731
MASK = GenerationalST.mask_of
CAP = lambda v: v[1]  # noqa: E731

PROJECTIONS = [
    ("gen-bfs", DIST),
    ("gen-sssp", DIST),
    ("gen-cc", LABEL),
    ("gen-st", MASK),
    ("gen-widest", CAP),
]


def programs():
    st = GenerationalST()
    st.register_source(0)
    st.register_source(1)
    return [
        GenerationalBFS(),
        GenerationalSSSP(),
        GenerationalCC(),
        st,
        GenerationalWidest(),
    ]


def init(engine):
    engine.init_program("gen-bfs", 0)
    engine.init_program("gen-sssp", 0)
    engine.init_program("gen-st", 0, 0)
    engine.init_program("gen-st", 1, 1)
    engine.init_program("gen-widest", 0)


def projected(engine):
    return {
        name: {k: proj(v) for k, v in engine.state(name).items()}
        for name, proj in PROJECTIONS
    }


@pytest.mark.parametrize("seed", [3, 4])
def test_crash_mid_churn_recovers_fault_free_projections(seed, tmp_path):
    cols = churn_events(
        50, 220, delete_ratio=0.25, rng=np.random.default_rng(seed)
    )

    def engine_factory():
        return DynamicEngine(
            programs(), EngineConfig(n_ranks=N_RANKS, undirected=True)
        )

    def stream_factory():
        return split_churn_streams(*cols, N_RANKS)

    # Fault-free reference run (also supplies the makespan for timing).
    ref = engine_factory()
    init(ref)
    ref.attach_streams(stream_factory())
    ref.run()
    vt = ref.loop.max_time()
    ref_proj = projected(ref)
    assert sum(c.edge_deletes for c in ref.counters) > 0

    plan = FaultPlan(
        drop=0.08,
        seed=seed,
        crashes=[RankCrash(time=vt * 0.03), RankCrash(time=vt * 0.06)],
    )
    res = FaultTolerantRunner(
        engine_factory,
        stream_factory,
        plan,
        tmp_path / "churn.npz",
        checkpoint_interval=vt * 0.04,
        init_fn=init,
    ).run()

    assert res.recoveries == 2
    assert res.checkpoints >= 1
    assert res.events_replayed > 0
    assert res.engine.loop.quiescent()
    assert projected(res.engine) == ref_proj
    # The recovered run also verifies against the static oracles on the
    # final (deletes-applied) topology.
    e = res.engine
    assert verify_bfs(e, "gen-bfs", 0, value_of=DIST) == []
    assert verify_sssp(e, "gen-sssp", 0, value_of=DIST) == []
    assert verify_cc(e, "gen-cc", value_of=LABEL) == []
    assert verify_st(e, "gen-st", [0, 1], value_of=MASK) == []
    assert verify_widest(e, "gen-widest", 0, value_of=CAP) == []


def test_delete_counters_survive_recovery(tmp_path):
    """edge_deletes must not undercount after a crash: the checkpoint
    round-trips the per-rank counters, and the replayed suffix only adds
    the deletes the restored incarnation actually re-applies."""
    cols = churn_events(
        40, 180, delete_ratio=0.3, rng=np.random.default_rng(11)
    )

    def engine_factory():
        return DynamicEngine(
            programs(), EngineConfig(n_ranks=N_RANKS, undirected=True)
        )

    def stream_factory():
        return split_churn_streams(*cols, N_RANKS)

    ref = engine_factory()
    init(ref)
    ref.attach_streams(stream_factory())
    ref.run()
    vt = ref.loop.max_time()
    ref_deletes = sum(c.edge_deletes for c in ref.counters)

    plan = FaultPlan(seed=11, crashes=[RankCrash(time=vt * 0.03)])
    res = FaultTolerantRunner(
        engine_factory,
        stream_factory,
        plan,
        tmp_path / "counters.npz",
        checkpoint_interval=vt * 0.02,
        init_fn=init,
    ).run()
    assert res.recoveries == 1
    got = sum(c.edge_deletes for c in res.engine.counters)
    # Replay may re-apply a delete from the suffix at most once per
    # occurrence; it must never LOSE the pre-crash deletes.
    assert got >= ref_deletes
    assert projected(res.engine) == projected(ref)
