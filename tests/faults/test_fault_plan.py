"""Unit tests for FaultPlan: validation, determinism, spec parsing."""

import pytest

from repro.faults import FaultPlan, RankCrash, RankStall

US = 1e-6


class TestValidation:
    def test_probabilities_must_be_probabilities(self):
        with pytest.raises(ValueError, match="drop"):
            FaultPlan(drop=-0.1)
        with pytest.raises(ValueError, match="dup"):
            FaultPlan(dup=1.5)

    def test_drop_capped_at_half(self):
        with pytest.raises(ValueError, match="0.5"):
            FaultPlan(drop=0.6)

    def test_fates_must_not_exceed_one(self):
        with pytest.raises(ValueError, match="exceed 1"):
            FaultPlan(drop=0.5, dup=0.3, delay=0.3)

    def test_negative_delay_scale_rejected(self):
        with pytest.raises(ValueError, match="delay_scale"):
            FaultPlan(delay_scale=-1.0)

    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            crashes=[RankCrash(time=3.0), RankCrash(time=1.0)],
            stalls=[RankStall(time=2.0), RankStall(time=0.5)],
        )
        assert [c.time for c in plan.crashes] == [1.0, 3.0]
        assert [s.time for s in plan.stalls] == [0.5, 2.0]


class TestFate:
    def test_fates_are_seed_deterministic(self):
        a = FaultPlan(drop=0.2, dup=0.1, delay=0.1, seed=9)
        b = FaultPlan(drop=0.2, dup=0.1, delay=0.1, seed=9)
        assert [a.frame_fate() for _ in range(200)] == [
            b.frame_fate() for _ in range(200)
        ]

    def test_fate_frequencies_roughly_match(self):
        plan = FaultPlan(drop=0.3, dup=0.2, delay=0.1, seed=0)
        fates = [plan.frame_fate()[0] for _ in range(5000)]
        assert abs(fates.count("drop") / 5000 - 0.3) < 0.03
        assert abs(fates.count("dup") / 5000 - 0.2) < 0.03
        assert abs(fates.count("delay") / 5000 - 0.1) < 0.03

    def test_clean_plan_always_ok(self):
        plan = FaultPlan(seed=1)
        assert all(plan.frame_fate() == ("ok", 0.0) for _ in range(100))

    def test_lag_bounded_by_delay_scale(self):
        plan = FaultPlan(delay=1.0, delay_scale=7 * US, seed=2)
        for _ in range(200):
            fate, lag = plan.frame_fate()
            assert fate == "delay" and 0.0 <= lag <= 7 * US

    def test_pick_rank_in_range(self):
        plan = FaultPlan(seed=4)
        assert all(0 <= plan.pick_rank(6) < 6 for _ in range(100))


class TestSpec:
    def test_parse_full_spec(self):
        plan = FaultPlan.from_spec(
            "drop=0.1,dup=0.02,delay=0.05,seed=7,crash=0.5,stall=0.3",
            time_scale=2.0,
        )
        assert plan.drop == 0.1 and plan.dup == 0.02 and plan.delay == 0.05
        assert plan.seed == 7
        assert [c.time for c in plan.crashes] == [1.0]  # 0.5 * time_scale
        assert [s.time for s in plan.stalls] == [0.6]

    def test_repeated_crashes_and_stall_duration(self):
        plan = FaultPlan.from_spec("crash=0.2,crash=0.6,stall=0.1:500")
        assert [c.time for c in plan.crashes] == [0.2, 0.6]
        [stall] = plan.stalls
        assert stall.duration == pytest.approx(500 * US)

    def test_default_stall_duration(self):
        [stall] = FaultPlan.from_spec("stall=0.4").stalls
        assert stall.duration == pytest.approx(RankStall.duration)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="explode"):
            FaultPlan.from_spec("explode=1")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.from_spec("drop")

    def test_empty_items_skipped(self):
        plan = FaultPlan.from_spec("drop=0.1,,")
        assert plan.drop == 0.1

    def test_describe_is_json_safe(self):
        import json

        plan = FaultPlan.from_spec("drop=0.1,crash=0.5,stall=0.2", time_scale=1.0)
        doc = json.loads(json.dumps(plan.describe()))
        assert doc["drop"] == 0.1
        assert doc["crashes"] == [[0.5, -1]]
