"""Unit tests of the array frontier kernels (repro.kernels.frontier)."""

import numpy as np

from repro.algorithms.base import INF
from repro.algorithms.cc import component_label
from repro.kernels import (
    MaxLabelKernel,
    MinPlusKernel,
    build_csr,
    csr_indptr,
    relax_to_fixpoint,
)


def csr_of(edges, n):
    """Directed CSR from (tail, head, weight) triples."""
    t = np.array([e[0] for e in edges], dtype=np.int64)
    h = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.int64)
    return build_csr(n, t, h, w)


# ----------------------------------------------------------------------
# CSR helpers
# ----------------------------------------------------------------------
def test_csr_indptr_counts_rows():
    indptr = csr_indptr(4, np.array([0, 0, 2, 3, 3], dtype=np.int64))
    assert indptr.tolist() == [0, 2, 2, 3, 5]


def test_build_csr_groups_by_tail_preserving_order():
    indptr, heads, weights = csr_of([(2, 0, 5), (0, 1, 1), (0, 2, 2)], 3)
    assert indptr.tolist() == [0, 2, 2, 3]
    assert heads.tolist() == [1, 2, 0]
    assert weights.tolist() == [1, 2, 5]


# ----------------------------------------------------------------------
# min-plus relaxation (BFS / SSSP)
# ----------------------------------------------------------------------
def test_bfs_levels_on_a_path():
    # 0 - 1 - 2 - 3 as two directed edges each.
    edges = []
    for a, b in ((0, 1), (1, 2), (2, 3)):
        edges += [(a, b, 1), (b, a, 1)]
    indptr, heads, weights = csr_of(edges, 4)
    kernel = MinPlusKernel(unit_weight=True)
    values = kernel.init_values(np.arange(4))
    values[0] = 1  # source level, as Alg. 4's init
    rounds, relaxations = relax_to_fixpoint(
        indptr, heads, weights, values, np.array([0]), kernel
    )
    assert values.tolist() == [1, 2, 3, 4]
    assert rounds == 4  # 3 improving waves + the final no-change one
    assert relaxations > 0


def test_sssp_prefers_cheap_two_hop_over_heavy_direct():
    edges = [(0, 1, 10), (0, 2, 1), (2, 1, 2)]
    indptr, heads, weights = csr_of(edges, 3)
    kernel = MinPlusKernel(unit_weight=False)
    values = kernel.init_values(np.arange(3))
    values[0] = 1
    relax_to_fixpoint(indptr, heads, weights, values, np.array([0]), kernel)
    assert values.tolist() == [1, 4, 2]  # 1 reached via 0->2->1


def test_min_kernel_inf_frontier_emits_nothing():
    indptr, heads, weights = csr_of([(0, 1, 1)], 2)
    kernel = MinPlusKernel(unit_weight=True)
    values = kernel.init_values(np.arange(2))  # all INF, no source
    rounds, relaxations = relax_to_fixpoint(
        indptr, heads, weights, values, np.array([0, 1]), kernel
    )
    assert rounds == 0 and relaxations == 0
    assert values.tolist() == [INF, INF]


def test_empty_frontier_is_a_noop():
    indptr, heads, weights = csr_of([(0, 1, 1)], 2)
    kernel = MaxLabelKernel()
    values = kernel.init_values(np.arange(2))
    before = values.copy()
    rounds, relaxations = relax_to_fixpoint(
        indptr, heads, weights, values, np.empty(0, dtype=np.int64), kernel
    )
    assert rounds == 0 and relaxations == 0
    assert (values == before).all()


def test_min_kernel_merge_dense_treats_zero_as_unset():
    kernel = MinPlusKernel()
    dense = np.array([5, INF, 3], dtype=np.int64)
    incoming = np.array([0, 7, 2], dtype=np.int64)
    assert kernel.merge_dense(dense, incoming).tolist() == [5, 7, 2]


# ----------------------------------------------------------------------
# max-label relaxation (CC)
# ----------------------------------------------------------------------
def test_max_label_init_matches_component_label():
    ids = np.array([0, 1, 7, 123456], dtype=np.int64)
    labels = MaxLabelKernel().init_values(ids)
    assert labels.dtype == np.uint64
    assert labels.tolist() == [component_label(int(v)) for v in ids.tolist()]


def test_cc_floods_max_label_per_component():
    # Two components over dense ids: {0,1,2} and {3,4}.
    edges = []
    for a, b in ((0, 1), (1, 2), (3, 4)):
        edges += [(a, b, 1), (b, a, 1)]
    indptr, heads, weights = csr_of(edges, 5)
    kernel = MaxLabelKernel()
    ids = np.array([10, 11, 12, 20, 21], dtype=np.int64)  # original ids
    values = kernel.init_values(ids)
    relax_to_fixpoint(
        indptr, heads, weights, values, np.arange(5), kernel
    )
    left = max(component_label(v) for v in (10, 11, 12))
    right = max(component_label(v) for v in (20, 21))
    assert values.tolist() == [left, left, left, right, right]


def test_max_label_merge_dense_is_elementwise_max():
    kernel = MaxLabelKernel()
    dense = np.array([5, 9], dtype=np.uint64)
    incoming = np.array([7, 2], dtype=np.uint64)
    assert kernel.merge_dense(dense, incoming).tolist() == [7, 9]


def test_self_loop_does_not_diverge():
    indptr, heads, weights = csr_of([(0, 0, 1), (0, 1, 1)], 2)
    kernel = MinPlusKernel(unit_weight=True)
    values = kernel.init_values(np.arange(2))
    values[0] = 1
    rounds, _ = relax_to_fixpoint(
        indptr, heads, weights, values, np.array([0]), kernel
    )
    assert values.tolist() == [1, 2]
    assert rounds <= 2  # self-relaxation must not loop forever
