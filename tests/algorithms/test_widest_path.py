"""Tests for the widest-path (bottleneck) REMO extension."""

import numpy as np
import pytest

from repro import DynamicEngine, EngineConfig, ListEventStream, split_streams
from repro.algorithms.widest_path import CAP_INF, WidestPath, static_widest_path
from repro.analytics.verify import csr_from_engine
from repro.events.types import ADD
from repro.generators import erdos_renyi_edges, rmat_edges
from repro.generators.weights import pairwise_weights


def run_events(events, source, n_ranks=3):
    e = DynamicEngine([WidestPath()], EngineConfig(n_ranks=n_ranks))
    e.init_program("widest", source)
    e.attach_streams([ListEventStream(events)])
    e.run()
    return e


def verify_widest(engine, source):
    graph = csr_from_engine(engine)
    expect = static_widest_path(graph, source)
    got = {v: c for v, c in engine.state("widest").items() if c > 0}
    return got, expect


class TestWidestPath:
    def test_source_capacity_infinite(self):
        e = run_events([(ADD, 0, 1, 5)], source=0)
        assert e.value_of("widest", 0) == CAP_INF
        assert e.value_of("widest", 1) == 5

    def test_bottleneck_along_path(self):
        events = [(ADD, 0, 1, 10), (ADD, 1, 2, 3), (ADD, 2, 3, 7)]
        e = run_events(events, source=0)
        assert e.value_of("widest", 1) == 10
        assert e.value_of("widest", 2) == 3
        assert e.value_of("widest", 3) == 3  # bottleneck sticks

    def test_wider_alternative_route_wins(self):
        # narrow direct edge vs. a wide two-hop route
        events = [(ADD, 0, 2, 2), (ADD, 0, 1, 9), (ADD, 1, 2, 8)]
        e = run_events(events, source=0)
        assert e.value_of("widest", 2) == 8

    def test_capacity_only_grows_with_new_edges(self):
        events = [(ADD, 0, 1, 2)]
        e = run_events(events, source=0)
        assert e.value_of("widest", 1) == 2
        # a later, wider edge upgrades the capacity
        e.attach_streams([ListEventStream([(ADD, 0, 1, 6)])])
        e.run()
        assert e.value_of("widest", 1) == 6

    def test_unreachable_is_zero(self):
        e = run_events([(ADD, 0, 1, 5), (ADD, 8, 9, 5)], source=0)
        assert e.value_of("widest", 8) == 0

    def test_notify_back_widens_upstream(self):
        # vertex 2 learns a wide route after 1 did; 1 must be upgraded
        # through the notify-back path: 0-(2)-1, 0-(9)-3, 3-(9)-1.
        events = [(ADD, 0, 1, 2), (ADD, 3, 1, 9), (ADD, 0, 3, 9)]
        e = run_events(events, source=0, n_ranks=1)
        assert e.value_of("widest", 1) == 9

    @pytest.mark.parametrize("n_ranks", [1, 4, 8])
    def test_random_graph_matches_static_oracle(self, n_ranks):
        rng = np.random.default_rng(3)
        src, dst = rmat_edges(8, edge_factor=6, rng=rng)
        w = pairwise_weights(src, dst, 1, 30)
        e = DynamicEngine([WidestPath()], EngineConfig(n_ranks=n_ranks))
        source = int(src[0])
        e.init_program("widest", source)
        e.attach_streams(split_streams(src, dst, n_ranks, weights=w, rng=rng))
        e.run()
        got, expect = verify_widest(e, source)
        assert got == expect

    def test_interleaving_independence(self):
        rng = np.random.default_rng(4)
        src, dst = erdos_renyi_edges(60, 240, rng=rng)
        w = pairwise_weights(src, dst, 1, 9)
        states = []
        for seed in (1, 2, 3):
            e = DynamicEngine([WidestPath()], EngineConfig(n_ranks=4))
            e.init_program("widest", int(src[0]))
            e.attach_streams(
                split_streams(src, dst, 4, weights=w, rng=np.random.default_rng(seed))
            )
            e.run()
            states.append(e.state("widest"))
        assert states[0] == states[1] == states[2]

    def test_merge_and_format(self):
        p = WidestPath()
        assert p.merge(3, 7) == 7
        assert p.format_value(0) == "unreached"
        assert p.format_value(CAP_INF) == "source"
        assert p.format_value(12) == "capacity 12"


class TestStaticOracle:
    def test_oracle_simple(self):
        from repro.storage.csr import CSRGraph

        g = CSRGraph.from_edges(
            np.array([0, 1, 0]),
            np.array([1, 2, 2]),
            np.array([10, 3, 2]),
            symmetrize=True,
        )
        expect = static_widest_path(g, 0)
        assert expect[0] == CAP_INF
        assert expect[1] == 10
        assert expect[2] == 3  # via the 10/3 route, not the direct 2

    def test_oracle_missing_source(self):
        from repro.storage.csr import CSRGraph

        g = CSRGraph.from_edges(np.array([0]), np.array([1]))
        assert static_widest_path(g, 99) == {99: CAP_INF}
