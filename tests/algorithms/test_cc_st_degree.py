"""Unit tests for incremental CC (Alg. 6), Multi S-T (Alg. 7), degree."""

import numpy as np

from repro import (
    DegreeTracker,
    DynamicEngine,
    EngineConfig,
    IncrementalCC,
    ListEventStream,
    MultiSTConnectivity,
    split_streams,
)
from repro.algorithms.cc import component_label
from repro.analytics import verify_cc, verify_st
from repro.events.types import ADD, DELETE
from repro.generators import erdos_renyi_edges, rmat_edges


def run_events(progs, events, n_ranks=3):
    e = DynamicEngine(progs, EngineConfig(n_ranks=n_ranks))
    e.attach_streams([ListEventStream(events)])
    e.run()
    return e


class TestCC:
    def test_single_component_agrees_on_max_hash(self):
        e = run_events([IncrementalCC()], [(ADD, 0, 1, 1), (ADD, 1, 2, 1)])
        expect = max(component_label(v) for v in (0, 1, 2))
        for v in (0, 1, 2):
            assert e.value_of("cc", v) == expect

    def test_two_components_have_distinct_labels(self):
        e = run_events([IncrementalCC()], [(ADD, 0, 1, 1), (ADD, 5, 6, 1)])
        assert e.value_of("cc", 0) == e.value_of("cc", 1)
        assert e.value_of("cc", 5) == e.value_of("cc", 6)
        assert e.value_of("cc", 0) != e.value_of("cc", 5)

    def test_component_merge_floods_dominant_label(self):
        # §II-B case (ii): an edge uniting two components.
        events = [(ADD, 0, 1, 1), (ADD, 5, 6, 1), (ADD, 1, 5, 1)]
        e = run_events([IncrementalCC()], events)
        expect = max(component_label(v) for v in (0, 1, 5, 6))
        for v in (0, 1, 5, 6):
            assert e.value_of("cc", v) == expect

    def test_intra_component_edge_is_trivial(self):
        # §II-B case (i): edge within a component changes no labels.
        events = [(ADD, 0, 1, 1), (ADD, 1, 2, 1)]
        e1 = run_events([IncrementalCC()], events)
        e2 = run_events([IncrementalCC()], events + [(ADD, 0, 2, 1)])
        for v in (0, 1, 2):
            assert e1.value_of("cc", v) == e2.value_of("cc", v)

    def test_no_init_needed(self):
        e = run_events([IncrementalCC()], [(ADD, 7, 8, 1)])
        assert e.value_of("cc", 7) != 0

    def test_random_graph_verifies(self):
        rng = np.random.default_rng(3)
        src, dst = rmat_edges(8, edge_factor=4, rng=rng)
        e = DynamicEngine([IncrementalCC()], EngineConfig(n_ranks=5))
        e.attach_streams(split_streams(src, dst, 5, rng=rng))
        e.run()
        assert verify_cc(e, "cc") == []

    def test_many_small_components_verify(self):
        events = [(ADD, 10 * i, 10 * i + 1, 1) for i in range(30)]
        e = run_events([IncrementalCC()], events, n_ranks=4)
        assert verify_cc(e, "cc") == []
        labels = {e.value_of("cc", 10 * i) for i in range(30)}
        assert len(labels) == 30


class TestMultiST:
    def test_single_source_flow(self):
        st = MultiSTConnectivity()
        e = DynamicEngine([st], EngineConfig(n_ranks=2))
        e.init_program("st", 0, payload=st.register_source(0))
        e.attach_streams([ListEventStream([(ADD, 0, 1, 1), (ADD, 1, 2, 1)])])
        e.run()
        assert st.is_connected(e.value_of("st", 2), 0)
        assert st.is_connected(e.value_of("st", 0), 0)  # source reaches itself

    def test_disconnected_vertex_not_connected(self):
        st = MultiSTConnectivity()
        e = DynamicEngine([st], EngineConfig(n_ranks=2))
        e.init_program("st", 0, payload=st.register_source(0))
        e.attach_streams([ListEventStream([(ADD, 0, 1, 1), (ADD, 8, 9, 1)])])
        e.run()
        assert not st.is_connected(e.value_of("st", 8), 0)

    def test_multiple_independent_sources(self):
        st = MultiSTConnectivity()
        e = DynamicEngine([st], EngineConfig(n_ranks=3))
        for s in (0, 10):
            e.init_program("st", s, payload=st.register_source(s))
        events = [(ADD, 0, 1, 1), (ADD, 10, 11, 1), (ADD, 1, 11, 1)]
        e.attach_streams([ListEventStream(events)])
        e.run()
        # After the bridge, every vertex reaches both sources.
        for v in (0, 1, 10, 11):
            assert sorted(st.sources_in(e.value_of("st", v))) == [0, 10]

    def test_set_exchange_on_mixed_sets(self):
        # Alg. 7's "mix" branch: two flows meeting must exchange fully.
        st = MultiSTConnectivity()
        e = DynamicEngine([st], EngineConfig(n_ranks=2))
        for s in (0, 5):
            e.init_program("st", s, payload=st.register_source(s))
        events = [(ADD, 0, 1, 1), (ADD, 5, 4, 1), (ADD, 1, 4, 1)]
        e.attach_streams([ListEventStream(events)])
        e.run()
        assert verify_st(e, "st", [0, 5]) == []

    def test_source_registered_twice_same_bit(self):
        st = MultiSTConnectivity()
        assert st.register_source(3) == st.register_source(3)

    def test_random_graph_many_sources_verify(self):
        rng = np.random.default_rng(4)
        src, dst = erdos_renyi_edges(100, 300, rng=rng)
        st = MultiSTConnectivity()
        e = DynamicEngine([st], EngineConfig(n_ranks=4))
        sources = [0, 1, 2, 50, 99]
        for s in sources:
            e.init_program("st", s, payload=st.register_source(s))
        e.attach_streams(split_streams(src, dst, 4, rng=rng))
        e.run()
        assert verify_st(e, "st", sources) == []

    def test_format_value(self):
        st = MultiSTConnectivity()
        st.register_source(7)
        assert "7" in st.format_value(1)


class TestDegreeTracker:
    def test_tracks_undirected_degree(self):
        events = [(ADD, 0, 1, 1), (ADD, 0, 2, 1), (ADD, 1, 2, 1)]
        e = run_events([DegreeTracker()], events)
        assert e.value_of("degree", 0) == 2
        assert e.value_of("degree", 1) == 2
        assert e.value_of("degree", 2) == 2

    def test_duplicate_adds_do_not_inflate(self):
        e = run_events([DegreeTracker()], [(ADD, 0, 1, 1)] * 4)
        assert e.value_of("degree", 0) == 1

    def test_delete_decrements(self):
        events = [(ADD, 0, 1, 1), (ADD, 0, 2, 1), (DELETE, 0, 1, 0)]
        e = run_events([DegreeTracker()], events)
        assert e.value_of("degree", 0) == 1
        assert e.value_of("degree", 1) == 0

    def test_matches_store_degrees_on_random_graph(self):
        rng = np.random.default_rng(5)
        src, dst = erdos_renyi_edges(50, 400, rng=rng)
        e = DynamicEngine([DegreeTracker()], EngineConfig(n_ranks=4))
        e.attach_streams(split_streams(src, dst, 4, rng=rng))
        e.run()
        for v, deg in e.state("degree").items():
            rank = e.partitioner.owner(v)
            assert e.stores[rank].degree(v) == deg
